//! Bit-identity pins for the preset data tables.
//!
//! The per-generation machines are now pure [`ArchDesc`] data tables lowered
//! through `GpuConfig::from_arch`. These tests pin the *byte-level* identity
//! of that lowering:
//!
//! * `GpuConfig::hash_timing` for every preset (full and microbench
//!   machine) is pinned to the exact value the flat, hand-written configs
//!   produced before the description refactor — proving the data tables
//!   lower to byte-identical timing streams, and therefore that every
//!   `RunSummary::content_hash` (which chains off this stream) is unchanged.
//! * The description round-trip `from_arch ∘ arch_desc` is the identity on
//!   every preset, and the snapshot codec reproduces descriptions exactly.
//!
//! Any timing change — intended or not — must show up here as a conscious,
//! reviewed golden update.

use gpu_sim::{ArchDesc, GpuConfig};
use gpu_snapshot::{Decoder, Encoder, StableHasher};
use latency_core::ArchPreset;

fn timing_hash(cfg: &GpuConfig) -> u64 {
    let mut h = StableHasher::new();
    cfg.hash_timing(&mut h);
    h.finish()
}

/// (full-machine, microbench-machine) timing hashes, captured from the
/// pre-refactor flat configs for the five original presets. GK110 did not
/// exist before the refactor; its values pin the data table as first
/// committed. The six paper-era values are *unchanged* across the v2
/// description schema (sectoring/slicing hash in only when present), which
/// is the bit-identity guarantee for the v1→v2 up-conversion. The modern
/// sectored presets pin their tables as first committed.
fn golden_hashes(preset: ArchPreset) -> (u64, u64) {
    match preset {
        ArchPreset::TeslaGt200 => (0x7bed11ef0f1c4147, 0x71a429f5b20a73f9),
        // GF106 and GF100 differ only in machine size, so their single-SM
        // microbench machines hash identically (the name is excluded).
        ArchPreset::FermiGf106 => (0x264b3943b7cac158, 0x7eedad25f6d93f18),
        ArchPreset::FermiGf100 => (0xbbfb8ffc085c1791, 0x7eedad25f6d93f18),
        ArchPreset::KeplerGk104 => (0x043e8a9d508e4db9, 0x50cc1c2d457e8973),
        ArchPreset::KeplerGk110 => (0x0fe4a052385aff00, 0x632e09e9d925d342),
        ArchPreset::MaxwellGm107 => (0x0fdca0a4c5bfadae, 0x5fd8faf64a862919),
        ArchPreset::VoltaGv100 => (0x6b3f8d0b4d6ffbbe, 0x90e9f84b224108d4),
        ArchPreset::AmpereGa102 => (0xb2a57d569465c01a, 0x7fff6ccb40ac3380),
    }
}

#[test]
fn timing_hashes_match_preflat_goldens() {
    for p in ArchPreset::ALL {
        let (full, micro) = golden_hashes(p);
        assert_eq!(
            timing_hash(&p.config()),
            full,
            "{}: full-machine timing hash drifted",
            p.name()
        );
        assert_eq!(
            timing_hash(&p.config_microbench()),
            micro,
            "{}: microbench timing hash drifted",
            p.name()
        );
    }
}

#[test]
fn descriptions_roundtrip_through_config_and_codec() {
    for p in ArchPreset::ALL {
        let desc = p.desc();
        // Lowering to the flat config and re-deriving the description is
        // the identity on preset tables.
        assert_eq!(p.config().arch_desc(), desc, "{}", p.name());
        // The self-versioned snapshot frame reproduces the description.
        let mut e = Encoder::new();
        desc.encode_state(&mut e);
        let bytes = e.finish();
        let mut d = Decoder::open(&bytes).expect("frame opens");
        let decoded = ArchDesc::decode(&mut d).expect("frame decodes");
        d.expect_end().expect("no trailing bytes");
        assert_eq!(decoded, desc, "{}: codec round-trip drifted", p.name());
    }
}

#[test]
fn description_hash_separates_presets_but_ignores_names() {
    let hash = |d: &ArchDesc| {
        let mut h = StableHasher::new();
        d.hash_desc(&mut h);
        h.finish()
    };
    // Renaming must not move cache keys…
    let mut renamed = ArchPreset::FermiGf106.desc();
    renamed.name = "renamed".into();
    assert_eq!(hash(&renamed), hash(&ArchPreset::FermiGf106.desc()));
    // …but every structurally distinct preset must key differently.
    let presets = ArchPreset::ALL;
    for (i, a) in presets.iter().enumerate() {
        for b in &presets[i + 1..] {
            assert_ne!(
                hash(&a.desc()),
                hash(&b.desc()),
                "{} and {} must not collide",
                a.name(),
                b.name()
            );
        }
    }
}
