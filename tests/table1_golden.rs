//! Golden snapshot of the reproduced Table I: the measured L1/L2/DRAM
//! latency of every preset is pinned to the exact value the simulator
//! produced when this snapshot was taken (all of which sit within 2% of the
//! paper, as `table1_reproduction.rs` verifies).
//!
//! Unlike the tolerance-based reproduction test, these are **exact-match**
//! assertions: the simulator is deterministic, so any drift — a timing
//! tweak, a cache-model change, a different chase layout, a PRNG change —
//! must show up here as a conscious, reviewed snapshot update rather than
//! sliding silently within the 2% band.

use latency_core::{measure_row, ArchPreset, MeasuredRow, Table1};

fn golden(preset: ArchPreset) -> MeasuredRow {
    match preset {
        ArchPreset::TeslaGt200 => MeasuredRow {
            l1: None,
            l2: None,
            dram: 440.0,
        },
        ArchPreset::FermiGf106 => MeasuredRow {
            l1: Some(45.0),
            l2: Some(310.0),
            dram: 685.0,
        },
        // GF100 is the paper's §III dynamic-analysis machine, not a Table I
        // column; it has no pinned static row.
        ArchPreset::FermiGf100 => unreachable!("GF100 is not a Table I column"),
        ArchPreset::KeplerGk104 => MeasuredRow {
            l1: Some(30.0),
            l2: Some(175.0),
            dram: 300.0,
        },
        // GK110 shares GK104's timings; its L1 row is observable from the
        // *global* pipeline (read-only path), measured by its own test
        // below rather than the Table I loops.
        ArchPreset::KeplerGk110 => MeasuredRow {
            l1: Some(30.0),
            l2: Some(175.0),
            dram: 300.0,
        },
        ArchPreset::MaxwellGm107 => MeasuredRow {
            l1: None,
            l2: Some(194.0),
            dram: 350.0,
        },
        // The modern sectored/sliced presets pin the values their data
        // tables were calibrated to (see the gpu-bench validation harness).
        ArchPreset::VoltaGv100 => MeasuredRow {
            l1: Some(28.0),
            l2: Some(193.0),
            dram: 472.0,
        },
        ArchPreset::AmpereGa102 => MeasuredRow {
            l1: Some(33.0),
            l2: Some(212.0),
            dram: 466.0,
        },
    }
}

/// Every Table I cell matches the pinned snapshot exactly (f64 equality —
/// the measurement is a deterministic cycle count divided by a constant).
#[test]
fn measured_rows_match_golden_snapshot_exactly() {
    for preset in ArchPreset::TABLE1 {
        let measured = measure_row(preset).expect("chase runs");
        assert_eq!(
            measured,
            golden(preset),
            "{}: measured row drifted from the golden snapshot",
            preset.name()
        );
    }
}

/// The batched full-table path produces the same pinned values as the
/// row-at-a-time path (guards the parallel batching in `measure_presets`).
#[test]
fn full_table_matches_golden_snapshot_exactly() {
    let table = Table1::measure().expect("table measures");
    assert_eq!(table.rows().len(), ArchPreset::TABLE1.len());
    for (preset, measured) in table.rows() {
        assert_eq!(
            *measured,
            golden(*preset),
            "{}: table row drifted from the golden snapshot",
            preset.name()
        );
    }
}

/// GK110 — the description-driven preset outside the paper's four columns —
/// recovers GK104's timings exactly, with the L1 row measured through the
/// global pipeline (its routing table caches global reads in the L1).
#[test]
fn gk110_row_matches_golden_snapshot_exactly() {
    let measured = measure_row(ArchPreset::KeplerGk110).expect("chase runs");
    assert_eq!(measured, golden(ArchPreset::KeplerGk110));
}

/// The modern sectored presets recover their calibration targets exactly
/// through the same generic chase machinery (sector fills, sliced L2 and a
/// non-power-of-two partition count included).
#[test]
fn modern_rows_match_golden_snapshot_exactly() {
    for preset in [ArchPreset::VoltaGv100, ArchPreset::AmpereGa102] {
        let measured = measure_row(preset).expect("chase runs");
        assert_eq!(
            measured,
            golden(preset),
            "{}: measured row drifted from the golden snapshot",
            preset.name()
        );
    }
}
