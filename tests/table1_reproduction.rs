//! Full reproduction check of the paper's Table I: the pointer-chase
//! microbenchmark must recover every published latency on every modeled
//! generation within 2%.

use latency_core::{
    detect_plateaus, measure_chase, measure_row, ArchPreset, ChaseParams, ChaseSpace, Sweep,
};

#[test]
fn every_architecture_matches_table1_within_two_percent() {
    for preset in ArchPreset::TABLE1 {
        let measured = measure_row(preset).expect("chase runs");
        let expected = preset.table1_expected();
        let err = measured.max_rel_error(&expected);
        assert!(
            err < 0.02,
            "{}: relative error {err:.3} (measured {measured:?}, expected {expected:?})",
            preset.name()
        );
        // Structural presence/absence of levels must match the paper.
        assert_eq!(
            measured.l1.is_some(),
            expected.l1.is_some(),
            "{}",
            preset.name()
        );
        assert_eq!(
            measured.l2.is_some(),
            expected.l2.is_some(),
            "{}",
            preset.name()
        );
    }
}

#[test]
fn latency_increases_across_generations_at_dram_level_from_kepler_on() {
    // The paper's §II: Maxwell's pipeline is slower than Kepler's at every
    // level, reversing the Fermi→Kepler improvement.
    let kepler = measure_row(ArchPreset::KeplerGk104).unwrap();
    let maxwell = measure_row(ArchPreset::MaxwellGm107).unwrap();
    assert!(maxwell.l2.unwrap() > kepler.l2.unwrap());
    assert!(maxwell.dram > kepler.dram);
}

#[test]
fn fermi_sweep_exposes_three_plateaus() {
    // Wong-et-al. methodology: sweep footprints across the cache capacities
    // and detect the latency plateaus mechanically.
    let cfg = ArchPreset::FermiGf106.config_microbench();
    let sweep = Sweep::run(
        &cfg,
        ChaseSpace::Global,
        &[
            4 * 1024,
            8 * 1024,
            48 * 1024,
            64 * 1024,
            512 * 1024,
            1024 * 1024,
        ],
        &[512],
    )
    .unwrap();
    let plateaus = detect_plateaus(&sweep.latencies(), 0.20);
    assert_eq!(
        plateaus.len(),
        3,
        "L1/L2/DRAM plateaus expected, got {plateaus:?}"
    );
    assert!((plateaus[0].latency - 45.0).abs() < 5.0, "{plateaus:?}");
    assert!((plateaus[1].latency - 310.0).abs() < 15.0, "{plateaus:?}");
    // At a 512 B stride, 3 of 4 consecutive ring accesses hit the open DRAM
    // row (2 KB rows), so this plateau sits below the full row-conflict
    // latency of 685 that Table I's large-stride operating point measures.
    assert!(
        (450.0..=700.0).contains(&plateaus[2].latency),
        "{plateaus:?}"
    );
}

#[test]
fn kepler_l1_serves_local_but_not_global() {
    // The Table-I footnote that motivates the paper's Kepler discussion:
    // identical 4 KB working sets measure L1 via local, L2 via global.
    let cfg = ArchPreset::KeplerGk104.config_microbench();
    let local = measure_chase(&cfg, &ChaseParams::local(4096, 128)).unwrap();
    let global = measure_chase(&cfg, &ChaseParams::global(4096, 128)).unwrap();
    assert!(
        (local.per_access - 30.0).abs() < 3.0,
        "local {}",
        local.per_access
    );
    assert!(
        (global.per_access - 175.0).abs() < 6.0,
        "global {}",
        global.per_access
    );
    assert!(global.per_access > 4.0 * local.per_access);
}

#[test]
fn tesla_latency_is_flat_across_footprints() {
    // Uncached global memory: every footprint measures DRAM.
    let cfg = ArchPreset::TeslaGt200.config_microbench();
    let sweep = Sweep::run(
        &cfg,
        ChaseSpace::Global,
        &[4 * 1024, 64 * 1024, 512 * 1024],
        &[512],
    )
    .unwrap();
    let plateaus = detect_plateaus(&sweep.latencies(), 0.10);
    assert_eq!(plateaus.len(), 1, "no caches, one plateau: {plateaus:?}");
}

#[test]
fn stride_below_line_size_changes_hit_rate_not_plateau() {
    // With a footprint inside the L1 every stride is a hit in steady state;
    // the measured latency must not depend on the stride.
    let cfg = ArchPreset::FermiGf106.config_microbench();
    let a = measure_chase(&cfg, &ChaseParams::global(4096, 128)).unwrap();
    let b = measure_chase(&cfg, &ChaseParams::global(4096, 256)).unwrap();
    assert!((a.per_access - b.per_access).abs() < 2.0);
}
