//! Differential validation of the static analyzer against the simulator.
//!
//! Three layers:
//!
//! 1. **The matrix**: every Table-I preset x every E4 workload runs
//!    instrumented, and `latency_bench::validate_run` checks the static
//!    transaction predictions (contract A) and the feasible-level claim
//!    (contract B) against the traces. `validate_floor` checks each
//!    preset's analytic unloaded latencies against pointer-chase
//!    measurements (contract C).
//! 2. **Exactness canary**: a deliberately fully-strided kernel runs
//!    dynamically and its predicted per-warp line count (32) must equal the
//!    simulator's coalescer output record-for-record — an off-by-anything
//!    regression in either side fails loudly.
//! 3. **Lint canaries**: seeded-bug kernels (a shared-memory race, a
//!    barrier under divergence) prove each new lint actually fires through
//!    the public `analyze` entry point, so the `--deny` gate has teeth.

use gpu_isa::{CmpOp, KernelBuilder, Launch, Space, Special, Width};
use gpu_sim::Gpu;
use latency_bench::{validate_floor, validate_run, Workload};
use latency_check::{analyze, AnalysisConfig, Pass};
use latency_core::ArchPreset;

/// Runs the full workload sweep for one preset and asserts every cell
/// validates.
fn sweep_preset(preset: ArchPreset) {
    let mut compared = 0usize;
    let mut exact = 0usize;
    for workload in Workload::ALL {
        let report = validate_run(preset, workload).expect("instrumented run failed");
        assert!(
            report.ok(),
            "static/dynamic mismatch:\n{}",
            report.to_human()
        );
        assert!(
            report.requests > 0,
            "cell traced nothing:\n{}",
            report.to_human()
        );
        compared += report.loads.len();
        exact += report
            .loads
            .iter()
            .filter(|l| l.max_observed_lines as usize == l.predicted_lines)
            .count();
    }
    // Some kernels (e.g. matmul's divided indices) are legitimately beyond
    // the affine domain, and every builtin body is bounds-guarded (so the
    // statically-exact contract is exercised by the strided canary, not
    // here) — but the sweep as a whole must compare real loads and some
    // predictions must be tight, not just upper bounds.
    assert!(
        compared >= 8 && exact >= 1,
        "sweep compared too little: {compared} loads, {exact} tight"
    );
}

#[test]
fn matrix_tesla_gt200() {
    sweep_preset(ArchPreset::TeslaGt200);
}

#[test]
fn matrix_fermi_gf106() {
    sweep_preset(ArchPreset::FermiGf106);
}

#[test]
fn matrix_kepler_gk104() {
    sweep_preset(ArchPreset::KeplerGk104);
}

#[test]
fn matrix_maxwell_gm107() {
    sweep_preset(ArchPreset::MaxwellGm107);
}

#[test]
fn matrix_volta_gv100_sectored() {
    // Contract A on a sectored preset compares *sector* traffic: the
    // analyzer predicts at the 32-byte granule and the simulator's
    // coalescer emits 32-byte transactions.
    sweep_preset(ArchPreset::VoltaGv100);
}

#[test]
fn matrix_ampere_ga102_sectored() {
    sweep_preset(ArchPreset::AmpereGa102);
}

#[test]
fn floors_lower_bound_measurements() {
    for preset in ArchPreset::TABLE1 {
        let report = validate_floor(preset).expect("chase measurement failed");
        assert!(report.ok(), "floor violated:\n{}", report.to_human());
        assert!(
            !report.checks.is_empty(),
            "no level was measured for {preset:?}"
        );
    }
}

#[test]
fn strided_canary_matches_dynamic_coalescer_exactly() {
    // One load, 128-byte lane stride: every lane of a full warp touches its
    // own line, so the analyzer must predict exactly 32 transactions and
    // the simulator must produce exactly 32 for every record.
    let mut b = KernelBuilder::new("strided_canary");
    let base = b.param(0);
    let t = b.special(Special::GlobalTid);
    let off = b.mul(t, 128i64);
    let a = b.add(base, off);
    b.ld_global(Width::W4, a, 0);
    b.exit();
    let kernel = b.build().unwrap();

    let cfg = gpu_sim::GpuConfig::fermi_gf100();
    let desc = cfg.arch_desc();
    let acfg = AnalysisConfig {
        line_size: desc.line_size,
        warp_size: desc.sm.warp_size,
        ..AnalysisConfig::default()
    };
    let kcfg = latency_check::Cfg::build(&kernel);
    let preds = latency_check::memlint::predict(&kernel, &kcfg, &acfg);
    let load = preds.iter().find(|p| !p.is_store).expect("one load");
    assert_eq!(load.lines_per_warp, Some(32), "static prediction");

    let mut gpu = Gpu::new(cfg);
    gpu.set_tracing(true);
    let threads = 128u64;
    let buf = gpu.alloc(threads * 128, desc.line_size);
    gpu.launch(kernel, Launch::new(2, 64, vec![buf.get()]))
        .unwrap();
    gpu.run(10_000_000).unwrap();
    let (_, loads) = gpu.take_traces();
    assert!(!loads.is_empty(), "the canary load never completed");
    for r in &loads {
        assert_eq!(r.lines, 32, "dynamic coalescer disagrees at pc {}", r.pc);
    }
}

#[test]
fn sector_canary_distinguishes_lines_from_sectors() {
    // One load, 32-byte lane stride: a full warp touches 8 distinct
    // 128-byte lines but 32 distinct 32-byte sectors. On a sectored
    // machine the analyzer's granule-level prediction (32) must equal the
    // simulator's dynamic transaction count record-for-record, while the
    // line-level prediction (8) must NOT — proving both sides really count
    // sectors, not lines.
    let mut b = KernelBuilder::new("sector_canary");
    let base = b.param(0);
    let t = b.special(Special::GlobalTid);
    let off = b.mul(t, 32i64);
    let a = b.add(base, off);
    b.ld_global(Width::W4, a, 0);
    b.exit();
    let kernel = b.build().unwrap();

    let mut cfg = ArchPreset::VoltaGv100.config();
    cfg.num_sms = 2;
    cfg.num_partitions = 2;
    let desc = cfg.arch_desc();
    assert_eq!(desc.transaction_granule(), 32, "GV100 is 32B-sectored");
    let kcfg = latency_check::Cfg::build(&kernel);
    let at = |granule: u64| {
        let acfg = AnalysisConfig {
            line_size: granule,
            warp_size: desc.sm.warp_size,
            ..AnalysisConfig::default()
        };
        let preds = latency_check::memlint::predict(&kernel, &kcfg, &acfg);
        preds
            .iter()
            .find(|p| !p.is_store)
            .expect("one load")
            .lines_per_warp
    };
    assert_eq!(at(desc.line_size), Some(8), "line-level prediction");
    assert_eq!(
        at(desc.transaction_granule()),
        Some(32),
        "sector-level prediction"
    );

    let mut gpu = Gpu::new(cfg);
    gpu.set_tracing(true);
    let threads = 128u64;
    let buf = gpu.alloc(threads * 32, desc.line_size);
    gpu.launch(kernel, Launch::new(2, 64, vec![buf.get()]))
        .unwrap();
    gpu.run(10_000_000).unwrap();
    let (_, loads) = gpu.take_traces();
    assert!(!loads.is_empty(), "the canary load never completed");
    for r in &loads {
        assert_eq!(r.lines, 32, "dynamic sector traffic at pc {}", r.pc);
        assert_ne!(r.lines, 8, "sectored machine must not coalesce at lines");
    }
}

#[test]
fn sectored_preset_diverges_from_unsectored_twin() {
    // The same machine with sectoring stripped (one sector per line) must
    // behave *differently* on sector-grained traffic: the sectored machine
    // moves 32-byte transactions where its twin moves 128-byte lines. A
    // pinned, deliberate divergence — if these ever agree, sectoring has
    // silently stopped reaching the timing model.
    let run = |sectored: bool| {
        let mut desc = ArchPreset::VoltaGv100.desc();
        if !sectored {
            for level in &mut desc.levels {
                if let Some(g) = &mut level.geom {
                    g.sector_bytes = None;
                }
            }
        }
        let mut cfg = gpu_sim::GpuConfig::from_arch(&desc).expect("twin stays valid");
        cfg.num_sms = 2;
        cfg.num_partitions = 2;

        let mut b = KernelBuilder::new("twin_canary");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        let off = b.mul(t, 32i64);
        let a = b.add(base, off);
        b.ld_global(Width::W4, a, 0);
        b.exit();
        let kernel = b.build().unwrap();

        let mut gpu = Gpu::new(cfg);
        gpu.set_tracing(true);
        let buf = gpu.alloc(128 * 32, 128);
        gpu.launch(kernel, Launch::new(2, 64, vec![buf.get()]))
            .unwrap();
        let summary = gpu.run(10_000_000).unwrap();
        let (_, loads) = gpu.take_traces();
        let max_txn = loads.iter().map(|r| r.lines).max().unwrap_or(0);
        (summary.cycles, summary.content_hash, max_txn)
    };
    let (sec_cycles, sec_hash, sec_txn) = run(true);
    let (line_cycles, line_hash, line_txn) = run(false);
    assert_eq!(sec_txn, 32, "sectored twin coalesces at the sector");
    assert_eq!(line_txn, 8, "unsectored twin coalesces at the line");
    assert_ne!(sec_hash, line_hash, "twins must not produce identical runs");
    assert_ne!(
        sec_cycles, line_cycles,
        "sectoring must change simulated time on sector-grained traffic"
    );
}

#[test]
fn race_canary_fires_shared_race_lint() {
    // Thread t writes s[t] and s[t+1] with no barrier: a W/W race the
    // analyzer must report through the public entry point.
    let mut b = KernelBuilder::new("racy_canary");
    b.alloc_shared(512);
    let t = b.special(Special::TidX);
    let a0 = b.shl(t, 2);
    b.st(Space::Shared, Width::W4, a0, 0, 1i64);
    b.st(Space::Shared, Width::W4, a0, 4, 2i64);
    b.exit();
    let kernel = b.build().unwrap();
    let report = analyze(&kernel, &AnalysisConfig::default());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.pass == Pass::SharedRace),
        "shared-race lint did not fire:\n{}",
        report.to_human()
    );
}

#[test]
fn divergent_barrier_canary_fires_barrier_lint() {
    let mut b = KernelBuilder::new("divbar_canary");
    let t = b.special(Special::TidX);
    let p = b.setp(CmpOp::Lt, t, 16i64);
    b.if_then(p, |b| b.bar());
    b.exit();
    let kernel = b.build().unwrap();
    let report = analyze(&kernel, &AnalysisConfig::default());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.pass == Pass::BarrierDivergence),
        "barrier-divergence lint did not fire:\n{}",
        report.to_human()
    );
}

#[test]
fn builtin_kernels_stay_lint_clean() {
    // The `--deny all` CI gate relies on the builtin set being free of
    // error- and warning-severity findings; pin that here so a lint
    // regression is caught by `cargo test` too.
    for kernel in latency_bench::builtin_kernels() {
        let report = analyze(&kernel, &AnalysisConfig::default());
        assert_eq!(
            report.count(latency_check::Severity::Error)
                + report.count(latency_check::Severity::Warning),
            0,
            "builtin kernel regressed:\n{}",
            report.to_human()
        );
    }
}
