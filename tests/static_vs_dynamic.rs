//! Differential validation of the static analyzer against the simulator.
//!
//! Three layers:
//!
//! 1. **The matrix**: every Table-I preset x every E4 workload runs
//!    instrumented, and `latency_bench::validate_run` checks the static
//!    transaction predictions (contract A) and the feasible-level claim
//!    (contract B) against the traces. `validate_floor` checks each
//!    preset's analytic unloaded latencies against pointer-chase
//!    measurements (contract C).
//! 2. **Exactness canary**: a deliberately fully-strided kernel runs
//!    dynamically and its predicted per-warp line count (32) must equal the
//!    simulator's coalescer output record-for-record — an off-by-anything
//!    regression in either side fails loudly.
//! 3. **Lint canaries**: seeded-bug kernels (a shared-memory race, a
//!    barrier under divergence) prove each new lint actually fires through
//!    the public `analyze` entry point, so the `--deny` gate has teeth.

use gpu_isa::{CmpOp, KernelBuilder, Launch, Space, Special, Width};
use gpu_sim::Gpu;
use latency_bench::{validate_floor, validate_run, Workload};
use latency_check::{analyze, AnalysisConfig, Pass};
use latency_core::ArchPreset;

/// Runs the full workload sweep for one preset and asserts every cell
/// validates.
fn sweep_preset(preset: ArchPreset) {
    let mut compared = 0usize;
    let mut exact = 0usize;
    for workload in Workload::ALL {
        let report = validate_run(preset, workload).expect("instrumented run failed");
        assert!(
            report.ok(),
            "static/dynamic mismatch:\n{}",
            report.to_human()
        );
        assert!(
            report.requests > 0,
            "cell traced nothing:\n{}",
            report.to_human()
        );
        compared += report.loads.len();
        exact += report
            .loads
            .iter()
            .filter(|l| l.max_observed_lines as usize == l.predicted_lines)
            .count();
    }
    // Some kernels (e.g. matmul's divided indices) are legitimately beyond
    // the affine domain, and every builtin body is bounds-guarded (so the
    // statically-exact contract is exercised by the strided canary, not
    // here) — but the sweep as a whole must compare real loads and some
    // predictions must be tight, not just upper bounds.
    assert!(
        compared >= 8 && exact >= 1,
        "sweep compared too little: {compared} loads, {exact} tight"
    );
}

#[test]
fn matrix_tesla_gt200() {
    sweep_preset(ArchPreset::TeslaGt200);
}

#[test]
fn matrix_fermi_gf106() {
    sweep_preset(ArchPreset::FermiGf106);
}

#[test]
fn matrix_kepler_gk104() {
    sweep_preset(ArchPreset::KeplerGk104);
}

#[test]
fn matrix_maxwell_gm107() {
    sweep_preset(ArchPreset::MaxwellGm107);
}

#[test]
fn floors_lower_bound_measurements() {
    for preset in ArchPreset::TABLE1 {
        let report = validate_floor(preset).expect("chase measurement failed");
        assert!(report.ok(), "floor violated:\n{}", report.to_human());
        assert!(
            !report.checks.is_empty(),
            "no level was measured for {preset:?}"
        );
    }
}

#[test]
fn strided_canary_matches_dynamic_coalescer_exactly() {
    // One load, 128-byte lane stride: every lane of a full warp touches its
    // own line, so the analyzer must predict exactly 32 transactions and
    // the simulator must produce exactly 32 for every record.
    let mut b = KernelBuilder::new("strided_canary");
    let base = b.param(0);
    let t = b.special(Special::GlobalTid);
    let off = b.mul(t, 128i64);
    let a = b.add(base, off);
    b.ld_global(Width::W4, a, 0);
    b.exit();
    let kernel = b.build().unwrap();

    let cfg = gpu_sim::GpuConfig::fermi_gf100();
    let desc = cfg.arch_desc();
    let acfg = AnalysisConfig {
        line_size: desc.line_size,
        warp_size: desc.sm.warp_size,
        ..AnalysisConfig::default()
    };
    let kcfg = latency_check::Cfg::build(&kernel);
    let preds = latency_check::memlint::predict(&kernel, &kcfg, &acfg);
    let load = preds.iter().find(|p| !p.is_store).expect("one load");
    assert_eq!(load.lines_per_warp, Some(32), "static prediction");

    let mut gpu = Gpu::new(cfg);
    gpu.set_tracing(true);
    let threads = 128u64;
    let buf = gpu.alloc(threads * 128, desc.line_size);
    gpu.launch(kernel, Launch::new(2, 64, vec![buf.get()]))
        .unwrap();
    gpu.run(10_000_000).unwrap();
    let (_, loads) = gpu.take_traces();
    assert!(!loads.is_empty(), "the canary load never completed");
    for r in &loads {
        assert_eq!(r.lines, 32, "dynamic coalescer disagrees at pc {}", r.pc);
    }
}

#[test]
fn race_canary_fires_shared_race_lint() {
    // Thread t writes s[t] and s[t+1] with no barrier: a W/W race the
    // analyzer must report through the public entry point.
    let mut b = KernelBuilder::new("racy_canary");
    b.alloc_shared(512);
    let t = b.special(Special::TidX);
    let a0 = b.shl(t, 2);
    b.st(Space::Shared, Width::W4, a0, 0, 1i64);
    b.st(Space::Shared, Width::W4, a0, 4, 2i64);
    b.exit();
    let kernel = b.build().unwrap();
    let report = analyze(&kernel, &AnalysisConfig::default());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.pass == Pass::SharedRace),
        "shared-race lint did not fire:\n{}",
        report.to_human()
    );
}

#[test]
fn divergent_barrier_canary_fires_barrier_lint() {
    let mut b = KernelBuilder::new("divbar_canary");
    let t = b.special(Special::TidX);
    let p = b.setp(CmpOp::Lt, t, 16i64);
    b.if_then(p, |b| b.bar());
    b.exit();
    let kernel = b.build().unwrap();
    let report = analyze(&kernel, &AnalysisConfig::default());
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.pass == Pass::BarrierDivergence),
        "barrier-divergence lint did not fire:\n{}",
        report.to_human()
    );
}

#[test]
fn builtin_kernels_stay_lint_clean() {
    // The `--deny all` CI gate relies on the builtin set being free of
    // error- and warning-severity findings; pin that here so a lint
    // regression is caught by `cargo test` too.
    for kernel in latency_bench::builtin_kernels() {
        let report = analyze(&kernel, &AnalysisConfig::default());
        assert_eq!(
            report.count(latency_check::Severity::Error)
                + report.count(latency_check::Severity::Warning),
            0,
            "builtin kernel regressed:\n{}",
            report.to_human()
        );
    }
}
