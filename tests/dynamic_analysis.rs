//! End-to-end dynamic-latency analysis (paper §III) on a scaled-down BFS:
//! the full chain graph → kernels → timing simulation → request timelines →
//! Figure-1 breakdown and Figure-2 exposure, with the paper's qualitative
//! observations asserted as invariants.

use gpu_mem::Stamp;
use gpu_sim::{Gpu, GpuConfig};
use gpu_workloads::{bfs, graph::Graph};
use latency_core::{components_of, Component, ExposureAnalysis, LatencyBreakdown};

fn small_gf100() -> GpuConfig {
    let mut cfg = GpuConfig::fermi_gf100();
    cfg.num_sms = 4;
    cfg.num_partitions = 2;
    cfg
}

struct Traced {
    requests: Vec<gpu_sim::CompletedRequest>,
    loads: Vec<gpu_sim::LoadInstrRecord>,
}

fn run_traced_bfs(nodes: u32) -> Traced {
    let graph = Graph::uniform_random(nodes, 8, 77);
    let mut gpu = Gpu::new(small_gf100());
    let dev = bfs::upload_graph_mask(&mut gpu, &graph);
    gpu.set_tracing(true);
    bfs::run_bfs_mask(&mut gpu, &dev, 0, 128).expect("BFS completes");
    assert_eq!(
        bfs::read_costs(&gpu, &dev),
        graph.bfs_levels(0),
        "instrumentation must not change functional results"
    );
    let (requests, loads) = gpu.take_traces();
    Traced { requests, loads }
}

#[test]
fn timelines_are_complete_monotone_and_partitioned() {
    let t = run_traced_bfs(2048);
    assert!(t.requests.len() > 1000, "expected substantial traffic");
    for r in &t.requests {
        assert!(r.timeline.is_complete());
        let mut last = None;
        for s in Stamp::ALL {
            if let Some(c) = r.timeline.get(s) {
                if let Some(prev) = last {
                    assert!(c >= prev, "stamp {s:?} before its predecessor");
                }
                last = Some(c);
            }
        }
        // Component decomposition partitions the total exactly.
        let parts = components_of(&r.timeline).expect("complete timeline");
        assert_eq!(
            parts.iter().sum::<u64>(),
            r.timeline.total_latency().unwrap(),
            "components must sum to total latency"
        );
    }
}

#[test]
fn l1_hit_buckets_are_pure_sm_base() {
    // The paper's Figure-1 observation: the lowest-latency buckets are
    // entirely SM Base time (those requests were L1 hits).
    let t = run_traced_bfs(2048);
    let cfg = small_gf100();
    let l1_hit = cfg.unloaded_l1_hit().unwrap();
    let hits: Vec<_> = t
        .requests
        .iter()
        .filter(|r| r.timeline.total_latency().unwrap() <= l1_hit + 2)
        .collect();
    assert!(!hits.is_empty(), "some L1 hits expected");
    for r in hits {
        let parts = components_of(&r.timeline).unwrap();
        let total: u64 = parts.iter().sum();
        assert_eq!(
            parts[Component::SmBase.index()],
            total,
            "an L1 hit's lifetime is pure SM Base"
        );
    }
}

#[test]
fn long_latency_buckets_show_queueing_and_arbitration() {
    let t = run_traced_bfs(4096);
    let (breakdown, _) = LatencyBreakdown::from_requests_clipped(&t.requests, 16, 0.995);
    // In the top third of the latency range, queueing (L1toICNT) plus
    // arbitration (DRAM QtoSch) must contribute substantially more than in
    // the bottom third — the paper's central dynamic-latency finding.
    let n = breakdown.buckets().len();
    let slice_share = |range: std::ops::Range<usize>| {
        let mut q = 0.0;
        let mut buckets = 0.0;
        for i in range {
            if breakdown.count(i) == 0 {
                continue;
            }
            let p = breakdown.percentages(i);
            q += p[Component::L1ToIcnt.index()] + p[Component::DramQToSch.index()];
            buckets += 1.0;
        }
        if buckets == 0.0 {
            0.0
        } else {
            q / buckets
        }
    };
    let low = slice_share(0..n / 3);
    let high = slice_share(2 * n / 3..n);
    assert!(
        high > low,
        "queueing+arbitration share should grow with latency: low {low:.1}% high {high:.1}%"
    );
}

#[test]
fn exposure_matches_paper_claims() {
    let t = run_traced_bfs(4096);
    let analysis = ExposureAnalysis::from_loads(&t.loads, 16);
    assert!(analysis.total_loads() > 500);
    // Paper: "the fraction of latency that is exposed is significant,
    // sometimes close to 100% and more than 50% for most of the global
    // memory load instructions".
    let overall = analysis.overall_exposed_fraction();
    assert!(
        overall > 0.5,
        "BFS should expose most of its load latency, got {overall:.2}"
    );
    assert!(
        analysis.buckets_exceeding(0.5) > 0.5,
        "most loads should sit in buckets with >50% exposure"
    );
    // Sanity bounds.
    for i in 0..analysis.buckets().len() {
        let f = analysis.exposed_fraction(i);
        assert!((0.0..=1.0).contains(&f));
    }
}

#[test]
fn tracing_does_not_change_timing() {
    let graph = Graph::uniform_random(1024, 8, 3);
    let run = |tracing: bool| {
        let mut gpu = Gpu::new(small_gf100());
        let dev = bfs::upload_graph_mask(&mut gpu, &graph);
        gpu.set_tracing(tracing);
        bfs::run_bfs_mask(&mut gpu, &dev, 0, 128).unwrap();
        gpu.now().get()
    };
    assert_eq!(
        run(false),
        run(true),
        "observer effect in the instrumentation"
    );
}
