//! Multi-launch behavior of one `Gpu` instance: sequential kernels sharing
//! device memory, cache warm-up across launches, statistics accumulation,
//! and trace persistence — the substrate BFS's launch-per-level driver
//! relies on.

use gpu_isa::{CmpOp, Kernel, KernelBuilder, Launch, Special, Width};
use gpu_sim::{Gpu, GpuConfig};

fn small() -> GpuConfig {
    let mut cfg = GpuConfig::fermi_gf100();
    cfg.num_sms = 2;
    cfg.num_partitions = 2;
    cfg
}

fn incr_kernel() -> Kernel {
    let mut b = KernelBuilder::new("incr");
    let buf = b.param(0);
    let n = b.param(1);
    let gtid = b.special(Special::GlobalTid);
    let p = b.setp(CmpOp::Lt, gtid, n);
    b.if_then(p, |b| {
        let off = b.shl(gtid, 2);
        let addr = b.add(buf, off);
        let v = b.ld_global(Width::W4, addr, 0);
        let v2 = b.add(v, 1);
        b.st_global(Width::W4, addr, 0, v2);
    });
    b.exit();
    b.build().unwrap()
}

#[test]
fn sequential_launches_compose() {
    let mut gpu = Gpu::new(small());
    let n = 256u64;
    let buf = gpu.alloc(4 * n, 128);
    for round in 1..=5u32 {
        gpu.launch(incr_kernel(), Launch::new(4, 64, vec![buf.get(), n]))
            .unwrap();
        gpu.run(10_000_000).unwrap();
        for i in 0..n {
            assert_eq!(gpu.device().read_u32(buf + 4 * i), round, "round {round}");
        }
    }
}

#[test]
fn cycles_and_stats_accumulate_monotonically() {
    let mut gpu = Gpu::new(small());
    let n = 128u64;
    let buf = gpu.alloc(4 * n, 128);
    let mut last_cycles = 0;
    let mut last_instrs = 0;
    for _ in 0..3 {
        gpu.launch(incr_kernel(), Launch::new(2, 64, vec![buf.get(), n]))
            .unwrap();
        let s = gpu.run(10_000_000).unwrap();
        assert!(s.cycles > last_cycles);
        assert!(s.instructions > last_instrs);
        last_cycles = s.cycles;
        last_instrs = s.instructions;
    }
}

fn copy_kernel() -> Kernel {
    // Read-only on `src` (stores go to `dst`), so the write-evict store
    // policy cannot invalidate the lines being measured.
    let mut b = KernelBuilder::new("copy");
    let src = b.param(0);
    let dst = b.param(1);
    let n = b.param(2);
    let gtid = b.special(Special::GlobalTid);
    let p = b.setp(CmpOp::Lt, gtid, n);
    b.if_then(p, |b| {
        let off = b.shl(gtid, 2);
        let sa = b.add(src, off);
        let da = b.add(dst, off);
        let v = b.ld_global(Width::W4, sa, 0);
        b.st_global(Width::W4, da, 0, v);
    });
    b.exit();
    b.build().unwrap()
}

#[test]
fn caches_stay_warm_across_launches() {
    // Second launch re-reads the same (read-only) lines: its L1 hit count
    // must rise (caches persist across launches, as on hardware).
    let mut gpu = Gpu::new(small());
    let n = 64u64;
    let src = gpu.alloc(4 * n, 128);
    let dst = gpu.alloc(4 * n, 128);
    gpu.launch(
        copy_kernel(),
        Launch::new(1, 64, vec![src.get(), dst.get(), n]),
    )
    .unwrap();
    let first = gpu.run(10_000_000).unwrap();
    gpu.launch(
        copy_kernel(),
        Launch::new(1, 64, vec![src.get(), dst.get(), n]),
    )
    .unwrap();
    let second = gpu.run(10_000_000).unwrap();
    let hits_second_launch = second.l1_hits - first.l1_hits;
    assert!(
        hits_second_launch > 0,
        "expected warm-cache hits on relaunch: {second:?}"
    );
}

#[test]
fn traces_accumulate_until_taken() {
    let mut gpu = Gpu::new(small());
    let n = 128u64;
    let buf = gpu.alloc(4 * n, 128);
    gpu.set_tracing(true);
    gpu.launch(incr_kernel(), Launch::new(2, 64, vec![buf.get(), n]))
        .unwrap();
    gpu.run(10_000_000).unwrap();
    gpu.launch(incr_kernel(), Launch::new(2, 64, vec![buf.get(), n]))
        .unwrap();
    gpu.run(10_000_000).unwrap();
    let (reqs, loads) = gpu.take_traces();
    assert!(!reqs.is_empty() && !loads.is_empty());
    // Taking drains the sink.
    let (reqs2, loads2) = gpu.take_traces();
    assert!(reqs2.is_empty() && loads2.is_empty());
}

#[test]
fn host_writes_between_launches_are_visible() {
    let mut gpu = Gpu::new(small());
    let n = 64u64;
    let buf = gpu.alloc(4 * n, 128);
    gpu.launch(incr_kernel(), Launch::new(1, 64, vec![buf.get(), n]))
        .unwrap();
    gpu.run(10_000_000).unwrap();
    // Host rewrites an element; the next launch must see it (functional
    // memory is shared — caches are tag-only).
    gpu.device_mut().write_u32(buf, 100);
    gpu.launch(incr_kernel(), Launch::new(1, 64, vec![buf.get(), n]))
        .unwrap();
    gpu.run(10_000_000).unwrap();
    assert_eq!(gpu.device().read_u32(buf), 101);
    assert_eq!(gpu.device().read_u32(buf + 4), 2);
}
