//! Differential determinism suite for the parallel tick executor.
//!
//! The contract under test: a GPU ticked with any number of tick threads
//! produces **bit-identical** results to the serial cycle loop — same
//! `RunSummary` (including `content_hash`), same trace-event stream in the
//! same order, same latency-trace records, same counter samples, and the
//! same sanitizer findings. Parallelism may only change wall-clock time
//! (`metrics.host_nanos`, normalised out below), never simulation output.
//!
//! The suite also proves its own teeth: a deliberately shuffled merge order
//! (`Gpu::debug_set_reverse_merge`) must produce an observably different
//! event stream, so a future regression in the index-ordered merge cannot
//! pass silently.

use gpu_sim::{Gpu, GpuConfig, TraceEvent};
use gpu_workloads::{bfs, graph::Graph, histogram, reduce, spmv, vecadd};
use latency_core::ArchPreset;

/// Thread counts every matrix cell runs at: serial baseline, the smallest
/// parallel pool, a wider pool, and whatever this host would use by default.
fn thread_counts() -> Vec<usize> {
    let host = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 2, 4, host.max(2)];
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Scales a preset down so six-generation matrices stay fast, keeping
/// enough SMs and partitions that the parallel stages have real fan-out.
fn small_cfg(preset: ArchPreset) -> GpuConfig {
    let mut cfg = preset.config();
    cfg.num_sms = cfg.num_sms.min(4);
    cfg.num_partitions = cfg.num_partitions.min(2);
    cfg
}

/// Everything observable a run produced, with the single legitimately
/// nondeterministic field (`metrics.host_nanos`) normalised away.
#[derive(Debug, PartialEq)]
struct Artifacts {
    summary: gpu_sim::RunSummary,
    events: Vec<TraceEvent>,
    samples: Vec<gpu_sim::CounterSample>,
    dropped_events: u64,
    /// `CompletedRequest`/`LoadInstrRecord` don't implement `PartialEq`;
    /// their `Debug` form captures every field.
    requests: String,
    loads: String,
    sanitizer_total: u64,
    violations: Vec<gpu_sim::Violation>,
}

/// Builds a traced, sanitizing GPU on `cfg`, runs `drive`, and collects
/// every observable artifact.
fn run_collecting(
    mut cfg: GpuConfig,
    tick_threads: usize,
    reverse_merge: bool,
    drive: impl FnOnce(&mut Gpu),
) -> Artifacts {
    cfg.trace.enabled = true;
    let mut gpu = Gpu::new(cfg);
    gpu.set_tick_threads(tick_threads);
    gpu.debug_set_reverse_merge(reverse_merge);
    gpu.set_tracing(true);
    drive(&mut gpu);
    let mut summary = gpu.summary();
    summary.metrics.host_nanos = 0;
    let trace = gpu.take_trace();
    let (requests, loads) = gpu.take_traces();
    Artifacts {
        summary,
        events: trace.events,
        samples: trace.samples,
        dropped_events: trace.dropped_events,
        requests: format!("{requests:?}"),
        loads: format!("{loads:?}"),
        sanitizer_total: gpu.sanitizer().total(),
        violations: gpu.sanitizer().violations().to_vec(),
    }
}

/// Runs the same workload serially and at every parallel thread count,
/// asserting bit-identical artifacts against the serial baseline.
fn assert_thread_invariant(label: &str, cfg: GpuConfig, drive: impl Fn(&mut Gpu) + Copy) {
    let baseline = run_collecting(cfg.clone(), 1, false, drive);
    assert!(
        !baseline.events.is_empty(),
        "{label}: baseline recorded no events — the comparison would be vacuous"
    );
    for threads in thread_counts().into_iter().skip(1) {
        let parallel = run_collecting(cfg.clone(), threads, false, drive);
        assert_eq!(
            baseline.summary.content_hash, parallel.summary.content_hash,
            "{label}: content hash diverged at {threads} tick threads"
        );
        assert_eq!(
            baseline, parallel,
            "{label}: artifacts diverged at {threads} tick threads"
        );
    }
}

/// Mask BFS — the paper's exemplar workload — drives every stage of the
/// parallel executor hard: multi-SM issue, crossbar traffic in both
/// directions, partition-side DRAM activity.
fn drive_bfs(gpu: &mut Gpu) {
    let graph = Graph::uniform_random(192, 6, 11);
    let reference = graph.bfs_levels(0);
    let dev = bfs::upload_graph_mask(gpu, &graph);
    bfs::run_bfs_mask(gpu, &dev, 0, 64).expect("bfs runs");
    assert_eq!(bfs::read_costs(gpu, &dev), reference, "bfs result wrong");
}

#[test]
fn bfs_is_tick_thread_invariant_on_every_generation() {
    for preset in ArchPreset::ALL {
        assert_thread_invariant(preset.name(), small_cfg(preset), drive_bfs);
    }
}

#[test]
fn vecadd_is_tick_thread_invariant_on_every_generation() {
    for preset in ArchPreset::ALL {
        assert_thread_invariant(preset.name(), small_cfg(preset), |gpu| {
            let dev = vecadd::setup(gpu, 700);
            vecadd::run(gpu, &dev, 128).expect("vecadd runs");
            vecadd::verify(gpu, &dev);
        });
    }
}

/// Atomics are the sharpest same-cycle cross-SM hazard: every deferred
/// `AtomAdd` must replay in exactly the serial order or the histogram
/// counts (and every downstream timing decision) shift.
#[test]
fn atomic_heavy_workloads_are_tick_thread_invariant() {
    for preset in [ArchPreset::FermiGf100, ArchPreset::MaxwellGm107] {
        assert_thread_invariant(preset.name(), small_cfg(preset), |gpu| {
            let dev = histogram::setup(gpu, 4096, 32);
            histogram::run(gpu, &dev, 128).expect("histogram runs");
            histogram::verify(gpu, &dev);
        });
        assert_thread_invariant(preset.name(), small_cfg(preset), |gpu| {
            let dev = reduce::setup(gpu, 4096);
            reduce::run(gpu, &dev, 128).expect("reduce runs");
            assert_eq!(gpu.device().read_u32(dev.output), reduce::reference(4096));
        });
    }
}

#[test]
fn spmv_is_tick_thread_invariant() {
    let m = spmv::CsrMatrix::random(256, 256, 6, 13);
    for preset in [ArchPreset::TeslaGt200, ArchPreset::KeplerGk104] {
        assert_thread_invariant(preset.name(), small_cfg(preset), |gpu| {
            let dev = spmv::setup(gpu, &m);
            spmv::run(gpu, &dev, 64).expect("spmv runs");
            spmv::verify(gpu, &dev, &m);
        });
    }
}

/// The suite must be able to catch a wrong merge: reversing the
/// component-index merge order (via the debug hook) has to produce a
/// different event stream, or the assertions above prove nothing.
#[test]
fn shuffled_merge_is_detected() {
    let cfg = small_cfg(ArchPreset::FermiGf100);
    let baseline = run_collecting(cfg.clone(), 1, false, drive_bfs);
    let reversed = run_collecting(cfg.clone(), 2, true, drive_bfs);
    assert_ne!(
        baseline.events, reversed.events,
        "reversed merge order produced the serial event stream — the \
         determinism assertions have no teeth"
    );
    // Only *observation order* may shuffle: totals, timing, and the
    // content hash still match the serial run.
    assert_eq!(baseline.summary, reversed.summary);
    assert_eq!(baseline.events.len(), reversed.events.len());
    assert_eq!(baseline.sanitizer_total, reversed.sanitizer_total);
    // And switching the hook off restores bit-identity.
    let fixed = run_collecting(cfg, 2, false, drive_bfs);
    assert_eq!(baseline, fixed);
}

/// Changing the tick-thread count between launches of one chained run must
/// not change results: first kernel serial, second on a pool, versus both
/// serial. The chained `content_hash` seals the equivalence.
#[test]
fn switching_thread_count_between_launches_is_invisible() {
    let cfg = small_cfg(ArchPreset::KeplerGk104);
    let drive = |gpu: &mut Gpu, switch_to: Option<usize>| {
        let dev = vecadd::setup(gpu, 700);
        vecadd::run(gpu, &dev, 128).expect("first vecadd runs");
        if let Some(threads) = switch_to {
            gpu.set_tick_threads(threads);
        }
        let dev2 = vecadd::setup(gpu, 900);
        vecadd::run(gpu, &dev2, 128).expect("second vecadd runs");
        vecadd::verify(gpu, &dev);
        vecadd::verify(gpu, &dev2);
    };
    let baseline = run_collecting(cfg.clone(), 1, false, |gpu| drive(gpu, None));
    let switched = run_collecting(cfg, 1, false, |gpu| drive(gpu, Some(4)));
    assert_eq!(baseline, switched);
}
