//! The "unknown preset" contract of the command-line binaries: every bin
//! that accepts a preset must reject a bogus name with exit code 2 and an
//! error that enumerates every valid token — one source of truth
//! ([`ArchPreset::valid_tokens`]), so adding a generation updates every
//! binary's help at once.

use std::process::Command;

use latency_core::ArchPreset;

/// Runs one bin with `args` and returns (exit code, stderr).
fn run(bin: &str, args: &[&str]) -> (i32, String) {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn assert_enumerates_presets(bin: &str, args: &[&str]) {
    let (code, stderr) = run(bin, args);
    assert_eq!(code, 2, "{bin} {args:?} should exit 2, stderr:\n{stderr}");
    for preset in ArchPreset::ALL {
        assert!(
            stderr.contains(preset.token()),
            "{bin} {args:?} error does not list {:?}:\n{stderr}",
            preset.token()
        );
    }
}

#[test]
fn trace_rejects_unknown_preset_and_lists_tokens() {
    assert_enumerates_presets(env!("CARGO_BIN_EXE_trace"), &["--preset", "h100"]);
}

#[test]
fn table1_rejects_unknown_preset_and_lists_tokens() {
    assert_enumerates_presets(env!("CARGO_BIN_EXE_table1"), &["--preset", "h100"]);
}

#[test]
fn sweep_rejects_unknown_preset_and_lists_tokens() {
    // The sweep bin takes the preset as a bare positional token; an
    // unrecognized one falls through to the unknown-argument error.
    assert_enumerates_presets(env!("CARGO_BIN_EXE_sweep"), &["h100"]);
}

#[test]
fn tick_rejects_unknown_preset_and_lists_tokens() {
    assert_enumerates_presets(env!("CARGO_BIN_EXE_tick"), &["h100"]);
}

#[test]
fn validate_rejects_unknown_preset_and_lists_tokens() {
    assert_enumerates_presets(env!("CARGO_BIN_EXE_validate"), &["--preset", "h100"]);
}

#[test]
fn every_valid_token_parses_in_every_spelling() {
    // The tokens the errors advertise must actually round-trip through the
    // same parser the bins use, in any case.
    for preset in ArchPreset::ALL {
        let token = preset.token();
        assert_eq!(ArchPreset::parse(token), Some(preset), "{token}");
        assert_eq!(
            ArchPreset::parse(&token.to_ascii_uppercase()),
            Some(preset),
            "{token}"
        );
    }
}
