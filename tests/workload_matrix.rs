//! Cross-crate correctness matrix: every workload runs and verifies on
//! every modeled GPU generation (scaled down for test time), proving the
//! kernels are architecture-independent and the per-generation pipelines
//! are all functionally sound.

use gpu_sim::Gpu;
use gpu_workloads::{bfs, graph::Graph, matmul, reduce, spmv, vecadd};
use latency_core::ArchPreset;

fn small(preset: ArchPreset) -> Gpu {
    let mut cfg = preset.config();
    cfg.num_sms = cfg.num_sms.min(4);
    cfg.num_partitions = cfg.num_partitions.min(2);
    Gpu::new(cfg)
}

fn all_presets() -> [ArchPreset; 8] {
    ArchPreset::ALL
}

#[test]
fn vecadd_on_every_generation() {
    for preset in all_presets() {
        let mut gpu = small(preset);
        let dev = vecadd::setup(&mut gpu, 700);
        vecadd::run(&mut gpu, &dev, 128).unwrap_or_else(|e| panic!("{}: {e}", preset.name()));
        vecadd::verify(&gpu, &dev);
    }
}

#[test]
fn frontier_bfs_on_every_generation() {
    let graph = Graph::uniform_random(256, 6, 5);
    let reference = graph.bfs_levels(0);
    for preset in all_presets() {
        let mut gpu = small(preset);
        let dev = bfs::upload_graph(&mut gpu, &graph);
        bfs::run_bfs(&mut gpu, &dev, 0, 64).unwrap_or_else(|e| panic!("{}: {e}", preset.name()));
        assert_eq!(bfs::read_levels(&gpu, &dev), reference, "{}", preset.name());
    }
}

#[test]
fn mask_bfs_on_every_generation() {
    let graph = Graph::skewed_random(256, 6, 9);
    let reference = graph.bfs_levels(0);
    for preset in all_presets() {
        let mut gpu = small(preset);
        let dev = bfs::upload_graph_mask(&mut gpu, &graph);
        bfs::run_bfs_mask(&mut gpu, &dev, 0, 64)
            .unwrap_or_else(|e| panic!("{}: {e}", preset.name()));
        assert_eq!(bfs::read_costs(&gpu, &dev), reference, "{}", preset.name());
    }
}

#[test]
fn matmul_on_fermi_and_maxwell() {
    for preset in [ArchPreset::FermiGf100, ArchPreset::MaxwellGm107] {
        let mut gpu = small(preset);
        let dev = matmul::setup(&mut gpu, 32);
        matmul::run(&mut gpu, &dev).unwrap_or_else(|e| panic!("{}: {e}", preset.name()));
        matmul::verify(&gpu, &dev);
    }
}

#[test]
fn reduce_on_tesla_and_kepler() {
    for preset in [ArchPreset::TeslaGt200, ArchPreset::KeplerGk104] {
        let mut gpu = small(preset);
        let dev = reduce::setup(&mut gpu, 2048);
        reduce::run(&mut gpu, &dev, 128).unwrap_or_else(|e| panic!("{}: {e}", preset.name()));
        assert_eq!(
            gpu.device().read_u32(dev.output),
            reduce::reference(2048),
            "{}",
            preset.name()
        );
    }
}

#[test]
fn spmv_on_fermi_and_kepler() {
    let m = spmv::CsrMatrix::random(300, 300, 4, 17);
    for preset in [ArchPreset::FermiGf106, ArchPreset::KeplerGk104] {
        let mut gpu = small(preset);
        let dev = spmv::setup(&mut gpu, &m);
        spmv::run(&mut gpu, &dev, 64).unwrap_or_else(|e| panic!("{}: {e}", preset.name()));
        spmv::verify(&gpu, &dev, &m);
    }
}

#[test]
fn grid_graph_bfs_has_expected_depth() {
    // Deterministic topology: a 16x16 grid BFS from the corner needs
    // exactly 30 levels.
    let graph = Graph::grid(16, 16);
    let mut gpu = small(ArchPreset::FermiGf100);
    let dev = bfs::upload_graph(&mut gpu, &graph);
    let run = bfs::run_bfs(&mut gpu, &dev, 0, 64).unwrap();
    assert_eq!(bfs::read_levels(&gpu, &dev), graph.bfs_levels(0));
    assert!(run.levels_run >= 30);
}
