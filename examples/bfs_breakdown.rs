//! Dynamic latency analysis (paper §III, Figure 1) on a small BFS instance:
//! trace every memory fetch through the pipeline and break its lifetime
//! into the eight latency components.
//!
//! ```text
//! cargo run --release -p latency-bench --example bfs_breakdown
//! ```

use latency_bench::{run_bfs_traced, BfsExperiment};
use latency_core::{ArchPreset, Component, LatencyBreakdown};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = BfsExperiment {
        nodes: 4096,
        degree: 8,
        seed: 42,
        block_dim: 128,
    };
    println!(
        "BFS on {} ({} nodes, degree {})\n",
        ArchPreset::FermiGf100.name(),
        exp.nodes,
        exp.degree
    );
    let run = run_bfs_traced(ArchPreset::FermiGf100.config(), &exp)?;
    println!(
        "completed in {} cycles; traced {} memory fetches and {} load instructions\n",
        run.cycles,
        run.requests.len(),
        run.loads.len()
    );
    let (breakdown, overflow) = LatencyBreakdown::from_requests_clipped(&run.requests, 16, 0.99);
    print!("{breakdown}");
    println!("({overflow} outlier fetches beyond the 99th percentile not shown)");
    println!(
        "\ndominant component overall: {}",
        breakdown.dominant_component().label()
    );
    let shares = breakdown.overall_percentages();
    println!(
        "queueing (L1toICNT {:.1}%) and arbitration (DRAM QtoSch {:.1}%) are the\n\
         knobs the paper points at for latency reduction.",
        shares[Component::L1ToIcnt.index()],
        shares[Component::DramQToSch.index()]
    );
    Ok(())
}
