//! Static latency analysis (paper §II): pointer-chase the memory hierarchy
//! of two GPU generations and watch the latency plateaus appear as the
//! footprint outgrows each cache level.
//!
//! ```text
//! cargo run --release -p latency-bench --example static_latency
//! ```

use latency_core::{detect_plateaus, measure_chase, ArchPreset, ChaseParams, ChaseSpace, Sweep};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Footprint sweep on the Fermi GF106 (L1 16 KB, one 128 KB L2 slice in
    // the single-partition microbench machine).
    let preset = ArchPreset::FermiGf106;
    let cfg = preset.config_microbench();
    println!("footprint sweep on {} (stride 512 B):\n", preset.name());
    let footprints = [
        4 * 1024,
        8 * 1024,
        32 * 1024,
        48 * 1024,
        256 * 1024,
        512 * 1024,
    ];
    let sweep = Sweep::run(&cfg, ChaseSpace::Global, &footprints, &[512])?;
    print!("{sweep}");

    let plateaus = detect_plateaus(&sweep.latencies(), 0.20);
    println!("\ndetected plateaus:");
    for p in &plateaus {
        println!("  {p}");
    }
    println!("(paper Table I, Fermi column: L1 45, L2 310, DRAM 685)\n");

    // The Kepler twist: its L1 serves only local accesses, so the same
    // footprint measures very different latencies per space.
    let kepler = ArchPreset::KeplerGk104;
    let kcfg = kepler.config_microbench();
    let local = measure_chase(&kcfg, &ChaseParams::local(4096, 128))?;
    let global = measure_chase(&kcfg, &ChaseParams::global(4096, 128))?;
    println!("{} with a 4 KB working set:", kepler.name());
    println!(
        "  local  chase: {:>6.1} cycles/access (L1 serves local loads)",
        local.per_access
    );
    println!(
        "  global chase: {:>6.1} cycles/access (global loads bypass the L1!)",
        global.per_access
    );
    println!("(paper: Kepler global loads have a minimum latency of an L2 hit)");
    Ok(())
}
