//! Exposed vs hidden latency (paper §III, Figure 2) and the effect of
//! thread-level parallelism: how much BFS load latency the machine actually
//! hides at different occupancies.
//!
//! ```text
//! cargo run --release -p latency-bench --example exposed_latency
//! ```

use gpu_sim::SchedPolicy;
use latency_bench::{hiding_sweep, run_bfs_traced, BfsExperiment};
use latency_core::{ArchPreset, ExposureAnalysis};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = BfsExperiment {
        nodes: 4096,
        degree: 8,
        seed: 42,
        block_dim: 128,
    };
    let run = run_bfs_traced(ArchPreset::FermiGf100.config(), &exp)?;
    let (analysis, _) = ExposureAnalysis::from_loads_clipped(&run.loads, 12, 0.99);
    print!("{analysis}");
    println!(
        "\noverall exposed fraction: {:.1}% of load latency could not be hidden",
        100.0 * analysis.overall_exposed_fraction()
    );

    println!("\nexposure vs. warp slots per SM (LRR scheduler):");
    let points = hiding_sweep(
        ArchPreset::FermiGf100.config(),
        &exp,
        &[4, 16, 48],
        &[SchedPolicy::Lrr],
    )?;
    for p in &points {
        println!(
            "  {:>2} warps/SM: {:>5.1}% exposed, {:>9} cycles",
            p.warps_per_sm,
            100.0 * p.exposed_fraction,
            p.cycles
        );
    }
    println!(
        "\neven maximal thread-level parallelism leaves most of BFS's load\n\
         latency exposed — the paper's case that latency, not only throughput,\n\
         deserves attention in GPU design."
    );
    Ok(())
}
