//! Write a kernel as assembly text, assemble it, and run it on the
//! simulated GPU — no builder code required.
//!
//! ```text
//! cargo run --release -p latency-bench --example assembly
//! ```

use gpu_isa::{parse_kernel, Launch};
use gpu_sim::{Gpu, GpuConfig};

const TRIAD: &str = r"
.kernel triad
// a[i] = b[i] + 7 * c[i], guarded by i < n
    mov r0, %gtid
    ld.param r1, [3]          // n
    setp.lt p0, r0, r1
    @!p0 bra done (reconv done)
    shl r2, r0, 2             // byte offset
    ld.param r3, [1]          // b
    add r3, r3, r2
    ld.global.u32 r4, [r3+0]
    ld.param r5, [2]          // c
    add r5, r5, r2
    ld.global.u32 r6, [r5+0]
    mul r6, r6, 7
    add r4, r4, r6
    ld.param r7, [0]          // a
    add r7, r7, r2
    st.global.u32 [r7+0], r4
done:
    exit
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let kernel = parse_kernel(TRIAD)?;
    println!(
        "assembled '{}' ({} instructions):\n",
        kernel.name(),
        kernel.len()
    );
    print!("{kernel}"); // disassembly round-trips through the parser

    let mut gpu = Gpu::new(GpuConfig::fermi_gf100());
    let n = 5000u64;
    let a = gpu.alloc(4 * n, 128);
    let b = gpu.alloc(4 * n, 128);
    let c = gpu.alloc(4 * n, 128);
    for i in 0..n {
        gpu.device_mut().write_u32(b + 4 * i, i as u32);
        gpu.device_mut().write_u32(c + 4 * i, 2);
    }
    let grid = (n as u32).div_ceil(128);
    gpu.launch(
        kernel,
        Launch::new(grid, 128, vec![a.get(), b.get(), c.get(), n]),
    )?;
    let summary = gpu.run(50_000_000)?;
    for i in [0u64, 1, 2499, 4999] {
        assert_eq!(gpu.device().read_u32(a + 4 * i), i as u32 + 14);
    }
    println!(
        "\ntriad of {n} elements verified in {} cycles",
        summary.cycles
    );
    Ok(())
}
