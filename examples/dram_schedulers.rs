//! DRAM scheduling ablation: the paper suggests "request latency could
//! potentially be reduced through usage of a different DRAM scheduling
//! algorithm" — compare FR-FCFS against strict FCFS on BFS.
//!
//! ```text
//! cargo run --release -p latency-bench --example dram_schedulers
//! ```

use latency_bench::{dram_sched_comparison, BfsExperiment};
use latency_core::ArchPreset;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exp = BfsExperiment {
        nodes: 4096,
        degree: 8,
        seed: 42,
        block_dim: 128,
    };
    let rows = dram_sched_comparison(ArchPreset::FermiGf100.config(), &exp)?;
    println!("BFS, GF100, {} nodes:\n", exp.nodes);
    println!(
        "{:>10} {:>12} {:>16} {:>14}",
        "scheduler", "cycles", "mean load lat", "QtoSch share"
    );
    for r in &rows {
        println!(
            "{:>10} {:>12} {:>16.1} {:>13.1}%",
            format!("{:?}", r.sched),
            r.cycles,
            r.mean_load_latency,
            r.qtosch_share
        );
    }
    Ok(())
}
