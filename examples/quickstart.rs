//! Quickstart: build a kernel with the IR builder, run it on the simulated
//! Fermi GF100, and read results and statistics back.
//!
//! ```text
//! cargo run --release -p latency-bench --example quickstart
//! ```

use gpu_isa::{CmpOp, KernelBuilder, Launch, Special, Width};
use gpu_sim::{Gpu, GpuConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A GPU resembling NVIDIA's Fermi GF100: 15 SMs, L1+L2 caches, 6 GDDR5
    // partitions with FR-FCFS scheduling.
    let mut gpu = Gpu::new(GpuConfig::fermi_gf100());

    // SAXPY-style kernel: y[i] = a * x[i] + y[i] for i < n.
    let n: u64 = 10_000;
    let x = gpu.alloc(4 * n, 128);
    let y = gpu.alloc(4 * n, 128);
    for i in 0..n {
        gpu.device_mut().write_u32(x + 4 * i, i as u32);
        gpu.device_mut().write_u32(y + 4 * i, 1000);
    }

    let mut b = KernelBuilder::new("saxpy");
    let xp = b.param(0);
    let yp = b.param(1);
    let a = b.param(2);
    let len = b.param(3);
    let gtid = b.special(Special::GlobalTid);
    let in_bounds = b.setp(CmpOp::Lt, gtid, len);
    b.if_then(in_bounds, |b| {
        let off = b.shl(gtid, 2);
        let xa = b.add(xp, off);
        let ya = b.add(yp, off);
        let xv = b.ld_global(Width::W4, xa, 0);
        let yv = b.ld_global(Width::W4, ya, 0);
        let ax = b.mul(xv, a);
        let sum = b.add(ax, yv);
        b.st_global(Width::W4, ya, 0, sum);
    });
    b.exit();
    let kernel = b.build()?;
    println!("{kernel}");

    // Launch 79 CTAs of 128 threads (enough for n with a guard).
    let grid = (n as u32).div_ceil(128);
    gpu.launch(kernel, Launch::new(grid, 128, vec![x.get(), y.get(), 3, n]))?;
    let summary = gpu.run(100_000_000)?;

    // Verify a few elements.
    for i in [0u64, 1, 4999, 9999] {
        let got = gpu.device().read_u32(y + 4 * i);
        assert_eq!(got, 3 * i as u32 + 1000);
    }
    println!("saxpy of {n} elements verified");
    println!(
        "cycles: {}   instructions: {}   IPC: {:.2}",
        summary.cycles,
        summary.instructions,
        summary.ipc()
    );
    println!(
        "L1: {} hits / {} misses   L2: {} hits / {} misses   DRAM reqs: {}",
        summary.l1_hits,
        summary.l1_misses,
        summary.l2_hits,
        summary.l2_misses,
        summary.dram_serviced
    );
    Ok(())
}
