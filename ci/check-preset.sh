#!/usr/bin/env bash
# Run one architecture preset end to end and pin its timing:
#   1. table1   --preset <p> — the paper's Table I row (asserts internally
#      that measured latencies match the analytic unloaded model).
#   2. validate --preset <p> — the published-reference harness: analytic
#      unloaded latencies and chase plateaus diffed against the committed
#      REFERENCE_latencies.json, within its tolerance.
#   3. trace    --preset <p> — a small deterministic BFS with --validate
#      (span tiling + sanitizer), producing a metrics.txt. --stable zeroes
#      the wall-clock field at the source, so metrics.txt is a pure
#      function of the simulation.
#   4. Hash the whole metrics.txt and diff against the committed golden in
#      ci/metrics-goldens.txt.
#
# Usage: ci/check-preset.sh <preset> [--update]
#   --update rewrites (or appends, for a new preset) the golden line
#   instead of checking it.
set -euo pipefail

preset="${1:?usage: ci/check-preset.sh <preset> [--update]}"
mode="${2:-}"
goldens="$(dirname "$0")/metrics-goldens.txt"
out="target/ci-bundle-$preset"

cargo run --release --offline -p latency-bench --bin table1 -- --preset "$preset"
cargo run --release --offline -p latency-bench --bin validate -- --preset "$preset"
cargo run --release --offline -p latency-bench --bin trace -- \
  --preset "$preset" --workload bfs --nodes 512 --degree 4 --block-dim 64 \
  --out "$out" --validate --stable

actual=$(sha256sum "$out/metrics.txt" | awk '{print $1}')

if [ "$mode" = "--update" ]; then
  if grep -q "^$preset " "$goldens"; then
    sed -i "s/^$preset .*/$preset $actual/" "$goldens"
  else
    echo "$preset $actual" >> "$goldens"
  fi
  echo "updated golden: $preset $actual"
  exit 0
fi

expected=$(awk -v p="$preset" '$1 == p {print $2}' "$goldens")
if [ -z "$expected" ]; then
  echo "error: no golden recorded for preset '$preset' in $goldens" >&2
  exit 1
fi
if [ "$actual" != "$expected" ]; then
  echo "metrics drift for preset '$preset':" >&2
  echo "  expected $expected" >&2
  echo "  actual   $actual" >&2
  echo "metrics.txt:" >&2
  cat "$out/metrics.txt" >&2
  exit 1
fi
echo "$preset: metrics match committed golden ($actual)"
