#!/usr/bin/env bash
# End-to-end smoke test of the gpu-serve daemon — the CI twin of
# crates/serve/tests/serve_smoke.rs, driving the release binaries the way
# an operator would:
#   1. Dedup: one daemon, the identical sweep submitted by two concurrent
#      clients — exactly one job admitted (the other client joins it),
#      every grid point executed once, and both clients' terminal result
#      lines byte-identical.
#   2. Crash durability: submit a checkpointed BFS job, kill -9 the daemon
#      once the first checkpoint lands, restart on the same state dir, and
#      the recovered job must complete with a result line byte-identical
#      to an uninterrupted run on a fresh daemon.
#
# Usage: ci/serve-smoke.sh   (expects target/release/serve{,-client} built)
set -euo pipefail

SERVE=target/release/serve
CLIENT=target/release/serve-client
SWEEP=(--preset gf106 --footprints 2048,4096 --strides 128,512)
BFS=(--preset gf106 --workload bfs --nodes 1024 --degree 6 --seed 11
     --block-dim 64 --checkpoint-every 1500)

workdir=$(mktemp -d)
daemon_pid=""
cleanup() {
  [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

start_daemon() { # $1 = state dir
  # A fresh bind must publish a fresh address: drop any stale file first.
  rm -f "$1/serve.addr"
  "$SERVE" --listen 127.0.0.1:0 --workers 2 --state "$1" &
  daemon_pid=$!
  for _ in $(seq 1 200); do
    [ -s "$1/serve.addr" ] && return 0
    sleep 0.05
  done
  echo "daemon never published $1/serve.addr" >&2
  exit 1
}

expect_counter() { # $1 = stats line, $2 = counter key, $3 = expected value
  local got
  got=$(grep -o "\"$2\":[0-9]*" <<<"$1" | head -1 | cut -d: -f2)
  if [ "${got:-}" != "$3" ]; then
    echo "stats: expected $2=$3, got ${got:-<missing>} in: $1" >&2
    exit 1
  fi
}

# --- 1. concurrent-client dedup --------------------------------------------
state="$workdir/dedup"
start_daemon "$state"
addr=(--addr-file "$state/serve.addr")

"$CLIENT" "${addr[@]}" submit "${SWEEP[@]}" --watch --quiet >"$workdir/a.json" &
client_a=$!
"$CLIENT" "${addr[@]}" submit "${SWEEP[@]}" --watch --quiet >"$workdir/b.json" &
client_b=$!
wait "$client_a" "$client_b"

diff "$workdir/a.json" "$workdir/b.json"
grep -q '"status":"done"' "$workdir/a.json"
stats=$("$CLIENT" "${addr[@]}" stats)
expect_counter "$stats" jobs_submitted 1
expect_counter "$stats" jobs_deduped 1
expect_counter "$stats" points_executed 4
"$CLIENT" "${addr[@]}" shutdown >/dev/null
wait "$daemon_pid" || true
daemon_pid=""
echo "serve-smoke: dedup OK (1 job admitted, 4 points executed once, byte-identical results)"

# --- 2. kill -9 mid-job, restart, byte-identical resume ---------------------
straight="$workdir/straight"
start_daemon "$straight"
"$CLIENT" --addr-file "$straight/serve.addr" submit "${BFS[@]}" --watch --quiet \
  >"$workdir/straight.json"
"$CLIENT" --addr-file "$straight/serve.addr" shutdown >/dev/null
wait "$daemon_pid" || true
daemon_pid=""

state="$workdir/victim"
start_daemon "$state"
accepted=$("$CLIENT" --addr-file "$state/serve.addr" submit "${BFS[@]}")
job=$(grep -o '"job":"[0-9a-f]*"' <<<"$accepted" | head -1 | cut -d'"' -f4)
[ -n "$job" ] || { echo "no job id in: $accepted" >&2; exit 1; }

# Wait for the first checkpoint; if the job finishes first the kill proves
# nothing, so fail loudly and retune --checkpoint-every.
ckpt="$state/jobs/$job/ckpt"
for _ in $(seq 1 600); do
  if ls "$ckpt"/ckpt-*.bin >/dev/null 2>&1; then break; fi
  if [ -e "$state/jobs/$job/result.json" ]; then
    echo "job finished before the first checkpoint; lower --checkpoint-every" >&2
    exit 1
  fi
  sleep 0.05
done
ls "$ckpt"/ckpt-*.bin >/dev/null 2>&1 || { echo "no checkpoint appeared" >&2; exit 1; }
kill -9 "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

start_daemon "$state"
"$CLIENT" --addr-file "$state/serve.addr" watch "$job" --quiet >"$workdir/resumed.json"
stats=$("$CLIENT" --addr-file "$state/serve.addr" stats)
expect_counter "$stats" jobs_recovered 1
"$CLIENT" --addr-file "$state/serve.addr" shutdown >/dev/null
wait "$daemon_pid" || true
daemon_pid=""

diff "$workdir/straight.json" "$workdir/resumed.json"
echo "serve-smoke: kill -9 resume OK (result byte-identical to the uninterrupted run)"
