//! Exposed vs. hidden load latency (the paper's **Figure 2**).
//!
//! A load's latency is *hidden* while its SM still issues other instructions
//! and *exposed* when the SM sits idle waiting (no warp can issue). The
//! simulator attributes each zero-issue cycle of an SM to every load in
//! flight on it; this module buckets the completed loads by total latency
//! and reports the exposed/hidden split per bucket.

use std::fmt;

use gpu_sim::LoadInstrRecord;
use gpu_types::Buckets;

use crate::bucketing::Bucketing;

/// The Figure-2 artifact: per-latency-bucket exposed/hidden percentages of
/// global-memory load instructions.
#[derive(Debug, Clone)]
pub struct ExposureAnalysis {
    buckets: Buckets,
    exposed: Vec<u64>,
    total: Vec<u64>,
    counts: Vec<u64>,
}

impl ExposureAnalysis {
    /// Builds the analysis over `n_buckets` equal-width latency ranges.
    ///
    /// # Panics
    ///
    /// Panics if `n_buckets` is zero.
    pub fn from_loads(loads: &[LoadInstrRecord], n_buckets: usize) -> Self {
        Self::from_loads_clipped(loads, n_buckets, 1.0).0
    }

    /// Like [`ExposureAnalysis::from_loads`], but the bucket domain spans
    /// only latencies up to the `clip_quantile`-quantile; loads beyond it
    /// are excluded and counted in the returned overflow (see the matching
    /// option on `LatencyBreakdown`).
    ///
    /// # Panics
    ///
    /// Panics if `n_buckets` is zero or `clip_quantile` is outside `(0, 1]`.
    pub fn from_loads_clipped(
        loads: &[LoadInstrRecord],
        n_buckets: usize,
        clip_quantile: f64,
    ) -> (Self, u64) {
        let bucketing =
            Bucketing::from_totals(loads.iter().map(|l| l.total()), n_buckets, clip_quantile);
        let mut exposed = vec![0u64; n_buckets];
        let mut total = vec![0u64; n_buckets];
        let mut counts = vec![0u64; n_buckets];
        for l in loads {
            let Some(i) = bucketing.index_of(l.total()) else {
                continue; // clipped into the overflow
            };
            // Clamp: a load that issued in the same stall window as its
            // completion can attribute at most its own lifetime.
            exposed[i] += l.exposed.min(l.total());
            total[i] += l.total();
            counts[i] += 1;
        }
        let overflow = bucketing.overflow();
        (
            ExposureAnalysis {
                buckets: bucketing.into_buckets(),
                exposed,
                total,
                counts,
            },
            overflow,
        )
    }

    /// The latency buckets (x-axis of Figure 2).
    pub fn buckets(&self) -> &Buckets {
        &self.buckets
    }

    /// Loads in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total analyzed loads.
    pub fn total_loads(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Exposed fraction (0–1) of bucket `i`'s aggregate latency.
    pub fn exposed_fraction(&self, i: usize) -> f64 {
        if self.total[i] == 0 {
            0.0
        } else {
            self.exposed[i] as f64 / self.total[i] as f64
        }
    }

    /// Hidden fraction (0–1) of bucket `i`'s aggregate latency.
    pub fn hidden_fraction(&self, i: usize) -> f64 {
        1.0 - self.exposed_fraction(i)
    }

    /// Exposed fraction across all loads.
    pub fn overall_exposed_fraction(&self) -> f64 {
        let e: u64 = self.exposed.iter().sum();
        let t: u64 = self.total.iter().sum();
        if t == 0 {
            0.0
        } else {
            e as f64 / t as f64
        }
    }

    /// Fraction of *loads* (not cycles) whose individual exposed share
    /// exceeds `threshold` (e.g. 0.5 for the paper's "more than 50% for most
    /// loads" claim). Computed bucket-wise from aggregate ratios.
    pub fn buckets_exceeding(&self, threshold: f64) -> f64 {
        let mut above = 0u64;
        let mut all = 0u64;
        for i in 0..self.buckets.len() {
            if self.counts[i] == 0 {
                continue;
            }
            all += self.counts[i];
            if self.exposed_fraction(i) > threshold {
                above += self.counts[i];
            }
        }
        if all == 0 {
            0.0
        } else {
            above as f64 / all as f64
        }
    }
}

impl fmt::Display for ExposureAnalysis {
    /// Renders the Figure-2 table: per-bucket exposed/hidden percentages.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>14} {:>7} {:>10} {:>10}",
            "Latency Range", "Count", "Exposed", "Hidden"
        )?;
        for i in 0..self.buckets.len() {
            if self.counts[i] == 0 {
                continue;
            }
            writeln!(
                f,
                "{:>14} {:>7} {:>9.1}% {:>9.1}%",
                self.buckets.label(i),
                self.counts[i],
                100.0 * self.exposed_fraction(i),
                100.0 * self.hidden_fraction(i)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_types::{Cycle, SmId};

    fn load(total: u64, exposed: u64) -> LoadInstrRecord {
        LoadInstrRecord {
            sm: SmId::new(0),
            pc: 0,
            issue: Cycle::new(1000),
            complete: Cycle::new(1000 + total),
            exposed,
            lines: 1,
            stall_reasons: gpu_sim::StallBreakdown::default(),
        }
    }

    #[test]
    fn fractions_per_bucket() {
        // Two populations: fast fully-hidden loads and slow mostly-exposed.
        let mut loads: Vec<_> = (0..10).map(|_| load(50, 0)).collect();
        loads.extend((0..10).map(|_| load(700, 630)));
        let e = ExposureAnalysis::from_loads(&loads, 8);
        let fast = e.buckets().index_of(50).unwrap();
        let slow = e.buckets().index_of(700).unwrap();
        assert_eq!(e.exposed_fraction(fast), 0.0);
        assert!((e.exposed_fraction(slow) - 0.9).abs() < 1e-9);
        assert!((e.hidden_fraction(slow) - 0.1).abs() < 1e-9);
        assert_eq!(e.total_loads(), 20);
        assert_eq!(e.count(fast), 10);
    }

    #[test]
    fn overall_fraction_is_cycle_weighted() {
        let loads = vec![load(100, 0), load(900, 900)];
        let e = ExposureAnalysis::from_loads(&loads, 4);
        assert!((e.overall_exposed_fraction() - 0.9).abs() < 1e-9);
    }

    #[test]
    fn exposed_clamped_to_lifetime() {
        // Exposure attribution can over-count when multiple loads share a
        // stall window at the boundary; fractions must stay <= 1.
        let loads = vec![load(100, 250)];
        let e = ExposureAnalysis::from_loads(&loads, 2);
        let i = e.buckets().index_of(100).unwrap();
        assert!(e.exposed_fraction(i) <= 1.0);
    }

    #[test]
    fn buckets_exceeding_threshold() {
        let mut loads: Vec<_> = (0..6).map(|_| load(50, 0)).collect();
        loads.extend((0..4).map(|_| load(700, 600)));
        let e = ExposureAnalysis::from_loads(&loads, 8);
        let share = e.buckets_exceeding(0.5);
        assert!((share - 0.4).abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_harmless() {
        let e = ExposureAnalysis::from_loads(&[], 4);
        assert_eq!(e.total_loads(), 0);
        assert_eq!(e.overall_exposed_fraction(), 0.0);
        assert_eq!(e.buckets_exceeding(0.5), 0.0);
    }

    #[test]
    fn display_has_exposed_and_hidden_columns() {
        let e = ExposureAnalysis::from_loads(&[load(100, 40)], 2);
        let s = e.to_string();
        assert!(s.contains("Exposed"));
        assert!(s.contains("Hidden"));
        assert!(s.contains("60.0%"));
        assert!(s.contains("40.0%"));
    }
}
