//! The pointer-chasing static-latency microbenchmark (paper §II).
//!
//! A single active thread chases pointers through memory: each load's
//! address is the value returned by the previous load, so exactly one memory
//! access is in flight at a time and the measured time per access is the
//! unloaded round-trip latency of whatever pipeline level services it.
//!
//! Timing uses two runs differing only in iteration count; the difference
//! divided by the extra accesses cancels launch overhead and cold-miss
//! warmup exactly, which replaces the paper's `clock()` register reads (our
//! simulator gives us total cycles directly).

use std::fmt;

use gpu_isa::{AluOp, CmpOp, Kernel, KernelBuilder, Launch, Operand, Space, Width};
use gpu_sim::{Gpu, GpuConfig, SimError};
use gpu_types::Addr;

/// Dependent loads per loop iteration (amortizes loop overhead to well under
/// a cycle per access).
pub const UNROLL: usize = 16;

/// Order in which the chain visits its elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChasePattern {
    /// Sequential ring: element `i` points to `i + 1` (mod count).
    #[default]
    Sequential,
    /// Pseudo-random single-cycle permutation (seeded, reproducible).
    Shuffled {
        /// Permutation seed.
        seed: u64,
    },
}

/// Which memory space the chase walks. `Local` is what distinguishes
/// Kepler's L1 (local-only) from Fermi's in Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaseSpace {
    /// Chase through global memory (host-initialized chain).
    Global,
    /// Chase through thread-local memory (kernel-initialized chain).
    Local,
}

/// Parameters of one chase experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaseParams {
    /// Total bytes touched (the working set).
    pub footprint: u64,
    /// Distance between consecutive chain elements in bytes (multiple of 8).
    pub stride: u64,
    /// Memory space walked.
    pub space: ChaseSpace,
    /// Element visiting order (global chases only; local chains are
    /// initialized in-kernel and always sequential).
    pub pattern: ChasePattern,
}

impl ChaseParams {
    /// A global-memory chase.
    pub fn global(footprint: u64, stride: u64) -> Self {
        ChaseParams {
            footprint,
            stride,
            space: ChaseSpace::Global,
            pattern: ChasePattern::Sequential,
        }
    }

    /// A global-memory chase over a shuffled chain.
    pub fn global_shuffled(footprint: u64, stride: u64, seed: u64) -> Self {
        ChaseParams {
            footprint,
            stride,
            space: ChaseSpace::Global,
            pattern: ChasePattern::Shuffled { seed },
        }
    }

    /// A local-memory chase.
    pub fn local(footprint: u64, stride: u64) -> Self {
        ChaseParams {
            footprint,
            stride,
            space: ChaseSpace::Local,
            pattern: ChasePattern::Sequential,
        }
    }

    /// Number of chain elements.
    pub fn count(&self) -> u64 {
        self.footprint / self.stride
    }

    fn validate(&self) -> Result<(), ChaseError> {
        if self.stride < 8 || !self.stride.is_multiple_of(8) {
            return Err(ChaseError::BadStride(self.stride));
        }
        if self.count() == 0 {
            return Err(ChaseError::EmptyChain {
                footprint: self.footprint,
                stride: self.stride,
            });
        }
        Ok(())
    }
}

/// One measured chase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaseMeasurement {
    /// Average cycles per dependent access in steady state.
    pub per_access: f64,
    /// Accesses in the longer run.
    pub accesses: u64,
    /// Total cycles of the shorter run.
    pub cycles_short: u64,
    /// Total cycles of the longer run.
    pub cycles_long: u64,
}

/// Error running a chase experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaseError {
    /// Stride must be a positive multiple of 8 bytes (pointer size).
    BadStride(u64),
    /// Footprint smaller than stride: no chain elements.
    EmptyChain {
        /// Requested footprint.
        footprint: u64,
        /// Requested stride.
        stride: u64,
    },
    /// The simulator failed (usually a cycle-limit timeout).
    Sim(SimError),
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::BadStride(s) => write!(f, "stride {s} is not a positive multiple of 8"),
            ChaseError::EmptyChain { footprint, stride } => {
                write!(f, "footprint {footprint} < stride {stride}: empty chain")
            }
            ChaseError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ChaseError {}

impl From<SimError> for ChaseError {
    fn from(e: SimError) -> Self {
        ChaseError::Sim(e)
    }
}

/// Builds the chase kernel: `iters` iterations of [`UNROLL`] dependent
/// pointer loads, preceded (for local chases) by an in-kernel chain
/// initialization loop.
///
/// Parameters: `[0]` chain base address (global) or ignored (local),
/// `[1]` iteration count, `[2]` sink address for the final pointer.
pub fn build_chase_kernel(params: &ChaseParams) -> Kernel {
    let mut b = KernelBuilder::new(match params.space {
        ChaseSpace::Global => "chase_global",
        ChaseSpace::Local => "chase_local",
    });
    let space = match params.space {
        ChaseSpace::Global => Space::Global,
        ChaseSpace::Local => Space::Local,
    };
    let base = b.param(0);
    let iters = b.param(1);
    let sink = b.param(2);

    let p = b.reg();
    match params.space {
        ChaseSpace::Global => {
            b.mov_to(p, base);
        }
        ChaseSpace::Local => {
            // Reserve the window and write the chain from inside the kernel
            // (the host cannot address thread-local windows directly).
            let off = b.alloc_local(params.footprint);
            debug_assert_eq!(off, 0);
            let count = params.count();
            let stride = params.stride;
            b.for_range(Operand::Imm(0), Operand::Imm(count as i64), 1, |b, j| {
                let addr = b.mul(j, stride as i64);
                let jn = b.add(j, 1);
                let wrapped = b.alu(AluOp::Rem, jn, count as i64);
                let val = b.mul(wrapped, stride as i64);
                b.st(Space::Local, Width::W8, addr, 0, val);
            });
            b.mov_to(p, 0i64);
        }
    }

    let i = b.mov(0i64);
    let pred = b.pred();
    b.while_loop(
        |b| {
            b.setp_to(pred, CmpOp::Lt, i, iters);
            pred
        },
        |b| {
            for _ in 0..UNROLL {
                b.ld_to(space, Width::W8, p, p, 0);
            }
            b.alu_to(AluOp::Add, i, i, 1i64);
        },
    );
    b.st_global(Width::W8, sink, 0, p);
    b.exit();
    b.build()
        .expect("chase kernel is well-formed by construction")
}

/// Writes a sequential ring chain of `count` pointers with the given stride
/// into device memory at `base`.
pub fn write_chain(gpu: &mut Gpu, base: Addr, count: u64, stride: u64) {
    for i in 0..count {
        let next = base.get() + ((i + 1) % count) * stride;
        gpu.device_mut().write_u64(base + i * stride, next);
    }
}

/// Writes a *shuffled* single-cycle chain: the pointers visit every element
/// exactly once in a pseudo-random order before wrapping. Wong et al. use
/// random chains to defeat spatial prefetching; in this model (no
/// prefetcher) the observable difference is DRAM row-buffer behaviour:
/// shuffled order destroys the residual row locality of the sequential ring.
///
/// Deterministic (seeded Fisher–Yates over an LCG), so measurements are
/// reproducible.
pub fn write_shuffled_chain(gpu: &mut Gpu, base: Addr, count: u64, stride: u64, seed: u64) {
    // Permutation of the element indices.
    let mut order: Vec<u64> = (0..count).collect();
    let mut state = seed | 1;
    let mut next_rand = move || {
        // xorshift64*
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    for i in (1..count as usize).rev() {
        let j = (next_rand() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    // Link the permutation into a single cycle.
    for w in 0..count as usize {
        let from = order[w];
        let to = order[(w + 1) % count as usize];
        gpu.device_mut()
            .write_u64(base + from * stride, base.get() + to * stride);
    }
}

fn run_once(config: &GpuConfig, params: &ChaseParams, iters: u64) -> Result<u64, ChaseError> {
    let mut gpu = Gpu::new(config.clone());
    gpu.set_tick_threads(crate::parallel::tick_threads());
    let kernel = build_chase_kernel(params);
    let (base, sink) = match params.space {
        ChaseSpace::Global => {
            let base = gpu.alloc(params.footprint, config.line_size);
            match params.pattern {
                ChasePattern::Sequential => {
                    write_chain(&mut gpu, base, params.count(), params.stride);
                }
                ChasePattern::Shuffled { seed } => {
                    write_shuffled_chain(&mut gpu, base, params.count(), params.stride, seed);
                }
            }
            let sink = gpu.alloc(8, config.line_size);
            (base, sink)
        }
        ChaseSpace::Local => {
            let sink = gpu.alloc(8, config.line_size);
            (Addr::NULL, sink)
        }
    };
    gpu.launch(
        kernel,
        Launch::new(1, 1, vec![base.get(), iters, sink.get()]),
    )?;
    // Generous bound: every access could be a loaded DRAM round trip.
    let worst = config.unloaded_dram() * 4 + 200;
    let max_cycles = (iters * UNROLL as u64 + params.count() + 64) * worst + 100_000;
    let summary = gpu.run(max_cycles)?;
    // Sanity: the final pointer must still be inside the chain.
    let final_p = gpu.device().read_u64(sink);
    match params.space {
        ChaseSpace::Global => {
            assert!(
                final_p >= base.get() && final_p < base.get() + params.footprint,
                "chase escaped its ring"
            );
        }
        ChaseSpace::Local => {
            assert!(final_p < params.footprint, "local chase escaped its ring");
        }
    }
    Ok(summary.cycles)
}

/// Measures the steady-state per-access latency of the chase described by
/// `params` on `config`.
///
/// # Errors
///
/// Returns [`ChaseError`] for invalid geometry or simulator failure.
///
/// # Examples
///
/// ```no_run
/// use latency_core::{ArchPreset, ChaseParams, measure_chase};
///
/// let cfg = ArchPreset::FermiGf106.config_microbench();
/// let m = measure_chase(&cfg, &ChaseParams::global(4096, 128))?;
/// assert!(m.per_access > 0.0);
/// # Ok::<(), latency_core::ChaseError>(())
/// ```
pub fn measure_chase(
    config: &GpuConfig,
    params: &ChaseParams,
) -> Result<ChaseMeasurement, ChaseError> {
    params.validate()?;
    if let Some(dir) = crate::cache::cache_dir() {
        let key = crate::cache::chase_key(config, params);
        if let Some(m) = crate::cache::lookup_chase(&dir, key) {
            return Ok(m);
        }
        let m = measure_chase_uncached(config, params)?;
        crate::cache::store_chase(&dir, key, &m);
        return Ok(m);
    }
    measure_chase_uncached(config, params)
}

/// [`measure_chase`] minus the cache: always simulates.
fn measure_chase_uncached(
    config: &GpuConfig,
    params: &ChaseParams,
) -> Result<ChaseMeasurement, ChaseError> {
    let count = params.count();
    // Both runs must reach steady state (>= one full traversal of the ring).
    let min_accesses = (2 * count).max(256);
    let iters_short = min_accesses.div_ceil(UNROLL as u64);
    let iters_long = 2 * iters_short;
    let cycles_short = run_once(config, params, iters_short)?;
    let cycles_long = run_once(config, params, iters_long)?;
    let extra_accesses = (iters_long - iters_short) * UNROLL as u64;
    let per_access = cycles_long.saturating_sub(cycles_short) as f64 / extra_accesses as f64;
    Ok(ChaseMeasurement {
        per_access,
        accesses: iters_long * UNROLL as u64,
        cycles_short,
        cycles_long,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::ArchPreset;

    #[test]
    fn bad_geometry_rejected() {
        let cfg = ArchPreset::FermiGf106.config_microbench();
        assert!(matches!(
            measure_chase(&cfg, &ChaseParams::global(4096, 12)),
            Err(ChaseError::BadStride(12))
        ));
        assert!(matches!(
            measure_chase(&cfg, &ChaseParams::global(8, 128)),
            Err(ChaseError::EmptyChain { .. })
        ));
    }

    #[test]
    fn chase_kernel_validates() {
        for params in [
            ChaseParams::global(4096, 128),
            ChaseParams::local(2048, 128),
        ] {
            let k = build_chase_kernel(&params);
            assert!(k.validate().is_ok());
        }
    }

    #[test]
    fn l1_resident_chase_measures_l1_hit_latency() {
        // 4 KB footprint in a 16 KB L1: steady state is all hits.
        let cfg = ArchPreset::FermiGf106.config_microbench();
        let m = measure_chase(&cfg, &ChaseParams::global(4096, 128)).unwrap();
        let expected = ArchPreset::FermiGf106.table1_expected().l1.unwrap() as f64;
        assert!(
            (m.per_access - expected).abs() <= 3.0,
            "measured {} vs expected {expected}",
            m.per_access
        );
    }

    #[test]
    fn longer_run_takes_longer() {
        let cfg = ArchPreset::FermiGf106.config_microbench();
        let m = measure_chase(&cfg, &ChaseParams::global(2048, 128)).unwrap();
        assert!(m.cycles_long > m.cycles_short);
        assert!(m.per_access > 0.0);
    }
}

#[cfg(test)]
mod shuffled_tests {
    use super::*;
    use crate::presets::ArchPreset;
    use gpu_sim::Gpu;

    #[test]
    fn shuffled_chain_is_a_single_cycle() {
        let cfg = ArchPreset::FermiGf106.config_microbench();
        let mut gpu = Gpu::new(cfg.clone());
        let count = 64u64;
        let stride = 128u64;
        let base = gpu.alloc(count * stride, cfg.line_size);
        write_shuffled_chain(&mut gpu, base, count, stride, 42);
        // Follow the chain: it must visit every element once and return.
        let mut seen = vec![false; count as usize];
        let mut p = base.get();
        for _ in 0..count {
            let idx = ((p - base.get()) / stride) as usize;
            assert!(!seen[idx], "element {idx} visited twice");
            seen[idx] = true;
            p = gpu.device().read_u64(gpu_types::Addr::new(p));
        }
        assert_eq!(p, base.get(), "chain must close into a cycle at the base");
        assert!(seen.iter().all(|&v| v), "every element visited");
    }

    #[test]
    fn shuffled_chase_measures_same_l1_latency() {
        // Inside the L1 the visiting order is irrelevant.
        let cfg = ArchPreset::FermiGf106.config_microbench();
        let seq = measure_chase(&cfg, &ChaseParams::global(4096, 128)).unwrap();
        let shuf = measure_chase(&cfg, &ChaseParams::global_shuffled(4096, 128, 7)).unwrap();
        assert!(
            (seq.per_access - shuf.per_access).abs() < 2.0,
            "seq {} vs shuffled {}",
            seq.per_access,
            shuf.per_access
        );
    }

    #[test]
    fn shuffled_dram_chase_loses_row_locality() {
        // At a sub-row stride, the sequential ring enjoys row-buffer hits;
        // the shuffled chain mostly does not.
        let cfg = ArchPreset::TeslaGt200.config_microbench();
        let seq = measure_chase(&cfg, &ChaseParams::global(256 * 1024, 512)).unwrap();
        let shuf = measure_chase(&cfg, &ChaseParams::global_shuffled(256 * 1024, 512, 11)).unwrap();
        assert!(
            shuf.per_access > seq.per_access * 1.1,
            "shuffling should defeat row locality: seq {} vs shuffled {}",
            seq.per_access,
            shuf.per_access
        );
    }
}
