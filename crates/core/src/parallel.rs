//! A small scoped-thread work pool for embarrassingly parallel experiment
//! grids.
//!
//! Every measurement in this workspace — a chase grid point, a Table I row,
//! a latency-hiding sweep cell — builds its own [`gpu_sim::Gpu`] and runs it
//! to completion, so experiment points share no mutable state and can run on
//! any number of threads. This module provides the one primitive all of them
//! use: [`par_map`], an index-ordered parallel map built on
//! [`std::thread::scope`] (std only, no external dependencies).
//!
//! # Determinism
//!
//! Workers pull indices from a shared atomic counter (self-scheduling, so an
//! expensive point never stalls the whole chunk), but every result is
//! written back into the slot of its *input index*. The output `Vec` is
//! therefore always in input order, bit-identical to what a serial loop
//! produces, regardless of worker count or OS scheduling. The serial
//! reference paths (`Sweep::run_serial`, `Table1::measure_serial`, …) exist
//! so the equivalence is testable, not because they ever differ.
//!
//! # Worker count
//!
//! [`worker_count`] resolves, in order:
//!
//! 1. a process-wide programmatic override ([`set_worker_count`], used by
//!    the bench binaries' `--threads` flag),
//! 2. the `LATENCY_THREADS` environment variable,
//! 3. [`std::thread::available_parallelism`].
//!
//! A resolved count of 1 short-circuits to a plain serial loop on the
//! calling thread — no pool, no overhead.

use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the worker count (a positive integer).
pub const THREADS_ENV: &str = "LATENCY_THREADS";

/// Why a requested tick-thread count was rejected.
///
/// Produced by [`parse_tick_threads`] and [`env_tick_threads`] so the bench
/// binaries can refuse `--tick-threads 0` (and `LATENCY_TICK_THREADS=0`)
/// with a specific message instead of silently ticking serially.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TickThreadsError {
    /// The value parsed but was zero; zero threads cannot tick anything.
    Zero {
        /// Which knob carried the value (flag name or env var name).
        source: &'static str,
    },
    /// The value was not an unsigned integer.
    Malformed {
        /// Which knob carried the value (flag name or env var name).
        source: &'static str,
        /// The offending text.
        value: String,
    },
}

impl fmt::Display for TickThreadsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TickThreadsError::Zero { source } => {
                write!(f, "{source} must be a positive integer, got 0")
            }
            TickThreadsError::Malformed { source, value } => {
                write!(f, "{source} must be a positive integer, got '{value}'")
            }
        }
    }
}

impl std::error::Error for TickThreadsError {}

/// Parses a tick-thread count from CLI or environment text, rejecting zero
/// and non-numeric values with a typed error naming `source`.
///
/// # Errors
///
/// [`TickThreadsError::Zero`] for `0`, [`TickThreadsError::Malformed`] for
/// anything that is not an unsigned integer.
pub fn parse_tick_threads(value: &str, source: &'static str) -> Result<usize, TickThreadsError> {
    match value.trim().parse::<usize>() {
        Ok(0) => Err(TickThreadsError::Zero { source }),
        Ok(n) => Ok(n),
        Err(_) => Err(TickThreadsError::Malformed {
            source,
            value: value.to_string(),
        }),
    }
}

/// Validates [`TICK_THREADS_ENV`], returning the configured count (1 when
/// the variable is unset).
///
/// [`tick_threads`] itself stays forgiving (library callers deep inside a
/// sweep cannot usefully abort), so binaries call this once at startup to
/// turn a nonsensical environment into a typed usage error.
///
/// # Errors
///
/// Propagates [`parse_tick_threads`] rejections for a set-but-invalid
/// variable.
pub fn env_tick_threads() -> Result<usize, TickThreadsError> {
    match std::env::var(TICK_THREADS_ENV) {
        Ok(v) => parse_tick_threads(&v, TICK_THREADS_ENV),
        Err(_) => Ok(1),
    }
}

/// Environment variable setting the intra-run tick-thread count (a positive
/// integer). `1` (the default) runs every simulated cycle serially.
pub const TICK_THREADS_ENV: &str = "LATENCY_TICK_THREADS";

/// Process-wide programmatic override; 0 means "unset".
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Process-wide tick-thread override; 0 means "unset".
static TICK_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the pool to `n` workers for the rest of the process (e.g. from a
/// `--threads N` CLI flag). `n = 1` forces fully serial execution. Takes
/// precedence over [`THREADS_ENV`] and the detected CPU count.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn set_worker_count(n: usize) {
    assert!(n > 0, "worker count must be positive");
    WORKER_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Clears a previous [`set_worker_count`] override.
pub fn clear_worker_count() {
    WORKER_OVERRIDE.store(0, Ordering::Relaxed);
}

/// The number of workers a parallel region will use: the programmatic
/// override if set, else `LATENCY_THREADS` if set to a positive integer,
/// else the machine's available parallelism (1 if undetectable).
pub fn worker_count() -> usize {
    let forced = WORKER_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Forces every simulator built by this crate's runners to tick with `n`
/// threads (e.g. from a `--tick-threads N` CLI flag). `n = 1` forces the
/// serial cycle loop. Takes precedence over [`TICK_THREADS_ENV`].
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn set_tick_threads(n: usize) {
    assert!(n > 0, "tick-thread count must be positive");
    TICK_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Clears a previous [`set_tick_threads`] override.
pub fn clear_tick_threads() {
    TICK_OVERRIDE.store(0, Ordering::Relaxed);
}

/// The intra-run tick-thread count: the programmatic override if set, else
/// `LATENCY_TICK_THREADS` if set to a positive integer, else 1 (serial).
///
/// Unlike [`worker_count`], this does *not* default to the machine's CPU
/// count: grid-level parallelism (many independent simulators) is the better
/// use of cores, so intra-run ticking is opt-in.
pub fn tick_threads() -> usize {
    let forced = TICK_OVERRIDE.load(Ordering::Relaxed);
    if forced > 0 {
        return forced;
    }
    if let Ok(v) = std::env::var(TICK_THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    1
}

/// The worker count available to a *grid-level* parallel region once each
/// grid point spends [`tick_threads`] threads ticking its own simulator:
/// `max(1, worker_count() / tick_threads())`, so the total thread budget
/// (`LATENCY_THREADS`) bounds `grid workers × tick threads`.
pub fn grid_worker_count() -> usize {
    (worker_count() / tick_threads()).max(1)
}

/// Applies `f` to every item, possibly in parallel, returning results in
/// input order.
///
/// `f` receives `(index, &item)` and must be pure with respect to ordering:
/// the contract (upheld by every caller in this workspace, where each call
/// simulates an isolated GPU) is that results do not depend on execution
/// order, so the gathered output equals the serial
/// `items.iter().enumerate().map(..).collect()`.
///
/// # Panics
///
/// Propagates the first worker panic.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    use gpu_sim::profile::{self, ProfCounter, ProfSpan};
    let n = items.len();
    let workers = grid_worker_count().min(n);
    if workers <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let _g = profile::span(ProfSpan::GridWorkerBusy);
                profile::add(ProfCounter::GridTasks, 1);
                f(i, t)
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let _g = profile::span(ProfSpan::GridWorkerBusy);
                profile::add(ProfCounter::GridTasks, 1);
                let r = f(i, &items[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed by a worker")
        })
        .collect()
}

/// [`par_map`] over fallible work: runs every item, then returns either all
/// results (input order) or the error of the *lowest-indexed* failing item —
/// exactly the error a serial left-to-right loop would surface, so parallel
/// and serial callers report identical failures.
///
/// # Errors
///
/// The first (by input index) error produced by `f`.
pub fn try_par_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for r in par_map(items, f) {
        out.push(r?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that mutate the process-wide override serialize on this lock
    /// so the default multi-threaded test runner cannot interleave them.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn par_map_preserves_input_order() {
        let items: Vec<u64> = (0..257).collect();
        let got = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        let want: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn try_par_map_returns_lowest_indexed_error() {
        let items: Vec<u32> = (0..64).collect();
        let r: Result<Vec<u32>, u32> =
            try_par_map(&items, |_, &x| if x % 10 == 3 { Err(x) } else { Ok(x) });
        // 3, 13, 23, ... all fail; the serial-equivalent error is 3.
        assert_eq!(r, Err(3));
        let ok: Result<Vec<u32>, u32> = try_par_map(&items, |_, &x| Ok(x * 2));
        assert_eq!(ok.unwrap()[5], 10);
    }

    #[test]
    fn worker_count_override_wins() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_worker_count(3);
        assert_eq!(worker_count(), 3);
        set_worker_count(1);
        assert_eq!(worker_count(), 1);
        clear_worker_count();
        assert!(worker_count() >= 1);
    }

    #[test]
    fn tick_threads_divide_the_grid_budget() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_worker_count(8);
        set_tick_threads(1);
        assert_eq!(grid_worker_count(), 8);
        set_tick_threads(4);
        assert_eq!(grid_worker_count(), 2);
        set_tick_threads(16); // oversubscribed: grid still gets one worker
        assert_eq!(grid_worker_count(), 1);
        clear_tick_threads();
        clear_worker_count();
        assert_eq!(tick_threads(), 1, "serial ticking is the default");
    }

    #[test]
    fn tick_thread_requests_are_validated() {
        assert_eq!(parse_tick_threads("4", "--tick-threads"), Ok(4));
        assert_eq!(parse_tick_threads(" 2 ", "--tick-threads"), Ok(2));
        let zero = parse_tick_threads("0", "--tick-threads");
        assert_eq!(
            zero,
            Err(TickThreadsError::Zero {
                source: "--tick-threads"
            })
        );
        assert_eq!(
            zero.unwrap_err().to_string(),
            "--tick-threads must be a positive integer, got 0"
        );
        assert!(matches!(
            parse_tick_threads("many", "--tick-threads"),
            Err(TickThreadsError::Malformed { .. })
        ));
    }

    #[test]
    fn env_tick_threads_rejects_zero_but_defaults_when_unset() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        std::env::remove_var(TICK_THREADS_ENV);
        assert_eq!(env_tick_threads(), Ok(1));
        std::env::set_var(TICK_THREADS_ENV, "3");
        assert_eq!(env_tick_threads(), Ok(3));
        std::env::set_var(TICK_THREADS_ENV, "0");
        assert_eq!(
            env_tick_threads(),
            Err(TickThreadsError::Zero {
                source: TICK_THREADS_ENV
            })
        );
        std::env::remove_var(TICK_THREADS_ENV);
    }

    #[test]
    fn forced_parallel_equals_serial_on_nontrivial_grid() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        // Run the same map with 1 and 8 workers; outputs must be identical.
        let items: Vec<u64> = (0..100).map(|i| i * 17 % 31).collect();
        set_worker_count(1);
        let serial = par_map(&items, |i, &x| (i as u64) ^ x.wrapping_mul(0x9E37));
        set_worker_count(8);
        let parallel = par_map(&items, |i, &x| (i as u64) ^ x.wrapping_mul(0x9E37));
        clear_worker_count();
        assert_eq!(serial, parallel);
    }
}
