//! Static and dynamic GPU latency analysis — the core contribution of the
//! `gpu-latency` workspace, reproducing *Andersch, Lucas, Álvarez-Mesa,
//! Juurlink: "On Latency in GPU Throughput Microarchitectures" (ISPASS
//! 2015)*.
//!
//! Two analyses are provided on top of the `gpu-sim` timing simulator:
//!
//! 1. **Static latency** (paper §II, Table I): [`measure_chase`] runs the
//!    single-thread pointer-chase microbenchmark on per-generation machine
//!    models ([`ArchPreset`]); [`Sweep`] and [`detect_plateaus`] implement
//!    the stride × footprint methodology of Wong et al.; [`Table1`]
//!    regenerates the paper's Table I.
//! 2. **Dynamic latency** (paper §III, Figures 1 & 2):
//!    [`LatencyBreakdown`] splits every traced memory fetch's lifetime into
//!    the eight pipeline components of Figure 1, and [`ExposureAnalysis`]
//!    computes the exposed/hidden split of Figure 2.
//!
//! # Examples
//!
//! Reproduce one cell of Table I (Fermi L1 hit latency):
//!
//! ```no_run
//! use latency_core::{ArchPreset, ChaseParams, measure_chase};
//!
//! let cfg = ArchPreset::FermiGf106.config_microbench();
//! let m = measure_chase(&cfg, &ChaseParams::global(4096, 128))?;
//! assert!((m.per_access - 45.0).abs() < 3.0);
//! # Ok::<(), latency_core::ChaseError>(())
//! ```

pub mod breakdown;
pub mod bucketing;
pub mod cache;
pub mod chase;
pub mod exposure;
pub mod inference;
pub mod loaded;
pub mod parallel;
pub mod plateau;
pub mod presets;
pub mod report;
pub mod sweep;
pub mod table1;

pub use breakdown::{components_of, Component, LatencyBreakdown};
pub use bucketing::Bucketing;
pub use cache::{
    cache_dir, cache_stats, chase_key, clear_cache_dir, disable_cache, reset_cache_stats,
    set_cache_dir, CacheStats, CACHE_ENV, CACHE_FORMAT_VERSION,
};
pub use chase::{
    build_chase_kernel, measure_chase, write_chain, write_shuffled_chain, ChaseError,
    ChaseMeasurement, ChaseParams, ChasePattern, ChaseSpace, UNROLL,
};
pub use exposure::ExposureAnalysis;
pub use inference::{infer_hierarchy, infer_line_size, CacheLevelEstimate};
pub use loaded::{build_loaded_kernel, loaded_chase, measure_chase_under_load, LoadedChase};
pub use parallel::{
    clear_tick_threads, clear_worker_count, env_tick_threads, grid_worker_count, par_map,
    parse_tick_threads, set_tick_threads, set_worker_count, tick_threads, try_par_map,
    worker_count, TickThreadsError,
};
pub use plateau::{detect_plateaus, Plateau};
pub use presets::{ArchPreset, Table1Row};
pub use report::{breakdown_csv, exposure_csv, shares_markdown, table1_csv, table1_markdown};
pub use sweep::{pow2_range, SkipReason, SkippedPoint, Sweep, SweepPoint};
pub use table1::{measure_row, measure_row_serial, MeasuredRow, Table1};
