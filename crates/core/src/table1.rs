//! Reproduction harness for the paper's **Table I**: global-memory pipeline
//! latencies (L1 / L2 / DRAM) across GPU generations.
//!
//! For each architecture preset, three chase operating points are derived
//! from the preset's own cache capacities:
//!
//! - **L1 point**: footprint ≤ ¼ of the L1, line-sized stride → steady-state
//!   L1 hits (through *local* memory on Kepler, whose L1 is local-only).
//! - **L2 point**: footprint ≥ 8× the L1 but ≤ ½ of one L2 slice,
//!   512 B stride → every access misses L1, hits L2.
//! - **DRAM point**: footprint 4× the L2 slice, 4 KiB stride → every access
//!   misses both caches.

use std::fmt;

use gpu_sim::{ArchDesc, GpuConfig, LevelKind};

use crate::chase::{measure_chase, ChaseError, ChaseParams};
use crate::parallel;
use crate::presets::{ArchPreset, Table1Row};

/// Measured latencies for one architecture (same shape as the expected
/// [`Table1Row`], but with fractional cycles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredRow {
    /// Measured L1 hit latency (absent if the preset has no L1).
    pub l1: Option<f64>,
    /// Measured L2 hit latency (absent if the preset has no L2).
    pub l2: Option<f64>,
    /// Measured DRAM latency.
    pub dram: f64,
}

impl MeasuredRow {
    /// Largest relative error versus the expected row, over the levels that
    /// exist (e.g. 0.02 = within 2%).
    pub fn max_rel_error(&self, expected: &Table1Row) -> f64 {
        let mut worst: f64 = 0.0;
        if let (Some(m), Some(e)) = (self.l1, expected.l1) {
            worst = worst.max((m - e as f64).abs() / e as f64);
        }
        if let (Some(m), Some(e)) = (self.l2, expected.l2) {
            worst = worst.max((m - e as f64).abs() / e as f64);
        }
        worst.max((self.dram - expected.dram as f64).abs() / expected.dram as f64)
    }
}

/// The chase operating points of one Table I row: a generic walk over the
/// architecture description's level list, deriving each point's footprint
/// from the levels' own capacities (see module docs). The `bool`s record
/// which optional levels exist so results can be reassembled positionally.
fn row_points(desc: &ArchDesc) -> (Vec<ChaseParams>, bool, bool) {
    let cap = |kind: LevelKind| {
        desc.level(kind)
            .and_then(|l| l.geom)
            .map(|g| g.cache.capacity())
    };
    let (l1_cap, l2_cap) = (cap(LevelKind::L1), cap(LevelKind::L2));
    // A sliced L2's description gives ONE slice's capacity; the chase must
    // spill the whole hash-interleaved array to reach DRAM.
    let l2_slices = desc.level(LevelKind::L2).map_or(1, |l| l.slices.max(1));
    let mut points = Vec::with_capacity(desc.levels.len());
    for level in &desc.levels {
        match (level.kind, level.geom) {
            (LevelKind::L1, Some(g)) => {
                let footprint = g.cache.capacity() / 4;
                points.push(if level.routing.global {
                    ChaseParams::global(footprint, 128)
                } else {
                    // Kepler-style: only local accesses can hit the L1.
                    ChaseParams::local(footprint, 128)
                });
            }
            (LevelKind::L2, Some(g)) => {
                let slice = g.cache.capacity();
                let footprint = (l1_cap.unwrap_or(0) * 8).max(32 * 1024).min(slice / 2);
                points.push(ChaseParams::global(footprint, 512));
            }
            (LevelKind::DramFront, _) => {
                let slice = l2_cap.unwrap_or(256 * 1024);
                points.push(ChaseParams::global(slice * l2_slices as u64 * 4, 4096));
            }
            // A cache level the generation does not have contributes no
            // operating point.
            (_, None) => {}
        }
    }
    (points, l1_cap.is_some(), l2_cap.is_some())
}

fn assemble_row(latencies: &[f64], has_l1: bool, has_l2: bool) -> MeasuredRow {
    let mut it = latencies.iter().copied();
    MeasuredRow {
        l1: has_l1.then(|| it.next().expect("L1 latency present")),
        l2: has_l2.then(|| it.next().expect("L2 latency present")),
        dram: it.next().expect("DRAM latency present"),
    }
}

/// Measures one architecture's Table I row using the single-SM microbench
/// machine (identical pipeline latencies, faster to simulate). The row's
/// up-to-three chase points are independent simulations and run on the
/// [`crate::parallel`] pool; results are identical to
/// [`measure_row_serial`].
///
/// # Errors
///
/// Propagates simulator failures as [`ChaseError`].
pub fn measure_row(preset: ArchPreset) -> Result<MeasuredRow, ChaseError> {
    let cfg = preset.config_microbench();
    let (points, has_l1, has_l2) = row_points(&cfg.arch_desc());
    let latencies = parallel::try_par_map(&points, |_, params| {
        measure_chase(&cfg, params).map(|m| m.per_access)
    })?;
    Ok(assemble_row(&latencies, has_l1, has_l2))
}

/// Single-threaded reference implementation of [`measure_row`]: same
/// operating points, measured one at a time in level order.
///
/// # Errors
///
/// Propagates simulator failures as [`ChaseError`].
pub fn measure_row_serial(preset: ArchPreset) -> Result<MeasuredRow, ChaseError> {
    let cfg = preset.config_microbench();
    let (points, has_l1, has_l2) = row_points(&cfg.arch_desc());
    let mut latencies = Vec::with_capacity(points.len());
    for params in &points {
        latencies.push(measure_chase(&cfg, params)?.per_access);
    }
    Ok(assemble_row(&latencies, has_l1, has_l2))
}

/// The reproduced Table I: per-architecture measured and expected values.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    rows: Vec<(ArchPreset, MeasuredRow)>,
}

impl Table1 {
    /// Measures all four architectures of the paper's Table I.
    ///
    /// # Errors
    ///
    /// Propagates the first measurement failure.
    pub fn measure() -> Result<Self, ChaseError> {
        Self::measure_presets(&ArchPreset::TABLE1)
    }

    /// Single-threaded reference implementation of [`Table1::measure`]:
    /// rows and their chase points measured one at a time, in order.
    ///
    /// # Errors
    ///
    /// Propagates the first measurement failure.
    pub fn measure_serial() -> Result<Self, ChaseError> {
        let mut rows = Vec::with_capacity(ArchPreset::TABLE1.len());
        for &p in &ArchPreset::TABLE1 {
            rows.push((p, measure_row_serial(p)?));
        }
        Ok(Table1 { rows })
    }

    /// Measures a chosen subset of architectures. The independent
    /// (preset, chase-point) simulations are flattened into one batch for
    /// the [`crate::parallel`] pool, so all rows' points load-balance
    /// across the available workers; results are reassembled in preset
    /// order and are identical to [`Table1::measure_serial`].
    ///
    /// # Errors
    ///
    /// Propagates the first measurement failure (in preset-major,
    /// level-minor order — the same failure the serial path reports).
    pub fn measure_presets(presets: &[ArchPreset]) -> Result<Self, ChaseError> {
        struct RowPlan {
            cfg: GpuConfig,
            has_l1: bool,
            has_l2: bool,
            first_point: usize,
            num_points: usize,
        }
        let mut plans = Vec::with_capacity(presets.len());
        let mut batch: Vec<(usize, ChaseParams)> = Vec::new();
        for (row, &p) in presets.iter().enumerate() {
            let cfg = p.config_microbench();
            let (points, has_l1, has_l2) = row_points(&cfg.arch_desc());
            plans.push(RowPlan {
                cfg,
                has_l1,
                has_l2,
                first_point: batch.len(),
                num_points: points.len(),
            });
            batch.extend(points.into_iter().map(|params| (row, params)));
        }
        let latencies = parallel::try_par_map(&batch, |_, (row, params)| {
            measure_chase(&plans[*row].cfg, params).map(|m| m.per_access)
        })?;
        let rows = presets
            .iter()
            .zip(&plans)
            .map(|(&p, plan)| {
                let lats = &latencies[plan.first_point..plan.first_point + plan.num_points];
                (p, assemble_row(lats, plan.has_l1, plan.has_l2))
            })
            .collect();
        Ok(Table1 { rows })
    }

    /// The measured rows.
    pub fn rows(&self) -> &[(ArchPreset, MeasuredRow)] {
        &self.rows
    }

    /// Largest relative error across all cells versus the paper.
    pub fn max_rel_error(&self) -> f64 {
        self.rows
            .iter()
            .map(|(p, m)| m.max_rel_error(&p.table1_expected()))
            .fold(0.0, f64::max)
    }
}

impl fmt::Display for Table1 {
    /// Renders measured (and expected) values in the layout of the paper's
    /// Table I.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:8}", "Unit")?;
        for (p, _) in &self.rows {
            write!(f, " | {:>22}", p.name())?;
        }
        writeln!(f)?;
        let line_len = 8 + self.rows.len() * 25;
        writeln!(f, "{}", "-".repeat(line_len))?;
        let cell = |m: Option<f64>, e: Option<u64>| -> String {
            match (m, e) {
                (Some(m), Some(e)) => format!("{m:>8.0} (paper {e:>4})"),
                (Some(m), None) => format!("{m:>8.0} (paper  ---)"),
                _ => format!("{:>20}", "x"),
            }
        };
        write!(f, "{:8}", "L1 D$")?;
        for (p, m) in &self.rows {
            write!(f, " | {:>22}", cell(m.l1, p.table1_expected().l1))?;
        }
        writeln!(f)?;
        write!(f, "{:8}", "L2 D$")?;
        for (p, m) in &self.rows {
            write!(f, " | {:>22}", cell(m.l2, p.table1_expected().l2))?;
        }
        writeln!(f)?;
        write!(f, "{:8}", "DRAM")?;
        for (p, m) in &self.rows {
            write!(
                f,
                " | {:>22}",
                cell(Some(m.dram), Some(p.table1_expected().dram))
            )?;
        }
        writeln!(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fermi_row_matches_paper_within_two_percent() {
        let m = measure_row(ArchPreset::FermiGf106).unwrap();
        let err = m.max_rel_error(&ArchPreset::FermiGf106.table1_expected());
        assert!(err < 0.02, "relative error {err:.3}: {m:?}");
    }

    #[test]
    fn kepler_row_matches_paper_within_two_percent() {
        let m = measure_row(ArchPreset::KeplerGk104).unwrap();
        let err = m.max_rel_error(&ArchPreset::KeplerGk104.table1_expected());
        assert!(err < 0.02, "relative error {err:.3}: {m:?}");
        assert!(m.l1.is_some(), "Kepler L1 measured via local chase");
    }

    #[test]
    fn tesla_has_no_cache_plateaus() {
        let m = measure_row(ArchPreset::TeslaGt200).unwrap();
        assert!(m.l1.is_none() && m.l2.is_none());
        assert!((m.dram - 440.0).abs() < 9.0);
    }

    #[test]
    fn maxwell_row_matches_paper_within_two_percent() {
        let m = measure_row(ArchPreset::MaxwellGm107).unwrap();
        let err = m.max_rel_error(&ArchPreset::MaxwellGm107.table1_expected());
        assert!(err < 0.02, "relative error {err:.3}: {m:?}");
        assert!(m.l1.is_none(), "Maxwell has no L1");
    }

    #[test]
    fn table_renders_paper_layout() {
        let t = Table1 {
            rows: vec![(
                ArchPreset::FermiGf106,
                MeasuredRow {
                    l1: Some(45.0),
                    l2: Some(310.0),
                    dram: 685.0,
                },
            )],
        };
        let s = t.to_string();
        assert!(s.contains("L1 D$"));
        assert!(s.contains("DRAM"));
        assert!(s.contains("GF106"));
        assert!(s.contains("paper  310"));
        assert!(t.max_rel_error() < 1e-9);
    }
}
