//! Per-generation GPU presets reproducing the machines of the paper's
//! Table I, expressed as declarative [`ArchDesc`] data tables.
//!
//! Each preset encodes the *structure* the paper attributes to its
//! generation — which cache levels exist and which memory spaces they serve
//! — with stage latencies calibrated so that the pointer-chase microbenchmark
//! ([`crate::chase`]) recovers the paper's measured latencies:
//!
//! | Unit  | GT200 | GF106 | GK104 | GM107 |
//! |-------|-------|-------|-------|-------|
//! | L1 D$ | —     | 45    | 30 (local only) | — |
//! | L2 D$ | —     | 310   | 175   | 194   |
//! | DRAM  | 440   | 685   | 300   | 350   |
//!
//! A preset is nothing but an [`ArchDesc`]: [`ArchPreset::desc`] returns the
//! description and [`ArchPreset::config`] lowers it through
//! [`GpuConfig::from_arch`]. Adding a generation means writing one more data
//! table (see the GK110 entry, which reuses GK104's geometry with the
//! read-only global path routed through the L1 per Mei & Chu's Kepler study)
//! — no simulator code changes.
//!
//! Beyond the paper's Table I, two modern-generation presets exercise the
//! v2 description schema: GV100 (Volta-class) and GA102 (Ampere-class),
//! calibrated against the microbenchmark dissections of arXiv:2208.11174
//! (Volta/Turing/Ampere) and arXiv:2507.10789. Both use 32-byte sectored
//! caches and hash-interleaved L2 slices; GA102's twelve memory partitions
//! prove the partition count is not restricted to powers of two.

use gpu_icnt::IcntConfig;
use gpu_mem::{CacheConfig, DramSched, DramTiming, MshrConfig, Replacement};
use gpu_sim::{
    ArchDesc, CacheGeom, FabricDesc, GpuConfig, LevelDesc, LevelKind, MemDesc, Routing,
    SchedPolicy, SmDesc, WritePolicy,
};

/// The paper's expected Table I latencies for one architecture (hot-clock
/// cycles). `None` means the unit does not exist (or is bypassed for global
/// accesses and thus not reported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// L1 data-cache hit latency.
    pub l1: Option<u64>,
    /// L2 data-cache hit latency.
    pub l2: Option<u64>,
    /// DRAM access latency.
    pub dram: u64,
}

/// A GPU generation analyzed by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchPreset {
    /// NVIDIA Tesla GT200: global memory uncached (values from Wong et
    /// al.'s GT200 study, as cited by the paper).
    TeslaGt200,
    /// NVIDIA Fermi GF106: two cache levels, L1 serves global and local.
    FermiGf106,
    /// NVIDIA Fermi GF100: the GPGPU-Sim configuration used for the paper's
    /// dynamic analysis (§III); same pipeline latencies as GF106.
    FermiGf100,
    /// NVIDIA Kepler GK104: L1 serves only local accesses; global loads see
    /// L2 at best.
    KeplerGk104,
    /// NVIDIA Kepler GK110: GK104's geometry with global loads routed
    /// through the L1 (the read-only data path measured by Mei & Chu).
    KeplerGk110,
    /// NVIDIA Maxwell GM107: L1 data cache removed; L2 and DRAM slower than
    /// Kepler's.
    MaxwellGm107,
    /// NVIDIA Volta GV100: 32-byte sectored caches, two hash-interleaved L2
    /// slices per partition (arXiv:2208.11174 dissection).
    VoltaGv100,
    /// NVIDIA Ampere GA102: 32-byte sectored caches, four L2 slices per
    /// partition and twelve memory partitions (arXiv:2507.10789).
    AmpereGa102,
}

impl ArchPreset {
    /// All presets in generation order.
    pub const ALL: [ArchPreset; 8] = [
        ArchPreset::TeslaGt200,
        ArchPreset::FermiGf106,
        ArchPreset::FermiGf100,
        ArchPreset::KeplerGk104,
        ArchPreset::KeplerGk110,
        ArchPreset::MaxwellGm107,
        ArchPreset::VoltaGv100,
        ArchPreset::AmpereGa102,
    ];

    /// The four presets appearing as columns of the paper's Table I.
    pub const TABLE1: [ArchPreset; 4] = [
        ArchPreset::TeslaGt200,
        ArchPreset::FermiGf106,
        ArchPreset::KeplerGk104,
        ArchPreset::MaxwellGm107,
    ];

    /// Short display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ArchPreset::TeslaGt200 => "GT200 (Tesla)",
            ArchPreset::FermiGf106 => "GF106 (Fermi)",
            ArchPreset::FermiGf100 => "GF100 (Fermi)",
            ArchPreset::KeplerGk104 => "GK104 (Kepler)",
            ArchPreset::KeplerGk110 => "GK110 (Kepler)",
            ArchPreset::MaxwellGm107 => "GM107 (Maxwell)",
            ArchPreset::VoltaGv100 => "GV100 (Volta)",
            ArchPreset::AmpereGa102 => "GA102 (Ampere)",
        }
    }

    /// Canonical lower-case chip token, as the command-line binaries and the
    /// serve spec accept it. `parse(p.token())` always round-trips.
    pub fn token(self) -> &'static str {
        match self {
            ArchPreset::TeslaGt200 => "gt200",
            ArchPreset::FermiGf106 => "gf106",
            ArchPreset::FermiGf100 => "gf100",
            ArchPreset::KeplerGk104 => "gk104",
            ArchPreset::KeplerGk110 => "gk110",
            ArchPreset::MaxwellGm107 => "gm107",
            ArchPreset::VoltaGv100 => "gv100",
            ArchPreset::AmpereGa102 => "ga102",
        }
    }

    /// Every accepted chip token, comma-separated in generation order — the
    /// single source of truth for "unknown preset" error messages across the
    /// binaries and the serve spec.
    pub fn valid_tokens() -> String {
        let tokens: Vec<&str> = ArchPreset::ALL.iter().map(|p| p.token()).collect();
        tokens.join(", ")
    }

    /// Parses a user-facing preset name as the sweep/trace binaries accept
    /// it: a chip name (`gk104`) or a generation name (`kepler`, which maps
    /// to the generation's Table I representative). Case-insensitive.
    pub fn parse(s: &str) -> Option<ArchPreset> {
        match s.to_ascii_lowercase().as_str() {
            "tesla" | "gt200" => Some(ArchPreset::TeslaGt200),
            "fermi" | "gf106" => Some(ArchPreset::FermiGf106),
            "gf100" => Some(ArchPreset::FermiGf100),
            "kepler" | "gk104" => Some(ArchPreset::KeplerGk104),
            "gk110" => Some(ArchPreset::KeplerGk110),
            "maxwell" | "gm107" => Some(ArchPreset::MaxwellGm107),
            "volta" | "gv100" => Some(ArchPreset::VoltaGv100),
            "ampere" | "ga102" => Some(ArchPreset::AmpereGa102),
            _ => None,
        }
    }

    /// The paper's Table I values for this architecture. The GK110 preset is
    /// not a Table I column; its expectations are GK104's timings with the
    /// L1 row observable from the global pipeline.
    pub fn table1_expected(self) -> Table1Row {
        match self {
            ArchPreset::TeslaGt200 => Table1Row {
                l1: None,
                l2: None,
                dram: 440,
            },
            ArchPreset::FermiGf106 | ArchPreset::FermiGf100 => Table1Row {
                l1: Some(45),
                l2: Some(310),
                dram: 685,
            },
            ArchPreset::KeplerGk104 => Table1Row {
                l1: Some(30), // local accesses only
                l2: Some(175),
                dram: 300,
            },
            ArchPreset::KeplerGk110 => Table1Row {
                l1: Some(30), // read-only global path through the L1
                l2: Some(175),
                dram: 300,
            },
            ArchPreset::MaxwellGm107 => Table1Row {
                l1: None,
                l2: Some(194),
                dram: 350,
            },
            // The modern presets are not Table I columns; their expectations
            // come from the calibration targets of the validation harness
            // (`gpu-bench`'s reference tables, after arXiv:2208.11174 and
            // arXiv:2507.10789).
            ArchPreset::VoltaGv100 => Table1Row {
                l1: Some(28),
                l2: Some(193),
                dram: 472,
            },
            ArchPreset::AmpereGa102 => Table1Row {
                l1: Some(33),
                l2: Some(212),
                dram: 466,
            },
        }
    }

    /// The declarative machine description for this generation — the
    /// authoritative data table everything else (config, tick schedule,
    /// sweep cache keys, trace stage labels) derives from.
    pub fn desc(self) -> ArchDesc {
        match self {
            ArchPreset::TeslaGt200 => tesla_gt200(),
            ArchPreset::FermiGf106 => fermi(4, 2, "GF106 (Fermi)"),
            ArchPreset::FermiGf100 => fermi(15, 6, "GF100 (Fermi)"),
            ArchPreset::KeplerGk104 => kepler(false, "GK104 (Kepler)"),
            ArchPreset::KeplerGk110 => kepler(true, "GK110 (Kepler)"),
            ArchPreset::MaxwellGm107 => maxwell_gm107(),
            ArchPreset::VoltaGv100 => volta_gv100(),
            ArchPreset::AmpereGa102 => ampere_ga102(),
        }
    }

    /// Builds the full simulated machine for this generation.
    ///
    /// # Panics
    ///
    /// Panics if the preset fails description validation — presets are
    /// hand-written data tables, so a structural mistake (a zero queue, an
    /// L1 slower than its L2) should fail at construction, not as a mystery
    /// deadlock deep in a run.
    pub fn config(self) -> GpuConfig {
        GpuConfig::from_arch(&self.desc()).expect("preset data tables are structurally valid")
    }

    /// A single-SM, single-partition variant with identical pipeline
    /// latencies, used by the static-latency microbenchmarks: a lone thread
    /// cannot create contention, so shrinking the machine changes nothing
    /// but simulation speed. This is [`ArchDesc::microbench`] applied to the
    /// same description that [`ArchPreset::config`] lowers.
    pub fn config_microbench(self) -> GpuConfig {
        GpuConfig::from_arch(&self.desc().microbench())
            .expect("shrinking a valid description keeps it valid")
    }
}

/// Tag/MSHR geometry shared by every paper-era cache: 128-byte unsectored
/// lines, LRU, a 32-entry MSHR table merging up to 8 accesses per line.
fn geom(sets: usize, ways: usize, hit_latency: u64) -> CacheGeom {
    CacheGeom {
        cache: CacheConfig {
            sets,
            ways,
            line_size: 128,
            replacement: Replacement::Lru,
        },
        mshr: MshrConfig {
            entries: 32,
            max_merged: 8,
        },
        hit_latency,
        sector_bytes: None,
    }
}

/// Modern sectored geometry: 128-byte lines filled in 32-byte sectors, a
/// deeper MSHR file (misses are tracked per sector, so more entries are in
/// flight for the same line footprint).
fn sectored_geom(sets: usize, ways: usize, hit_latency: u64) -> CacheGeom {
    CacheGeom {
        cache: CacheConfig {
            sets,
            ways,
            line_size: 128,
            replacement: Replacement::Lru,
        },
        mshr: MshrConfig {
            entries: 64,
            max_merged: 8,
        },
        hit_latency,
        sector_bytes: Some(32),
    }
}

/// An L1 level: 4-way, 8-deep miss queue (the paper's `L1toICNT` queue).
fn l1_level(sets: usize, hit_latency: u64, routing: Routing) -> LevelDesc {
    LevelDesc {
        kind: LevelKind::L1,
        geom: Some(geom(sets, 4, hit_latency)),
        queue: 8,
        routing,
        write_policy: WritePolicy::WriteThrough,
        slices: 1,
    }
}

/// A modern sectored L1: same queueing as [`l1_level`], 32-byte sectors.
fn sectored_l1_level(sets: usize, hit_latency: u64, routing: Routing) -> LevelDesc {
    LevelDesc {
        kind: LevelKind::L1,
        geom: Some(sectored_geom(sets, 4, hit_latency)),
        queue: 8,
        routing,
        write_policy: WritePolicy::WriteThrough,
        slices: 1,
    }
}

/// An L2 slice level: 8-way, 8-deep input queue, serving both spaces.
fn l2_level(sets: usize, hit_latency: u64) -> LevelDesc {
    LevelDesc {
        kind: LevelKind::L2,
        geom: Some(geom(sets, 8, hit_latency)),
        queue: 8,
        routing: Routing::ALL,
        write_policy: WritePolicy::WriteThrough,
        slices: 1,
    }
}

/// A modern L2: sectored, write-back, hash-interleaved across `slices`
/// independent banks per partition. `sets` describes ONE slice.
fn sectored_l2_level(sets: usize, hit_latency: u64, slices: usize) -> LevelDesc {
    LevelDesc {
        kind: LevelKind::L2,
        geom: Some(sectored_geom(sets, 8, hit_latency)),
        queue: 8,
        routing: Routing::ALL,
        write_policy: WritePolicy::WriteBack,
        slices,
    }
}

/// A cache level the generation does not have: no geometry, no routing,
/// only the structural queue every level keeps.
fn absent_level(kind: LevelKind) -> LevelDesc {
    LevelDesc {
        kind,
        geom: None,
        queue: 8,
        routing: Routing::NONE,
        write_policy: WritePolicy::WriteThrough,
        slices: 1,
    }
}

/// The DRAM front: a 128-deep controller queue, no cache geometry.
fn dram_front() -> LevelDesc {
    LevelDesc {
        kind: LevelKind::DramFront,
        geom: None,
        queue: 128,
        routing: Routing::ALL,
        write_policy: WritePolicy::WriteThrough,
        slices: 1,
    }
}

/// GDDR timing shared across the tables except for the four paper-visible
/// parameters.
fn mem(t_rcd: u64, t_rp: u64, t_cl: u64, burst: u64, num_partitions: usize) -> MemDesc {
    MemDesc {
        timing: DramTiming {
            t_rcd,
            t_rp,
            t_cl,
            burst,
        },
        sched: DramSched::FrFcfs,
        num_partitions,
        partition_chunk: 256,
        banks: 16,
        row_bytes: 2048,
    }
}

fn fabric(latency: u64, rop_latency: u64) -> FabricDesc {
    FabricDesc {
        icnt: IcntConfig {
            latency,
            output_queue: 8,
            inject_per_src: 1,
            eject_per_dst: 1,
        },
        rop_latency,
        rop_queue: 16,
    }
}

/// Tesla GT200: 30 SMs, 8 partitions, no data caches for global memory.
/// Target: DRAM 440.
fn tesla_gt200() -> ArchDesc {
    ArchDesc {
        name: "GT200 (Tesla)".to_string(),
        num_sms: 30,
        line_size: 128,
        sm: SmDesc {
            warp_size: 32,
            max_warps: 32,
            max_ctas: 8,
            issue_width: 1,
            scheduler: SchedPolicy::Lrr,
            alu_latency: 24,
            fp_latency: 24,
            sfu_latency: 48,
            shared_latency: 38,
            base_latency: 24,
            lsu_queue: 34,
            fill_latency: 10,
        },
        levels: vec![
            absent_level(LevelKind::L1),
            absent_level(LevelKind::L2),
            dram_front(),
        ],
        fabric: fabric(40, 45),
        mem: mem(60, 60, 151, 8, 8),
    }
}

/// Fermi GF100/GF106: two-level hierarchy, L1 serves global and local.
/// Targets: L1 45, L2 310, DRAM 685.
fn fermi(num_sms: usize, num_partitions: usize, name: &str) -> ArchDesc {
    ArchDesc {
        name: name.to_string(),
        num_sms,
        line_size: 128,
        sm: SmDesc {
            warp_size: 32,
            max_warps: 48,
            max_ctas: 8,
            issue_width: 2,
            scheduler: SchedPolicy::Lrr,
            alu_latency: 18,
            fp_latency: 18,
            sfu_latency: 40,
            shared_latency: 30,
            base_latency: 28,
            lsu_queue: 34,
            fill_latency: 10,
        },
        levels: vec![
            l1_level(32, 17, Routing::ALL), // 16 KB
            l2_level(128, 115),             // 128 KB per slice
            dram_front(),
        ],
        fabric: fabric(48, 60),
        mem: mem(80, 80, 321, 8, num_partitions),
    }
}

/// Kepler GK104/GK110: identical geometry; the chips differ only in the L1
/// routing table — GK104 caches local accesses only, GK110's read-only
/// global path goes through the L1 as well.
/// Targets: L1 30, L2 175, DRAM 300.
fn kepler(l1_serves_global: bool, name: &str) -> ArchDesc {
    ArchDesc {
        name: name.to_string(),
        num_sms: 8,
        line_size: 128,
        sm: SmDesc {
            warp_size: 32,
            max_warps: 64,
            max_ctas: 16,
            issue_width: 2,
            scheduler: SchedPolicy::Lrr,
            alu_latency: 11,
            fp_latency: 11,
            sfu_latency: 30,
            shared_latency: 26,
            base_latency: 14,
            lsu_queue: 34,
            fill_latency: 9,
        },
        levels: vec![
            l1_level(
                32, // 16 KB
                16,
                Routing {
                    global: l1_serves_global,
                    local: true,
                },
            ),
            l2_level(128, 71), // 128 KB per slice
            dram_front(),
        ],
        fabric: fabric(25, 30),
        mem: mem(28, 28, 129, 10, 4),
    }
}

/// Maxwell GM107: no L1 data cache; larger but slower L2 than Kepler.
/// Targets: L2 194, DRAM 350.
fn maxwell_gm107() -> ArchDesc {
    ArchDesc {
        name: "GM107 (Maxwell)".to_string(),
        num_sms: 5,
        line_size: 128,
        sm: SmDesc {
            warp_size: 32,
            max_warps: 64,
            max_ctas: 32,
            issue_width: 2,
            scheduler: SchedPolicy::Lrr,
            alu_latency: 6,
            fp_latency: 6,
            sfu_latency: 20,
            shared_latency: 24,
            base_latency: 16,
            lsu_queue: 34,
            fill_latency: 9,
        },
        levels: vec![
            absent_level(LevelKind::L1),
            l2_level(1024, 78), // 1 MB per slice (2 MB total)
            dram_front(),
        ],
        fabric: fabric(28, 34),
        mem: mem(36, 36, 150, 11, 2),
    }
}

/// Volta GV100: 80 SMs, sectored caches, two L2 slices per partition.
/// Targets (arXiv:2208.11174 calibration): L1 28, L2 193, DRAM 472.
fn volta_gv100() -> ArchDesc {
    ArchDesc {
        name: "GV100 (Volta)".to_string(),
        num_sms: 80,
        line_size: 128,
        sm: SmDesc {
            warp_size: 32,
            max_warps: 64,
            max_ctas: 32,
            issue_width: 2,
            scheduler: SchedPolicy::Lrr,
            alu_latency: 4,
            fp_latency: 4,
            sfu_latency: 14,
            shared_latency: 19,
            base_latency: 12,
            lsu_queue: 34,
            fill_latency: 10,
        },
        levels: vec![
            sectored_l1_level(64, 16, Routing::ALL), // 32 KB of a 128 KB unified SRAM
            sectored_l2_level(256, 94, 2),           // 256 KB per slice, 2 slices
            dram_front(),
        ],
        fabric: fabric(24, 28),
        mem: mem(45, 45, 270, 12, 8), // HBM2: long CL in hot clocks, 8 stacks-as-partitions
    }
}

/// Ampere GA102: 84 SMs, sectored caches, four L2 slices per partition and
/// twelve partitions (GDDR6X's 384-bit bus = twelve 32-bit channels).
/// Targets (arXiv:2507.10789 calibration): L1 33, L2 212, DRAM 466.
fn ampere_ga102() -> ArchDesc {
    ArchDesc {
        name: "GA102 (Ampere)".to_string(),
        num_sms: 84,
        line_size: 128,
        sm: SmDesc {
            warp_size: 32,
            max_warps: 48,
            max_ctas: 16,
            issue_width: 2,
            scheduler: SchedPolicy::Lrr,
            alu_latency: 4,
            fp_latency: 4,
            sfu_latency: 14,
            shared_latency: 19,
            base_latency: 14,
            lsu_queue: 34,
            fill_latency: 10,
        },
        levels: vec![
            sectored_l1_level(64, 19, Routing::ALL), // 32 KB of the unified SRAM
            sectored_l2_level(128, 105, 4),          // 128 KB per slice, 4 slices
            dram_front(),
        ],
        fabric: fabric(26, 30),
        mem: mem(48, 48, 250, 12, 12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::PipelineSpace;

    #[test]
    fn all_presets_build_valid_configs() {
        for p in ArchPreset::ALL {
            p.config().assert_valid();
            p.config_microbench().assert_valid();
        }
    }

    #[test]
    fn configs_roundtrip_to_their_descriptions() {
        // `from_arch` and `arch_desc` are inverses on the preset tables, so
        // nothing is lost (or silently defaulted) in the lowering.
        for p in ArchPreset::ALL {
            let desc = p.desc();
            let cfg = p.config();
            assert_eq!(cfg.arch_desc(), desc, "{}", p.name());
        }
    }

    #[test]
    fn presets_validate_at_construction() {
        // `config()` routes through description validation, so a corrupted
        // preset can only escape as a panic — prove the rejection paths fire
        // on the exact classes of mistakes the validator covers.
        for p in ArchPreset::ALL {
            let c = p.config();
            assert!(c.sanitize, "{}: sanitizer must default on", p.name());
            if let (Some(l1), Some(l2)) = (&c.l1, &c.l2) {
                assert!(l1.hit_latency < l2.hit_latency, "{}", p.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "ROP queue capacity")]
    fn corrupted_preset_zero_queue_is_rejected() {
        let mut c = ArchPreset::FermiGf100.config();
        c.rop_queue = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "L1 hit latency")]
    fn corrupted_preset_l1_slower_than_l2_is_rejected() {
        let mut c = ArchPreset::KeplerGk104.config();
        c.l1.as_mut().unwrap().hit_latency = 400;
        c.assert_valid();
    }

    #[test]
    fn generation_structure_matches_paper() {
        // Tesla: uncached global pipeline.
        let t = ArchPreset::TeslaGt200.config();
        assert!(t.l1.is_none() && t.l2.is_none());
        // Fermi: L1 serves global and local.
        let f = ArchPreset::FermiGf106.config();
        assert!(f.l1_serves(PipelineSpace::Global));
        assert!(f.l1_serves(PipelineSpace::Local));
        // Kepler GK104: L1 local-only.
        let k = ArchPreset::KeplerGk104.config();
        assert!(!k.l1_serves(PipelineSpace::Global));
        assert!(k.l1_serves(PipelineSpace::Local));
        // Kepler GK110: the global read path goes through the L1 too.
        let k110 = ArchPreset::KeplerGk110.config();
        assert!(k110.l1_serves(PipelineSpace::Global));
        assert!(k110.l1_serves(PipelineSpace::Local));
        // Maxwell: L1 gone.
        let m = ArchPreset::MaxwellGm107.config();
        assert!(m.l1.is_none());
        assert!(m.l2.is_some());
    }

    #[test]
    fn gk110_differs_from_gk104_only_in_l1_routing() {
        let mut base = ArchPreset::KeplerGk104.desc();
        let gk110 = ArchPreset::KeplerGk110.desc();
        base.name = gk110.name.clone();
        base.levels[0].routing = Routing::ALL;
        assert_eq!(base, gk110);
    }

    #[test]
    fn expected_rows_match_paper_table() {
        assert_eq!(ArchPreset::TeslaGt200.table1_expected().dram, 440);
        let fermi = ArchPreset::FermiGf106.table1_expected();
        assert_eq!((fermi.l1, fermi.l2, fermi.dram), (Some(45), Some(310), 685));
        let kepler = ArchPreset::KeplerGk104.table1_expected();
        assert_eq!(
            (kepler.l1, kepler.l2, kepler.dram),
            (Some(30), Some(175), 300)
        );
        let maxwell = ArchPreset::MaxwellGm107.table1_expected();
        assert_eq!(
            (maxwell.l1, maxwell.l2, maxwell.dram),
            (None, Some(194), 350)
        );
    }

    #[test]
    fn microbench_config_shrinks_machine_only() {
        for p in ArchPreset::ALL {
            let full = p.config();
            let micro = p.config_microbench();
            assert_eq!(micro.num_sms, 1);
            assert_eq!(micro.num_partitions, 1);
            assert_eq!(micro.sm_base_latency, full.sm_base_latency);
            assert_eq!(micro.icnt.latency, full.icnt.latency);
            assert_eq!(micro.dram.timing, full.dram.timing);
        }
    }

    #[test]
    fn parse_accepts_chip_and_generation_names() {
        assert_eq!(ArchPreset::parse("tesla"), Some(ArchPreset::TeslaGt200));
        assert_eq!(ArchPreset::parse("GT200"), Some(ArchPreset::TeslaGt200));
        assert_eq!(ArchPreset::parse("fermi"), Some(ArchPreset::FermiGf106));
        assert_eq!(ArchPreset::parse("gf100"), Some(ArchPreset::FermiGf100));
        assert_eq!(ArchPreset::parse("kepler"), Some(ArchPreset::KeplerGk104));
        assert_eq!(ArchPreset::parse("gk110"), Some(ArchPreset::KeplerGk110));
        assert_eq!(ArchPreset::parse("maxwell"), Some(ArchPreset::MaxwellGm107));
        assert_eq!(ArchPreset::parse("volta"), Some(ArchPreset::VoltaGv100));
        assert_eq!(ArchPreset::parse("GV100"), Some(ArchPreset::VoltaGv100));
        assert_eq!(ArchPreset::parse("ampere"), Some(ArchPreset::AmpereGa102));
        assert_eq!(ArchPreset::parse("ga102"), Some(ArchPreset::AmpereGa102));
        assert_eq!(ArchPreset::parse("hopper"), None);
    }

    #[test]
    fn tokens_roundtrip_and_enumerate() {
        for p in ArchPreset::ALL {
            assert_eq!(ArchPreset::parse(p.token()), Some(p), "{}", p.name());
        }
        let listing = ArchPreset::valid_tokens();
        for p in ArchPreset::ALL {
            assert!(listing.contains(p.token()), "{} missing", p.token());
        }
        assert_eq!(
            listing,
            "gt200, gf106, gf100, gk104, gk110, gm107, gv100, ga102"
        );
    }

    #[test]
    fn modern_presets_are_sectored_and_sliced() {
        for (p, slices, partitions) in [
            (ArchPreset::VoltaGv100, 2, 8),
            (ArchPreset::AmpereGa102, 4, 12),
        ] {
            let desc = p.desc();
            for level in &desc.levels {
                if let Some(g) = &level.geom {
                    assert_eq!(g.sector_bytes, Some(32), "{}", p.name());
                    assert_eq!(g.sectors_per_line(), 4, "{}", p.name());
                }
                if level.kind == LevelKind::L2 {
                    assert_eq!(level.slices, slices, "{}", p.name());
                }
            }
            assert_eq!(desc.transaction_granule(), 32, "{}", p.name());
            assert_eq!(desc.mem.num_partitions, partitions, "{}", p.name());
            p.config().assert_valid();
        }
        // GA102's partition count is deliberately not a power of two.
        assert!(!ArchPreset::AmpereGa102
            .desc()
            .mem
            .num_partitions
            .is_power_of_two());
    }

    #[test]
    fn maxwell_slower_than_kepler_everywhere() {
        // The paper's §II observation: Maxwell's pipeline is slower than
        // Kepler's at every level.
        let k = ArchPreset::KeplerGk104.table1_expected();
        let m = ArchPreset::MaxwellGm107.table1_expected();
        assert!(m.l2.unwrap() > k.l2.unwrap());
        assert!(m.dram > k.dram);
    }
}
