//! Per-generation GPU presets reproducing the machines of the paper's
//! Table I.
//!
//! Each preset encodes the *structure* the paper attributes to its
//! generation — which cache levels exist and which memory spaces they serve
//! — with stage latencies calibrated so that the pointer-chase microbenchmark
//! ([`crate::chase`]) recovers the paper's measured latencies:
//!
//! | Unit  | GT200 | GF106 | GK104 | GM107 |
//! |-------|-------|-------|-------|-------|
//! | L1 D$ | —     | 45    | 30 (local only) | — |
//! | L2 D$ | —     | 310   | 175   | 194   |
//! | DRAM  | 440   | 685   | 300   | 350   |

use gpu_icnt::IcntConfig;
use gpu_mem::{CacheConfig, DramConfig, DramSched, DramTiming, MshrConfig, Replacement};
use gpu_sim::{GpuConfig, L1Config, L2Config, SchedPolicy, WritePolicy};

/// The paper's expected Table I latencies for one architecture (hot-clock
/// cycles). `None` means the unit does not exist (or is bypassed for global
/// accesses and thus not reported).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// L1 data-cache hit latency.
    pub l1: Option<u64>,
    /// L2 data-cache hit latency.
    pub l2: Option<u64>,
    /// DRAM access latency.
    pub dram: u64,
}

/// A GPU generation analyzed by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArchPreset {
    /// NVIDIA Tesla GT200: global memory uncached (values from Wong et
    /// al.'s GT200 study, as cited by the paper).
    TeslaGt200,
    /// NVIDIA Fermi GF106: two cache levels, L1 serves global and local.
    FermiGf106,
    /// NVIDIA Fermi GF100: the GPGPU-Sim configuration used for the paper's
    /// dynamic analysis (§III); same pipeline latencies as GF106.
    FermiGf100,
    /// NVIDIA Kepler GK104: L1 serves only local accesses; global loads see
    /// L2 at best.
    KeplerGk104,
    /// NVIDIA Maxwell GM107: L1 data cache removed; L2 and DRAM slower than
    /// Kepler's.
    MaxwellGm107,
}

impl ArchPreset {
    /// All presets in generation order.
    pub const ALL: [ArchPreset; 5] = [
        ArchPreset::TeslaGt200,
        ArchPreset::FermiGf106,
        ArchPreset::FermiGf100,
        ArchPreset::KeplerGk104,
        ArchPreset::MaxwellGm107,
    ];

    /// The four presets appearing as columns of the paper's Table I.
    pub const TABLE1: [ArchPreset; 4] = [
        ArchPreset::TeslaGt200,
        ArchPreset::FermiGf106,
        ArchPreset::KeplerGk104,
        ArchPreset::MaxwellGm107,
    ];

    /// Short display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            ArchPreset::TeslaGt200 => "GT200 (Tesla)",
            ArchPreset::FermiGf106 => "GF106 (Fermi)",
            ArchPreset::FermiGf100 => "GF100 (Fermi)",
            ArchPreset::KeplerGk104 => "GK104 (Kepler)",
            ArchPreset::MaxwellGm107 => "GM107 (Maxwell)",
        }
    }

    /// The paper's Table I values for this architecture.
    pub fn table1_expected(self) -> Table1Row {
        match self {
            ArchPreset::TeslaGt200 => Table1Row {
                l1: None,
                l2: None,
                dram: 440,
            },
            ArchPreset::FermiGf106 | ArchPreset::FermiGf100 => Table1Row {
                l1: Some(45),
                l2: Some(310),
                dram: 685,
            },
            ArchPreset::KeplerGk104 => Table1Row {
                l1: Some(30), // local accesses only
                l2: Some(175),
                dram: 300,
            },
            ArchPreset::MaxwellGm107 => Table1Row {
                l1: None,
                l2: Some(194),
                dram: 350,
            },
        }
    }

    /// Builds the full simulated machine for this generation.
    ///
    /// # Panics
    ///
    /// Panics if the preset fails [`GpuConfig::assert_valid`] — presets are
    /// hand-written literals, so a structural mistake (a zero queue, an L1
    /// slower than its L2) should fail at construction, not as a mystery
    /// deadlock deep in a run.
    pub fn config(self) -> GpuConfig {
        let c = match self {
            ArchPreset::TeslaGt200 => tesla_gt200(),
            ArchPreset::FermiGf106 => fermi(4, 2, "GF106 (Fermi)"),
            ArchPreset::FermiGf100 => fermi(15, 6, "GF100 (Fermi)"),
            ArchPreset::KeplerGk104 => kepler_gk104(),
            ArchPreset::MaxwellGm107 => maxwell_gm107(),
        };
        c.assert_valid();
        c
    }

    /// A single-SM, single-partition variant with identical pipeline
    /// latencies, used by the static-latency microbenchmarks: a lone thread
    /// cannot create contention, so shrinking the machine changes nothing
    /// but simulation speed.
    pub fn config_microbench(self) -> GpuConfig {
        let mut c = self.config();
        c.num_sms = 1;
        c.num_partitions = 1;
        c.assert_valid();
        c
    }
}

fn common_l2(sets: usize, hit_latency: u64) -> L2Config {
    L2Config {
        cache: CacheConfig {
            sets,
            ways: 8,
            line_size: 128,
            replacement: Replacement::Lru,
        },
        mshr: MshrConfig {
            entries: 32,
            max_merged: 8,
        },
        hit_latency,
        input_queue: 8,
        write_policy: WritePolicy::WriteThrough,
    }
}

fn common_l1(sets: usize, hit_latency: u64, serve_global: bool, serve_local: bool) -> L1Config {
    L1Config {
        cache: CacheConfig {
            sets,
            ways: 4,
            line_size: 128,
            replacement: Replacement::Lru,
        },
        mshr: MshrConfig {
            entries: 32,
            max_merged: 8,
        },
        hit_latency,
        miss_queue: 8,
        serve_global,
        serve_local,
    }
}

fn dram(t_rcd: u64, t_rp: u64, t_cl: u64, burst: u64) -> DramConfig {
    DramConfig {
        timing: DramTiming {
            t_rcd,
            t_rp,
            t_cl,
            burst,
        },
        queue_capacity: 128,
        sched: DramSched::FrFcfs,
    }
}

/// Tesla GT200: 30 SMs, 8 partitions, no data caches for global memory.
/// Target: DRAM 440.
fn tesla_gt200() -> GpuConfig {
    GpuConfig {
        name: "GT200 (Tesla)".to_string(),
        num_sms: 30,
        warp_size: 32,
        max_warps_per_sm: 32,
        max_ctas_per_sm: 8,
        issue_width: 1,
        scheduler: SchedPolicy::Lrr,
        alu_latency: 24,
        fp_latency: 24,
        sfu_latency: 48,
        shared_latency: 38,
        sm_base_latency: 24,
        lsu_queue: 34,
        line_size: 128,
        l1: None,
        icnt: IcntConfig {
            latency: 40,
            output_queue: 8,
            inject_per_src: 1,
            eject_per_dst: 1,
        },
        rop_latency: 45,
        rop_queue: 16,
        l2: None,
        dram: dram(60, 60, 151, 8),
        num_partitions: 8,
        partition_chunk: 256,
        dram_banks: 16,
        dram_row_bytes: 2048,
        fill_latency: 10,
        sanitize: true,
        trace: gpu_sim::TraceConfig::default(),
    }
}

/// Fermi GF100/GF106: two-level hierarchy, L1 serves global and local.
/// Targets: L1 45, L2 310, DRAM 685.
fn fermi(num_sms: usize, num_partitions: usize, name: &str) -> GpuConfig {
    GpuConfig {
        name: name.to_string(),
        num_sms,
        warp_size: 32,
        max_warps_per_sm: 48,
        max_ctas_per_sm: 8,
        issue_width: 2,
        scheduler: SchedPolicy::Lrr,
        alu_latency: 18,
        fp_latency: 18,
        sfu_latency: 40,
        shared_latency: 30,
        sm_base_latency: 28,
        lsu_queue: 34,
        line_size: 128,
        l1: Some(common_l1(32, 17, true, true)), // 16 KB
        icnt: IcntConfig {
            latency: 48,
            output_queue: 8,
            inject_per_src: 1,
            eject_per_dst: 1,
        },
        rop_latency: 60,
        rop_queue: 16,
        l2: Some(common_l2(128, 115)), // 128 KB per slice
        dram: dram(80, 80, 321, 8),
        num_partitions,
        partition_chunk: 256,
        dram_banks: 16,
        dram_row_bytes: 2048,
        fill_latency: 10,
        sanitize: true,
        trace: gpu_sim::TraceConfig::default(),
    }
}

/// Kepler GK104: L1 is local-only; global loads hit L2 at best.
/// Targets: L1 (local) 30, L2 175, DRAM 300.
fn kepler_gk104() -> GpuConfig {
    GpuConfig {
        name: "GK104 (Kepler)".to_string(),
        num_sms: 8,
        warp_size: 32,
        max_warps_per_sm: 64,
        max_ctas_per_sm: 16,
        issue_width: 2,
        scheduler: SchedPolicy::Lrr,
        alu_latency: 11,
        fp_latency: 11,
        sfu_latency: 30,
        shared_latency: 26,
        sm_base_latency: 14,
        lsu_queue: 34,
        line_size: 128,
        l1: Some(common_l1(32, 16, false, true)), // 16 KB, local only
        icnt: IcntConfig {
            latency: 25,
            output_queue: 8,
            inject_per_src: 1,
            eject_per_dst: 1,
        },
        rop_latency: 30,
        rop_queue: 16,
        l2: Some(common_l2(128, 71)), // 128 KB per slice
        dram: dram(28, 28, 129, 10),
        num_partitions: 4,
        partition_chunk: 256,
        dram_banks: 16,
        dram_row_bytes: 2048,
        fill_latency: 9,
        sanitize: true,
        trace: gpu_sim::TraceConfig::default(),
    }
}

/// Maxwell GM107: no L1 data cache; larger but slower L2 than Kepler.
/// Targets: L2 194, DRAM 350.
fn maxwell_gm107() -> GpuConfig {
    GpuConfig {
        name: "GM107 (Maxwell)".to_string(),
        num_sms: 5,
        warp_size: 32,
        max_warps_per_sm: 64,
        max_ctas_per_sm: 32,
        issue_width: 2,
        scheduler: SchedPolicy::Lrr,
        alu_latency: 6,
        fp_latency: 6,
        sfu_latency: 20,
        shared_latency: 24,
        sm_base_latency: 16,
        lsu_queue: 34,
        line_size: 128,
        l1: None,
        icnt: IcntConfig {
            latency: 28,
            output_queue: 8,
            inject_per_src: 1,
            eject_per_dst: 1,
        },
        rop_latency: 34,
        rop_queue: 16,
        l2: Some(common_l2(1024, 78)), // 1 MB per slice (2 MB total)
        dram: dram(36, 36, 150, 11),
        num_partitions: 2,
        partition_chunk: 256,
        dram_banks: 16,
        dram_row_bytes: 2048,
        fill_latency: 9,
        sanitize: true,
        trace: gpu_sim::TraceConfig::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::PipelineSpace;

    #[test]
    fn all_presets_build_valid_configs() {
        for p in ArchPreset::ALL {
            p.config().assert_valid();
            p.config_microbench().assert_valid();
        }
    }

    #[test]
    fn presets_validate_at_construction() {
        // `config()` routes through `assert_valid`, so a corrupted preset
        // can only escape as a panic — prove the rejection paths fire on the
        // exact classes of mistakes the validator covers.
        for p in ArchPreset::ALL {
            let c = p.config();
            assert!(c.sanitize, "{}: sanitizer must default on", p.name());
            if let (Some(l1), Some(l2)) = (&c.l1, &c.l2) {
                assert!(l1.hit_latency < l2.hit_latency, "{}", p.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "ROP queue capacity")]
    fn corrupted_preset_zero_queue_is_rejected() {
        let mut c = ArchPreset::FermiGf100.config();
        c.rop_queue = 0;
        c.assert_valid();
    }

    #[test]
    #[should_panic(expected = "L1 hit latency")]
    fn corrupted_preset_l1_slower_than_l2_is_rejected() {
        let mut c = ArchPreset::KeplerGk104.config();
        c.l1.as_mut().unwrap().hit_latency = 400;
        c.assert_valid();
    }

    #[test]
    fn generation_structure_matches_paper() {
        // Tesla: uncached global pipeline.
        let t = ArchPreset::TeslaGt200.config();
        assert!(t.l1.is_none() && t.l2.is_none());
        // Fermi: L1 serves global and local.
        let f = ArchPreset::FermiGf106.config();
        assert!(f.l1_serves(PipelineSpace::Global));
        assert!(f.l1_serves(PipelineSpace::Local));
        // Kepler: L1 local-only.
        let k = ArchPreset::KeplerGk104.config();
        assert!(!k.l1_serves(PipelineSpace::Global));
        assert!(k.l1_serves(PipelineSpace::Local));
        // Maxwell: L1 gone.
        let m = ArchPreset::MaxwellGm107.config();
        assert!(m.l1.is_none());
        assert!(m.l2.is_some());
    }

    #[test]
    fn expected_rows_match_paper_table() {
        assert_eq!(ArchPreset::TeslaGt200.table1_expected().dram, 440);
        let fermi = ArchPreset::FermiGf106.table1_expected();
        assert_eq!((fermi.l1, fermi.l2, fermi.dram), (Some(45), Some(310), 685));
        let kepler = ArchPreset::KeplerGk104.table1_expected();
        assert_eq!(
            (kepler.l1, kepler.l2, kepler.dram),
            (Some(30), Some(175), 300)
        );
        let maxwell = ArchPreset::MaxwellGm107.table1_expected();
        assert_eq!(
            (maxwell.l1, maxwell.l2, maxwell.dram),
            (None, Some(194), 350)
        );
    }

    #[test]
    fn microbench_config_shrinks_machine_only() {
        for p in ArchPreset::ALL {
            let full = p.config();
            let micro = p.config_microbench();
            assert_eq!(micro.num_sms, 1);
            assert_eq!(micro.num_partitions, 1);
            assert_eq!(micro.sm_base_latency, full.sm_base_latency);
            assert_eq!(micro.icnt.latency, full.icnt.latency);
            assert_eq!(micro.dram.timing, full.dram.timing);
        }
    }

    #[test]
    fn maxwell_slower_than_kepler_everywhere() {
        // The paper's §II observation: Maxwell's pipeline is slower than
        // Kepler's at every level.
        let k = ArchPreset::KeplerGk104.table1_expected();
        let m = ArchPreset::MaxwellGm107.table1_expected();
        assert!(m.l2.unwrap() > k.l2.unwrap());
        assert!(m.dram > k.dram);
    }
}
