//! Per-stage latency breakdown of memory fetches (the paper's **Figure 1**).
//!
//! Every traced request carries a stamp timeline; the gap between two
//! consecutive *present* stamps is attributed to the later stamp's pipeline
//! component. Requests are then classified into equal-width latency buckets
//! and each bucket's aggregate time is split into percentage shares per
//! component — exactly the stacked-bar view of Figure 1.

use std::fmt;

use gpu_mem::{Stamp, Timeline};
use gpu_sim::CompletedRequest;
use gpu_types::Buckets;

use crate::bucketing::Bucketing;

/// The eight latency components of the paper's Figure 1, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Component {
    /// Time in the SM before the L1 data-cache access.
    SmBase,
    /// L1 miss queue and interconnect injection wait.
    L1ToIcnt,
    /// Crossbar traversal and partition input queueing.
    IcntToRop,
    /// ROP pipeline and its queue.
    RopToL2Q,
    /// L2 input queue and L2 access until the DRAM queue.
    L2QToDramQ,
    /// DRAM controller queue wait until selected by the scheduler.
    DramQToSch,
    /// DRAM bank access and data burst.
    DramSchToA,
    /// Return path: L2/interconnect back to the SM and writeback.
    Fetch2Sm,
}

impl Component {
    /// All components in pipeline order.
    pub const ALL: [Component; 8] = [
        Component::SmBase,
        Component::L1ToIcnt,
        Component::IcntToRop,
        Component::RopToL2Q,
        Component::L2QToDramQ,
        Component::DramQToSch,
        Component::DramSchToA,
        Component::Fetch2Sm,
    ];

    /// Label exactly as printed in the paper's Figure 1 legend.
    pub fn label(self) -> &'static str {
        match self {
            Component::SmBase => "SM Base",
            Component::L1ToIcnt => "L1toICNT",
            Component::IcntToRop => "ICNTtoROP",
            Component::RopToL2Q => "ROPtoL2Q",
            Component::L2QToDramQ => "L2QtoDRAMQ",
            Component::DramQToSch => "DRAM(QtoSch)",
            Component::DramSchToA => "DRAM(SchToA)",
            Component::Fetch2Sm => "Fetch2SM",
        }
    }

    /// Index into component arrays.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The component that the time *ending* at `stamp` belongs to.
    /// `Stamp::Issue` starts the timeline and owns no component.
    pub fn ending_at(stamp: Stamp) -> Option<Component> {
        Some(match stamp {
            Stamp::Issue => return None,
            Stamp::L1Access => Component::SmBase,
            Stamp::IcntInject => Component::L1ToIcnt,
            Stamp::RopEnter => Component::IcntToRop,
            Stamp::L2QueueEnter => Component::RopToL2Q,
            Stamp::DramQueueEnter => Component::L2QToDramQ,
            Stamp::DramScheduled => Component::DramQToSch,
            Stamp::DramDone => Component::DramSchToA,
            Stamp::Returned => Component::Fetch2Sm,
        })
    }
}

/// Splits a completed timeline into its eight component durations.
/// Returns `None` for incomplete timelines (missing issue or return).
pub fn components_of(timeline: &Timeline) -> Option<[u64; 8]> {
    let issue = timeline.get(Stamp::Issue)?;
    timeline.get(Stamp::Returned)?;
    let mut parts = [0u64; 8];
    let mut prev = issue;
    for stamp in Stamp::ALL {
        let Some(t) = timeline.get(stamp) else {
            continue;
        };
        if let Some(c) = Component::ending_at(stamp) {
            parts[c.index()] += t.since(prev);
        }
        prev = t;
    }
    Some(parts)
}

/// The Figure-1 artifact: per-latency-bucket percentage breakdown of memory
/// fetch lifetime into pipeline components.
#[derive(Debug, Clone)]
pub struct LatencyBreakdown {
    buckets: Buckets,
    sums: Vec<[u64; 8]>,
    counts: Vec<u64>,
    grand_total: [u64; 8],
}

impl LatencyBreakdown {
    /// Builds a breakdown over `n_buckets` equal-width latency ranges from
    /// traced requests (incomplete timelines are skipped).
    ///
    /// # Panics
    ///
    /// Panics if `n_buckets` is zero.
    pub fn from_requests(requests: &[CompletedRequest], n_buckets: usize) -> Self {
        Self::from_requests_clipped(requests, n_buckets, 1.0).0
    }

    /// Like [`LatencyBreakdown::from_requests`], but the bucket domain only
    /// spans latencies up to the `clip_quantile`-quantile; requests beyond
    /// it are excluded and counted in the returned overflow. This keeps a
    /// heavy congestion tail from stretching the x-axis (the paper's
    /// Figure 1 spans only up to its observed maximum of ~1800 cycles).
    ///
    /// # Panics
    ///
    /// Panics if `n_buckets` is zero or `clip_quantile` is outside `(0, 1]`.
    pub fn from_requests_clipped(
        requests: &[CompletedRequest],
        n_buckets: usize,
        clip_quantile: f64,
    ) -> (Self, u64) {
        let mut items = Vec::with_capacity(requests.len());
        for r in requests {
            if let (Some(total), Some(parts)) =
                (r.timeline.total_latency(), components_of(&r.timeline))
            {
                items.push((total, parts));
            }
        }
        let bucketing = Bucketing::from_totals(
            items.iter().map(|&(total, _)| total),
            n_buckets,
            clip_quantile,
        );
        let mut sums = vec![[0u64; 8]; n_buckets];
        let mut counts = vec![0u64; n_buckets];
        let mut grand_total = [0u64; 8];
        for (total, parts) in items {
            let Some(i) = bucketing.index_of(total) else {
                continue; // clipped into the overflow
            };
            counts[i] += 1;
            for c in 0..8 {
                sums[i][c] += parts[c];
                grand_total[c] += parts[c];
            }
        }
        let overflow = bucketing.overflow();
        (
            LatencyBreakdown {
                buckets: bucketing.into_buckets(),
                sums,
                counts,
                grand_total,
            },
            overflow,
        )
    }

    /// The latency buckets (x-axis of Figure 1).
    pub fn buckets(&self) -> &Buckets {
        &self.buckets
    }

    /// Requests in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Total traced requests.
    pub fn total_requests(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Percentage share (0–100) of each component within bucket `i`.
    pub fn percentages(&self, i: usize) -> [f64; 8] {
        let total: u64 = self.sums[i].iter().sum();
        let mut out = [0.0; 8];
        if total > 0 {
            for (o, &sum) in out.iter_mut().zip(&self.sums[i]) {
                *o = 100.0 * sum as f64 / total as f64;
            }
        }
        out
    }

    /// Percentage share of each component across *all* requests.
    pub fn overall_percentages(&self) -> [f64; 8] {
        let total: u64 = self.grand_total.iter().sum();
        let mut out = [0.0; 8];
        if total > 0 {
            for (o, &sum) in out.iter_mut().zip(&self.grand_total) {
                *o = 100.0 * sum as f64 / total as f64;
            }
        }
        out
    }

    /// The component contributing the most aggregate cycles overall.
    pub fn dominant_component(&self) -> Component {
        let idx = (0..8)
            .max_by_key(|&c| self.grand_total[c])
            .expect("eight components");
        Component::ALL[idx]
    }

    /// Components ranked by overall contribution, largest first.
    pub fn ranked_components(&self) -> Vec<(Component, f64)> {
        let shares = self.overall_percentages();
        let mut v: Vec<(Component, f64)> = Component::ALL
            .iter()
            .map(|&c| (c, shares[c.index()]))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("percentages are finite"));
        v
    }
}

impl fmt::Display for LatencyBreakdown {
    /// Renders the Figure-1 table: one row per non-empty bucket, one column
    /// per component (percentages).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>14} {:>7}", "Latency Range", "Count")?;
        for c in Component::ALL {
            write!(f, " {:>12}", c.label())?;
        }
        writeln!(f)?;
        for i in 0..self.buckets.len() {
            if self.counts[i] == 0 {
                continue;
            }
            write!(f, "{:>14} {:>7}", self.buckets.label(i), self.counts[i])?;
            for p in self.percentages(i) {
                write!(f, " {p:>11.1}%")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::PipelineSpace;
    use gpu_types::{Cycle, SmId};

    fn request_with(stamps: &[(Stamp, u64)]) -> CompletedRequest {
        let mut t = Timeline::new();
        for &(s, c) in stamps {
            t.record(s, Cycle::new(c));
        }
        CompletedRequest {
            timeline: t,
            space: PipelineSpace::Global,
            sm: SmId::new(0),
        }
    }

    fn l1_hit(issue: u64, latency: u64) -> CompletedRequest {
        request_with(&[
            (Stamp::Issue, issue),
            (Stamp::L1Access, issue + latency),
            (Stamp::Returned, issue + latency),
        ])
    }

    fn dram_fetch(issue: u64) -> CompletedRequest {
        request_with(&[
            (Stamp::Issue, issue),
            (Stamp::L1Access, issue + 30),
            (Stamp::IcntInject, issue + 80),
            (Stamp::RopEnter, issue + 140),
            (Stamp::L2QueueEnter, issue + 200),
            (Stamp::DramQueueEnter, issue + 320),
            (Stamp::DramScheduled, issue + 520),
            (Stamp::DramDone, issue + 620),
            (Stamp::Returned, issue + 700),
        ])
    }

    #[test]
    fn components_partition_total_latency() {
        let r = dram_fetch(1000);
        let parts = components_of(&r.timeline).unwrap();
        assert_eq!(parts.iter().sum::<u64>(), 700);
        assert_eq!(parts[Component::SmBase.index()], 30);
        assert_eq!(parts[Component::DramQToSch.index()], 200);
        assert_eq!(parts[Component::Fetch2Sm.index()], 80);
    }

    #[test]
    fn missing_stamps_fold_into_following_component() {
        // An L2 hit has no DRAM stamps: its post-L2Q time lands in Fetch2SM.
        let r = request_with(&[
            (Stamp::Issue, 0),
            (Stamp::L1Access, 30),
            (Stamp::IcntInject, 60),
            (Stamp::RopEnter, 110),
            (Stamp::L2QueueEnter, 170),
            (Stamp::Returned, 310),
        ]);
        let parts = components_of(&r.timeline).unwrap();
        assert_eq!(parts.iter().sum::<u64>(), 310);
        assert_eq!(parts[Component::Fetch2Sm.index()], 140);
        assert_eq!(parts[Component::DramQToSch.index()], 0);
    }

    #[test]
    fn incomplete_timeline_is_skipped() {
        let mut t = Timeline::new();
        t.record(Stamp::Issue, Cycle::new(0));
        assert!(components_of(&t).is_none());
    }

    #[test]
    fn l1_hits_are_pure_sm_base() {
        // The paper's observation: short-latency buckets are 100% SM Base.
        let reqs: Vec<_> = (0..50).map(|i| l1_hit(i * 10, 45)).collect();
        let b = LatencyBreakdown::from_requests(&reqs, 4);
        let i = b.buckets().index_of(45).unwrap();
        let p = b.percentages(i);
        assert!((p[Component::SmBase.index()] - 100.0).abs() < 1e-9);
        assert_eq!(b.count(i), 50);
    }

    #[test]
    fn mixed_population_separates_by_bucket() {
        let mut reqs: Vec<_> = (0..20).map(|i| l1_hit(i, 45)).collect();
        reqs.extend((0..20).map(|i| dram_fetch(i * 3)));
        let b = LatencyBreakdown::from_requests(&reqs, 10);
        assert_eq!(b.total_requests(), 40);
        // Short bucket: all SM base. Long bucket: DRAM components present.
        let short = b.buckets().index_of(45).unwrap();
        let long = b.buckets().index_of(700).unwrap();
        assert!(b.percentages(short)[Component::SmBase.index()] > 99.0);
        let lp = b.percentages(long);
        assert!(lp[Component::DramQToSch.index()] > 20.0);
        assert!(lp[Component::DramSchToA.index()] > 5.0);
        // Rankings include the queue/arbitration components at the top for
        // this synthetic population.
        let ranked = b.ranked_components();
        assert_eq!(ranked.len(), 8);
        assert!(ranked[0].1 >= ranked[7].1);
    }

    #[test]
    fn display_emits_paper_legend_names() {
        let reqs = vec![l1_hit(0, 45), dram_fetch(10)];
        let b = LatencyBreakdown::from_requests(&reqs, 4);
        let s = b.to_string();
        for c in Component::ALL {
            assert!(s.contains(c.label()), "missing {}", c.label());
        }
        assert!(s.contains("Latency Range"));
    }

    #[test]
    fn empty_input_is_harmless() {
        let b = LatencyBreakdown::from_requests(&[], 4);
        assert_eq!(b.total_requests(), 0);
        assert_eq!(b.overall_percentages(), [0.0; 8]);
    }
}
