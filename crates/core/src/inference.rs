//! Inferring hidden cache parameters from chase measurements.
//!
//! The paper's §II (following Wong et al.) does more than read latencies off
//! plateaus: varying footprint locates each cache's *capacity* (the
//! footprint where latency jumps to the next plateau) and varying stride
//! below the line size reveals the *line size* (spatial-locality hits pull
//! the average latency down). This module automates both inferences, and the
//! test suite closes the loop by checking that the inferred parameters match
//! the configured machine.

use gpu_sim::GpuConfig;

use crate::chase::{measure_chase, ChaseError, ChaseParams, ChaseSpace};

/// One inferred cache level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheLevelEstimate {
    /// Plateau latency of hits in this level (cycles).
    pub latency: f64,
    /// Largest tested footprint that still fits (capacity lower bound).
    pub capacity_lo: u64,
    /// Smallest tested footprint that no longer fits (capacity upper
    /// bound); equals `capacity_lo + refinement stride` after refinement.
    pub capacity_hi: u64,
}

impl CacheLevelEstimate {
    /// Midpoint capacity estimate.
    pub fn capacity(&self) -> u64 {
        (self.capacity_lo + self.capacity_hi) / 2
    }
}

/// Relative latency jump treated as a level boundary.
const JUMP: f64 = 1.25;

/// Infers the cache hierarchy visible to `space` accesses by sweeping
/// footprints geometrically up to `max_footprint` at the given `stride`,
/// then refining each capacity boundary by bisection (to `stride`
/// granularity).
///
/// Returns one entry per *cache* level (the final DRAM plateau is returned
/// too, with `capacity_hi == u64::MAX`).
///
/// The DRAM row buffers form an aggregate pseudo-cache of
/// `banks × row_bytes` per partition: footprints inside it reuse open rows
/// and measure a lower "hit" plateau, exactly as Wong et al. observe on
/// real silicon. To characterize an *uncached* hierarchy, start the sweep
/// above that size via `min_footprint`.
///
/// # Errors
///
/// Propagates chase failures.
///
/// # Panics
///
/// Panics if `stride` or `max_footprint` is too small to sweep.
pub fn infer_hierarchy(
    config: &GpuConfig,
    space: ChaseSpace,
    stride: u64,
    min_footprint: u64,
    max_footprint: u64,
) -> Result<Vec<CacheLevelEstimate>, ChaseError> {
    assert!(
        stride >= 8 && max_footprint >= 4 * stride,
        "sweep too small"
    );
    assert!(min_footprint <= max_footprint, "empty sweep range");
    let measure = |footprint: u64| -> Result<f64, ChaseError> {
        Ok(measure_chase(
            config,
            &ChaseParams {
                footprint,
                stride,
                space,
                pattern: crate::chase::ChasePattern::Sequential,
            },
        )?
        .per_access)
    };

    // Geometric sweep.
    let mut points: Vec<(u64, f64)> = Vec::new();
    let mut f = min_footprint.max(2 * stride);
    while f <= max_footprint {
        points.push((f, measure(f)?));
        f *= 2;
    }

    // Locate level boundaries (latency jumps) and refine by bisection.
    let mut levels: Vec<CacheLevelEstimate> = Vec::new();
    let mut plateau_start = 0usize;
    for i in 0..points.len() {
        let is_last = i + 1 == points.len();
        let jumps = !is_last && points[i + 1].1 > points[i].1 * JUMP;
        if jumps || is_last {
            let lat = points[plateau_start..=i].iter().map(|p| p.1).sum::<f64>()
                / (i - plateau_start + 1) as f64;
            if jumps {
                // Bisect the capacity between points[i] and points[i+1].
                let (mut lo, mut hi) = (points[i].0, points[i + 1].0);
                let threshold = lat * JUMP;
                while hi - lo > stride {
                    let mid = ((lo + hi) / 2 / stride) * stride;
                    if mid == lo || mid == hi {
                        break;
                    }
                    if measure(mid)? <= threshold {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
                levels.push(CacheLevelEstimate {
                    latency: lat,
                    capacity_lo: lo,
                    capacity_hi: hi,
                });
            } else {
                // Terminal plateau: memory, no capacity.
                levels.push(CacheLevelEstimate {
                    latency: lat,
                    capacity_lo: points[i].0,
                    capacity_hi: u64::MAX,
                });
            }
            plateau_start = i + 1;
        }
    }
    Ok(levels)
}

/// Infers the L1 memory-transaction (cache-line) size by sweeping the
/// stride with a footprint that *misses the L1 but fits the L2*: while
/// `stride < line`, `line/stride` consecutive elements share a line and all
/// but the first access per line hit the L1, so the average latency rises
/// with stride until it saturates at the L2-hit latency. The smallest
/// stride at that saturation point is the line size.
///
/// Measuring against the L2 plateau (not DRAM) matters: DRAM row buffers
/// act as a pseudo-cache whose locality also varies with stride and would
/// confound the signal — an effect Wong et al. document on real silicon.
///
/// # Errors
///
/// Propagates chase failures.
pub fn infer_line_size(config: &GpuConfig, footprint: u64) -> Result<u64, ChaseError> {
    let strides: Vec<u64> = (4..=10).map(|p| 1u64 << p).collect(); // 16..1024
    let mut lats = Vec::with_capacity(strides.len());
    for &s in &strides {
        lats.push(
            measure_chase(
                config,
                &ChaseParams {
                    footprint,
                    stride: s,
                    space: ChaseSpace::Global,
                    pattern: crate::chase::ChasePattern::Sequential,
                },
            )?
            .per_access,
        );
    }
    let max = lats.iter().copied().fold(0.0f64, f64::max);
    // First stride whose latency is within 5% of the saturated miss latency.
    for (i, &s) in strides.iter().enumerate() {
        if lats[i] >= 0.95 * max {
            return Ok(s);
        }
    }
    Ok(*strides.last().expect("non-empty stride list"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::ArchPreset;

    #[test]
    fn fermi_hierarchy_is_recovered() {
        let cfg = ArchPreset::FermiGf106.config_microbench();
        let levels = infer_hierarchy(&cfg, ChaseSpace::Global, 512, 1024, 512 * 1024).unwrap();
        assert_eq!(levels.len(), 3, "{levels:?}");
        // L1: 16 KB at ~45 cycles.
        assert!((levels[0].latency - 45.0).abs() < 5.0, "{levels:?}");
        let l1 = levels[0].capacity();
        assert!((12 * 1024..=20 * 1024).contains(&l1), "L1 capacity {l1}");
        // L2 slice: 128 KB at ~310 cycles (single-partition microbench).
        assert!((levels[1].latency - 310.0).abs() < 16.0, "{levels:?}");
        let l2 = levels[1].capacity();
        assert!((96 * 1024..=160 * 1024).contains(&l2), "L2 capacity {l2}");
        // DRAM: terminal plateau.
        assert_eq!(levels[2].capacity_hi, u64::MAX);
        assert!(levels[2].latency > levels[1].latency);
    }

    #[test]
    fn tesla_has_single_terminal_level() {
        // Start above the 32 KB aggregate row-buffer pseudo-cache.
        let cfg = ArchPreset::TeslaGt200.config_microbench();
        let levels =
            infer_hierarchy(&cfg, ChaseSpace::Global, 4096, 64 * 1024, 512 * 1024).unwrap();
        assert_eq!(levels.len(), 1, "{levels:?}");
        assert_eq!(levels[0].capacity_hi, u64::MAX);
        assert!((levels[0].latency - 440.0).abs() < 20.0, "{levels:?}");
    }

    #[test]
    fn row_buffers_act_as_pseudo_cache_on_tesla() {
        // The documented confounder, asserted as a feature of the model: a
        // footprint inside the aggregate row buffers (16 banks x 2 KB)
        // measures substantially lower latency than one beyond them.
        let cfg = ArchPreset::TeslaGt200.config_microbench();
        let small = measure_chase(&cfg, &ChaseParams::global(16 * 1024, 4096))
            .unwrap()
            .per_access;
        let large = measure_chase(&cfg, &ChaseParams::global(256 * 1024, 4096))
            .unwrap()
            .per_access;
        assert!(
            large > small * 1.15,
            "row-buffer locality should be visible: {small} vs {large}"
        );
    }

    #[test]
    fn kepler_local_hierarchy_sees_the_l1() {
        let cfg = ArchPreset::KeplerGk104.config_microbench();
        let levels = infer_hierarchy(&cfg, ChaseSpace::Local, 512, 1024, 64 * 1024).unwrap();
        assert!(levels.len() >= 2, "{levels:?}");
        assert!(
            (levels[0].latency - 30.0).abs() < 4.0,
            "local L1 plateau: {levels:?}"
        );
    }

    #[test]
    fn line_size_inferred_on_fermi() {
        // Footprint over the 16 KB L1 but inside the 128 KB L2 slice.
        let cfg = ArchPreset::FermiGf106.config_microbench();
        let line = infer_line_size(&cfg, 64 * 1024).unwrap();
        assert_eq!(line, 128);
    }
}
