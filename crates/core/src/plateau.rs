//! Plateau detection over sweep latencies.
//!
//! The stride/footprint sweep of a cached memory hierarchy produces latency
//! *plateaus*: one per pipeline level that can service the steady-state
//! chase (L1 hit, L2 hit, DRAM). This module clusters sweep samples into
//! those plateaus — the step Wong et al. (and the paper's §II) perform by
//! eye on their latency plots, done mechanically here.

use std::fmt;

/// One detected latency plateau.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Plateau {
    /// Mean latency of the plateau's samples.
    pub latency: f64,
    /// Number of sweep samples on this plateau.
    pub samples: usize,
}

/// Clusters latencies into plateaus: samples within `rel_tol` (relative to
/// the running cluster mean) belong to the same plateau. Returns plateaus
/// ordered by ascending latency.
///
/// # Panics
///
/// Panics if `rel_tol` is not positive and finite.
///
/// # Examples
///
/// ```
/// use latency_core::detect_plateaus;
///
/// let latencies = [45.0, 45.2, 44.8, 310.0, 309.5, 684.0, 686.0];
/// let plateaus = detect_plateaus(&latencies, 0.10);
/// assert_eq!(plateaus.len(), 3);
/// assert!((plateaus[0].latency - 45.0).abs() < 1.0);
/// assert!((plateaus[2].latency - 685.0).abs() < 2.0);
/// ```
pub fn detect_plateaus(latencies: &[f64], rel_tol: f64) -> Vec<Plateau> {
    assert!(
        rel_tol > 0.0 && rel_tol.is_finite(),
        "rel_tol must be positive and finite"
    );
    let mut sorted: Vec<f64> = latencies
        .iter()
        .copied()
        .filter(|l| l.is_finite())
        .collect();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("filtered NaNs"));
    let mut plateaus: Vec<Plateau> = Vec::new();
    for l in sorted {
        match plateaus.last_mut() {
            Some(p) if (l - p.latency).abs() <= rel_tol * p.latency.max(1.0) => {
                // Running mean update.
                let n = p.samples as f64;
                p.latency = (p.latency * n + l) / (n + 1.0);
                p.samples += 1;
            }
            _ => plateaus.push(Plateau {
                latency: l,
                samples: 1,
            }),
        }
    }
    plateaus
}

impl fmt::Display for Plateau {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "~{:.0} cycles ({} samples)", self.latency, self.samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_is_one_plateau() {
        let p = detect_plateaus(&[100.0, 101.0, 99.5, 100.2], 0.05);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].samples, 4);
        assert!((p[0].latency - 100.0).abs() < 1.0);
    }

    #[test]
    fn three_level_hierarchy_detected() {
        let mut data = Vec::new();
        for _ in 0..10 {
            data.push(45.0);
            data.push(310.0);
            data.push(685.0);
        }
        let p = detect_plateaus(&data, 0.10);
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].samples, 10);
        assert!(p[0].latency < p[1].latency && p[1].latency < p[2].latency);
    }

    #[test]
    fn empty_and_nan_inputs() {
        assert!(detect_plateaus(&[], 0.1).is_empty());
        let p = detect_plateaus(&[f64::NAN, 50.0], 0.1);
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn close_levels_merge_with_loose_tolerance() {
        let p = detect_plateaus(&[100.0, 109.0], 0.10);
        assert_eq!(p.len(), 1);
        let p = detect_plateaus(&[100.0, 120.0], 0.10);
        assert_eq!(p.len(), 2);
    }

    #[test]
    #[should_panic(expected = "rel_tol must be positive")]
    fn bad_tolerance_panics() {
        let _ = detect_plateaus(&[1.0], 0.0);
    }

    #[test]
    fn display_mentions_cycles() {
        let p = detect_plateaus(&[45.0], 0.1);
        assert!(p[0].to_string().contains("cycles"));
    }
}
