//! Machine-readable exports of the reproduction artifacts.
//!
//! The `Display` implementations on [`crate::Table1`],
//! [`crate::LatencyBreakdown`] and [`crate::ExposureAnalysis`] print the
//! paper-style text tables; this module renders the same data as CSV (for
//! plotting the stacked-bar figures externally) and Markdown (for
//! EXPERIMENTS.md-style reports).

use std::fmt::Write as _;

use crate::breakdown::{Component, LatencyBreakdown};
use crate::exposure::ExposureAnalysis;
use crate::table1::Table1;

/// Renders Table I as CSV: `arch,unit,measured,paper`.
pub fn table1_csv(table: &Table1) -> String {
    let mut out = String::from("arch,unit,measured,paper\n");
    for (preset, row) in table.rows() {
        let expected = preset.table1_expected();
        let mut push = |unit: &str, measured: Option<f64>, paper: Option<u64>| {
            let m = measured.map_or(String::new(), |v| format!("{v:.1}"));
            let p = paper.map_or(String::new(), |v| v.to_string());
            let _ = writeln!(out, "{},{unit},{m},{p}", preset.name());
        };
        push("l1", row.l1, expected.l1);
        push("l2", row.l2, expected.l2);
        push("dram", Some(row.dram), Some(expected.dram));
    }
    out
}

/// Renders Table I as a Markdown table with `measured (paper)` cells.
pub fn table1_markdown(table: &Table1) -> String {
    let mut out = String::from("| Unit |");
    for (preset, _) in table.rows() {
        let _ = write!(out, " {} |", preset.name());
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in table.rows() {
        out.push_str("---|");
    }
    out.push('\n');
    let cell = |measured: Option<f64>, paper: Option<u64>| match (measured, paper) {
        (Some(m), Some(p)) => format!("{m:.0} ({p})"),
        (Some(m), None) => format!("{m:.0} (—)"),
        _ => "—".to_string(),
    };
    for (unit, extract) in [("L1 D$", 0usize), ("L2 D$", 1), ("DRAM", 2)] {
        let _ = write!(out, "| {unit} |");
        for (preset, row) in table.rows() {
            let expected = preset.table1_expected();
            let c = match extract {
                0 => cell(row.l1, expected.l1),
                1 => cell(row.l2, expected.l2),
                _ => cell(Some(row.dram), Some(expected.dram)),
            };
            let _ = write!(out, " {c} |");
        }
        out.push('\n');
    }
    out
}

/// Renders a latency breakdown as CSV:
/// `bucket_lo,bucket_hi,count,<component columns...>` with percentages.
pub fn breakdown_csv(breakdown: &LatencyBreakdown) -> String {
    let mut out = String::from("bucket_lo,bucket_hi,count");
    for c in Component::ALL {
        let _ = write!(out, ",{}", c.label());
    }
    out.push('\n');
    for i in 0..breakdown.buckets().len() {
        if breakdown.count(i) == 0 {
            continue;
        }
        let (lo, hi) = breakdown.buckets().range(i);
        let _ = write!(out, "{lo},{hi},{}", breakdown.count(i));
        for p in breakdown.percentages(i) {
            let _ = write!(out, ",{p:.2}");
        }
        out.push('\n');
    }
    out
}

/// Renders an exposure analysis as CSV:
/// `bucket_lo,bucket_hi,count,exposed_pct,hidden_pct`.
pub fn exposure_csv(analysis: &ExposureAnalysis) -> String {
    let mut out = String::from("bucket_lo,bucket_hi,count,exposed_pct,hidden_pct\n");
    for i in 0..analysis.buckets().len() {
        if analysis.count(i) == 0 {
            continue;
        }
        let (lo, hi) = analysis.buckets().range(i);
        let _ = writeln!(
            out,
            "{lo},{hi},{},{:.2},{:.2}",
            analysis.count(i),
            100.0 * analysis.exposed_fraction(i),
            100.0 * analysis.hidden_fraction(i)
        );
    }
    out
}

/// Renders the overall component shares as a Markdown table, largest first.
pub fn shares_markdown(breakdown: &LatencyBreakdown) -> String {
    let mut out = String::from("| Component | Share |\n|---|---|\n");
    for (c, share) in breakdown.ranked_components() {
        let _ = writeln!(out, "| {} | {share:.1}% |", c.label());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_mem::{PipelineSpace, Stamp, Timeline};
    use gpu_sim::{CompletedRequest, LoadInstrRecord};
    use gpu_types::{Cycle, SmId};

    fn fake_table() -> Table1 {
        // Build via public measurement path is slow; use the renderer on a
        // tiny measured subset instead.
        Table1::measure_presets(&[]).unwrap()
    }

    fn sample_breakdown() -> LatencyBreakdown {
        let mut reqs = Vec::new();
        for i in 0..10u64 {
            let mut t = Timeline::new();
            t.record(Stamp::Issue, Cycle::new(i));
            t.record(Stamp::L1Access, Cycle::new(i + 45));
            t.record(Stamp::Returned, Cycle::new(i + 45));
            reqs.push(CompletedRequest {
                timeline: t,
                space: PipelineSpace::Global,
                sm: SmId::new(0),
            });
        }
        LatencyBreakdown::from_requests(&reqs, 4)
    }

    #[test]
    fn empty_table_renders_headers() {
        let t = fake_table();
        let csv = table1_csv(&t);
        assert!(csv.starts_with("arch,unit,measured,paper"));
        let md = table1_markdown(&t);
        assert!(md.starts_with("| Unit |"));
    }

    #[test]
    fn breakdown_csv_has_component_columns() {
        let b = sample_breakdown();
        let csv = breakdown_csv(&b);
        let header = csv.lines().next().unwrap();
        for c in Component::ALL {
            assert!(header.contains(c.label()));
        }
        // One data row (all requests share one latency).
        assert_eq!(csv.lines().count(), 2);
        let row = csv.lines().nth(1).unwrap();
        assert!(row.contains(",10,"), "count column: {row}");
        assert!(row.contains("100.00"), "pure SM Base: {row}");
    }

    #[test]
    fn exposure_csv_percentages_sum() {
        let loads = vec![
            LoadInstrRecord {
                sm: SmId::new(0),
                pc: 0,
                issue: Cycle::new(0),
                complete: Cycle::new(100),
                exposed: 25,
                lines: 1,
                stall_reasons: gpu_sim::StallBreakdown::default(),
            };
            5
        ];
        let a = ExposureAnalysis::from_loads(&loads, 2);
        let csv = exposure_csv(&a);
        let row = csv.lines().nth(1).unwrap();
        assert!(row.ends_with("25.00,75.00"), "{row}");
    }

    #[test]
    fn shares_markdown_is_ranked() {
        let b = sample_breakdown();
        let md = shares_markdown(&b);
        let first_data = md.lines().nth(2).unwrap();
        assert!(first_data.contains("SM Base"), "{md}");
        assert!(first_data.contains("100.0%"), "{md}");
    }
}
