//! Quantile-clipped latency bucketing, shared by the Figure-1 breakdown,
//! the Figure-2 exposure analysis and the trace-bundle histogram export.
//!
//! Both figures bucket a population by total latency over a domain that is
//! clipped at a quantile so a heavy congestion tail cannot stretch the
//! x-axis. The clip → histogram → equal-width-bucket pipeline used to be
//! duplicated in each analysis; [`Bucketing`] is the single implementation.

use gpu_types::{Buckets, Histogram};

/// Equal-width latency buckets over a quantile-clipped domain.
#[derive(Debug, Clone)]
pub struct Bucketing {
    buckets: Buckets,
    cutoff: u64,
    overflow: u64,
}

impl Bucketing {
    /// Builds buckets from a population of total latencies. The bucket
    /// domain spans latencies up to the `clip_quantile`-quantile; values
    /// beyond it are excluded and counted in [`Bucketing::overflow`].
    ///
    /// # Panics
    ///
    /// Panics if `n_buckets` is zero or `clip_quantile` is outside `(0, 1]`.
    pub fn from_totals(
        totals: impl IntoIterator<Item = u64>,
        n_buckets: usize,
        clip_quantile: f64,
    ) -> Self {
        assert!(
            clip_quantile > 0.0 && clip_quantile <= 1.0,
            "clip quantile must be in (0, 1]"
        );
        let all: Histogram = totals.into_iter().collect();
        let cutoff = all.quantile(clip_quantile).unwrap_or(0);
        let mut overflow = 0u64;
        let mut hist = Histogram::new();
        for &value in all.samples() {
            if value > cutoff {
                overflow += 1;
            } else {
                hist.record(value);
            }
        }
        let buckets = hist.bucketize(n_buckets);
        Bucketing {
            buckets,
            cutoff,
            overflow,
        }
    }

    /// The equal-width buckets spanning the clipped domain.
    pub fn buckets(&self) -> &Buckets {
        &self.buckets
    }

    /// Consumes the bucketing, yielding its buckets.
    pub fn into_buckets(self) -> Buckets {
        self.buckets
    }

    /// The inclusive upper bound of the clipped domain (the clip-quantile
    /// latency of the input population).
    pub fn cutoff(&self) -> u64 {
        self.cutoff
    }

    /// Values excluded by the clip.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The bucket holding `total`, or `None` if the value was clipped.
    pub fn index_of(&self, total: u64) -> Option<usize> {
        if total > self.cutoff {
            None
        } else {
            self.buckets.index_of(total)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unclipped_bucketing_covers_all_values() {
        let b = Bucketing::from_totals([10, 20, 30, 40], 4, 1.0);
        assert_eq!(b.overflow(), 0);
        assert_eq!(b.cutoff(), 40);
        for v in [10, 20, 30, 40] {
            assert!(b.index_of(v).is_some());
        }
    }

    #[test]
    fn clip_excludes_the_tail() {
        let mut totals: Vec<u64> = (0..99).map(|_| 100).collect();
        totals.push(10_000); // one outlier
        let b = Bucketing::from_totals(totals, 4, 0.99);
        assert_eq!(b.overflow(), 1);
        assert_eq!(b.cutoff(), 100);
        assert!(b.index_of(100).is_some());
        assert_eq!(b.index_of(10_000), None);
    }

    #[test]
    fn empty_population_is_harmless() {
        let b = Bucketing::from_totals([], 4, 0.5);
        assert_eq!(b.overflow(), 0);
        assert_eq!(b.cutoff(), 0);
    }

    #[test]
    #[should_panic(expected = "clip quantile")]
    fn zero_quantile_is_rejected() {
        let _ = Bucketing::from_totals([1], 4, 0.0);
    }
}
