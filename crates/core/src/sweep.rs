//! Stride × footprint sweeps over the chase microbenchmark (the measurement
//! grid of the paper's §II and of Wong et al.'s methodology).

use std::fmt;

use gpu_sim::GpuConfig;

use crate::chase::{measure_chase, ChaseError, ChaseParams, ChaseSpace};

/// One sweep sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Working-set size in bytes.
    pub footprint: u64,
    /// Stride in bytes.
    pub stride: u64,
    /// Measured steady-state per-access latency.
    pub latency: f64,
}

/// Results of a stride × footprint sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sweep {
    points: Vec<SweepPoint>,
}

impl Sweep {
    /// Runs the chase for the cartesian product of `footprints` ×
    /// `strides` on `config`, skipping combinations with fewer than two
    /// chain elements (they cannot exercise the intended level).
    ///
    /// # Errors
    ///
    /// Propagates the first [`ChaseError`] (typically a simulator timeout).
    pub fn run(
        config: &GpuConfig,
        space: ChaseSpace,
        footprints: &[u64],
        strides: &[u64],
    ) -> Result<Self, ChaseError> {
        let mut points = Vec::new();
        for &footprint in footprints {
            for &stride in strides {
                if footprint / stride < 2 {
                    continue;
                }
                let params = ChaseParams {
                    footprint,
                    stride,
                    space,
                    pattern: crate::chase::ChasePattern::Sequential,
                };
                let m = measure_chase(config, &params)?;
                points.push(SweepPoint {
                    footprint,
                    stride,
                    latency: m.per_access,
                });
            }
        }
        Ok(Sweep { points })
    }

    /// All samples.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Samples with the given stride, ordered by footprint.
    pub fn by_stride(&self, stride: u64) -> Vec<SweepPoint> {
        let mut v: Vec<SweepPoint> = self
            .points
            .iter()
            .copied()
            .filter(|p| p.stride == stride)
            .collect();
        v.sort_by_key(|p| p.footprint);
        v
    }

    /// Latencies of all samples.
    pub fn latencies(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.latency).collect()
    }
}

impl fmt::Display for Sweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:>12} {:>8} {:>10}", "footprint", "stride", "latency")?;
        for p in &self.points {
            writeln!(f, "{:>12} {:>8} {:>10.1}", p.footprint, p.stride, p.latency)?;
        }
        Ok(())
    }
}

/// Geometric series of power-of-two values from `lo` to `hi` inclusive.
///
/// # Panics
///
/// Panics if `lo` is zero or greater than `hi`.
pub fn pow2_range(lo: u64, hi: u64) -> Vec<u64> {
    assert!(lo > 0 && lo <= hi, "need 0 < lo <= hi");
    let mut v = Vec::new();
    let mut x = lo.next_power_of_two();
    while x <= hi {
        v.push(x);
        x *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_range_is_inclusive() {
        assert_eq!(pow2_range(1024, 8192), vec![1024, 2048, 4096, 8192]);
        assert_eq!(pow2_range(1000, 1024), vec![1024]);
        assert_eq!(pow2_range(1, 1), vec![1]);
    }

    #[test]
    #[should_panic(expected = "need 0 < lo <= hi")]
    fn pow2_range_rejects_inverted() {
        let _ = pow2_range(16, 8);
    }

    #[test]
    fn sweep_filters_degenerate_and_sorts() {
        // Build a tiny synthetic sweep via the real harness on a fast config.
        let cfg = crate::ArchPreset::FermiGf106.config_microbench();
        let s = Sweep::run(&cfg, ChaseSpace::Global, &[1024, 4096], &[512, 2048]).unwrap();
        // (1024, 2048) is degenerate (count < 2) and must be skipped.
        assert_eq!(s.points().len(), 3);
        let col = s.by_stride(512);
        assert_eq!(col.len(), 2);
        assert!(col[0].footprint < col[1].footprint);
        assert!(s.latencies().iter().all(|&l| l > 0.0));
        let text = s.to_string();
        assert!(text.contains("footprint"));
    }
}
