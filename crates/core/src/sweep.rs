//! Stride × footprint sweeps over the chase microbenchmark (the measurement
//! grid of the paper's §II and of Wong et al.'s methodology).
//!
//! The grid points are independent simulations, so [`Sweep::run`] fans them
//! out over the [`crate::parallel`] work pool; [`Sweep::run_serial`] is the
//! single-threaded reference implementation that the parallel path must
//! match bit-for-bit (covered by `tests/parallel_equivalence.rs`).

use std::fmt;

use gpu_sim::GpuConfig;

use crate::chase::{measure_chase, ChaseError, ChaseParams, ChaseSpace};
use crate::parallel;

/// One sweep sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Working-set size in bytes.
    pub footprint: u64,
    /// Stride in bytes.
    pub stride: u64,
    /// Measured steady-state per-access latency.
    pub latency: f64,
}

/// Why a requested grid combination was not measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// Fewer than two chain elements (`footprint / stride < 2`): the ring
    /// cannot exercise the intended level.
    ChainTooShort,
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipReason::ChainTooShort => write!(f, "chain shorter than 2 elements"),
        }
    }
}

/// A grid combination the sweep did not measure, and why — recorded so
/// reports can state actual coverage instead of implying the full cartesian
/// grid ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkippedPoint {
    /// Requested working-set size in bytes.
    pub footprint: u64,
    /// Requested stride in bytes.
    pub stride: u64,
    /// Why the point was skipped.
    pub reason: SkipReason,
}

/// Results of a stride × footprint sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sweep {
    points: Vec<SweepPoint>,
    skipped: Vec<SkippedPoint>,
}

impl Sweep {
    /// Splits the requested cartesian grid into measurable points (in
    /// deterministic footprint-major order) and skipped combinations.
    fn plan(footprints: &[u64], strides: &[u64]) -> (Vec<(u64, u64)>, Vec<SkippedPoint>) {
        let mut grid = Vec::new();
        let mut skipped = Vec::new();
        for &footprint in footprints {
            for &stride in strides {
                if footprint / stride < 2 {
                    skipped.push(SkippedPoint {
                        footprint,
                        stride,
                        reason: SkipReason::ChainTooShort,
                    });
                } else {
                    grid.push((footprint, stride));
                }
            }
        }
        (grid, skipped)
    }

    fn measure_point(
        config: &GpuConfig,
        space: ChaseSpace,
        footprint: u64,
        stride: u64,
    ) -> Result<SweepPoint, ChaseError> {
        let params = ChaseParams {
            footprint,
            stride,
            space,
            pattern: crate::chase::ChasePattern::Sequential,
        };
        let m = measure_chase(config, &params)?;
        Ok(SweepPoint {
            footprint,
            stride,
            latency: m.per_access,
        })
    }

    /// Runs the chase for the cartesian product of `footprints` ×
    /// `strides` on `config`, recording (not silently dropping) the
    /// combinations with fewer than two chain elements. Grid points are
    /// distributed over the [`crate::parallel`] pool; results are gathered
    /// in grid order, so the output is identical to [`Sweep::run_serial`].
    ///
    /// # Errors
    ///
    /// Propagates the grid-order-first [`ChaseError`] (typically a
    /// simulator timeout) — the same error the serial path reports.
    pub fn run(
        config: &GpuConfig,
        space: ChaseSpace,
        footprints: &[u64],
        strides: &[u64],
    ) -> Result<Self, ChaseError> {
        let (grid, skipped) = Self::plan(footprints, strides);
        let points = parallel::try_par_map(&grid, |_, &(footprint, stride)| {
            Self::measure_point(config, space, footprint, stride)
        })?;
        Ok(Sweep { points, skipped })
    }

    /// Single-threaded reference implementation of [`Sweep::run`]: same
    /// grid, same order, same values, one point at a time on the calling
    /// thread.
    ///
    /// # Errors
    ///
    /// Propagates the first [`ChaseError`] in grid order.
    pub fn run_serial(
        config: &GpuConfig,
        space: ChaseSpace,
        footprints: &[u64],
        strides: &[u64],
    ) -> Result<Self, ChaseError> {
        let (grid, skipped) = Self::plan(footprints, strides);
        let mut points = Vec::with_capacity(grid.len());
        for &(footprint, stride) in &grid {
            points.push(Self::measure_point(config, space, footprint, stride)?);
        }
        Ok(Sweep { points, skipped })
    }

    /// All samples.
    pub fn points(&self) -> &[SweepPoint] {
        &self.points
    }

    /// Requested grid combinations that were not measured, with reasons.
    pub fn skipped(&self) -> &[SkippedPoint] {
        &self.skipped
    }

    /// Number of requested combinations that were not measured.
    pub fn skipped_count(&self) -> usize {
        self.skipped.len()
    }

    /// Coverage of the requested grid: measured / (measured + skipped).
    /// An empty request counts as fully covered.
    pub fn coverage(&self) -> f64 {
        let total = self.points.len() + self.skipped.len();
        if total == 0 {
            1.0
        } else {
            self.points.len() as f64 / total as f64
        }
    }

    /// Samples with the given stride, ordered by footprint.
    pub fn by_stride(&self, stride: u64) -> Vec<SweepPoint> {
        let mut v: Vec<SweepPoint> = self
            .points
            .iter()
            .copied()
            .filter(|p| p.stride == stride)
            .collect();
        v.sort_by_key(|p| p.footprint);
        v
    }

    /// Latencies of all samples.
    pub fn latencies(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.latency).collect()
    }
}

impl fmt::Display for Sweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:>12} {:>8} {:>10}", "footprint", "stride", "latency")?;
        for p in &self.points {
            writeln!(f, "{:>12} {:>8} {:>10.1}", p.footprint, p.stride, p.latency)?;
        }
        if !self.skipped.is_empty() {
            writeln!(
                f,
                "coverage: {}/{} grid points measured ({} skipped: {})",
                self.points.len(),
                self.points.len() + self.skipped.len(),
                self.skipped.len(),
                self.skipped[0].reason
            )?;
        }
        Ok(())
    }
}

/// Geometric series of power-of-two values from `lo` to `hi` inclusive.
///
/// # Panics
///
/// Panics if `lo` is zero or greater than `hi`.
pub fn pow2_range(lo: u64, hi: u64) -> Vec<u64> {
    assert!(lo > 0 && lo <= hi, "need 0 < lo <= hi");
    let mut v = Vec::new();
    let mut x = lo.next_power_of_two();
    while x <= hi {
        v.push(x);
        x *= 2;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_range_is_inclusive() {
        assert_eq!(pow2_range(1024, 8192), vec![1024, 2048, 4096, 8192]);
        assert_eq!(pow2_range(1000, 1024), vec![1024]);
        assert_eq!(pow2_range(1, 1), vec![1]);
    }

    #[test]
    #[should_panic(expected = "need 0 < lo <= hi")]
    fn pow2_range_rejects_inverted() {
        let _ = pow2_range(16, 8);
    }

    #[test]
    fn sweep_records_degenerate_and_sorts() {
        // Build a tiny synthetic sweep via the real harness on a fast config.
        let cfg = crate::ArchPreset::FermiGf106.config_microbench();
        let s = Sweep::run(&cfg, ChaseSpace::Global, &[1024, 4096], &[512, 2048]).unwrap();
        // (1024, 2048) is degenerate (count < 2): skipped, but recorded.
        assert_eq!(s.points().len(), 3);
        assert_eq!(s.skipped_count(), 1);
        assert_eq!(
            s.skipped(),
            &[SkippedPoint {
                footprint: 1024,
                stride: 2048,
                reason: SkipReason::ChainTooShort,
            }]
        );
        assert!((s.coverage() - 0.75).abs() < 1e-12);
        let col = s.by_stride(512);
        assert_eq!(col.len(), 2);
        assert!(col[0].footprint < col[1].footprint);
        assert!(s.latencies().iter().all(|&l| l > 0.0));
        let text = s.to_string();
        assert!(text.contains("footprint"));
        assert!(text.contains("coverage: 3/4"), "{text}");
    }

    #[test]
    fn full_grid_reports_full_coverage() {
        let cfg = crate::ArchPreset::FermiGf106.config_microbench();
        let s = Sweep::run(&cfg, ChaseSpace::Global, &[4096], &[128]).unwrap();
        assert_eq!(s.skipped_count(), 0);
        assert!((s.coverage() - 1.0).abs() < 1e-12);
        assert!(!s.to_string().contains("coverage:"));
    }

    #[test]
    fn empty_sweep_is_fully_covered() {
        let s = Sweep::default();
        assert!((s.coverage() - 1.0).abs() < 1e-12);
    }
}
