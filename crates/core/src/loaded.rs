//! Loaded-latency measurement: the pointer chase under bandwidth pressure.
//!
//! Table I reports *idle* latencies; the paper's §III shows that under real
//! workloads, queueing and arbitration inflate them severalfold. This module
//! measures that inflation directly and controllably: one thread chases
//! pointers while a configurable number of "streamer" CTAs saturate the
//! memory system with coalesced reads. The streamers poll a stop flag that
//! the chaser raises when done, so the run length is set by the chase and
//! the interference is steady for its whole duration.

use gpu_isa::{AluOp, CmpOp, Kernel, KernelBuilder, Launch, Special, Width};
use gpu_sim::{Gpu, GpuConfig};

use crate::chase::{write_chain, ChaseError, ChaseParams, ChaseSpace, UNROLL};

/// Result of a loaded-chase experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadedChase {
    /// Per-access latency with no interference (streamers = 0).
    pub unloaded: f64,
    /// Per-access latency under interference.
    pub loaded: f64,
}

impl LoadedChase {
    /// Latency inflation factor caused by the load.
    pub fn inflation(&self) -> f64 {
        if self.unloaded == 0.0 {
            0.0
        } else {
            self.loaded / self.unloaded
        }
    }
}

/// Builds the combined chaser/streamer kernel.
///
/// CTA 0, thread 0 chases `iters × UNROLL` dependent pointers through the
/// chain at param 0 and finally raises the stop flag; every other warp
/// streams through the interference array until the flag rises.
///
/// Parameters: `[0]` chain base, `[1]` chase iterations, `[2]` stop flag,
/// `[3]` interference array base, `[4]` interference array words.
pub fn build_loaded_kernel() -> Kernel {
    let mut b = KernelBuilder::new("loaded_chase");
    let chain = b.param(0);
    let iters = b.param(1);
    let flag = b.param(2);
    let stream_base = b.param(3);
    let stream_words = b.param(4);

    let ctaid = b.special(Special::CtaIdX);
    let tid = b.special(Special::TidX);
    let is_chaser_cta = b.setp(CmpOp::Eq, ctaid, 0);
    b.if_then_else(
        is_chaser_cta,
        |b| {
            let is_thread0 = b.setp(CmpOp::Eq, tid, 0);
            b.if_then(is_thread0, |b| {
                let p = b.mov(chain);
                let i = b.mov(0i64);
                let pred = b.pred();
                b.while_loop(
                    |b| {
                        b.setp_to(pred, CmpOp::Lt, i, iters);
                        pred
                    },
                    |b| {
                        for _ in 0..UNROLL {
                            b.ld_to(gpu_isa::Space::Global, Width::W8, p, p, 0);
                        }
                        b.alu_to(AluOp::Add, i, i, 1i64);
                    },
                );
                // Publish the final pointer (checksum) and raise the flag.
                b.st_global(Width::W8, flag, 8, p);
                b.st_global(Width::W4, flag, 0, 1);
            });
        },
        |b| {
            // Streamers: coalesced sweep over the interference array until
            // the flag rises. Functional memory is shared, so the poll load
            // observes the chaser's store regardless of cache state.
            let gtid = b.special(Special::GlobalTid);
            let ntid = b.special(Special::NTidX);
            let nctaid = b.special(Special::NCtaIdX);
            let total_threads = b.mul(ntid, nctaid);
            let cursor = b.mov(gtid);
            let sum = b.mov(0i64);
            let go = b.pred();
            b.while_loop(
                |b| {
                    let f = b.ld_global(Width::W4, flag, 0);
                    b.setp_to(go, CmpOp::Eq, f, 0);
                    go
                },
                |b| {
                    // A burst of 8 strided-by-warp coalesced reads. All
                    // loads are issued before any value is consumed so the
                    // in-order warp keeps 8 lines in flight (high MLP).
                    let vals: Vec<_> = (0..8)
                        .map(|_| {
                            let idx = b.alu(AluOp::Rem, cursor, stream_words);
                            let off = b.shl(idx, 2);
                            let addr = b.add(stream_base, off);
                            let v = b.ld_global(Width::W4, addr, 0);
                            b.alu_to(AluOp::Add, cursor, cursor, total_threads);
                            v
                        })
                        .collect();
                    for v in vals {
                        b.alu_to(AluOp::Add, sum, sum, v);
                    }
                },
            );
            // Sink the sum so the streaming work is architecturally live.
            let off = b.shl(gtid, 2);
            let sink = b.add(stream_base, off);
            b.st_global(Width::W4, sink, 0, sum);
        },
    );
    b.exit();
    b.build()
        .expect("loaded kernel is well-formed by construction")
}

fn run_once(
    config: &GpuConfig,
    params: &ChaseParams,
    streamer_ctas: u32,
    iters: u64,
) -> Result<u64, ChaseError> {
    let mut gpu = Gpu::new(config.clone());
    gpu.set_tick_threads(crate::parallel::tick_threads());
    let chain = gpu.alloc(params.footprint, config.line_size);
    write_chain(&mut gpu, chain, params.count(), params.stride);
    let flag = gpu.alloc(16, config.line_size);
    let stream_words = 1u64 << 19; // 2 MiB interference array (beyond any modeled L2)
    let stream = gpu.alloc(4 * stream_words, config.line_size);
    gpu.launch(
        build_loaded_kernel(),
        Launch::new(
            1 + streamer_ctas,
            128,
            vec![chain.get(), iters, flag.get(), stream.get(), stream_words],
        ),
    )
    .map_err(ChaseError::Sim)?;
    let worst = config.unloaded_dram() * 40 + 2000;
    let max_cycles = (iters * UNROLL as u64 + params.count() + 64) * worst + 500_000;
    let summary = gpu.run(max_cycles).map_err(ChaseError::Sim)?;
    assert_eq!(gpu.device().read_u32(flag), 1, "chaser must raise the flag");
    Ok(summary.cycles)
}

/// Measures per-access chase latency under `streamer_ctas` of interference
/// (0 = unloaded). Uses the same two-length differencing as the static
/// chase, so launch ramp-up and streamer drain cancel.
///
/// # Errors
///
/// Propagates invalid geometry and simulator failures.
pub fn measure_chase_under_load(
    config: &GpuConfig,
    params: &ChaseParams,
    streamer_ctas: u32,
) -> Result<f64, ChaseError> {
    assert_eq!(
        params.space,
        ChaseSpace::Global,
        "loaded chase measures the shared global pipeline"
    );
    if params.stride < 8 || !params.stride.is_multiple_of(8) {
        return Err(ChaseError::BadStride(params.stride));
    }
    if params.count() == 0 {
        return Err(ChaseError::EmptyChain {
            footprint: params.footprint,
            stride: params.stride,
        });
    }
    let count = params.count();
    let min_accesses = (2 * count).max(256);
    let iters_short = min_accesses.div_ceil(UNROLL as u64);
    let iters_long = 2 * iters_short;
    let c_short = run_once(config, params, streamer_ctas, iters_short)?;
    let c_long = run_once(config, params, streamer_ctas, iters_long)?;
    let extra = (iters_long - iters_short) * UNROLL as u64;
    Ok(c_long.saturating_sub(c_short) as f64 / extra as f64)
}

/// Runs the full loaded-vs-unloaded comparison.
///
/// # Errors
///
/// Propagates chase failures.
pub fn loaded_chase(
    config: &GpuConfig,
    params: &ChaseParams,
    streamer_ctas: u32,
) -> Result<LoadedChase, ChaseError> {
    Ok(LoadedChase {
        unloaded: measure_chase_under_load(config, params, 0)?,
        loaded: measure_chase_under_load(config, params, streamer_ctas)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::ArchPreset;

    fn small_fermi() -> GpuConfig {
        let mut cfg = ArchPreset::FermiGf100.config();
        cfg.num_sms = 4;
        cfg.num_partitions = 2;
        cfg
    }

    #[test]
    fn kernel_validates() {
        assert!(build_loaded_kernel().validate().is_ok());
    }

    #[test]
    fn zero_interference_matches_static_chase() {
        let cfg = small_fermi();
        let params = ChaseParams::global(4096, 128);
        let loaded0 = measure_chase_under_load(&cfg, &params, 0).unwrap();
        let static_m = crate::chase::measure_chase(&cfg, &params).unwrap();
        assert!(
            (loaded0 - static_m.per_access).abs() <= 3.0,
            "loaded(0) {loaded0} vs static {}",
            static_m.per_access
        );
    }

    #[test]
    fn interference_inflates_dram_latency() {
        let cfg = small_fermi();
        // DRAM-resident chase: footprint beyond both caches of the shrunken
        // machine (2 slices x 128 KB).
        let params = ChaseParams::global(1024 * 1024, 4096);
        let result = loaded_chase(&cfg, &params, 12).unwrap();
        assert!(
            result.inflation() > 1.3,
            "expected visible queueing inflation: {result:?}"
        );
        assert!(result.loaded > result.unloaded);
    }

    #[test]
    fn rejects_local_space() {
        let cfg = small_fermi();
        let params = ChaseParams::local(4096, 128);
        let r = std::panic::catch_unwind(|| measure_chase_under_load(&cfg, &params, 1));
        assert!(r.is_err(), "local-space loaded chase must be rejected");
    }
}
