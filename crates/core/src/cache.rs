//! Content-addressed on-disk cache for chase measurements.
//!
//! Every grid point of a [`crate::Sweep`] or [`crate::Table1`] run is a pure
//! function of the GPU configuration's timing parameters and the chase
//! parameters: same inputs, same simulated cycles, bit for bit. The cache
//! exploits that purity — each point is keyed by a stable hash of
//! (timing configuration, chase parameters, format version) and its
//! [`ChaseMeasurement`] is stored as one small framed file under the cache
//! directory. A repeated sweep then completes from disk without simulating
//! a single grid point, while editing one preset's timing invalidates only
//! that preset's points (its hash changes; every other key is untouched).
//!
//! The cache is off unless a directory is configured, either through the
//! [`CACHE_ENV`] environment variable or programmatically
//! ([`set_cache_dir`], used by the bench binaries' `--cache DIR` flag).
//! Lookups tolerate anything: a missing, truncated, corrupted or
//! wrong-version entry is simply a miss and gets recomputed and rewritten.
//! Writes are atomic (temp file + rename), so concurrent sweep workers — or
//! concurrent processes — can share one directory safely.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use gpu_sim::GpuConfig;
use gpu_snapshot::{store, Decoder, Encoder, SnapshotError, StableHasher};

use crate::chase::{ChaseMeasurement, ChaseParams, ChasePattern, ChaseSpace};

/// Environment variable naming the cache directory. Unset or empty = off.
pub const CACHE_ENV: &str = "LATENCY_CACHE";

/// Version of the key derivation *and* the value encoding. Bump it whenever
/// either changes (or whenever the simulator's timing model changes in a way
/// the architecture-description hash cannot see); old entries then miss
/// instead of serving stale values.
///
/// Version 2: keys hash the declarative [`gpu_sim::ArchDesc`]
/// (via [`GpuConfig::arch_desc`]) instead of the flat config fields.
///
/// Version 3: the v2 description schema (sectored caches, sliced L2)
/// changed the timing model's fill granularity and the L2 tick schedule;
/// entries computed by the unsectored model must not be replayed.
pub const CACHE_FORMAT_VERSION: u32 = 3;

/// Process-wide override of the cache directory:
/// `None` = no override (consult [`CACHE_ENV`]),
/// `Some(None)` = forced off, `Some(Some(dir))` = forced on at `dir`.
static DIR_OVERRIDE: Mutex<Option<Option<PathBuf>>> = Mutex::new(None);

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static STORES: AtomicU64 = AtomicU64::new(0);

/// Forces the cache to `dir` for the rest of the process, taking precedence
/// over [`CACHE_ENV`].
pub fn set_cache_dir(dir: impl Into<PathBuf>) {
    *DIR_OVERRIDE.lock().expect("cache override poisoned") = Some(Some(dir.into()));
}

/// Forces the cache off for the rest of the process, even if [`CACHE_ENV`]
/// is set.
pub fn disable_cache() {
    *DIR_OVERRIDE.lock().expect("cache override poisoned") = Some(None);
}

/// Clears a previous [`set_cache_dir`] / [`disable_cache`] override,
/// returning control to [`CACHE_ENV`].
pub fn clear_cache_dir() {
    *DIR_OVERRIDE.lock().expect("cache override poisoned") = None;
}

/// The cache directory measurements will consult, if any: the programmatic
/// override if one is set, else a non-empty [`CACHE_ENV`].
pub fn cache_dir() -> Option<PathBuf> {
    if let Some(forced) = DIR_OVERRIDE
        .lock()
        .expect("cache override poisoned")
        .clone()
    {
        return forced;
    }
    match std::env::var(CACHE_ENV) {
        Ok(v) if !v.trim().is_empty() => Some(PathBuf::from(v)),
        _ => None,
    }
}

/// Cumulative cache traffic of this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that fell through to simulation.
    pub misses: u64,
    /// Entries written back after a miss.
    pub stores: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (1.0 for zero lookups).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// This process's cache hit/miss/store counters so far.
pub fn cache_stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        stores: STORES.load(Ordering::Relaxed),
    }
}

/// Zeroes the counters (e.g. between the cold and warm passes of a
/// benchmark).
pub fn reset_cache_stats() {
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
    STORES.store(0, Ordering::Relaxed);
}

/// The content address of one chase grid point: a stable hash over the
/// format version, the config's architecture description (its display name
/// and observability switches are excluded — see
/// [`gpu_sim::ArchDesc::hash_desc`]) and the full chase parameters.
pub fn chase_key(config: &GpuConfig, params: &ChaseParams) -> u64 {
    let mut h = StableHasher::new();
    h.u32(CACHE_FORMAT_VERSION);
    config.arch_desc().hash_desc(&mut h);
    h.u64(params.footprint);
    h.u64(params.stride);
    h.u8(match params.space {
        ChaseSpace::Global => 0,
        ChaseSpace::Local => 1,
    });
    match params.pattern {
        ChasePattern::Sequential => h.u8(0),
        ChasePattern::Shuffled { seed } => {
            h.u8(1);
            h.u64(seed);
        }
    }
    h.finish()
}

fn encode_measurement(m: &ChaseMeasurement) -> Vec<u8> {
    let mut e = Encoder::new();
    e.f64(m.per_access);
    e.u64(m.accesses);
    e.u64(m.cycles_short);
    e.u64(m.cycles_long);
    e.finish()
}

fn decode_measurement(bytes: &[u8]) -> Result<ChaseMeasurement, SnapshotError> {
    let mut d = Decoder::open(bytes)?;
    let m = ChaseMeasurement {
        per_access: d.f64()?,
        accesses: d.u64()?,
        cycles_short: d.u64()?,
        cycles_long: d.u64()?,
    };
    d.expect_end()?;
    Ok(m)
}

/// Looks `key` up in `dir`, counting a hit or a miss. Any problem with the
/// entry — absent, unreadable, truncated, corrupted, wrong version — is a
/// miss; the caller recomputes and overwrites it.
pub fn lookup_chase(dir: &Path, key: u64) -> Option<ChaseMeasurement> {
    let m = store::cache_load(dir, key).and_then(|framed| decode_measurement(&framed).ok());
    match m {
        Some(_) => HITS.fetch_add(1, Ordering::Relaxed),
        None => MISSES.fetch_add(1, Ordering::Relaxed),
    };
    m
}

/// Writes `m` under `key` in `dir`, atomically. Best-effort: a cache-write
/// failure (full disk, permissions) must not fail the measurement that
/// produced the value, so errors are swallowed and only successful writes
/// count as stores.
pub fn store_chase(dir: &Path, key: u64, m: &ChaseMeasurement) {
    if store::cache_store(dir, key, &encode_measurement(m)).is_ok() {
        STORES.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::ArchPreset;

    /// Tests that mutate the process-wide override serialize on this lock.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    fn sample() -> ChaseMeasurement {
        ChaseMeasurement {
            per_access: 45.25,
            accesses: 8192,
            cycles_short: 123_456,
            cycles_long: 493_824,
        }
    }

    #[test]
    fn measurement_roundtrips() {
        let m = sample();
        assert_eq!(decode_measurement(&encode_measurement(&m)).unwrap(), m);
    }

    #[test]
    fn corrupt_entry_is_a_miss_and_gets_overwritten() {
        let dir = std::env::temp_dir().join(format!("latcache-corrupt-{}", std::process::id()));
        let key = 0xDEAD_BEEF_u64;
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(store::cache_path(&dir, key), b"garbage").unwrap();
        assert_eq!(lookup_chase(&dir, key), None);
        store_chase(&dir, key, &sample());
        assert_eq!(lookup_chase(&dir, key), Some(sample()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn keys_separate_configs_and_params() {
        let fermi = ArchPreset::FermiGf106.config_microbench();
        let kepler = ArchPreset::KeplerGk104.config_microbench();
        let a = ChaseParams::global(4096, 128);
        let b = ChaseParams::global(4096, 256);
        assert_ne!(chase_key(&fermi, &a), chase_key(&kepler, &a));
        assert_ne!(chase_key(&fermi, &a), chase_key(&fermi, &b));
        assert_eq!(chase_key(&fermi, &a), chase_key(&fermi, &a));
    }

    #[test]
    fn key_ignores_name_but_sees_timing() {
        let base = ArchPreset::FermiGf106.config_microbench();
        let params = ChaseParams::global(4096, 128);
        let mut renamed = base.clone();
        renamed.name = "some other label".into();
        assert_eq!(chase_key(&base, &params), chase_key(&renamed, &params));
        let mut slower = base.clone();
        slower.dram.timing.t_cl += 1;
        assert_ne!(chase_key(&base, &params), chase_key(&slower, &params));
    }

    #[test]
    fn concurrent_same_key_collision_is_last_writer_wins_bit_identical() {
        // The serve daemon's point dedup means same-key collisions are
        // normally prevented in-process, but two daemons (or a daemon and a
        // one-shot bin) can still race the same key on disk. Because every
        // writer of a given key encodes the *same* measurement (the key is
        // content-addressed over config + params), last-writer-wins must be
        // indistinguishable from first-writer-wins: the surviving bytes are
        // bit-identical to a fresh encode, and concurrent readers only ever
        // see a complete entry or a miss.
        let dir = std::env::temp_dir().join(format!("latcache-race-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let key = 0xC0117_u64;
        let expected = sample();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let dir = &dir;
                let expected = &expected;
                scope.spawn(move || {
                    for _ in 0..50 {
                        store_chase(dir, key, expected);
                    }
                });
            }
            for _ in 0..4 {
                let dir = &dir;
                scope.spawn(move || {
                    for _ in 0..200 {
                        match lookup_chase(dir, key) {
                            None => {} // NotFound race before the first rename
                            Some(m) => assert_eq!(m, expected, "torn or foreign entry"),
                        }
                    }
                });
            }
        });
        // Whoever renamed last, the bytes on disk are exactly one encode.
        let raw = store::cache_load(&dir, key).expect("entry survives the race");
        assert_eq!(raw, encode_measurement(&expected));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn override_beats_env_and_clears() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        set_cache_dir("/tmp/somewhere");
        assert_eq!(cache_dir(), Some(PathBuf::from("/tmp/somewhere")));
        disable_cache();
        assert_eq!(cache_dir(), None);
        clear_cache_dir();
        // Back to the environment (whatever it says).
    }
}
