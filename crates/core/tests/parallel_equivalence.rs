//! Determinism contract of the parallel experiment engine: for every entry
//! point that fans out over the [`latency_core::parallel`] pool, the output
//! must be *bit-identical* to the single-threaded reference path — same
//! order, same values — for any worker count.
//!
//! Worker counts are forced via [`latency_core::set_worker_count`] so the
//! parallel code path is exercised even on single-core CI machines; tests
//! that mutate the process-wide override serialize on a lock.

use std::sync::Mutex;

use gpu_types::rng::Rng;
use latency_core::chase::ChaseSpace;
use latency_core::{
    clear_worker_count, measure_row, measure_row_serial, set_worker_count, worker_count,
    ArchPreset, Sweep, Table1,
};

static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Forced-parallel `Sweep::run` equals `Sweep::run_serial` exactly on a
/// randomized grid, for every Table I preset.
#[test]
fn sweep_parallel_equals_serial_on_randomized_grids() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    let mut rng = Rng::seed_from_u64(0x5EEE_2024);
    for preset in ArchPreset::TABLE1 {
        let cfg = preset.config_microbench();
        // Random small grid: 2-3 footprints x 2-3 strides, including
        // degenerate combinations so the skip bookkeeping is compared too.
        let footprints: Vec<u64> = (0..rng.gen_range_usize(2, 4))
            .map(|_| 1024u64 << rng.gen_range_u32(0, 4))
            .collect();
        let strides: Vec<u64> = (0..rng.gen_range_usize(2, 4))
            .map(|_| 128u64 << rng.gen_range_u32(0, 5))
            .collect();
        clear_worker_count();
        let serial = Sweep::run_serial(&cfg, ChaseSpace::Global, &footprints, &strides)
            .expect("serial sweep runs");
        for workers in [2, 5] {
            set_worker_count(workers);
            let parallel = Sweep::run(&cfg, ChaseSpace::Global, &footprints, &strides)
                .expect("parallel sweep runs");
            assert_eq!(
                serial,
                parallel,
                "{}: sweep differs with {workers} workers (grid {footprints:?} x {strides:?})",
                preset.name()
            );
        }
        clear_worker_count();
    }
}

/// `measure_row` (pooled) equals `measure_row_serial` bit-for-bit on all
/// four paper presets.
#[test]
fn measure_row_parallel_equals_serial_for_all_presets() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    for preset in ArchPreset::TABLE1 {
        clear_worker_count();
        let serial = measure_row_serial(preset).expect("serial row measures");
        set_worker_count(8);
        let parallel = measure_row(preset).expect("parallel row measures");
        clear_worker_count();
        assert_eq!(
            serial,
            parallel,
            "{}: parallel row differs from serial",
            preset.name()
        );
    }
}

/// The full Table I is identical between the batched parallel path and the
/// one-at-a-time serial path, and stable across worker counts.
#[test]
fn table1_is_identical_across_worker_counts() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    clear_worker_count();
    let serial = Table1::measure_serial().expect("serial table measures");
    let mut renders = Vec::new();
    for workers in [1, 3, 8] {
        set_worker_count(workers);
        let t = Table1::measure().expect("parallel table measures");
        assert_eq!(serial, t, "table differs with {workers} workers");
        renders.push(t.to_string());
    }
    clear_worker_count();
    // The printed artifact (what `--threads N` users diff) is identical too.
    assert!(renders.windows(2).all(|w| w[0] == w[1]));
}

/// The `LATENCY_THREADS` environment variable steers the pool when no
/// programmatic override is set, and a `set_worker_count` call wins over it.
#[test]
fn env_var_steers_worker_count() {
    let _guard = OVERRIDE_LOCK.lock().unwrap();
    clear_worker_count();
    std::env::set_var(latency_core::parallel::THREADS_ENV, "6");
    assert_eq!(worker_count(), 6);
    set_worker_count(2);
    assert_eq!(worker_count(), 2);
    clear_worker_count();
    std::env::set_var(latency_core::parallel::THREADS_ENV, "not-a-number");
    assert!(worker_count() >= 1);
    std::env::remove_var(latency_core::parallel::THREADS_ENV);
}
