//! Randomized tests of the dynamic-latency analyses, driven by the
//! workspace's hermetic [`gpu_types::rng`] (fixed seeds, fully
//! reproducible): for arbitrary (well-formed) request timelines and load
//! records, the breakdown must partition time exactly and the exposure
//! fractions must stay coherent.

use gpu_mem::{PipelineSpace, Stamp, Timeline};
use gpu_sim::{CompletedRequest, LoadInstrRecord};
use gpu_types::rng::Rng;
use gpu_types::{Cycle, SmId};
use latency_core::{components_of, ExposureAnalysis, LatencyBreakdown};

/// A monotone timeline visiting `Issue`, a random subset of the interior
/// stamps (in pipeline order), and `Returned`.
fn gen_timeline(rng: &mut Rng) -> Timeline {
    let mut t = Timeline::new();
    let mut now = Cycle::new(rng.gen_range_u64(0, 10_000));
    t.record(Stamp::Issue, now);
    let interior = [
        Stamp::L1Access,
        Stamp::IcntInject,
        Stamp::RopEnter,
        Stamp::L2QueueEnter,
        Stamp::DramQueueEnter,
        Stamp::DramScheduled,
        Stamp::DramDone,
    ];
    for stamp in interior {
        if rng.gen_bool() {
            now += rng.gen_range_u64(0, 500);
            t.record(stamp, now);
        }
    }
    now += rng.gen_range_u64(1, 500);
    t.record(Stamp::Returned, now);
    t
}

fn gen_request(rng: &mut Rng) -> CompletedRequest {
    CompletedRequest {
        timeline: gen_timeline(rng),
        space: PipelineSpace::Global,
        sm: SmId::new(0),
    }
}

fn gen_requests(rng: &mut Rng, min: usize, max: usize) -> Vec<CompletedRequest> {
    let n = rng.gen_range_usize(min, max);
    (0..n).map(|_| gen_request(rng)).collect()
}

fn gen_load_record(rng: &mut Rng) -> LoadInstrRecord {
    let issue = rng.gen_range_u64(0, 100_000);
    let total = rng.gen_range_u64(1, 5_000);
    LoadInstrRecord {
        sm: SmId::new(0),
        pc: 0,
        issue: Cycle::new(issue),
        complete: Cycle::new(issue + total),
        exposed: rng.gen_range_u64(0, 6_000),
        lines: rng.gen_range_u32(1, 33),
        stall_reasons: gpu_sim::StallBreakdown::default(),
    }
}

const CASES: u64 = 256;

/// The eight components always partition the total latency exactly.
#[test]
fn components_partition_total() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x713E_0000 + case);
        let t = gen_timeline(&mut rng);
        let parts = components_of(&t).expect("timeline is complete");
        assert_eq!(
            parts.iter().sum::<u64>(),
            t.total_latency().expect("complete"),
            "case {case}"
        );
    }
}

/// Bucketizing never loses or duplicates requests, and per-bucket
/// percentages are non-negative and sum to ~100 for non-empty buckets.
#[test]
fn breakdown_conserves_requests() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xB2EA_0000 + case);
        let reqs = gen_requests(&mut rng, 1, 100);
        let n_buckets = rng.gen_range_usize(1, 32);
        let b = LatencyBreakdown::from_requests(&reqs, n_buckets);
        assert_eq!(b.total_requests(), reqs.len() as u64, "case {case}");
        let mut counted = 0u64;
        for i in 0..b.buckets().len() {
            counted += b.count(i);
            if b.count(i) > 0 {
                let p = b.percentages(i);
                let sum: f64 = p.iter().sum();
                assert!(
                    p.iter().all(|&x| (0.0..=100.0 + 1e-6).contains(&x)),
                    "case {case}"
                );
                assert!(
                    (sum - 100.0).abs() < 1e-6,
                    "case {case}: bucket {i} sums to {sum}"
                );
            }
        }
        assert_eq!(counted, reqs.len() as u64, "case {case}");
        // Overall shares also sum to ~100.
        let overall: f64 = b.overall_percentages().iter().sum();
        assert!((overall - 100.0).abs() < 1e-6, "case {case}");
    }
}

/// Clipping splits the population exactly into kept + overflow, and the
/// clipped breakdown never covers a larger range than the unclipped one.
#[test]
fn clipping_is_a_partition() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xC11_0000 + case);
        let reqs = gen_requests(&mut rng, 2, 100);
        let quantile = 0.1 + 0.9 * rng.gen_f64();
        let (clipped, overflow) = LatencyBreakdown::from_requests_clipped(&reqs, 16, quantile);
        assert_eq!(
            clipped.total_requests() + overflow,
            reqs.len() as u64,
            "case {case}"
        );
        let full = LatencyBreakdown::from_requests(&reqs, 16);
        let (_, full_hi) = full.buckets().range(15);
        let (_, clipped_hi) = clipped.buckets().range(15);
        assert!(clipped_hi <= full_hi, "case {case}");
    }
}

/// Exposure fractions stay in [0, 1] per bucket and overall, and the
/// overall fraction is the cycle-weighted mean of the buckets.
#[test]
fn exposure_fractions_are_coherent() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xE870_0000 + case);
        let n = rng.gen_range_usize(1, 100);
        let loads: Vec<LoadInstrRecord> = (0..n).map(|_| gen_load_record(&mut rng)).collect();
        let a = ExposureAnalysis::from_loads(&loads, 12);
        assert_eq!(a.total_loads(), loads.len() as u64, "case {case}");
        let mut weighted = 0.0f64;
        let mut weight = 0.0f64;
        for i in 0..a.buckets().len() {
            let f = a.exposed_fraction(i);
            assert!(
                (0.0..=1.0).contains(&f),
                "case {case}: bucket {i} fraction {f}"
            );
            assert!((f + a.hidden_fraction(i) - 1.0).abs() < 1e-9, "case {case}");
            // Reconstruct the bucket's total cycles from its loads.
            let (lo, hi) = a.buckets().range(i);
            let cyc: u64 = loads
                .iter()
                .map(|l| l.total())
                .filter(|&t| t >= lo && t <= hi)
                .sum();
            weighted += f * cyc as f64;
            weight += cyc as f64;
        }
        if weight > 0.0 {
            assert!(
                (a.overall_exposed_fraction() - weighted / weight).abs() < 1e-9,
                "case {case}"
            );
        }
        assert!(
            (0.0..=1.0).contains(&a.overall_exposed_fraction()),
            "case {case}"
        );
        assert!(
            (0.0..=1.0).contains(&a.buckets_exceeding(0.5)),
            "case {case}"
        );
    }
}
