//! Property-based tests of the dynamic-latency analyses: for arbitrary
//! (well-formed) request timelines and load records, the breakdown must
//! partition time exactly and the exposure fractions must stay coherent.

use gpu_mem::{PipelineSpace, Stamp, Timeline};
use gpu_sim::{CompletedRequest, LoadInstrRecord};
use gpu_types::{Cycle, SmId};
use latency_core::{components_of, ExposureAnalysis, LatencyBreakdown};
use proptest::prelude::*;

/// Strategy: a monotone timeline visiting `Issue`, a random subset of the
/// interior stamps (in pipeline order), and `Returned`.
fn timeline() -> impl Strategy<Value = Timeline> {
    (
        0u64..10_000,                                    // issue time
        proptest::collection::vec(any::<bool>(), 7),     // which interior stamps exist
        proptest::collection::vec(0u64..500, 8),         // gaps between present stamps
    )
        .prop_map(|(issue, present, gaps)| {
            let mut t = Timeline::new();
            let mut now = Cycle::new(issue);
            t.record(Stamp::Issue, now);
            let interior = [
                Stamp::L1Access,
                Stamp::IcntInject,
                Stamp::RopEnter,
                Stamp::L2QueueEnter,
                Stamp::DramQueueEnter,
                Stamp::DramScheduled,
                Stamp::DramDone,
            ];
            let mut gap = gaps.into_iter();
            for (stamp, keep) in interior.into_iter().zip(present) {
                if keep {
                    now += gap.next().unwrap_or(1);
                    t.record(stamp, now);
                }
            }
            now += gap.next().unwrap_or(1);
            t.record(Stamp::Returned, now);
            t
        })
}

fn request() -> impl Strategy<Value = CompletedRequest> {
    timeline().prop_map(|t| CompletedRequest {
        timeline: t,
        space: PipelineSpace::Global,
        sm: SmId::new(0),
    })
}

fn load_record() -> impl Strategy<Value = LoadInstrRecord> {
    (0u64..100_000, 1u64..5_000, 0u64..6_000, 1u32..33).prop_map(
        |(issue, total, exposed, lines)| LoadInstrRecord {
            sm: SmId::new(0),
            issue: Cycle::new(issue),
            complete: Cycle::new(issue + total),
            exposed,
            lines,
        },
    )
}

proptest! {
    /// The eight components always partition the total latency exactly.
    #[test]
    fn components_partition_total(t in timeline()) {
        let parts = components_of(&t).expect("timeline is complete");
        prop_assert_eq!(
            parts.iter().sum::<u64>(),
            t.total_latency().expect("complete")
        );
    }

    /// Bucketizing never loses or duplicates requests, and per-bucket
    /// percentages are non-negative and sum to ~100 for non-empty buckets.
    #[test]
    fn breakdown_conserves_requests(
        reqs in proptest::collection::vec(request(), 1..100),
        n_buckets in 1usize..32,
    ) {
        let b = LatencyBreakdown::from_requests(&reqs, n_buckets);
        prop_assert_eq!(b.total_requests(), reqs.len() as u64);
        let mut counted = 0u64;
        for i in 0..b.buckets().len() {
            counted += b.count(i);
            if b.count(i) > 0 {
                let p = b.percentages(i);
                let sum: f64 = p.iter().sum();
                prop_assert!(p.iter().all(|&x| (0.0..=100.0 + 1e-6).contains(&x)));
                prop_assert!((sum - 100.0).abs() < 1e-6, "bucket {} sums to {}", i, sum);
            }
        }
        prop_assert_eq!(counted, reqs.len() as u64);
        // Overall shares also sum to ~100.
        let overall: f64 = b.overall_percentages().iter().sum();
        prop_assert!((overall - 100.0).abs() < 1e-6);
    }

    /// Clipping splits the population exactly into kept + overflow, and the
    /// clipped breakdown never covers a larger range than the unclipped one.
    #[test]
    fn clipping_is_a_partition(
        reqs in proptest::collection::vec(request(), 2..100),
        quantile in 0.1f64..1.0,
    ) {
        let (clipped, overflow) =
            LatencyBreakdown::from_requests_clipped(&reqs, 16, quantile);
        prop_assert_eq!(
            clipped.total_requests() + overflow,
            reqs.len() as u64
        );
        let full = LatencyBreakdown::from_requests(&reqs, 16);
        let (_, full_hi) = full.buckets().range(15);
        let (_, clipped_hi) = clipped.buckets().range(15);
        prop_assert!(clipped_hi <= full_hi);
    }

    /// Exposure fractions stay in [0, 1] per bucket and overall, and the
    /// overall fraction is the cycle-weighted mean of the buckets.
    #[test]
    fn exposure_fractions_are_coherent(
        loads in proptest::collection::vec(load_record(), 1..100),
    ) {
        let a = ExposureAnalysis::from_loads(&loads, 12);
        prop_assert_eq!(a.total_loads(), loads.len() as u64);
        let mut weighted = 0.0f64;
        let mut weight = 0.0f64;
        for i in 0..a.buckets().len() {
            let f = a.exposed_fraction(i);
            prop_assert!((0.0..=1.0).contains(&f), "bucket {} fraction {}", i, f);
            prop_assert!((f + a.hidden_fraction(i) - 1.0).abs() < 1e-9);
            // Reconstruct the bucket's total cycles from its loads.
            let (lo, hi) = a.buckets().range(i);
            let cyc: u64 = loads
                .iter()
                .map(|l| l.total())
                .filter(|&t| t >= lo && t <= hi)
                .sum();
            weighted += f * cyc as f64;
            weight += cyc as f64;
        }
        if weight > 0.0 {
            prop_assert!(
                (a.overall_exposed_fraction() - weighted / weight).abs() < 1e-9
            );
        }
        prop_assert!((0.0..=1.0).contains(&a.overall_exposed_fraction()));
        prop_assert!((0.0..=1.0).contains(&a.buckets_exceeding(0.5)));
    }
}
