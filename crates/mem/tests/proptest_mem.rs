//! Randomized tests for the memory substrates, driven by the workspace's
//! hermetic [`gpu_types::rng`] (fixed seeds, fully reproducible): the
//! set-associative cache against a reference model, the address map's
//! bijectivity, MSHR bookkeeping, and device-memory round trips.

use gpu_mem::{
    AddressMap, Cache, CacheConfig, DeviceMemory, LoadOutcome, MshrConfig, MshrTable, Replacement,
};
use gpu_types::rng::Rng;
use gpu_types::Addr;
use std::collections::HashMap;

/// Straightforward reference model of an LRU set-associative tag array.
struct RefCache {
    sets: usize,
    ways: usize,
    line: u64,
    // per set: Vec of tags, most-recent last
    content: HashMap<usize, Vec<u64>>,
}

impl RefCache {
    fn new(sets: usize, ways: usize, line: u64) -> Self {
        RefCache {
            sets,
            ways,
            line,
            content: HashMap::new(),
        }
    }
    fn set_and_tag(&self, addr: u64) -> (usize, u64) {
        let l = addr / self.line;
        ((l as usize) % self.sets, l / self.sets as u64)
    }
    fn load(&mut self, addr: u64) -> bool {
        let (s, t) = self.set_and_tag(addr);
        let set = self.content.entry(s).or_default();
        if let Some(pos) = set.iter().position(|&x| x == t) {
            set.remove(pos);
            set.push(t);
            true
        } else {
            false
        }
    }
    fn fill(&mut self, addr: u64) {
        let (s, t) = self.set_and_tag(addr);
        let ways = self.ways;
        let set = self.content.entry(s).or_default();
        if let Some(pos) = set.iter().position(|&x| x == t) {
            set.remove(pos);
        } else if set.len() == ways {
            set.remove(0); // evict LRU
        }
        set.push(t);
    }
    fn store_invalidate(&mut self, addr: u64) {
        let (s, t) = self.set_and_tag(addr);
        if let Some(set) = self.content.get_mut(&s) {
            set.retain(|&x| x != t);
        }
    }
}

#[derive(Debug, Clone)]
enum CacheOp {
    Load(u64),
    Fill(u64),
    StoreInvalidate(u64),
}

fn gen_cache_ops(rng: &mut Rng) -> Vec<CacheOp> {
    // Confine addresses to a small region so sets/ways actually collide.
    let len = rng.gen_range_usize(0, 300);
    (0..len)
        .map(|_| {
            let a = rng.gen_range_u64(0, 8192);
            match rng.gen_range_u32(0, 3) {
                0 => CacheOp::Load(a),
                1 => CacheOp::Fill(a),
                _ => CacheOp::StoreInvalidate(a),
            }
        })
        .collect()
}

const CASES: u64 = 256;

/// The LRU cache agrees with the reference model on every hit/miss,
/// as long as no fills are outstanding (reservations are exercised by
/// the pipeline tests).
#[test]
fn lru_cache_matches_reference() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x000C_AC4E_0000 + case);
        let sets = 1usize << rng.gen_range_u32(0, 4);
        let ways = rng.gen_range_usize(1, 5);
        let ops = gen_cache_ops(&mut rng);
        let mut cache = Cache::new(CacheConfig {
            sets,
            ways,
            line_size: 128,
            replacement: Replacement::Lru,
        });
        let mut model = RefCache::new(sets, ways, 128);
        for op in ops {
            match op {
                CacheOp::Load(a) => {
                    let got = cache.load(Addr::new(a)) == LoadOutcome::Hit;
                    let want = model.load(a);
                    assert_eq!(got, want, "case {case}: load {a:#x}");
                }
                CacheOp::Fill(a) => {
                    cache.fill(Addr::new(a));
                    model.fill(a);
                }
                CacheOp::StoreInvalidate(a) => {
                    cache.store_invalidate(Addr::new(a));
                    model.store_invalidate(a);
                }
            }
        }
    }
}

/// Partition + local address uniquely reconstructs the device address:
/// the mapping loses no information and partitions tile the space.
#[test]
fn address_map_is_injective() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xADD2_0000 + case);
        let partitions = rng.gen_range_usize(1, 9);
        let banks = rng.gen_range_usize(1, 17);
        let n_addrs = rng.gen_range_usize(1, 100);
        let addrs: Vec<u64> = (0..n_addrs)
            .map(|_| rng.gen_range_u64(0, 1_000_000))
            .collect();
        let map = AddressMap::new(partitions, 256, banks, 2048);
        let mut seen: HashMap<(u32, u64), u64> = HashMap::new();
        for &a in &addrs {
            let key = (
                map.partition_of(Addr::new(a)).get(),
                map.local_addr(Addr::new(a)),
            );
            if let Some(&prev) = seen.get(&key) {
                assert_eq!(
                    prev, a,
                    "case {case}: two addresses map to same (partition, local)"
                );
            }
            seen.insert(key, a);
            assert!(map.bank_of(Addr::new(a)) < banks, "case {case}");
        }
    }
}

/// Consecutive chunks rotate across all partitions evenly.
#[test]
fn partitions_interleave_uniformly() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x1A7E_0000 + case);
        let partitions = rng.gen_range_usize(1, 9);
        let chunks = rng.gen_range_u64(1, 64);
        let map = AddressMap::new(partitions, 256, 8, 2048);
        let mut counts = vec![0u64; partitions];
        for c in 0..chunks * partitions as u64 {
            counts[map.partition_of(Addr::new(c * 256)).index()] += 1;
        }
        for &c in &counts {
            assert_eq!(c, chunks, "case {case}");
        }
    }
}

/// MSHR: waiters come back exactly once, in order, and entry count
/// never exceeds the configured capacity.
#[test]
fn mshr_conserves_waiters() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x354_0000 + case);
        let entries = rng.gen_range_usize(1, 8);
        let max_merged = rng.gen_range_usize(1, 8);
        let n_lines = rng.gen_range_usize(1, 100);
        let lines: Vec<u64> = (0..n_lines).map(|_| rng.gen_range_u64(0, 16)).collect();
        let mut mshr: MshrTable<u64> = MshrTable::new(MshrConfig {
            entries,
            max_merged,
        });
        let mut expected: HashMap<u64, Vec<u64>> = HashMap::new();
        let mut ticket = 0u64;
        for line in lines {
            let addr = Addr::new(line * 128);
            if mshr.is_pending(addr) {
                let t = ticket;
                ticket += 1;
                match mshr.try_merge(addr, t) {
                    Ok(()) => expected.entry(line).or_default().push(t),
                    Err(_) => {
                        assert!(!mshr.can_merge(addr), "case {case}");
                        // Full merge list: fill the line and retry later.
                        let got = mshr.fill(addr);
                        assert_eq!(
                            got,
                            expected.remove(&line).unwrap_or_default(),
                            "case {case}"
                        );
                    }
                }
            } else if mshr.allocate(addr) {
                expected.insert(line, Vec::new());
            } else {
                assert!(!mshr.can_allocate(), "case {case}");
                // Drain one arbitrary pending line to make room.
                if let Some((&l, _)) = expected.iter().next() {
                    let got = mshr.fill(Addr::new(l * 128));
                    assert_eq!(got, expected.remove(&l).unwrap_or_default(), "case {case}");
                }
            }
            assert!(mshr.len() <= entries, "case {case}");
        }
        // Drain everything left.
        let keys: Vec<u64> = expected.keys().copied().collect();
        for l in keys {
            let got = mshr.fill(Addr::new(l * 128));
            assert_eq!(got, expected.remove(&l).unwrap(), "case {case}");
        }
        assert!(mshr.is_empty(), "case {case}");
    }
}

/// Device memory: last write wins, reads never tear across pages.
#[test]
fn device_memory_read_your_writes() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xD3A_0000 + case);
        let n_writes = rng.gen_range_usize(1, 200);
        let writes: Vec<(u64, u32)> = (0..n_writes)
            .map(|_| (rng.gen_range_u64(0, 20_000), rng.next_u32()))
            .collect();
        let mut mem = DeviceMemory::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for &(a, v) in &writes {
            mem.write_u32(Addr::new(a), v);
            for (i, b) in v.to_le_bytes().iter().enumerate() {
                model.insert(a + i as u64, *b);
            }
        }
        for &(a, _) in &writes {
            let mut want = [0u8; 4];
            for (i, b) in want.iter_mut().enumerate() {
                *b = *model.get(&(a + i as u64)).unwrap_or(&0);
            }
            assert_eq!(
                mem.read_u32(Addr::new(a)),
                u32::from_le_bytes(want),
                "case {case}: read {a:#x}"
            );
        }
    }
}
