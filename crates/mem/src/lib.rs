//! Memory-system substrates for the `gpu-latency` simulator.
//!
//! Everything between an SM's load-store unit and the DRAM pins lives here:
//!
//! - [`MemRequest`] / [`Timeline`] / [`Stamp`]: the line-granular memory
//!   transactions that traverse the pipeline, carrying the per-stage cycle
//!   stamps the paper's dynamic-latency breakdown (Fig. 1) is computed from.
//! - [`Cache`]: set-associative tag array used for L1 data caches and L2
//!   slices, with Fermi-style write-through/write-evict store handling.
//! - [`MshrTable`]: finite miss-status holding registers with merging.
//! - [`DramController`]: per-partition GDDR channel with banked row-buffer
//!   timing and FR-FCFS / FCFS scheduling ([`DramSched`]).
//! - [`AddressMap`]: partition interleaving and bank/row decoding.
//! - [`DeviceMemory`]: the *functional* backing store (timing-free).
//!
//! The cycle-by-cycle wiring of these pieces into SMs, an interconnect and
//! memory partitions lives in the `gpu-sim` crate.

mod cache;
mod device;
mod dram;
mod mapping;
mod mshr;
mod request;

pub use cache::{Cache, CacheConfig, LoadOutcome, Replacement};
pub use device::DeviceMemory;
pub use dram::{
    DramConfig, DramController, DramEvent, DramEventKind, DramSched, DramStats, DramTiming,
};
pub use mapping::AddressMap;
pub use mshr::{MshrConfig, MshrTable};
pub use request::{AccessKind, MemRequest, PipelineSpace, RequestId, Stamp, Timeline};
