//! Functional device memory: a sparse byte-addressable backing store with a
//! bump allocator, playing the role of the GPU's DRAM contents.
//!
//! Timing is *not* modeled here — this is the architectural state that the
//! functional executor reads and writes at issue time. The timing models
//! (`cache`, `dram`, the `gpu-sim` pipeline) only ever see addresses.

use std::collections::HashMap;

use gpu_types::Addr;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

/// Sparse functional device memory with a bump allocator.
///
/// # Examples
///
/// ```
/// use gpu_mem::DeviceMemory;
///
/// let mut mem = DeviceMemory::new();
/// let buf = mem.alloc(1024, 128);
/// mem.write_u32(buf, 0xdead_beef);
/// assert_eq!(mem.read_u32(buf), 0xdead_beef);
/// ```
#[derive(Debug, Default)]
pub struct DeviceMemory {
    pages: HashMap<u64, Box<[u8]>>,
    next: u64,
}

impl DeviceMemory {
    /// Base of the allocation arena. Non-zero so that address 0 stays an
    /// "invalid pointer" for kernels.
    const ARENA_BASE: u64 = 0x1_0000;

    /// Creates an empty device memory.
    pub fn new() -> Self {
        DeviceMemory {
            pages: HashMap::new(),
            next: Self::ARENA_BASE,
        }
    }

    /// Allocates `bytes` with the given power-of-two `align`ment and returns
    /// the region's base address. Memory is zero-initialized.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    pub fn alloc(&mut self, bytes: u64, align: u64) -> Addr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = Addr::new(self.next).align_up(align);
        self.next = base.get() + bytes;
        base
    }

    /// Bytes allocated so far.
    pub fn allocated_bytes(&self) -> u64 {
        self.next - Self::ARENA_BASE
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8] {
        self.pages
            .entry(page)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: Addr) -> u8 {
        let a = addr.get();
        match self.pages.get(&(a >> PAGE_SHIFT)) {
            Some(p) => p[(a & (PAGE_SIZE - 1)) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: Addr, value: u8) {
        let a = addr.get();
        self.page_mut(a >> PAGE_SHIFT)[(a & (PAGE_SIZE - 1)) as usize] = value;
    }

    /// Reads `n <= 8` bytes little-endian.
    pub fn read_le(&self, addr: Addr, n: u64) -> u64 {
        debug_assert!(n <= 8);
        let mut v = 0u64;
        for i in 0..n {
            v |= (self.read_u8(addr + i) as u64) << (8 * i);
        }
        v
    }

    /// Writes the low `n <= 8` bytes of `value` little-endian.
    pub fn write_le(&mut self, addr: Addr, n: u64, value: u64) {
        debug_assert!(n <= 8);
        for i in 0..n {
            self.write_u8(addr + i, (value >> (8 * i)) as u8);
        }
    }

    /// Reads a 32-bit little-endian word.
    pub fn read_u32(&self, addr: Addr) -> u32 {
        self.read_le(addr, 4) as u32
    }

    /// Writes a 32-bit little-endian word.
    pub fn write_u32(&mut self, addr: Addr, value: u32) {
        self.write_le(addr, 4, value as u64);
    }

    /// Reads a 64-bit little-endian word.
    pub fn read_u64(&self, addr: Addr) -> u64 {
        self.read_le(addr, 8)
    }

    /// Writes a 64-bit little-endian word.
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        self.write_le(addr, 8, value);
    }

    /// Copies a `u32` slice into device memory starting at `addr`.
    pub fn write_u32_slice(&mut self, addr: Addr, values: &[u32]) {
        for (i, v) in values.iter().enumerate() {
            self.write_u32(addr + 4 * i as u64, *v);
        }
    }

    /// Reads `len` consecutive `u32`s starting at `addr`.
    pub fn read_u32_slice(&self, addr: Addr, len: usize) -> Vec<u32> {
        (0..len)
            .map(|i| self.read_u32(addr + 4 * i as u64))
            .collect()
    }

    /// Atomically (functionally) adds to the `n`-byte word at `addr`,
    /// returning the previous value.
    pub fn fetch_add(&mut self, addr: Addr, n: u64, value: u64) -> u64 {
        let old = self.read_le(addr, n);
        self.write_le(addr, n, old.wrapping_add(value));
        old
    }

    // ---- snapshot codec ---------------------------------------------------

    /// Serializes the allocator cursor and every resident page in address
    /// order (the sparse map's iteration order must be pinned for
    /// deterministic snapshots).
    pub fn encode_state(&self, e: &mut gpu_snapshot::Encoder) {
        e.u64(self.next);
        let mut indices: Vec<u64> = self.pages.keys().copied().collect();
        indices.sort_unstable();
        e.usize(indices.len());
        for i in indices {
            e.u64(i);
            e.bytes(&self.pages[&i]);
        }
    }

    /// Overwrites this memory's contents with a decoded checkpoint.
    ///
    /// # Errors
    ///
    /// Rejects pages of the wrong size or duplicated page indices, and
    /// propagates decoder errors.
    pub fn restore_state(
        &mut self,
        d: &mut gpu_snapshot::Decoder,
    ) -> Result<(), gpu_snapshot::SnapshotError> {
        use gpu_snapshot::SnapshotError::InvalidValue;
        self.next = d.u64()?;
        self.pages.clear();
        for _ in 0..d.usize()? {
            let index = d.u64()?;
            let bytes = d.bytes()?;
            if bytes.len() != PAGE_SIZE as usize {
                return Err(InvalidValue("device page has wrong size"));
            }
            if self
                .pages
                .insert(index, bytes.to_vec().into_boxed_slice())
                .is_some()
            {
                return Err(InvalidValue("duplicate device page in snapshot"));
            }
        }
        Ok(())
    }

    /// Folds the functional memory image (allocator cursor plus every
    /// resident page, in address order) into a stable content hash — the
    /// workload-inputs half of a run's `content_hash`.
    pub fn hash_state(&self, h: &mut gpu_snapshot::StableHasher) {
        h.u64(self.next);
        let mut indices: Vec<u64> = self.pages.keys().copied().collect();
        indices.sort_unstable();
        h.usize(indices.len());
        for i in indices {
            h.u64(i);
            h.bytes(&self.pages[&i]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_respects_alignment_and_disjointness() {
        let mut m = DeviceMemory::new();
        let a = m.alloc(100, 128);
        let b = m.alloc(16, 128);
        assert!(a.is_aligned(128));
        assert!(b.is_aligned(128));
        assert!(b.get() >= a.get() + 100);
        assert!(a.get() > 0, "null page must stay unallocated");
    }

    #[test]
    fn rw_roundtrip_across_page_boundary() {
        let mut m = DeviceMemory::new();
        let boundary = Addr::new((1 << PAGE_SHIFT) - 2);
        m.write_u32(boundary, 0xa1b2_c3d4);
        assert_eq!(m.read_u32(boundary), 0xa1b2_c3d4);
    }

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = DeviceMemory::new();
        assert_eq!(m.read_u64(Addr::new(0x5000)), 0);
    }

    #[test]
    fn u64_roundtrip() {
        let mut m = DeviceMemory::new();
        m.write_u64(Addr::new(0x100), u64::MAX - 3);
        assert_eq!(m.read_u64(Addr::new(0x100)), u64::MAX - 3);
    }

    #[test]
    fn slice_helpers() {
        let mut m = DeviceMemory::new();
        let buf = m.alloc(64, 4);
        m.write_u32_slice(buf, &[1, 2, 3, 4]);
        assert_eq!(m.read_u32_slice(buf, 4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn fetch_add_returns_old() {
        let mut m = DeviceMemory::new();
        let c = m.alloc(4, 4);
        assert_eq!(m.fetch_add(c, 4, 5), 0);
        assert_eq!(m.fetch_add(c, 4, 7), 5);
        assert_eq!(m.read_u32(c), 12);
    }

    #[test]
    fn device_codec_round_trips_sparse_pages() {
        let mut m = DeviceMemory::new();
        let a = m.alloc(64, 128);
        m.write_u64(a, 0xFEED_F00D);
        m.write_u32(Addr::new(0x9_0000), 7); // page far from the arena

        let mut e = gpu_snapshot::Encoder::new();
        m.encode_state(&mut e);
        let framed = e.finish();

        let mut restored = DeviceMemory::new();
        let mut d = gpu_snapshot::Decoder::open(&framed).unwrap();
        restored.restore_state(&mut d).unwrap();
        d.expect_end().unwrap();

        assert_eq!(restored.read_u64(a), 0xFEED_F00D);
        assert_eq!(restored.read_u32(Addr::new(0x9_0000)), 7);
        assert_eq!(restored.allocated_bytes(), m.allocated_bytes());
        // The allocator cursor survives: the next alloc lands identically.
        assert_eq!(restored.alloc(16, 16), m.alloc(16, 16));

        // Re-encode equality and stable hashing agree between the copies.
        let mut h1 = gpu_snapshot::StableHasher::new();
        let mut h2 = gpu_snapshot::StableHasher::new();
        m.hash_state(&mut h1);
        restored.hash_state(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn allocated_bytes_tracks_bump() {
        let mut m = DeviceMemory::new();
        assert_eq!(m.allocated_bytes(), 0);
        m.alloc(10, 1);
        assert_eq!(m.allocated_bytes(), 10);
    }
}
