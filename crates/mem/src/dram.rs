//! DRAM channel timing model with pluggable request scheduling.
//!
//! Models one GDDR channel per memory partition: a finite controller queue,
//! per-bank row-buffer state with activate/precharge/CAS timing, a shared
//! data bus, and a scheduler. Two schedulers are provided:
//!
//! - [`DramSched::FrFcfs`]: first-ready, first-come-first-served — prefers
//!   row-buffer hits, falling back to the oldest request. This is the
//!   arbitration whose queue-wait shows up as the paper's `DRAM(QtoSch)`
//!   component.
//! - [`DramSched::Fcfs`]: strict arrival order, the ablation baseline for the
//!   paper's suggestion that "request latency could potentially be reduced
//!   through usage of a different DRAM scheduling algorithm".

use std::collections::VecDeque;

use gpu_types::Cycle;

use crate::mapping::AddressMap;
use crate::request::{MemRequest, RequestId, Stamp};

/// DRAM core timing parameters, in hot-clock cycles.
///
/// A single clock domain is used for the whole model (see DESIGN.md), so
/// these values are already scaled to core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Row-activate to column-access delay (tRCD).
    pub t_rcd: u64,
    /// Precharge latency (tRP).
    pub t_rp: u64,
    /// Column-access (CAS) latency (tCL).
    pub t_cl: u64,
    /// Data-burst duration on the bus per request.
    pub burst: u64,
}

impl DramTiming {
    /// Latency from scheduling to data for a row hit.
    pub fn row_hit(&self) -> u64 {
        self.t_cl
    }

    /// Latency for a bank whose open row differs (precharge + activate +
    /// CAS).
    pub fn row_conflict(&self) -> u64 {
        self.t_rp + self.t_rcd + self.t_cl
    }

    /// Latency for a bank with no open row (activate + CAS).
    pub fn row_closed(&self) -> u64 {
        self.t_rcd + self.t_cl
    }
}

/// DRAM request scheduling algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramSched {
    /// First-ready FCFS: oldest row-hit first, then oldest overall.
    FrFcfs,
    /// Strict FCFS: only the oldest request is considered.
    Fcfs,
}

/// Configuration of one DRAM channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Core timing.
    pub timing: DramTiming,
    /// Controller queue capacity.
    pub queue_capacity: usize,
    /// Scheduling algorithm.
    pub sched: DramSched,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    ready_at: Cycle,
}

/// What a logged DRAM command did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DramEventKind {
    /// A row was activated (opened) in a bank.
    Activate,
    /// A bank's open row was precharged (closed) ahead of a conflicting
    /// access.
    Precharge,
    /// A queued request was selected for service.
    Schedule,
}

/// One logged DRAM command, emitted when event logging is enabled (see
/// [`DramController::set_event_log`]). The tracing layer drains these into
/// its own event stream; keeping the log here avoids a dependency from the
/// memory model on the tracer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramEvent {
    /// Cycle the command happened.
    pub at: Cycle,
    /// What happened.
    pub kind: DramEventKind,
    /// Bank index within this channel.
    pub bank: u32,
    /// Row the command refers to (for `Precharge`, the row that was open).
    pub row: u64,
    /// The request that triggered the command, when one did.
    pub id: Option<RequestId>,
}

/// Aggregate DRAM statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Requests serviced.
    pub serviced: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer conflicts (different row open).
    pub row_conflicts: u64,
    /// Accesses to banks with no open row.
    pub row_closed: u64,
    /// Sum over requests of cycles spent waiting in the controller queue.
    pub queue_wait_cycles: u64,
}

/// One DRAM channel: queue + banks + data bus + scheduler.
pub struct DramController {
    config: DramConfig,
    map: AddressMap,
    queue: VecDeque<MemRequest>,
    banks: Vec<Bank>,
    bus_free_at: Cycle,
    in_service: Vec<(Cycle, MemRequest)>,
    stats: DramStats,
    log_events: bool,
    events: Vec<DramEvent>,
}

impl std::fmt::Debug for DramController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DramController")
            .field("queued", &self.queue.len())
            .field("in_service", &self.in_service.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl DramController {
    /// Creates a channel for the partition described by `map`.
    ///
    /// # Panics
    ///
    /// Panics if the queue capacity is zero.
    pub fn new(config: DramConfig, map: AddressMap) -> Self {
        assert!(
            config.queue_capacity > 0,
            "DRAM queue capacity must be positive"
        );
        DramController {
            config,
            map,
            queue: VecDeque::new(),
            banks: vec![Bank::default(); map.banks()],
            bus_free_at: Cycle::ZERO,
            in_service: Vec::new(),
            stats: DramStats::default(),
            log_events: false,
            events: Vec::new(),
        }
    }

    /// Enables or disables the command event log. Disabled (the default)
    /// costs nothing; enabled, every schedule/activate/precharge is
    /// appended for [`DramController::drain_events`] to collect.
    pub fn set_event_log(&mut self, on: bool) {
        self.log_events = on;
        if !on {
            self.events.clear();
        }
    }

    /// Takes the logged events accumulated since the last drain.
    pub fn drain_events(&mut self) -> Vec<DramEvent> {
        std::mem::take(&mut self.events)
    }

    /// Returns `true` if the controller queue can accept a request.
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.config.queue_capacity
    }

    /// Requests waiting to be scheduled.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently in service (scheduled, data pending).
    pub fn in_service(&self) -> usize {
        self.in_service.len()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Enqueues a request at time `now`, stamping its `DramQueueEnter`.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full; check [`DramController::can_accept`].
    pub fn enqueue(&mut self, mut req: MemRequest, now: Cycle) {
        assert!(self.can_accept(), "DRAM queue overflow");
        req.timeline.record(Stamp::DramQueueEnter, now);
        self.queue.push_back(req);
    }

    /// Advances the channel one cycle: schedules at most one request and
    /// returns the requests whose data completed this cycle (stamped
    /// `DramDone`).
    pub fn tick(&mut self, now: Cycle) -> Vec<MemRequest> {
        self.try_schedule(now);
        let mut done = Vec::new();
        let mut i = 0;
        while i < self.in_service.len() {
            if self.in_service[i].0 <= now {
                let (_, mut req) = self.in_service.swap_remove(i);
                req.timeline.record(Stamp::DramDone, now);
                done.push(req);
            } else {
                i += 1;
            }
        }
        done
    }

    /// Returns `true` when no work is queued or in flight.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.in_service.is_empty()
    }

    /// A request can start service when its bank accepts a command and the
    /// data bus will be free by the time its access completes (commands
    /// pipeline up to one access depth; anything beyond waits *in the
    /// queue*, which is what the paper's `DRAM(QtoSch)` component measures).
    fn can_start(&self, req: &MemRequest, now: Cycle) -> bool {
        let bank = self.map.bank_of(req.addr);
        if self.banks[bank].ready_at > now {
            return false;
        }
        let access = match self.banks[bank].open_row {
            Some(open) if open == self.map.row_of(req.addr) => self.config.timing.row_hit(),
            Some(_) => self.config.timing.row_conflict(),
            None => self.config.timing.row_closed(),
        };
        self.bus_free_at <= now + access
    }

    fn try_schedule(&mut self, now: Cycle) {
        if self.queue.is_empty() {
            return;
        }
        let pick = match self.config.sched {
            DramSched::Fcfs => {
                if self.can_start(&self.queue[0], now) {
                    Some(0)
                } else {
                    None
                }
            }
            DramSched::FrFcfs => {
                let mut fallback = None;
                let mut row_hit = None;
                for (i, req) in self.queue.iter().enumerate() {
                    if !self.can_start(req, now) {
                        continue;
                    }
                    if fallback.is_none() {
                        fallback = Some(i);
                    }
                    let bank = self.map.bank_of(req.addr);
                    if self.banks[bank].open_row == Some(self.map.row_of(req.addr)) {
                        row_hit = Some(i);
                        break; // oldest ready row-hit
                    }
                }
                row_hit.or(fallback)
            }
        };
        let Some(idx) = pick else { return };
        let mut req = self.queue.remove(idx).expect("picked index in range");
        let bank_idx = self.map.bank_of(req.addr);
        let row = self.map.row_of(req.addr);
        let t = &self.config.timing;
        // `access` is the pipeline *latency* to data; `busy` is how long the
        // bank is occupied before it can accept the next command. Column
        // accesses pipeline (a row hit only holds the bank for its burst),
        // while precharge/activate serialize on the bank.
        let open = self.banks[bank_idx].open_row;
        let (access, busy) = match open {
            Some(o) if o == row => {
                self.stats.row_hits += 1;
                (t.row_hit(), t.burst)
            }
            Some(_) => {
                self.stats.row_conflicts += 1;
                (t.row_conflict(), t.t_rp + t.t_rcd + t.burst)
            }
            None => {
                self.stats.row_closed += 1;
                (t.row_closed(), t.t_rcd + t.burst)
            }
        };
        if self.log_events {
            let bank = bank_idx as u32;
            let id = Some(req.id);
            match open {
                Some(o) if o == row => {}
                Some(o) => {
                    self.events.push(DramEvent {
                        at: now,
                        kind: DramEventKind::Precharge,
                        bank,
                        row: o,
                        id,
                    });
                    self.events.push(DramEvent {
                        at: now,
                        kind: DramEventKind::Activate,
                        bank,
                        row,
                        id,
                    });
                }
                None => {
                    self.events.push(DramEvent {
                        at: now,
                        kind: DramEventKind::Activate,
                        bank,
                        row,
                        id,
                    });
                }
            }
            self.events.push(DramEvent {
                at: now,
                kind: DramEventKind::Schedule,
                bank,
                row,
                id,
            });
        }
        req.timeline.record(Stamp::DramScheduled, now);
        if let Some(entered) = req.timeline.get(Stamp::DramQueueEnter) {
            self.stats.queue_wait_cycles += now.since(entered);
        }
        self.stats.serviced += 1;
        // Data burst serializes on the shared bus after the column access.
        let data_start = (now + access).max(self.bus_free_at);
        let done = data_start + t.burst;
        self.bus_free_at = done;
        let bank = &mut self.banks[bank_idx];
        bank.open_row = Some(row);
        bank.ready_at = now + busy;
        self.in_service.push((done, req));
    }

    // ---- snapshot codec ---------------------------------------------------

    /// Serializes the controller queue, per-bank row state, bus occupancy,
    /// in-service requests, statistics and the (possibly undrained) command
    /// event log. Configuration and address map are not serialized; a
    /// restore target must be constructed identically.
    pub fn encode_state(&self, e: &mut gpu_snapshot::Encoder) {
        e.usize(self.queue.len());
        for req in &self.queue {
            req.encode_state(e);
        }
        e.usize(self.banks.len());
        for bank in &self.banks {
            e.opt_u64(bank.open_row);
            e.u64(bank.ready_at.get());
        }
        e.u64(self.bus_free_at.get());
        e.usize(self.in_service.len());
        for (done, req) in &self.in_service {
            e.u64(done.get());
            req.encode_state(e);
        }
        e.u64(self.stats.serviced);
        e.u64(self.stats.row_hits);
        e.u64(self.stats.row_conflicts);
        e.u64(self.stats.row_closed);
        e.u64(self.stats.queue_wait_cycles);
        e.bool(self.log_events);
        e.usize(self.events.len());
        for ev in &self.events {
            e.u64(ev.at.get());
            e.u8(match ev.kind {
                DramEventKind::Activate => 0,
                DramEventKind::Precharge => 1,
                DramEventKind::Schedule => 2,
            });
            e.u32(ev.bank);
            e.u64(ev.row);
            e.opt_u64(ev.id.map(RequestId::get));
        }
    }

    /// Overwrites this controller's dynamic state with a decoded checkpoint.
    ///
    /// # Errors
    ///
    /// Rejects snapshots whose queue exceeds this controller's capacity or
    /// whose bank count disagrees, and propagates decoder errors.
    pub fn restore_state(
        &mut self,
        d: &mut gpu_snapshot::Decoder,
    ) -> Result<(), gpu_snapshot::SnapshotError> {
        use gpu_snapshot::SnapshotError::InvalidValue;
        let n = d.usize()?;
        if n > self.config.queue_capacity {
            return Err(InvalidValue("DRAM queue exceeds configured capacity"));
        }
        self.queue.clear();
        for _ in 0..n {
            self.queue.push_back(MemRequest::decode(d)?);
        }
        if d.usize()? != self.banks.len() {
            return Err(InvalidValue("DRAM bank count mismatch"));
        }
        for bank in &mut self.banks {
            bank.open_row = d.opt_u64()?;
            bank.ready_at = Cycle::new(d.u64()?);
        }
        self.bus_free_at = Cycle::new(d.u64()?);
        self.in_service.clear();
        for _ in 0..d.usize()? {
            let done = Cycle::new(d.u64()?);
            self.in_service.push((done, MemRequest::decode(d)?));
        }
        self.stats.serviced = d.u64()?;
        self.stats.row_hits = d.u64()?;
        self.stats.row_conflicts = d.u64()?;
        self.stats.row_closed = d.u64()?;
        self.stats.queue_wait_cycles = d.u64()?;
        self.log_events = d.bool()?;
        self.events.clear();
        for _ in 0..d.usize()? {
            let at = Cycle::new(d.u64()?);
            let kind = match d.u8()? {
                0 => DramEventKind::Activate,
                1 => DramEventKind::Precharge,
                2 => DramEventKind::Schedule,
                _ => return Err(InvalidValue("unknown DramEventKind tag")),
            };
            let bank = d.u32()?;
            let row = d.u64()?;
            let id = d.opt_u64()?.map(RequestId::new);
            self.events.push(DramEvent {
                at,
                kind,
                bank,
                row,
                id,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{AccessKind, PipelineSpace, RequestId};
    use gpu_types::{Addr, SmId};

    fn timing() -> DramTiming {
        DramTiming {
            t_rcd: 10,
            t_rp: 10,
            t_cl: 15,
            burst: 4,
        }
    }

    fn controller(sched: DramSched) -> DramController {
        DramController::new(
            DramConfig {
                timing: timing(),
                queue_capacity: 16,
                sched,
            },
            AddressMap::new(1, 256, 4, 1024),
        )
    }

    fn req(id: u64, addr: u64, now: u64) -> MemRequest {
        MemRequest::new(
            RequestId::new(id),
            Addr::new(addr),
            128,
            AccessKind::Load,
            PipelineSpace::Global,
            SmId::new(0),
            0,
            Cycle::new(now),
        )
    }

    fn run_until_done(
        c: &mut DramController,
        mut now: Cycle,
        limit: u64,
    ) -> Vec<(u64, MemRequest)> {
        let mut out = Vec::new();
        for _ in 0..limit {
            for r in c.tick(now) {
                out.push((now.get(), r));
            }
            if c.is_idle() {
                break;
            }
            now.tick();
        }
        out
    }

    #[test]
    fn closed_row_access_latency() {
        let mut c = controller(DramSched::FrFcfs);
        c.enqueue(req(1, 0, 0), Cycle::new(0));
        let done = run_until_done(&mut c, Cycle::new(0), 1000);
        assert_eq!(done.len(), 1);
        // scheduled at cycle 0: closed row = tRCD + tCL = 25, + burst 4 = 29.
        assert_eq!(done[0].0, 29);
        assert_eq!(c.stats().row_closed, 1);
    }

    #[test]
    fn row_hits_are_faster_than_conflicts() {
        // Same row twice, then a different row in the same bank.
        let mut c = controller(DramSched::FrFcfs);
        c.enqueue(req(1, 0, 0), Cycle::new(0));
        c.enqueue(req(2, 128, 0), Cycle::new(0)); // same row 0 of bank 0
        let done = run_until_done(&mut c, Cycle::new(0), 10_000);
        assert_eq!(done.len(), 2);
        let s = c.stats();
        assert_eq!(s.row_closed, 1);
        assert_eq!(s.row_hits, 1);
        // Conflict: bank 0 row 1 lives at local 4096 (4 banks * 1024).
        let mut c2 = controller(DramSched::FrFcfs);
        c2.enqueue(req(1, 0, 0), Cycle::new(0));
        c2.enqueue(req(2, 4096, 0), Cycle::new(0));
        run_until_done(&mut c2, Cycle::new(0), 10_000);
        assert_eq!(c2.stats().row_conflicts, 1);
    }

    #[test]
    fn frfcfs_reorders_for_row_hits_fcfs_does_not() {
        // Queue: A(row0), B(row1 same bank), C(row0). FR-FCFS serves C before B.
        let order = |sched| {
            let mut c = controller(sched);
            c.enqueue(req(1, 0, 0), Cycle::new(0)); // row 0
            c.enqueue(req(2, 4096, 0), Cycle::new(0)); // row 1, bank 0
            c.enqueue(req(3, 64, 0), Cycle::new(0)); // row 0
            let done = run_until_done(&mut c, Cycle::new(0), 100_000);
            done.iter().map(|(_, r)| r.id.get()).collect::<Vec<_>>()
        };
        assert_eq!(order(DramSched::FrFcfs), vec![1, 3, 2]);
        assert_eq!(order(DramSched::Fcfs), vec![1, 2, 3]);
    }

    #[test]
    fn banks_overlap_but_bus_serializes_bursts() {
        // Two requests to different banks issued together: accesses overlap,
        // bursts serialize (4 cycles apart at completion).
        let mut c = controller(DramSched::FrFcfs);
        c.enqueue(req(1, 0, 0), Cycle::new(0)); // bank 0
        c.enqueue(req(2, 1024, 0), Cycle::new(0)); // bank 1
        let done = run_until_done(&mut c, Cycle::new(0), 10_000);
        assert_eq!(done.len(), 2);
        let t1 = done[0].0;
        let t2 = done[1].0;
        // First: scheduled cycle 0, done 29. Second: scheduled cycle 1,
        // access done 26 but bus busy until 29 -> done 33.
        assert_eq!(t1, 29);
        assert_eq!(t2, 33);
    }

    #[test]
    fn queue_capacity_enforced() {
        let mut c = DramController::new(
            DramConfig {
                timing: timing(),
                queue_capacity: 1,
                sched: DramSched::Fcfs,
            },
            AddressMap::new(1, 256, 4, 1024),
        );
        assert!(c.can_accept());
        c.enqueue(req(1, 0, 0), Cycle::new(0));
        assert!(!c.can_accept());
    }

    #[test]
    fn stamps_are_recorded() {
        let mut c = controller(DramSched::FrFcfs);
        c.enqueue(req(1, 0, 5), Cycle::new(5));
        let mut now = Cycle::new(5);
        let done = loop {
            let d = c.tick(now);
            if !d.is_empty() {
                break d;
            }
            now.tick();
        };
        let tl = &done[0].timeline;
        assert_eq!(tl.get(Stamp::DramQueueEnter), Some(Cycle::new(5)));
        assert_eq!(tl.get(Stamp::DramScheduled), Some(Cycle::new(5)));
        assert_eq!(tl.get(Stamp::DramDone), Some(now));
        assert!(c.stats().queue_wait_cycles == 0);
    }

    #[test]
    fn event_log_records_row_commands() {
        let mut c = controller(DramSched::Fcfs);
        c.set_event_log(true);
        c.enqueue(req(1, 0, 0), Cycle::new(0)); // closed bank: Activate
        c.enqueue(req(2, 128, 0), Cycle::new(0)); // row hit: Schedule only
        c.enqueue(req(3, 4096, 0), Cycle::new(0)); // conflict: Precharge+Activate
        run_until_done(&mut c, Cycle::new(0), 100_000);
        let events = c.drain_events();
        let kinds: Vec<_> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                DramEventKind::Activate,
                DramEventKind::Schedule,
                DramEventKind::Schedule,
                DramEventKind::Precharge,
                DramEventKind::Activate,
                DramEventKind::Schedule,
            ]
        );
        assert_eq!(events[0].id, Some(RequestId::new(1)));
        assert_eq!(events[3].row, 0); // precharged row was row 0
        assert_eq!(events[4].row, 1);
        // Drain empties the log; once disabled, nothing is recorded.
        assert!(c.drain_events().is_empty());
        c.set_event_log(false);
        c.enqueue(req(4, 0, 0), Cycle::new(500));
        run_until_done(&mut c, Cycle::new(500), 100_000);
        assert!(c.drain_events().is_empty());
    }

    #[test]
    fn event_log_disabled_by_default() {
        let mut c = controller(DramSched::FrFcfs);
        c.enqueue(req(1, 0, 0), Cycle::new(0));
        run_until_done(&mut c, Cycle::new(0), 1000);
        assert!(c.drain_events().is_empty());
    }

    #[test]
    fn dram_codec_round_trips_mid_flight() {
        // Freeze the controller with work queued, a request in service and
        // row state established, restore into a fresh controller, and check
        // both finish identically.
        let mut c = controller(DramSched::FrFcfs);
        c.set_event_log(true);
        c.enqueue(req(1, 0, 0), Cycle::new(0));
        c.enqueue(req(2, 4096, 0), Cycle::new(0));
        c.enqueue(req(3, 128, 0), Cycle::new(0));
        let mut now = Cycle::new(0);
        for _ in 0..3 {
            c.tick(now);
            now.tick();
        }
        assert!(!c.is_idle(), "test wants a mid-flight snapshot");

        let mut e = gpu_snapshot::Encoder::new();
        c.encode_state(&mut e);
        let framed = e.finish();

        let mut restored = controller(DramSched::FrFcfs);
        let mut d = gpu_snapshot::Decoder::open(&framed).unwrap();
        restored.restore_state(&mut d).unwrap();
        d.expect_end().unwrap();

        // Re-encode equality.
        let mut e2 = gpu_snapshot::Encoder::new();
        restored.encode_state(&mut e2);
        assert_eq!(e2.finish(), framed);

        // Both controllers drain to the same completions and stats.
        let a = run_until_done(&mut c, now, 100_000);
        let b = run_until_done(&mut restored, now, 100_000);
        let ids =
            |v: &[(u64, MemRequest)]| v.iter().map(|(t, r)| (*t, r.id.get())).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b));
        assert_eq!(c.stats(), restored.stats());
        assert_eq!(c.drain_events(), restored.drain_events());
    }

    #[test]
    fn dram_restore_rejects_bank_mismatch() {
        let c = controller(DramSched::Fcfs);
        let mut e = gpu_snapshot::Encoder::new();
        c.encode_state(&mut e);
        let framed = e.finish();
        let mut wrong = DramController::new(
            DramConfig {
                timing: timing(),
                queue_capacity: 16,
                sched: DramSched::Fcfs,
            },
            AddressMap::new(1, 256, 8, 1024), // 8 banks, snapshot has 4
        );
        let mut d = gpu_snapshot::Decoder::open(&framed).unwrap();
        assert!(matches!(
            wrong.restore_state(&mut d),
            Err(gpu_snapshot::SnapshotError::InvalidValue(_))
        ));
    }

    #[test]
    fn queue_wait_accumulates_under_load() {
        let mut c = controller(DramSched::Fcfs);
        for i in 0..8 {
            // All to the same bank, different rows: serialized conflicts.
            c.enqueue(req(i, i * 4096, 0), Cycle::new(0));
        }
        run_until_done(&mut c, Cycle::new(0), 100_000);
        assert!(c.stats().queue_wait_cycles > 0);
        assert_eq!(c.stats().serviced, 8);
    }
}
