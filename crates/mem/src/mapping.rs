//! Physical address mapping: partition interleaving and DRAM bank/row
//! decomposition.

use gpu_types::{Addr, PartitionId};

/// Maps device addresses to memory partitions, DRAM banks and rows.
///
/// Addresses are interleaved across partitions in `chunk_bytes` chunks (256 B
/// on the modeled GPUs, i.e. two 128 B lines), then within a partition the
/// partition-local address is split into row/bank/column with banks
/// interleaved at row granularity.
///
/// # Examples
///
/// ```
/// use gpu_mem::AddressMap;
/// use gpu_types::Addr;
///
/// let map = AddressMap::new(6, 256, 16, 2048);
/// let p = map.partition_of(Addr::new(0x100));
/// assert_eq!(p.index(), 1); // second 256-byte chunk -> partition 1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    partitions: usize,
    chunk_bytes: u64,
    banks: usize,
    row_bytes: u64,
}

impl AddressMap {
    /// Creates a map.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or `chunk_bytes`/`row_bytes` is not a
    /// power of two.
    pub fn new(partitions: usize, chunk_bytes: u64, banks: usize, row_bytes: u64) -> Self {
        assert!(partitions > 0 && banks > 0);
        assert!(chunk_bytes.is_power_of_two() && row_bytes.is_power_of_two());
        AddressMap {
            partitions,
            chunk_bytes,
            banks,
            row_bytes,
        }
    }

    /// Number of memory partitions.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Number of DRAM banks per partition.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Row size in bytes.
    pub fn row_bytes(&self) -> u64 {
        self.row_bytes
    }

    /// The memory partition servicing `addr`.
    pub fn partition_of(&self, addr: Addr) -> PartitionId {
        PartitionId::new(((addr.get() / self.chunk_bytes) % self.partitions as u64) as u32)
    }

    /// Partition-local byte address (partition bits squeezed out).
    pub fn local_addr(&self, addr: Addr) -> u64 {
        let chunk = addr.get() / self.chunk_bytes;
        (chunk / self.partitions as u64) * self.chunk_bytes + addr.get() % self.chunk_bytes
    }

    /// DRAM bank within the partition.
    pub fn bank_of(&self, addr: Addr) -> usize {
        ((self.local_addr(addr) / self.row_bytes) % self.banks as u64) as usize
    }

    /// DRAM row within the bank.
    pub fn row_of(&self, addr: Addr) -> u64 {
        self.local_addr(addr) / self.row_bytes / self.banks as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMap {
        AddressMap::new(4, 256, 8, 1024)
    }

    #[test]
    fn partitions_interleave_by_chunk() {
        let m = map();
        assert_eq!(m.partition_of(Addr::new(0)).index(), 0);
        assert_eq!(m.partition_of(Addr::new(255)).index(), 0);
        assert_eq!(m.partition_of(Addr::new(256)).index(), 1);
        assert_eq!(m.partition_of(Addr::new(1024)).index(), 0);
    }

    #[test]
    fn local_addr_is_dense_per_partition() {
        let m = map();
        // Consecutive chunks of partition 0 are contiguous locally.
        assert_eq!(m.local_addr(Addr::new(0)), 0);
        assert_eq!(m.local_addr(Addr::new(4 * 256)), 256);
        assert_eq!(m.local_addr(Addr::new(8 * 256)), 512);
        // Offsets within a chunk are preserved.
        assert_eq!(m.local_addr(Addr::new(4 * 256 + 17)), 256 + 17);
    }

    #[test]
    fn banks_interleave_at_row_granularity() {
        let m = map();
        // Local addresses 0..1024 -> bank 0, 1024..2048 -> bank 1, ...
        assert_eq!(m.bank_of(Addr::new(0)), 0);
        // local_addr(4096) = 1024 (chunk 16 / 4 partitions = chunk 4 locally)
        assert_eq!(m.bank_of(Addr::new(4096)), 1);
        assert_eq!(m.row_of(Addr::new(0)), 0);
    }

    #[test]
    fn rows_advance_after_all_banks() {
        let m = map();
        // 8 banks * 1024 row bytes = 8192 local bytes per row sweep.
        // A local address of 8192 corresponds to a device address of
        // 8192 * 4 (partitions) = 32768 for partition 0.
        let a = Addr::new(32768);
        assert_eq!(m.partition_of(a).index(), 0);
        assert_eq!(m.bank_of(a), 0);
        assert_eq!(m.row_of(a), 1);
    }

    #[test]
    fn accessors() {
        let m = map();
        assert_eq!(m.partitions(), 4);
        assert_eq!(m.banks(), 8);
        assert_eq!(m.row_bytes(), 1024);
    }
}
