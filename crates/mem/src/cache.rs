//! Set-associative cache timing model (tag array only — data lives in
//! [`crate::DeviceMemory`], since functional and timing state are split).
//!
//! Used for both the per-SM L1 data caches and the per-partition L2 slices.
//! Stores follow the Fermi-style global-store policy: write-through,
//! no-allocate, and *write-evict* (a store invalidates a matching line so
//! stale data is never served).

use gpu_types::Addr;

/// Replacement policy for a cache set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Least-recently-used (default on all modeled GPUs).
    Lru,
    /// FIFO by fill time (available for ablations).
    Fifo,
}

/// Static cache geometry and policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_size: u64,
    /// Replacement policy.
    pub replacement: Replacement,
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_size
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics if sets/line size are not powers of two or ways is zero.
    pub fn assert_valid(&self) {
        assert!(self.sets.is_power_of_two(), "sets must be a power of two");
        assert!(self.ways > 0, "ways must be positive");
        assert!(
            self.line_size.is_power_of_two(),
            "line size must be a power of two"
        );
    }
}

/// Result of probing the cache with a load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadOutcome {
    /// Line present.
    Hit,
    /// Line absent; a fill must be requested. `reserved` reports whether a
    /// way could be reserved for the incoming fill.
    Miss,
}

/// One tag-array entry. State is tracked per sector as bitmasks (bit `i` =
/// sector `i` of the line); an unsectored cache has exactly one sector per
/// line, so the masks degenerate to the classic whole-line booleans and the
/// behavior is bit-identical to the pre-sector model.
#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    /// Sectors holding data.
    valid: u32,
    /// Sectors reserved for in-flight fills (prevents double-allocation
    /// while the MSHR tracks the outstanding request).
    reserved: u32,
    /// Sectors holding data newer than memory (write-back caches only).
    dirty: u32,
    stamp: u64,
}

impl Line {
    const EMPTY: Line = Line {
        tag: 0,
        valid: 0,
        reserved: 0,
        dirty: 0,
        stamp: 0,
    };

    /// The line owns its tag while any sector is valid or awaiting a fill.
    fn present(&self) -> bool {
        self.valid != 0 || self.reserved != 0
    }
}

/// A set-associative tag array.
///
/// # Examples
///
/// ```
/// use gpu_mem::{Cache, CacheConfig, Replacement, LoadOutcome};
/// use gpu_types::Addr;
///
/// let mut l1 = Cache::new(CacheConfig {
///     sets: 32,
///     ways: 4,
///     line_size: 128,
///     replacement: Replacement::Lru,
/// });
/// assert_eq!(l1.load(Addr::new(0x1000)), LoadOutcome::Miss);
/// l1.fill(Addr::new(0x1000));
/// assert_eq!(l1.load(Addr::new(0x1000)), LoadOutcome::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// Sector size in bytes; equals `config.line_size` when unsectored.
    sector_bytes: u64,
    /// Sectors per line (1 = classic unsectored line).
    sectors_per_line: u32,
    lines: Vec<Line>,
    writebacks: std::collections::VecDeque<Addr>,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty *unsectored* cache with the given geometry (fills
    /// move whole lines).
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::assert_valid`]).
    pub fn new(config: CacheConfig) -> Self {
        Cache::with_sectors(config, None)
    }

    /// Creates an empty cache that fills and tags at `sector_bytes`
    /// granularity (`None` = unsectored, whole-line fills). A probe hits
    /// only when the touched *sector* is valid; fills and reservations
    /// cover one sector, so miss traffic is naturally counted in sectors.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid, or if the sector size is not a
    /// power of two dividing the line size into at most 32 sectors.
    pub fn with_sectors(config: CacheConfig, sector_bytes: Option<u64>) -> Self {
        config.assert_valid();
        let sector = sector_bytes.unwrap_or(config.line_size);
        assert!(
            sector.is_power_of_two() && sector <= config.line_size,
            "sector size must be a power of two no larger than the line"
        );
        let sectors_per_line = (config.line_size / sector) as u32;
        assert!(
            sectors_per_line <= 32,
            "at most 32 sectors per line (mask width)"
        );
        Cache {
            config,
            sector_bytes: sector,
            sectors_per_line,
            lines: vec![Line::EMPTY; config.sets * config.ways],
            writebacks: std::collections::VecDeque::new(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Sectors per line (1 for an unsectored cache).
    pub fn sectors_per_line(&self) -> u32 {
        self.sectors_per_line
    }

    /// Demand hits observed so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Demand misses observed so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn set_index(&self, addr: Addr) -> usize {
        let line = addr.get() / self.config.line_size;
        (line as usize) & (self.config.sets - 1)
    }

    fn tag(&self, addr: Addr) -> u64 {
        addr.get() / self.config.line_size / self.config.sets as u64
    }

    fn set_range(&self, addr: Addr) -> std::ops::Range<usize> {
        let s = self.set_index(addr);
        s * self.config.ways..(s + 1) * self.config.ways
    }

    /// The mask bit of the sector `addr` falls in (always bit 0 when
    /// unsectored).
    fn sector_bit(&self, addr: Addr) -> u32 {
        1 << ((addr.get() / self.sector_bytes) % self.sectors_per_line as u64)
    }

    /// Probes for a load at `addr`. A hit requires the touched *sector* to
    /// be valid — a sectored cache misses on a resident line whose sector
    /// has not been fetched yet.
    ///
    /// On a hit the line's recency is updated. On a miss nothing is
    /// allocated — call [`Cache::reserve`] (on MSHR allocation) and
    /// [`Cache::fill`] (when data returns) to complete the miss.
    pub fn load(&mut self, addr: Addr) -> LoadOutcome {
        self.tick += 1;
        let tag = self.tag(addr);
        let bit = self.sector_bit(addr);
        let range = self.set_range(addr);
        for i in range {
            let line = &mut self.lines[i];
            if line.valid & bit != 0 && line.tag == tag {
                if self.config.replacement == Replacement::Lru {
                    line.stamp = self.tick;
                }
                self.hits += 1;
                return LoadOutcome::Hit;
            }
        }
        self.misses += 1;
        LoadOutcome::Miss
    }

    /// Probes without updating recency or statistics.
    pub fn probe(&self, addr: Addr) -> bool {
        let tag = self.tag(addr);
        let bit = self.sector_bit(addr);
        self.set_range(addr)
            .any(|i| self.lines[i].valid & bit != 0 && self.lines[i].tag == tag)
    }

    /// Reserves `addr`'s sector for an in-flight fill, evicting a victim
    /// line if needed. Returns `false` if every way is already reserved
    /// for other in-flight fills (the miss must stall).
    pub fn reserve(&mut self, addr: Addr) -> bool {
        self.tick += 1;
        let tag = self.tag(addr);
        let bit = self.sector_bit(addr);
        let range = self.set_range(addr);
        // Line already present (any sector)? Reserve just this sector —
        // a sector miss on a resident line needs no eviction.
        for i in range.clone() {
            let line = &mut self.lines[i];
            if line.tag == tag && line.present() {
                if line.valid & bit == 0 {
                    line.reserved |= bit;
                }
                return true;
            }
        }
        // Find a victim among ways with no in-flight fills.
        let victim = range
            .filter(|&i| self.lines[i].reserved == 0)
            .min_by_key(|&i| {
                let l = &self.lines[i];
                (l.valid != 0, l.stamp)
            });
        match victim {
            Some(i) => {
                let victim = self.lines[i];
                if victim.valid != 0 && victim.dirty != 0 {
                    self.push_writeback(victim.tag, addr);
                }
                self.lines[i] = Line {
                    tag,
                    valid: 0,
                    reserved: bit,
                    dirty: 0,
                    stamp: self.tick,
                };
                true
            }
            None => false,
        }
    }

    /// Fills `addr`'s sector (fill-on-return). Clears any reservation for
    /// that sector; allocates a victim way if the line was not resident.
    pub fn fill(&mut self, addr: Addr) {
        self.tick += 1;
        let tag = self.tag(addr);
        let bit = self.sector_bit(addr);
        let range = self.set_range(addr);
        // Complete a reservation or refresh an existing line.
        for i in range.clone() {
            let line = &mut self.lines[i];
            if line.tag == tag && line.present() {
                line.valid |= bit;
                line.reserved &= !bit;
                line.stamp = self.tick;
                return;
            }
        }
        // Unreserved fill: pick the LRU/FIFO victim among ways with no
        // in-flight fills.
        if let Some(i) = range
            .filter(|&i| self.lines[i].reserved == 0)
            .min_by_key(|&i| {
                let l = &self.lines[i];
                (l.valid != 0, l.stamp)
            })
        {
            let victim = self.lines[i];
            if victim.valid != 0 && victim.dirty != 0 {
                self.push_writeback(victim.tag, addr);
            }
            self.lines[i] = Line {
                tag,
                valid: bit,
                reserved: 0,
                dirty: 0,
                stamp: self.tick,
            };
        }
        // If all ways are reserved the fill is dropped; the reserved ways'
        // own fills will bring their data. (Cannot happen when reserve() is
        // required before the downstream request, which is how the pipeline
        // uses this type.)
    }

    /// Applies the write-evict store policy: invalidates the sector
    /// containing `addr` if present (stores are write-through and never
    /// allocate). On an unsectored cache the single sector is the line, so
    /// the whole line dies — the historical behavior.
    pub fn store_invalidate(&mut self, addr: Addr) {
        let tag = self.tag(addr);
        let bit = self.sector_bit(addr);
        for i in self.set_range(addr) {
            let line = &mut self.lines[i];
            if line.valid & bit != 0 && line.tag == tag {
                line.valid &= !bit;
                line.dirty &= !bit;
            }
        }
    }

    // ---- write-back support -------------------------------------------

    /// Write-back store: marks the line dirty on a hit. Returns `true` on a
    /// hit; on a miss nothing changes (caller decides between
    /// write-allocate via [`Cache::allocate_dirty`] or bypass).
    pub fn store_mark_dirty(&mut self, addr: Addr) -> bool {
        self.tick += 1;
        let tag = self.tag(addr);
        let bit = self.sector_bit(addr);
        for i in self.set_range(addr) {
            let line = &mut self.lines[i];
            if line.valid & bit != 0 && line.tag == tag {
                line.dirty |= bit;
                if self.config.replacement == Replacement::Lru {
                    line.stamp = self.tick;
                }
                self.hits += 1;
                return true;
            }
        }
        self.misses += 1;
        false
    }

    /// Write-allocates a dirty line for a store miss (no fetch: the model
    /// is tag-only and the store overwrites the relevant bytes
    /// functionally at issue). Evicted dirty victims join the writeback
    /// queue. Returns `false` if every way is reserved for in-flight fills.
    pub fn allocate_dirty(&mut self, addr: Addr) -> bool {
        self.tick += 1;
        let tag = self.tag(addr);
        let bit = self.sector_bit(addr);
        let range = self.set_range(addr);
        for i in range.clone() {
            let line = &mut self.lines[i];
            if line.valid != 0 && line.tag == tag {
                line.valid |= bit;
                line.dirty |= bit;
                line.stamp = self.tick;
                return true;
            }
        }
        let victim = range
            .filter(|&i| self.lines[i].reserved == 0)
            .min_by_key(|&i| {
                let l = &self.lines[i];
                (l.valid != 0, l.stamp)
            });
        match victim {
            Some(i) => {
                let victim = self.lines[i];
                if victim.valid != 0 && victim.dirty != 0 {
                    self.push_writeback(victim.tag, addr);
                }
                self.lines[i] = Line {
                    tag,
                    valid: bit,
                    reserved: 0,
                    dirty: bit,
                    stamp: self.tick,
                };
                true
            }
            None => false,
        }
    }

    /// Reconstructs the line-aligned address of an evicted line from its tag
    /// and a sibling address in the same set, then queues it for writeback.
    fn push_writeback(&mut self, victim_tag: u64, sibling: Addr) {
        let set = self.set_index(sibling) as u64;
        let line_addr = (victim_tag * self.config.sets as u64 + set) * self.config.line_size;
        self.writebacks.push_back(Addr::new(line_addr));
    }

    /// Takes the next dirty victim awaiting writeback to memory, if any.
    pub fn pop_writeback(&mut self) -> Option<Addr> {
        self.writebacks.pop_front()
    }

    /// Dirty victims currently awaiting writeback.
    pub fn pending_writebacks(&self) -> usize {
        self.writebacks.len()
    }

    /// Invalidates everything (e.g. between kernel launches when modeling
    /// non-persistent L1s).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            *line = Line::EMPTY;
        }
    }

    // ---- snapshot codec ---------------------------------------------------

    /// Serializes the tag array, writeback queue, LRU tick and statistics.
    /// Only the sector count is serialized of the geometry; a restore
    /// target must be constructed with the same [`CacheConfig`] and sector
    /// size.
    pub fn encode_state(&self, e: &mut gpu_snapshot::Encoder) {
        e.u32(self.sectors_per_line);
        e.usize(self.lines.len());
        for line in &self.lines {
            e.u64(line.tag);
            e.u32(line.valid);
            e.u32(line.reserved);
            e.u32(line.dirty);
            e.u64(line.stamp);
        }
        e.usize(self.writebacks.len());
        for wb in &self.writebacks {
            e.u64(wb.get());
        }
        e.u64(self.tick);
        e.u64(self.hits);
        e.u64(self.misses);
    }

    /// Overwrites this cache's dynamic state with a decoded checkpoint.
    ///
    /// # Errors
    ///
    /// Rejects a snapshot whose line count disagrees with this cache's
    /// geometry, and propagates decoder errors.
    pub fn restore_state(
        &mut self,
        d: &mut gpu_snapshot::Decoder,
    ) -> Result<(), gpu_snapshot::SnapshotError> {
        if d.u32()? != self.sectors_per_line {
            return Err(gpu_snapshot::SnapshotError::InvalidValue(
                "cache geometry mismatch",
            ));
        }
        let n = d.usize()?;
        if n != self.lines.len() {
            return Err(gpu_snapshot::SnapshotError::InvalidValue(
                "cache geometry mismatch",
            ));
        }
        for line in &mut self.lines {
            line.tag = d.u64()?;
            line.valid = d.u32()?;
            line.reserved = d.u32()?;
            line.dirty = d.u32()?;
            line.stamp = d.u64()?;
        }
        self.writebacks.clear();
        for _ in 0..d.usize()? {
            self.writebacks.push_back(Addr::new(d.u64()?));
        }
        self.tick = d.u64()?;
        self.hits = d.u64()?;
        self.misses = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: usize) -> Cache {
        Cache::new(CacheConfig {
            sets: 2,
            ways,
            line_size: 128,
            replacement: Replacement::Lru,
        })
    }

    /// Address that maps to `set` with a distinct tag `k`.
    fn addr(set: u64, k: u64) -> Addr {
        Addr::new((k * 2 + set) * 128)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small_cache(2);
        assert_eq!(c.load(addr(0, 0)), LoadOutcome::Miss);
        c.fill(addr(0, 0));
        assert_eq!(c.load(addr(0, 0)), LoadOutcome::Hit);
        assert_eq!(c.load(addr(0, 0) + 64), LoadOutcome::Hit, "same line");
        assert_eq!((c.hits(), c.misses()), (2, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache(2);
        c.fill(addr(0, 0));
        c.fill(addr(0, 1));
        // Touch line 0 so line 1 becomes LRU.
        assert_eq!(c.load(addr(0, 0)), LoadOutcome::Hit);
        c.fill(addr(0, 2)); // evicts line 1
        assert!(c.probe(addr(0, 0)));
        assert!(!c.probe(addr(0, 1)));
        assert!(c.probe(addr(0, 2)));
    }

    #[test]
    fn fifo_evicts_oldest_fill() {
        let mut c = Cache::new(CacheConfig {
            sets: 2,
            ways: 2,
            line_size: 128,
            replacement: Replacement::Fifo,
        });
        c.fill(addr(0, 0));
        c.fill(addr(0, 1));
        // Touching line 0 does not refresh its FIFO stamp.
        assert_eq!(c.load(addr(0, 0)), LoadOutcome::Hit);
        c.fill(addr(0, 2)); // evicts line 0 (oldest fill)
        assert!(!c.probe(addr(0, 0)));
        assert!(c.probe(addr(0, 1)));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = small_cache(1);
        c.fill(addr(0, 0));
        c.fill(addr(1, 0));
        assert!(c.probe(addr(0, 0)));
        assert!(c.probe(addr(1, 0)));
        c.fill(addr(0, 1)); // evicts only in set 0
        assert!(!c.probe(addr(0, 0)));
        assert!(c.probe(addr(1, 0)));
    }

    #[test]
    fn reserve_blocks_when_all_ways_reserved() {
        let mut c = small_cache(2);
        assert!(c.reserve(addr(0, 0)));
        assert!(c.reserve(addr(0, 1)));
        assert!(!c.reserve(addr(0, 2)), "set exhausted by in-flight fills");
        // Re-reserving an already reserved line succeeds (MSHR merge case).
        assert!(c.reserve(addr(0, 0)));
        // Fill completes the reservation and frees nothing else.
        c.fill(addr(0, 0));
        assert!(c.probe(addr(0, 0)));
        assert!(
            c.reserve(addr(0, 2)),
            "way freed after fill (evicts line 0)"
        );
    }

    #[test]
    fn reserved_line_is_not_a_hit() {
        let mut c = small_cache(2);
        c.reserve(addr(0, 0));
        assert_eq!(c.load(addr(0, 0)), LoadOutcome::Miss);
    }

    #[test]
    fn store_invalidates_line() {
        let mut c = small_cache(2);
        c.fill(addr(0, 0));
        c.store_invalidate(addr(0, 0) + 4);
        assert!(!c.probe(addr(0, 0)));
        // Invalidating an absent line is a no-op.
        c.store_invalidate(addr(1, 5));
    }

    #[test]
    fn flush_empties_cache() {
        let mut c = small_cache(2);
        c.fill(addr(0, 0));
        c.fill(addr(1, 1));
        c.flush();
        assert!(!c.probe(addr(0, 0)));
        assert!(!c.probe(addr(1, 1)));
    }

    #[test]
    fn capacity_math() {
        let cfg = CacheConfig {
            sets: 64,
            ways: 6,
            line_size: 128,
            replacement: Replacement::Lru,
        };
        assert_eq!(cfg.capacity(), 48 * 1024);
    }

    #[test]
    fn store_mark_dirty_hits_and_misses() {
        let mut c = small_cache(2);
        assert!(!c.store_mark_dirty(addr(0, 0)), "cold store misses");
        c.fill(addr(0, 0));
        assert!(c.store_mark_dirty(addr(0, 0)));
        // Evicting the dirty line queues a writeback with the right address.
        c.fill(addr(0, 1));
        c.fill(addr(0, 2)); // evicts line (0,0), which is dirty
        assert_eq!(c.pop_writeback(), Some(addr(0, 0)));
        assert_eq!(c.pop_writeback(), None);
    }

    #[test]
    fn allocate_dirty_write_allocates_and_evicts() {
        let mut c = small_cache(1);
        assert!(c.allocate_dirty(addr(0, 0)));
        assert!(c.probe(addr(0, 0)));
        // Allocating another line in the same 1-way set evicts the dirty one.
        assert!(c.allocate_dirty(addr(0, 1)));
        assert_eq!(c.pop_writeback(), Some(addr(0, 0)));
        assert_eq!(c.pending_writebacks(), 0);
        // Clean evictions produce no writeback.
        c.fill(addr(0, 2));
        assert!(c.allocate_dirty(addr(0, 3)));
        assert_eq!(
            c.pop_writeback(),
            Some(addr(0, 1)),
            "dirty line 1 evicted by fill"
        );
        assert_eq!(c.pop_writeback(), None, "clean line 2 evicted silently");
    }

    #[test]
    fn store_invalidate_clears_dirty() {
        let mut c = small_cache(2);
        c.allocate_dirty(addr(0, 0));
        c.store_invalidate(addr(0, 0));
        // The invalidated line must not generate a writeback when reused.
        c.fill(addr(0, 1));
        c.fill(addr(0, 2));
        assert_eq!(c.pop_writeback(), None);
    }

    #[test]
    fn reserve_evicting_dirty_line_writes_back() {
        let mut c = small_cache(1);
        c.allocate_dirty(addr(0, 0));
        assert!(c.reserve(addr(0, 1)));
        assert_eq!(c.pop_writeback(), Some(addr(0, 0)));
    }

    #[test]
    fn cache_codec_round_trips_lru_behavior() {
        let mut c = small_cache(2);
        c.fill(addr(0, 0));
        c.fill(addr(0, 1));
        assert_eq!(c.load(addr(0, 0)), LoadOutcome::Hit); // line 1 is now LRU
        c.allocate_dirty(addr(1, 0));
        c.reserve(addr(1, 1));

        let mut e = gpu_snapshot::Encoder::new();
        c.encode_state(&mut e);
        let framed = e.finish();

        let mut restored = small_cache(2);
        let mut d = gpu_snapshot::Decoder::open(&framed).unwrap();
        restored.restore_state(&mut d).unwrap();
        d.expect_end().unwrap();

        assert_eq!((restored.hits(), restored.misses()), (c.hits(), c.misses()));
        // Re-encode equality: the restored state is bit-identical.
        let mut e2 = gpu_snapshot::Encoder::new();
        restored.encode_state(&mut e2);
        assert_eq!(e2.finish(), framed);
        // The restored LRU order behaves like the original: a fill evicts
        // line 1 (least recent), keeping line 0.
        restored.fill(addr(0, 2));
        assert!(restored.probe(addr(0, 0)));
        assert!(!restored.probe(addr(0, 1)));
    }

    #[test]
    fn cache_restore_rejects_geometry_mismatch() {
        let c = small_cache(2);
        let mut e = gpu_snapshot::Encoder::new();
        c.encode_state(&mut e);
        let framed = e.finish();
        let mut wrong = small_cache(4);
        let mut d = gpu_snapshot::Decoder::open(&framed).unwrap();
        assert!(matches!(
            wrong.restore_state(&mut d),
            Err(gpu_snapshot::SnapshotError::InvalidValue(_))
        ));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            sets: 3,
            ways: 1,
            line_size: 128,
            replacement: Replacement::Lru,
        });
    }

    // ---- sectored behavior ------------------------------------------------

    fn sectored_cache(ways: usize) -> Cache {
        Cache::with_sectors(
            CacheConfig {
                sets: 2,
                ways,
                line_size: 128,
                replacement: Replacement::Lru,
            },
            Some(32),
        )
    }

    #[test]
    fn sector_miss_on_resident_line() {
        let mut c = sectored_cache(2);
        c.fill(addr(0, 0)); // sector 0 of the line
        assert_eq!(c.load(addr(0, 0)), LoadOutcome::Hit);
        // Same line, different sector: the line is resident but the sector
        // was never fetched — a sectored cache misses where an unsectored
        // one would hit.
        assert_eq!(c.load(addr(0, 0) + 64), LoadOutcome::Miss);
        c.fill(addr(0, 0) + 64);
        assert_eq!(c.load(addr(0, 0) + 64), LoadOutcome::Hit);
        // The unsectored twin hits the whole line after one fill.
        let mut plain = small_cache(2);
        plain.fill(addr(0, 0));
        assert_eq!(plain.load(addr(0, 0) + 64), LoadOutcome::Hit);
    }

    #[test]
    fn sector_reserve_on_resident_line_needs_no_eviction() {
        let mut c = sectored_cache(1);
        c.fill(addr(0, 0));
        // Reserving another sector of the resident line reserves in place.
        assert!(c.reserve(addr(0, 0) + 32));
        assert!(c.probe(addr(0, 0)), "sector 0 survives the reservation");
        c.fill(addr(0, 0) + 32);
        assert!(c.probe(addr(0, 0) + 32));
        assert!(c.probe(addr(0, 0)));
    }

    #[test]
    fn store_invalidates_only_its_sector() {
        let mut c = sectored_cache(2);
        c.fill(addr(0, 0));
        c.fill(addr(0, 0) + 32);
        c.store_invalidate(addr(0, 0) + 32);
        assert!(c.probe(addr(0, 0)), "sibling sector survives");
        assert!(!c.probe(addr(0, 0) + 32));
    }

    #[test]
    fn sectored_eviction_is_whole_line() {
        let mut c = sectored_cache(1);
        c.fill(addr(0, 0));
        c.fill(addr(0, 0) + 32);
        c.fill(addr(0, 1)); // conflicting line evicts the whole line
        assert!(!c.probe(addr(0, 0)));
        assert!(!c.probe(addr(0, 0) + 32));
        assert!(c.probe(addr(0, 1)));
    }

    #[test]
    fn sectored_codec_round_trips_and_rejects_sector_mismatch() {
        let mut c = sectored_cache(2);
        c.fill(addr(0, 0));
        c.fill(addr(0, 0) + 96);
        c.reserve(addr(0, 1) + 32);
        let mut e = gpu_snapshot::Encoder::new();
        c.encode_state(&mut e);
        let framed = e.finish();

        let mut restored = sectored_cache(2);
        let mut d = gpu_snapshot::Decoder::open(&framed).unwrap();
        restored.restore_state(&mut d).unwrap();
        d.expect_end().unwrap();
        assert!(restored.probe(addr(0, 0)));
        assert!(restored.probe(addr(0, 0) + 96));
        assert!(!restored.probe(addr(0, 0) + 32));

        // An unsectored cache of the same shape must refuse the snapshot.
        let mut plain = small_cache(2);
        let mut d = gpu_snapshot::Decoder::open(&framed).unwrap();
        assert!(matches!(
            plain.restore_state(&mut d),
            Err(gpu_snapshot::SnapshotError::InvalidValue(_))
        ));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_sector_size_panics() {
        let _ = Cache::with_sectors(
            CacheConfig {
                sets: 2,
                ways: 1,
                line_size: 128,
                replacement: Replacement::Lru,
            },
            Some(48),
        );
    }
}
