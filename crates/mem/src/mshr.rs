//! Miss-status holding registers (MSHRs).
//!
//! An MSHR table tracks outstanding line fills and merges subsequent misses
//! to the same line so only one downstream request is in flight per line.
//! The table's finite size is one of the resources whose exhaustion produces
//! the queueing behavior the paper observes (a full MSHR table stalls the L1,
//! extending "SM Base" / "L1toICNT" time).
//!
//! The table is generic over the *waiter* payload `T`: the primary miss's
//! request object travels downstream, while merged requests are parked here
//! until the fill returns.

use std::collections::HashMap;

use gpu_types::Addr;

/// Configuration of an MSHR table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrConfig {
    /// Maximum distinct outstanding lines.
    pub entries: usize,
    /// Maximum merged waiters per line (not counting the primary miss,
    /// which travels downstream).
    pub max_merged: usize,
}

/// A table of miss-status holding registers holding waiters of type `T`.
///
/// # Examples
///
/// ```
/// use gpu_mem::{MshrTable, MshrConfig};
/// use gpu_types::Addr;
///
/// let mut mshr: MshrTable<&str> = MshrTable::new(MshrConfig { entries: 32, max_merged: 8 });
/// let line = Addr::new(0x400);
/// assert!(mshr.allocate(line));            // primary miss: goes downstream
/// assert_eq!(mshr.try_merge(line, "w1"), Ok(()));
/// assert_eq!(mshr.fill(line), vec!["w1"]); // fill wakes the merged waiter
/// ```
#[derive(Debug, Clone)]
pub struct MshrTable<T> {
    config: MshrConfig,
    entries: HashMap<u64, Vec<T>>,
}

impl<T> MshrTable<T> {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero.
    pub fn new(config: MshrConfig) -> Self {
        assert!(config.entries > 0, "MSHR table needs at least one entry");
        MshrTable {
            config,
            entries: HashMap::with_capacity(config.entries),
        }
    }

    /// The table configuration.
    pub fn config(&self) -> &MshrConfig {
        &self.config
    }

    /// Number of outstanding lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no fills are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` if a fill for `line` is outstanding.
    pub fn is_pending(&self, line: Addr) -> bool {
        self.entries.contains_key(&line.get())
    }

    /// Returns `true` if a new line entry can be allocated.
    pub fn can_allocate(&self) -> bool {
        self.entries.len() < self.config.entries
    }

    /// Allocates an entry for a primary miss on `line`. Returns `false` if
    /// the table is full (the miss must stall and retry).
    ///
    /// # Panics
    ///
    /// Panics if `line` is already pending — the caller must check
    /// [`MshrTable::is_pending`] and merge instead.
    pub fn allocate(&mut self, line: Addr) -> bool {
        assert!(
            !self.is_pending(line),
            "allocate on already-pending line {line}; merge instead"
        );
        if !self.can_allocate() {
            return false;
        }
        self.entries.insert(line.get(), Vec::new());
        true
    }

    /// Returns `true` if a waiter could merge onto the pending fill of
    /// `line` right now.
    pub fn can_merge(&self, line: Addr) -> bool {
        self.entries
            .get(&line.get())
            .is_some_and(|list| list.len() < self.config.max_merged)
    }

    /// Parks `waiter` on the pending fill of `line`.
    ///
    /// # Errors
    ///
    /// Returns the waiter back if `line` is not pending or its merge list is
    /// full (the access must stall).
    pub fn try_merge(&mut self, line: Addr, waiter: T) -> Result<(), T> {
        match self.entries.get_mut(&line.get()) {
            Some(list) if list.len() < self.config.max_merged => {
                list.push(waiter);
                Ok(())
            }
            _ => Err(waiter),
        }
    }

    /// Completes the fill for `line`, returning the merged waiters in
    /// arrival order (empty if the line was not pending or had no merges).
    pub fn fill(&mut self, line: Addr) -> Vec<T> {
        self.entries.remove(&line.get()).unwrap_or_default()
    }

    // ---- audit accessors (used by the simulator's invariant sanitizer) ----

    /// Total waiters parked across all merge lists (primary misses travel
    /// downstream and are not counted).
    pub fn waiters(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Length of the longest merge list, zero when empty.
    pub fn max_list_len(&self) -> usize {
        self.entries.values().map(Vec::len).max().unwrap_or(0)
    }

    /// The outstanding line addresses, sorted (for reproducible reports).
    pub fn pending_lines(&self) -> Vec<Addr> {
        let mut lines: Vec<u64> = self.entries.keys().copied().collect();
        lines.sort_unstable();
        lines.into_iter().map(Addr::new).collect()
    }

    /// Bitmask of the sectors of the `line_size`-byte line at `line` (line
    /// aligned) that have fills outstanding, when the table is keyed at
    /// `sector_bytes` granularity (bit `i` = sector `i`). A sectored
    /// pipeline keys its table by sector-aligned addresses, so several
    /// sectors of one line can be in flight at once; an unsectored table
    /// (`sector_bytes == line_size`) yields mask 0 or 1.
    pub fn pending_sector_mask(&self, line: Addr, line_size: u64, sector_bytes: u64) -> u32 {
        let base = line.get();
        let sectors = (line_size / sector_bytes).min(32);
        let mut mask = 0u32;
        for s in 0..sectors {
            if self.entries.contains_key(&(base + s * sector_bytes)) {
                mask |= 1 << s;
            }
        }
        mask
    }

    // ---- snapshot codec ---------------------------------------------------

    /// Serializes the outstanding entries in line-address order (the table
    /// is a hash map, so iteration order must be pinned for deterministic
    /// snapshots). The waiter payload is caller-defined, hence the encode
    /// callback.
    pub fn encode_state_with(
        &self,
        e: &mut gpu_snapshot::Encoder,
        mut enc: impl FnMut(&T, &mut gpu_snapshot::Encoder),
    ) {
        let mut lines: Vec<u64> = self.entries.keys().copied().collect();
        lines.sort_unstable();
        e.usize(lines.len());
        for line in lines {
            e.u64(line);
            let waiters = &self.entries[&line];
            e.usize(waiters.len());
            for w in waiters {
                enc(w, e);
            }
        }
    }

    /// Replaces this table's entries with a decoded checkpoint, using `dec`
    /// to read each waiter.
    ///
    /// # Errors
    ///
    /// Rejects snapshots that violate this table's configured capacity or
    /// merge limit, duplicate lines, and propagates decoder errors.
    pub fn restore_state_with(
        &mut self,
        d: &mut gpu_snapshot::Decoder,
        mut dec: impl FnMut(&mut gpu_snapshot::Decoder) -> Result<T, gpu_snapshot::SnapshotError>,
    ) -> Result<(), gpu_snapshot::SnapshotError> {
        use gpu_snapshot::SnapshotError::InvalidValue;
        self.entries.clear();
        let n = d.usize()?;
        if n > self.config.entries {
            return Err(InvalidValue("MSHR entry count exceeds table capacity"));
        }
        for _ in 0..n {
            let line = d.u64()?;
            let m = d.usize()?;
            if m > self.config.max_merged {
                return Err(InvalidValue("MSHR merge list exceeds max_merged"));
            }
            let mut waiters = Vec::with_capacity(m);
            for _ in 0..m {
                waiters.push(dec(d)?);
            }
            if self.entries.insert(line, waiters).is_some() {
                return Err(InvalidValue("duplicate MSHR line in snapshot"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(entries: usize, merged: usize) -> MshrTable<u32> {
        MshrTable::new(MshrConfig {
            entries,
            max_merged: merged,
        })
    }

    #[test]
    fn allocate_merge_fill_lifecycle() {
        let mut m = table(2, 4);
        let line = Addr::new(0x1000);
        assert!(!m.is_pending(line));
        assert!(m.allocate(line));
        assert!(m.is_pending(line));
        assert_eq!(m.try_merge(line, 11), Ok(()));
        assert_eq!(m.try_merge(line, 12), Ok(()));
        assert_eq!(m.fill(line), vec![11, 12]);
        assert!(!m.is_pending(line));
        assert!(m.is_empty());
    }

    #[test]
    fn table_exhaustion_blocks_allocation() {
        let mut m = table(2, 4);
        assert!(m.allocate(Addr::new(0x000)));
        assert!(m.allocate(Addr::new(0x080)));
        assert!(!m.can_allocate());
        assert!(!m.allocate(Addr::new(0x100)));
        // Merging into existing entries still works while full.
        assert_eq!(m.try_merge(Addr::new(0x000), 4), Ok(()));
        m.fill(Addr::new(0x000));
        assert!(m.allocate(Addr::new(0x100)));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn merge_limit_rejects() {
        let mut m = table(4, 2);
        let line = Addr::new(0x200);
        assert!(m.allocate(line));
        assert_eq!(m.try_merge(line, 1), Ok(()));
        assert_eq!(m.try_merge(line, 2), Ok(()));
        assert_eq!(m.try_merge(line, 3), Err(3));
    }

    #[test]
    fn merge_on_unknown_line_rejects() {
        let mut m = table(4, 2);
        assert_eq!(m.try_merge(Addr::new(0x300), 9), Err(9));
    }

    #[test]
    fn fill_of_unknown_line_is_empty() {
        let mut m = table(1, 1);
        assert!(m.fill(Addr::new(0x42)).is_empty());
    }

    #[test]
    #[should_panic(expected = "merge instead")]
    fn double_allocate_panics() {
        let mut m = table(2, 2);
        let line = Addr::new(0x80);
        m.allocate(line);
        m.allocate(line);
    }

    #[test]
    fn merge_at_table_capacity_still_works() {
        // A full table blocks new allocations but must keep accepting
        // merges on its existing lines up to each line's merge limit.
        let mut m = table(1, 2);
        let line = Addr::new(0x000);
        assert!(m.allocate(line));
        assert!(!m.can_allocate());
        assert!(m.can_merge(line));
        assert_eq!(m.try_merge(line, 1), Ok(()));
        assert_eq!(m.try_merge(line, 2), Ok(()));
        assert!(!m.can_merge(line), "merge list is at max_merged");
        assert_eq!(m.try_merge(line, 3), Err(3));
        assert_eq!(m.fill(line), vec![1, 2]);
    }

    #[test]
    fn allocate_after_full_succeeds_only_after_release() {
        let mut m = table(2, 1);
        assert!(m.allocate(Addr::new(0x000)));
        assert!(m.allocate(Addr::new(0x080)));
        assert!(!m.allocate(Addr::new(0x100)), "table full: must stall");
        // The failed allocation must not have touched the table.
        assert!(!m.is_pending(Addr::new(0x100)));
        assert_eq!(m.len(), 2);
        m.fill(Addr::new(0x080));
        assert!(m.allocate(Addr::new(0x100)));
        assert!(m.is_pending(Addr::new(0x100)));
    }

    #[test]
    fn release_of_unknown_line_is_harmless() {
        let mut m = table(2, 2);
        assert!(m.allocate(Addr::new(0x200)));
        // Filling a line the table never saw returns no waiters and leaves
        // the genuine entry untouched.
        assert!(m.fill(Addr::new(0x999)).is_empty());
        assert_eq!(m.len(), 1);
        assert!(m.is_pending(Addr::new(0x200)));
    }

    #[test]
    fn mshr_codec_round_trips_in_sorted_order() {
        let mut m = table(4, 3);
        m.allocate(Addr::new(0x300));
        m.allocate(Addr::new(0x100));
        m.try_merge(Addr::new(0x300), 7).unwrap();
        m.try_merge(Addr::new(0x300), 8).unwrap();
        m.try_merge(Addr::new(0x100), 9).unwrap();

        let mut e = gpu_snapshot::Encoder::new();
        m.encode_state_with(&mut e, |w, e| e.u32(*w));
        let framed = e.finish();

        let mut restored = table(4, 3);
        let mut d = gpu_snapshot::Decoder::open(&framed).unwrap();
        restored.restore_state_with(&mut d, |d| d.u32()).unwrap();
        d.expect_end().unwrap();

        assert_eq!(restored.len(), 2);
        assert_eq!(restored.fill(Addr::new(0x300)), vec![7, 8]);
        assert_eq!(restored.fill(Addr::new(0x100)), vec![9]);

        // Encoding twice from the same state is deterministic despite the
        // hash-map backing store.
        let mut e2 = gpu_snapshot::Encoder::new();
        m.encode_state_with(&mut e2, |w, e| e.u32(*w));
        assert_eq!(e2.finish(), framed);
    }

    #[test]
    fn mshr_restore_rejects_over_capacity() {
        let mut big = table(4, 4);
        for i in 0..3 {
            big.allocate(Addr::new(i * 0x80));
        }
        let mut e = gpu_snapshot::Encoder::new();
        big.encode_state_with(&mut e, |w, e| e.u32(*w));
        let framed = e.finish();
        let mut small = table(2, 4);
        let mut d = gpu_snapshot::Decoder::open(&framed).unwrap();
        assert!(matches!(
            small.restore_state_with(&mut d, |d| d.u32()),
            Err(gpu_snapshot::SnapshotError::InvalidValue(_))
        ));
    }

    #[test]
    fn pending_sector_mask_reports_in_flight_sectors() {
        let mut m = table(8, 2);
        // A sectored pipeline keys the table by 32 B sector addresses.
        m.allocate(Addr::new(0x1000)); // sector 0 of line 0x1000
        m.allocate(Addr::new(0x1060)); // sector 3 of line 0x1000
        m.allocate(Addr::new(0x1080)); // sector 0 of the *next* line
        assert_eq!(m.pending_sector_mask(Addr::new(0x1000), 128, 32), 0b1001);
        assert_eq!(m.pending_sector_mask(Addr::new(0x1080), 128, 32), 0b0001);
        assert_eq!(m.pending_sector_mask(Addr::new(0x2000), 128, 32), 0);
        // Unsectored degenerate case: one "sector" per line.
        assert_eq!(m.pending_sector_mask(Addr::new(0x1000), 128, 128), 1);
        m.fill(Addr::new(0x1060));
        assert_eq!(m.pending_sector_mask(Addr::new(0x1000), 128, 32), 0b0001);
    }

    #[test]
    fn audit_accessors_track_occupancy() {
        let mut m = table(4, 3);
        assert_eq!(m.waiters(), 0);
        assert_eq!(m.max_list_len(), 0);
        assert!(m.pending_lines().is_empty());
        m.allocate(Addr::new(0x300));
        m.allocate(Addr::new(0x100));
        assert_eq!(m.try_merge(Addr::new(0x300), 7), Ok(()));
        assert_eq!(m.try_merge(Addr::new(0x300), 8), Ok(()));
        assert_eq!(m.try_merge(Addr::new(0x100), 9), Ok(()));
        assert_eq!(m.waiters(), 3);
        assert_eq!(m.max_list_len(), 2);
        assert_eq!(
            m.pending_lines(),
            vec![Addr::new(0x100), Addr::new(0x300)],
            "lines come back sorted"
        );
        m.fill(Addr::new(0x300));
        assert_eq!(m.waiters(), 1);
        assert_eq!(m.max_list_len(), 1);
    }
}
