//! On-disk storage for checkpoints and the content-addressed result cache.
//!
//! Two directory layouts, both flat:
//!
//! * **Checkpoint directory** — `ckpt-<cycle, zero-padded to 20>.bin`, one
//!   file per checkpoint. Writes go through a temp-file + atomic rename so
//!   a process killed mid-write can never leave a truncated checkpoint
//!   with a valid name; [`latest_checkpoint`] picks the highest cycle.
//! * **Cache directory** — `<key as 16 lowercase hex digits>.bin`, one file
//!   per content-addressed entry. Lookups treat any unreadable or
//!   unparsable entry as a miss (the caller recomputes and overwrites), so
//!   a corrupted cache degrades to a slow run, never a wrong one.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic discriminator for temp-file names: two threads (or the same
/// thread twice) writing the same target never collide on the temp path.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Writes `data` to `path` atomically: the bytes land in a unique temp file
/// in the same directory, then rename into place. Readers see either the
/// old file or the complete new one, never a torn write.
///
/// # Errors
///
/// Propagates filesystem errors (the temp file is cleaned up best-effort).
pub fn write_atomic(path: &Path, data: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    std::fs::create_dir_all(dir)?;
    let file_name = path
        .file_name()
        .ok_or_else(|| std::io::Error::other("write_atomic target has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp-{}-{}",
        file_name.to_string_lossy(),
        std::process::id(),
        TMP_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    if let Err(e) = std::fs::write(&tmp, data) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// The checkpoint file name for a given cycle (fixed-width so
/// lexicographic and numeric order agree).
#[must_use]
pub fn checkpoint_path(dir: &Path, cycle: u64) -> PathBuf {
    dir.join(format!("ckpt-{cycle:020}.bin"))
}

/// Finds the newest checkpoint (highest cycle) in `dir`.
///
/// Returns `Ok(None)` when the directory does not exist or holds no
/// checkpoint files; non-checkpoint files are ignored.
///
/// # Errors
///
/// Propagates directory-read errors other than the directory being absent.
pub fn latest_checkpoint(dir: &Path) -> std::io::Result<Option<(u64, PathBuf)>> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(cycle) = name
            .strip_prefix("ckpt-")
            .and_then(|rest| rest.strip_suffix(".bin"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        if best.as_ref().is_none_or(|(c, _)| cycle > *c) {
            best = Some((cycle, entry.path()));
        }
    }
    Ok(best)
}

/// The cache file path for a content key.
#[must_use]
pub fn cache_path(dir: &Path, key: u64) -> PathBuf {
    dir.join(format!("{key:016x}.bin"))
}

/// Loads a cache entry's raw (framed) bytes.
///
/// Safe against concurrent writers: entries are only ever published by
/// [`write_atomic`]'s rename, so a reader observes either nothing
/// (`NotFound`, a plain miss — the entry was never written, or a racing
/// writer has not renamed yet) or one complete writer's bytes, never a torn
/// mix. Other errors — permissions, unreadable directory — also read as
/// misses, by policy rather than by race.
#[must_use]
pub fn cache_load(dir: &Path, key: u64) -> Option<Vec<u8>> {
    match std::fs::read(cache_path(dir, key)) {
        Ok(bytes) => Some(bytes),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => None,
        Err(_) => None,
    }
}

/// Stores a cache entry atomically.
///
/// # Errors
///
/// Propagates filesystem errors; callers treat a failed store as
/// best-effort (the result was computed, only the reuse is lost).
pub fn cache_store(dir: &Path, key: u64, framed: &[u8]) -> std::io::Result<()> {
    write_atomic(&cache_path(dir, key), framed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "gpu-snapshot-store-{tag}-{}-{}",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn atomic_write_round_trips() {
        let dir = tmp_dir("atomic");
        let p = dir.join("file.bin");
        write_atomic(&p, b"hello").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"hello");
        write_atomic(&p, b"replaced").unwrap();
        assert_eq!(std::fs::read(&p).unwrap(), b"replaced");
        // No temp litter.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n.to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn latest_checkpoint_picks_highest_cycle() {
        let dir = tmp_dir("latest");
        assert_eq!(latest_checkpoint(&dir).unwrap(), None);
        write_atomic(&checkpoint_path(&dir, 100), b"a").unwrap();
        write_atomic(&checkpoint_path(&dir, 2000), b"b").unwrap();
        write_atomic(&checkpoint_path(&dir, 30), b"c").unwrap();
        std::fs::write(dir.join("unrelated.txt"), b"x").unwrap();
        let (cycle, path) = latest_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(cycle, 2000);
        assert_eq!(std::fs::read(path).unwrap(), b"b");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_directory_is_no_checkpoint() {
        let dir = tmp_dir("missing").join("does-not-exist");
        assert_eq!(latest_checkpoint(&dir).unwrap(), None);
    }

    #[test]
    fn cache_load_store_round_trips_and_misses_cleanly() {
        let dir = tmp_dir("cache");
        assert_eq!(cache_load(&dir, 0xABCD), None);
        cache_store(&dir, 0xABCD, b"entry").unwrap();
        assert_eq!(cache_load(&dir, 0xABCD).unwrap(), b"entry");
        assert_eq!(cache_load(&dir, 0xABCE), None);
        // Key formatting is 16 lowercase hex digits.
        assert!(cache_path(&dir, 0xABCD).ends_with("000000000000abcd.bin"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_same_key_writers_never_tear() {
        // Many writers race the same key with *different* payloads while
        // readers hammer it. The atomic temp-file+rename publish means every
        // read returns either a miss or exactly one writer's complete bytes;
        // whichever rename lands last owns the final file.
        let dir = tmp_dir("race");
        let key = 0x5EED_u64;
        let payload = |i: usize| vec![i as u8; 512];
        std::thread::scope(|scope| {
            for i in 0..8 {
                let dir = &dir;
                scope.spawn(move || {
                    for _ in 0..50 {
                        cache_store(dir, key, &payload(i)).unwrap();
                    }
                });
            }
            for _ in 0..4 {
                let dir = &dir;
                scope.spawn(move || {
                    for _ in 0..200 {
                        if let Some(bytes) = cache_load(dir, key) {
                            assert_eq!(bytes.len(), 512, "torn read");
                            assert!(
                                bytes.iter().all(|&b| b == bytes[0]),
                                "interleaved writer bytes"
                            );
                        }
                    }
                });
            }
        });
        let survivor = cache_load(&dir, key).expect("an entry must survive the race");
        assert!((0..8).any(|i| survivor == payload(i)));
        // The race leaves no temp litter behind either.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| !n.to_string_lossy().ends_with(".bin"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
