//! # gpu-snapshot — checkpoint codec and content-addressed result store
//!
//! The workspace builds fully offline (no serde, no external crates), so
//! simulator checkpointing and the sweep result cache rest on this small,
//! std-only foundation:
//!
//! * [`Encoder`]/[`Decoder`] — a little-endian binary codec with a framed
//!   envelope: 4-byte magic, a [`FORMAT_VERSION`], the payload length, the
//!   payload, and an FNV-1a-64 checksum of the payload. Truncated,
//!   corrupted or wrong-version inputs are rejected with a typed
//!   [`SnapshotError`], never a panic.
//! * [`StableHasher`] — FNV-1a 64-bit, used to derive the content hash of a
//!   (configuration, workload) pair. Unlike `std::hash`, its output is
//!   pinned: the same bytes hash identically on every platform and every
//!   build, which is what makes on-disk cache keys and `content_hash`
//!   fields meaningful across runs.
//! * [`store`] — atomic file I/O for checkpoints (`ckpt-<cycle>.bin`,
//!   written via temp-file + rename so a killed writer never leaves a
//!   half-checkpoint behind) and for the content-addressed cache
//!   (`<key:016x>.bin`, silently recomputed when unreadable).
//!
//! Every serialized structure in the workspace implements
//! `encode_state(&self, &mut Encoder)` plus either
//! `restore_state(&mut self, &mut Decoder)` (overwrite dynamic state of an
//! already-constructed component) or `decode(&mut Decoder) -> Result<Self>`
//! (self-contained values); this crate deliberately knows nothing about
//! those types.
//!
//! # Examples
//!
//! ```
//! use gpu_snapshot::{Decoder, Encoder};
//!
//! let mut e = Encoder::new();
//! e.u64(42);
//! e.str("hello");
//! let framed = e.finish();
//!
//! let mut d = Decoder::open(&framed).unwrap();
//! assert_eq!(d.u64().unwrap(), 42);
//! assert_eq!(d.str().unwrap(), "hello");
//! d.expect_end().unwrap();
//! ```

#![warn(missing_docs)]

use std::fmt;

pub mod store;

/// Magic bytes opening every framed snapshot ("GPU Snapshot").
pub const MAGIC: [u8; 4] = *b"GSNP";

/// Current snapshot format version. Bump on any change to the encoding of
/// any serialized structure; old checkpoints and cache entries are rejected
/// (checkpoints) or transparently recomputed (cache) rather than
/// misinterpreted. See DESIGN.md ("Checkpoint format") for the
/// compatibility policy. Version 2: the configuration is serialized as a
/// self-versioned architecture-description frame (`gpu-arch`) instead of
/// flat `GpuConfig` fields. Version 3: pending loads and load records carry
/// the issuing instruction's program counter (static-analyzer cross-checks).
/// Version 4: sectored cache arrays serialize per-sector valid/reserved/dirty
/// masks and a sectors-per-line count, and sliced L2 partitions serialize one
/// bank (queue, tags, MSHRs, hit pipe) per slice in index order.
pub const FORMAT_VERSION: u32 = 4;

/// Why a snapshot could not be decoded.
#[derive(Debug)]
pub enum SnapshotError {
    /// Input ended before the expected data (truncation).
    UnexpectedEof {
        /// Bytes needed by the failing read.
        needed: usize,
        /// Bytes remaining.
        remaining: usize,
    },
    /// The input does not start with [`MAGIC`] — not a snapshot at all.
    BadMagic,
    /// The snapshot was written by an incompatible format version.
    UnsupportedVersion(u32),
    /// The payload checksum does not match (bit rot or truncated write).
    ChecksumMismatch {
        /// Checksum recorded in the envelope.
        expected: u64,
        /// Checksum of the payload as read.
        found: u64,
    },
    /// A decoded value is structurally impossible (bad enum tag, non-UTF-8
    /// string, length overflow, failed invariant).
    InvalidValue(&'static str),
    /// Decoding finished but payload bytes remain.
    TrailingBytes(usize),
    /// Filesystem error while reading or writing a snapshot.
    Io(std::io::Error),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of snapshot: needed {needed} byte(s), {remaining} remaining"
            ),
            SnapshotError::BadMagic => f.write_str("bad magic: not a gpu-snapshot file"),
            SnapshotError::UnsupportedVersion(v) => write!(
                f,
                "unsupported snapshot format version {v} (this build reads {FORMAT_VERSION})"
            ),
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "checksum mismatch: envelope says {expected:#018x}, payload hashes to {found:#018x}"
            ),
            SnapshotError::InvalidValue(what) => write!(f, "invalid value: {what}"),
            SnapshotError::TrailingBytes(n) => {
                write!(f, "{n} trailing byte(s) after decoding finished")
            }
            SnapshotError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// FNV-1a 64-bit over a byte slice.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = StableHasher::new();
    h.bytes(bytes);
    h.finish()
}

/// A platform-independent, build-independent 64-bit hasher (FNV-1a).
///
/// Used both for snapshot payload checksums and for deriving the stable
/// content hash that keys the sweep cache and the `content_hash` field of
/// run summaries. All multi-byte writes fold in little-endian order.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        StableHasher {
            state: Self::OFFSET,
        }
    }

    /// Folds in one byte.
    pub fn u8(&mut self, v: u8) {
        self.state = (self.state ^ u64::from(v)).wrapping_mul(Self::PRIME);
    }

    /// Folds in a byte slice.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.u8(b);
        }
    }

    /// Folds in a `u32` (little-endian).
    pub fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Folds in a `u64` (little-endian).
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Folds in an `i64` (little-endian two's complement).
    pub fn i64(&mut self, v: i64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Folds in a `usize` widened to `u64` so 32- and 64-bit hosts agree.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Folds in a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Folds in a string as its length followed by its UTF-8 bytes
    /// (length-prefixing keeps `("ab","c")` distinct from `("a","bc")`).
    pub fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.bytes(s.as_bytes());
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// Serializer producing a framed snapshot.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Encoder { buf: Vec::new() }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `i64`, little-endian two's complement.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` widened to `u64`.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Appends a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends an `Option<u64>` as a presence byte plus the value.
    pub fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.u64(x);
            }
            None => self.bool(false),
        }
    }

    /// Appends a length-prefixed byte slice.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Payload bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing was written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Seals the payload into the framed envelope:
    /// `MAGIC ‖ version ‖ payload_len ‖ payload ‖ fnv1a64(payload)`.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.buf.len() + 24);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.buf.len() as u64).to_le_bytes());
        let checksum = fnv1a(&self.buf);
        out.extend_from_slice(&self.buf);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }
}

/// Deserializer over a validated snapshot payload.
#[derive(Debug)]
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Validates the envelope (magic, version, length, checksum) and
    /// returns a decoder positioned at the start of the payload.
    ///
    /// # Errors
    ///
    /// Every malformed input maps to a typed [`SnapshotError`]; this never
    /// panics on untrusted bytes.
    pub fn open(framed: &'a [u8]) -> Result<Self, SnapshotError> {
        if framed.len() < 16 {
            return Err(SnapshotError::UnexpectedEof {
                needed: 16,
                remaining: framed.len(),
            });
        }
        if framed[0..4] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(framed[4..8].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let payload_len = u64::from_le_bytes(framed[8..16].try_into().expect("8 bytes"));
        let payload_len: usize = payload_len
            .try_into()
            .map_err(|_| SnapshotError::InvalidValue("payload length overflows usize"))?;
        let total = 16usize
            .checked_add(payload_len)
            .and_then(|n| n.checked_add(8))
            .ok_or(SnapshotError::InvalidValue(
                "payload length overflows usize",
            ))?;
        if framed.len() < total {
            return Err(SnapshotError::UnexpectedEof {
                needed: total,
                remaining: framed.len(),
            });
        }
        if framed.len() > total {
            return Err(SnapshotError::TrailingBytes(framed.len() - total));
        }
        let payload = &framed[16..16 + payload_len];
        let expected =
            u64::from_le_bytes(framed[16 + payload_len..total].try_into().expect("8 bytes"));
        let found = fnv1a(payload);
        if expected != found {
            return Err(SnapshotError::ChecksumMismatch { expected, found });
        }
        Ok(Decoder {
            data: payload,
            pos: 0,
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let remaining = self.data.len() - self.pos;
        if remaining < n {
            return Err(SnapshotError::UnexpectedEof {
                needed: n,
                remaining,
            });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, SnapshotError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }

    /// Reads a `usize` (written as `u64`; errors if it overflows the host).
    pub fn usize(&mut self) -> Result<usize, SnapshotError> {
        self.u64()?
            .try_into()
            .map_err(|_| SnapshotError::InvalidValue("usize overflows host width"))
    }

    /// Reads a `bool`; any byte other than 0/1 is invalid.
    pub fn bool(&mut self) -> Result<bool, SnapshotError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::InvalidValue("bool byte not 0 or 1")),
        }
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads an `Option<u64>`.
    pub fn opt_u64(&mut self) -> Result<Option<u64>, SnapshotError> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let n = self.usize()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, SnapshotError> {
        std::str::from_utf8(self.bytes()?)
            .map_err(|_| SnapshotError::InvalidValue("string is not UTF-8"))
    }

    /// Payload bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Asserts the payload was consumed exactly.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::TrailingBytes`] if bytes remain.
    pub fn expect_end(&self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::TrailingBytes(self.remaining()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_primitive() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX);
        e.i64(-42);
        e.usize(12345);
        e.bool(true);
        e.bool(false);
        e.f64(std::f64::consts::PI);
        e.opt_u64(Some(9));
        e.opt_u64(None);
        e.bytes(&[1, 2, 3]);
        e.str("snapshot");
        let framed = e.finish();

        let mut d = Decoder::open(&framed).unwrap();
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.usize().unwrap(), 12345);
        assert!(d.bool().unwrap());
        assert!(!d.bool().unwrap());
        assert_eq!(d.f64().unwrap(), std::f64::consts::PI);
        assert_eq!(d.opt_u64().unwrap(), Some(9));
        assert_eq!(d.opt_u64().unwrap(), None);
        assert_eq!(d.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(d.str().unwrap(), "snapshot");
        d.expect_end().unwrap();
    }

    #[test]
    fn bad_magic_rejected() {
        let mut framed = Encoder::new().finish();
        framed[0] = b'X';
        assert!(matches!(
            Decoder::open(&framed),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut framed = Encoder::new().finish();
        framed[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Decoder::open(&framed),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn previous_format_versions_rejected_typed() {
        // Pre-sectoring checkpoints (v1–v3) decode the cache arrays
        // differently; they must be refused outright, never reinterpreted.
        for old in 1..FORMAT_VERSION {
            let mut framed = Encoder::new().finish();
            framed[4..8].copy_from_slice(&old.to_le_bytes());
            match Decoder::open(&framed) {
                Err(SnapshotError::UnsupportedVersion(v)) => assert_eq!(v, old),
                other => panic!("version {old} must be rejected, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_rejected_at_every_length() {
        let mut e = Encoder::new();
        e.u64(1);
        e.str("payload");
        let framed = e.finish();
        for n in 0..framed.len() {
            let err = Decoder::open(&framed[..n]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::UnexpectedEof { .. } | SnapshotError::ChecksumMismatch { .. }
                ),
                "truncated to {n}: {err}"
            );
        }
    }

    #[test]
    fn corruption_rejected_at_every_payload_byte() {
        let mut e = Encoder::new();
        e.u64(0x0123_4567_89AB_CDEF);
        let framed = e.finish();
        for i in 16..framed.len() - 8 {
            let mut bad = framed.clone();
            bad[i] ^= 0xFF;
            assert!(
                matches!(
                    Decoder::open(&bad),
                    Err(SnapshotError::ChecksumMismatch { .. })
                ),
                "flipping payload byte {i} must break the checksum"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut framed = Encoder::new().finish();
        framed.push(0);
        assert!(matches!(
            Decoder::open(&framed),
            Err(SnapshotError::TrailingBytes(1))
        ));

        let mut e = Encoder::new();
        e.u64(1);
        e.u64(2);
        let framed = e.finish();
        let mut d = Decoder::open(&framed).unwrap();
        d.u64().unwrap();
        assert!(matches!(
            d.expect_end(),
            Err(SnapshotError::TrailingBytes(8))
        ));
    }

    #[test]
    fn reading_past_end_is_a_typed_error() {
        let framed = Encoder::new().finish();
        let mut d = Decoder::open(&framed).unwrap();
        assert!(matches!(
            d.u64(),
            Err(SnapshotError::UnexpectedEof { needed: 8, .. })
        ));
    }

    #[test]
    fn invalid_bool_and_utf8_rejected() {
        let mut e = Encoder::new();
        e.u8(2);
        let framed = e.finish();
        let mut d = Decoder::open(&framed).unwrap();
        assert!(matches!(d.bool(), Err(SnapshotError::InvalidValue(_))));

        let mut e = Encoder::new();
        e.bytes(&[0xFF, 0xFE]);
        let framed = e.finish();
        let mut d = Decoder::open(&framed).unwrap();
        assert!(matches!(d.str(), Err(SnapshotError::InvalidValue(_))));
    }

    #[test]
    fn stable_hasher_is_pinned() {
        // FNV-1a test vectors: the empty input hashes to the offset basis,
        // and "a" to the published constant.
        assert_eq!(StableHasher::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = StableHasher::new();
        h.u8(b'a');
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        // Length prefixing separates field boundaries.
        let mut ab_c = StableHasher::new();
        ab_c.str("ab");
        ab_c.str("c");
        let mut a_bc = StableHasher::new();
        a_bc.str("a");
        a_bc.str("bc");
        assert_ne!(ab_c.finish(), a_bc.finish());
    }

    #[test]
    fn error_display_is_informative() {
        let msgs = [
            SnapshotError::BadMagic.to_string(),
            SnapshotError::UnsupportedVersion(3).to_string(),
            SnapshotError::TrailingBytes(4).to_string(),
            SnapshotError::UnexpectedEof {
                needed: 8,
                remaining: 2,
            }
            .to_string(),
            SnapshotError::ChecksumMismatch {
                expected: 1,
                found: 2,
            }
            .to_string(),
            SnapshotError::InvalidValue("x").to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
