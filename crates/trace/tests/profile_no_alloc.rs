//! The disabled self-profiler must be allocation-free: span guards,
//! counter adds, gauge sets and sample offers on the hot tick path may not
//! touch the heap while profiling is off — the profiler's zero-cost-when-off
//! guarantee. Verified with a counting global allocator, like the tracer's
//! `no_alloc` suite.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gpu_trace::profile::{self, ProfCounter, ProfSpan};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn disabled_profiler_hot_path_is_allocation_free() {
    // This test file holds a single #[test] so no parallel test can flip
    // the process-global enabled flag mid-measurement.
    profile::set_enabled(false);
    assert!(!profile::enabled());

    let before = allocations();
    for i in 0..100_000u64 {
        // Every operation the simulator's tick loop issues per cycle.
        let _stage = profile::span(ProfSpan::TickSms);
        profile::span_add(ProfSpan::BeginNetworks, i);
        profile::add(ProfCounter::CyclesTicked, 1);
        profile::set(ProfCounter::Outstanding, i);
        profile::sample_at_interval(1);
        let _ = profile::value(ProfCounter::Outstanding);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "disabled profiler allocated on the hot path"
    );

    // Nothing may have been recorded either.
    assert_eq!(profile::value(ProfCounter::CyclesTicked), 0);
    let report = profile::report();
    assert_eq!(report.span(ProfSpan::TickSms).count, 0);
    assert_eq!(report.span(ProfSpan::BeginNetworks).nanos, 0);

    // Sanity check that the counting allocator is actually installed.
    let before = allocations();
    let grown: Vec<u64> = (0..1_000).collect();
    assert!(allocations() > before, "counting allocator not active");
    drop(grown);
}
