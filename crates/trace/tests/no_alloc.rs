//! The disabled tracer must be allocation-free on the hot path: recording
//! an event or offering a sample to a disabled tracer may not touch the
//! heap. Verified with a counting global allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use gpu_trace::{CounterKind, EventKind, TraceConfig, TraceEvent, TraceSite, Tracer};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::SeqCst)
}

#[test]
fn disabled_tracer_hot_path_is_allocation_free() {
    let mut tracer = Tracer::new(TraceConfig::default());
    assert!(!tracer.enabled());
    let event = TraceEvent {
        cycle: 1,
        site: TraceSite::Sm(0),
        kind: EventKind::MshrAllocate { line: 0x80 },
    };
    let values = [3u64; CounterKind::COUNT];

    let before = allocations();
    for cycle in 0..100_000u64 {
        tracer.record(TraceEvent { cycle, ..event });
        if tracer.should_sample(cycle) {
            tracer.sample(cycle, values);
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "disabled tracer allocated on the hot path"
    );
    assert_eq!(tracer.events_recorded(), 0);
    assert_eq!(tracer.samples_taken(), 0);
}

#[test]
fn enabled_tracer_does_allocate_as_a_sanity_check() {
    // Guards against the counting allocator silently not being installed.
    let mut tracer = Tracer::new(TraceConfig {
        enabled: true,
        ..TraceConfig::default()
    });
    let before = allocations();
    for cycle in 0..1_000u64 {
        tracer.record(TraceEvent {
            cycle,
            site: TraceSite::Gpu,
            kind: EventKind::MshrMerge { line: cycle },
        });
    }
    assert!(allocations() > before, "counting allocator not active");
    assert_eq!(tracer.events_recorded(), 1_000);
}
