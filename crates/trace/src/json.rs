//! A minimal JSON value model, writer helpers and recursive-descent parser.
//!
//! The workspace is hermetic (no serde), and the trace validator needs to
//! re-parse the Chrome trace JSON it emits — both in tests and in the
//! `trace` binary's `--validate` mode. Object keys keep insertion order so
//! round-tripping is stable.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document. Trailing whitespace is allowed;
/// trailing garbage is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a \uXXXX low half must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".into());
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".into());
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(hi).ok_or("invalid \\u escape")?
                            };
                            out.push(c);
                            // hex4 leaves pos past the digits; skip the
                            // shared `pos += 1` below.
                            continue;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume the whole run of plain characters up to the
                    // next quote or escape in one slice (input is a &str,
                    // so the run is valid UTF-8).
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?;
                    out.push_str(s);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {s:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn escape_round_trips() {
        let original = "a\"b\\c\nd\te\u{1}f → 🚀";
        let mut doc = String::from("{\"k\": ");
        escape_into(&mut doc, original);
        doc.push('}');
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(original));
    }

    #[test]
    fn surrogate_pairs_decode() {
        let raw = parse(r#""😀""#).unwrap();
        assert_eq!(raw.as_str(), Some("😀"));
        let escaped = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(escaped.as_str(), Some("😀"));
        assert!(parse("\"\\ud83d\"").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a"}"#).is_err());
    }
}
