//! Chrome trace-event JSON export (Perfetto-loadable).
//!
//! The bundle's `trace.json` uses the legacy Chrome trace-event format,
//! which Perfetto's UI imports directly:
//!
//! * process 1 holds one thread ("track") per SM, process 2 one per memory
//!   partition, process 3 the whole-GPU counters;
//! * every traced request becomes one *nestable async* span (`ph` `b`/`e`,
//!   keyed by `cat`+`id`) on its SM's track, with one nested child slice
//!   per present `Timeline` stage — the child durations tile the parent
//!   exactly, reproducing the Figure-1 stage decomposition per request;
//! * discrete [`TraceEvent`]s become thread-scoped instants (`ph` `"i"`);
//! * counter samples become `ph` `"C"` counter tracks;
//! * process 4 (present only when [`ChromeTraceBuilder::add_host_profile`]
//!   is called) carries the *host-clock* self-profile: complete `ph` `"X"`
//!   slices laying the span-total tree out as a flame view, plus counter
//!   tracks of per-interval host time from the profiler's sample ring.
//!
//! Timestamps on the simulated processes are cycles written as integer `ts`
//! values (Perfetto displays them as microseconds; the scale is irrelevant
//! for inspection). The host process uses real microseconds — the two clock
//! domains share a file but never a track.
//!
//! Track display names come from [`TrackNames`]; bundle writers derive them
//! from the machine's `ArchDesc` so the UI reads in the description's own
//! vocabulary rather than hard-coded strings.

use std::collections::BTreeMap;

use gpu_mem::{Stamp, Timeline};

use crate::event::{EventKind, TraceEvent, TraceSite};
use crate::json::{self, Value};
use crate::profile::{ProfCounter, ProfSpan, ProfileReport};
use crate::tracer::{CounterKind, CounterSample};

/// The Figure-1 component label for the stage *ending* at `stamp`
/// (`Issue` starts the span and owns no stage).
///
/// These strings intentionally match `latency_core`'s `Component::label`
/// exactly so a span in the Perfetto UI reads like the paper's legend; a
/// cross-crate test in `latency-bench` pins the correspondence.
pub fn stage_label(stamp: Stamp) -> Option<&'static str> {
    Some(match stamp {
        Stamp::Issue => return None,
        Stamp::L1Access => "SM Base",
        Stamp::IcntInject => "L1toICNT",
        Stamp::RopEnter => "ICNTtoROP",
        Stamp::L2QueueEnter => "ROPtoL2Q",
        Stamp::DramQueueEnter => "L2QtoDRAMQ",
        Stamp::DramScheduled => "DRAM(QtoSch)",
        Stamp::DramDone => "DRAM(SchToA)",
        Stamp::Returned => "Fetch2SM",
    })
}

/// Labels for the eight non-`Issue` timeline stages, in [`Stamp::ALL`]
/// order. The default reproduces [`stage_label`]'s paper-legend strings;
/// bundles built from an architecture description derive them from the
/// hierarchy's level descriptors (`ArchDesc::fig1_stage_labels`), which
/// yields those exact strings for every paper generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageLabels {
    labels: [String; 8],
}

impl Default for StageLabels {
    fn default() -> Self {
        StageLabels::new(
            Stamp::ALL[1..]
                .iter()
                .map(|&s| {
                    stage_label(s)
                        .expect("non-Issue stamp has a label")
                        .to_string()
                })
                .collect::<Vec<_>>()
                .try_into()
                .expect("eight non-Issue stamps"),
        )
    }
}

impl StageLabels {
    /// Wraps an explicit label table (e.g. one derived from an architecture
    /// description).
    pub fn new(labels: [String; 8]) -> Self {
        StageLabels { labels }
    }

    /// The label for the stage ending at `stamp` (`None` for `Issue`,
    /// which starts the span and owns no stage).
    pub fn get(&self, stamp: Stamp) -> Option<&str> {
        let i = match stamp {
            Stamp::Issue => return None,
            Stamp::L1Access => 0,
            Stamp::IcntInject => 1,
            Stamp::RopEnter => 2,
            Stamp::L2QueueEnter => 3,
            Stamp::DramQueueEnter => 4,
            Stamp::DramScheduled => 5,
            Stamp::DramDone => 6,
            Stamp::Returned => 7,
        };
        Some(&self.labels[i])
    }

    /// The raw label table, in [`Stamp::ALL`] order.
    pub fn as_slice(&self) -> &[String; 8] {
        &self.labels
    }
}

const PID_SMS: u32 = 1;
const PID_PARTITIONS: u32 = 2;
const PID_GPU: u32 = 3;
const PID_HOST: u32 = 4;

/// Display names for the Perfetto track hierarchy. The default reproduces
/// the builder's historical hard-coded strings; bundle writers derive an
/// instance from the machine's `ArchDesc` (process names carry the
/// description's display name, counter tracks its level/queue labels) so
/// every generation's trace reads in its own vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrackNames {
    /// Process-name for the per-SM track group.
    pub sms_process: String,
    /// Process-name for the per-partition track group.
    pub partitions_process: String,
    /// Process-name for the whole-GPU counter/instant track group.
    pub gpu_process: String,
    /// Process-name for the host-clock self-profile track group.
    pub host_process: String,
    /// Per-SM thread names are `"{sm_prefix} {i}"`.
    pub sm_prefix: String,
    /// Per-partition thread names are `"{partition_prefix} {i}"`.
    pub partition_prefix: String,
    /// Display names for the sampled-counter tracks, indexed by
    /// [`CounterKind::index`].
    pub counters: [String; CounterKind::COUNT],
}

impl Default for TrackNames {
    fn default() -> Self {
        TrackNames {
            sms_process: "SMs".to_string(),
            partitions_process: "Memory partitions".to_string(),
            gpu_process: "GPU".to_string(),
            host_process: "Host self-profile".to_string(),
            sm_prefix: "SM".to_string(),
            partition_prefix: "Partition".to_string(),
            counters: CounterKind::ALL.map(|k| k.name().to_string()),
        }
    }
}

fn site_coords(site: TraceSite) -> (u32, u32) {
    match site {
        TraceSite::Sm(i) => (PID_SMS, i),
        TraceSite::Partition(i) => (PID_PARTITIONS, i),
        TraceSite::Gpu => (PID_GPU, 0),
    }
}

/// Incrementally builds a Chrome trace-event document.
#[derive(Debug)]
pub struct ChromeTraceBuilder {
    events: Vec<String>,
    stage_labels: StageLabels,
    track_names: TrackNames,
}

impl ChromeTraceBuilder {
    /// Starts a trace document with name metadata for `num_sms` SM tracks
    /// and `num_partitions` partition tracks, using the default (Figure-1)
    /// stage labels and track names.
    pub fn new(num_sms: u32, num_partitions: u32) -> Self {
        ChromeTraceBuilder::with_names(num_sms, num_partitions, TrackNames::default())
    }

    /// Starts a trace document whose process/thread/counter tracks carry
    /// the given display names (typically derived from an `ArchDesc`).
    pub fn with_names(num_sms: u32, num_partitions: u32, names: TrackNames) -> Self {
        let mut b = ChromeTraceBuilder {
            events: Vec::new(),
            stage_labels: StageLabels::default(),
            track_names: names,
        };
        let names = b.track_names.clone();
        b.metadata(PID_SMS, None, "process_name", &names.sms_process);
        b.metadata(
            PID_PARTITIONS,
            None,
            "process_name",
            &names.partitions_process,
        );
        b.metadata(PID_GPU, None, "process_name", &names.gpu_process);
        b.metadata(PID_GPU, Some(0), "thread_name", "cycle loop");
        for i in 0..num_sms {
            b.metadata(
                PID_SMS,
                Some(i),
                "thread_name",
                &format!("{} {i}", names.sm_prefix),
            );
        }
        for i in 0..num_partitions {
            b.metadata(
                PID_PARTITIONS,
                Some(i),
                "thread_name",
                &format!("{} {i}", names.partition_prefix),
            );
        }
        b
    }

    /// Replaces the per-stage span labels (derived from an architecture
    /// description by bundle writers).
    pub fn set_stage_labels(&mut self, labels: StageLabels) {
        self.stage_labels = labels;
    }

    fn metadata(&mut self, pid: u32, tid: Option<u32>, what: &str, name: &str) {
        let mut e = String::new();
        e.push_str("{\"ph\":\"M\",\"name\":");
        json::escape_into(&mut e, what);
        e.push_str(&format!(",\"pid\":{pid}"));
        if let Some(tid) = tid {
            e.push_str(&format!(",\"tid\":{tid}"));
        }
        e.push_str(",\"args\":{\"name\":");
        json::escape_into(&mut e, name);
        e.push_str("}}");
        self.events.push(e);
    }

    /// Adds one traced request as a nestable async span on SM `sm`'s track:
    /// an outer `req{id}` slice from issue to return, with one child slice
    /// per present timeline stage. Incomplete timelines are skipped.
    pub fn add_request_span(&mut self, sm: u32, id: u64, timeline: &Timeline) {
        let (Some(issue), Some(returned)) =
            (timeline.get(Stamp::Issue), timeline.get(Stamp::Returned))
        else {
            return;
        };
        self.async_edge("b", sm, id, &format!("req{id}"), issue.get());
        let mut prev = issue;
        for stamp in Stamp::ALL {
            let Some(t) = timeline.get(stamp) else {
                continue;
            };
            if let Some(label) = self.stage_labels.get(stamp).map(str::to_string) {
                self.async_edge("b", sm, id, &label, prev.get());
                self.async_edge("e", sm, id, &label, t.get());
            }
            prev = t;
        }
        self.async_edge("e", sm, id, &format!("req{id}"), returned.get());
    }

    fn async_edge(&mut self, ph: &str, sm: u32, id: u64, name: &str, ts: u64) {
        let mut e = String::new();
        e.push_str("{\"cat\":\"request\",\"ph\":");
        json::escape_into(&mut e, ph);
        e.push_str(",\"id\":");
        e.push_str(&id.to_string());
        e.push_str(",\"name\":");
        json::escape_into(&mut e, name);
        e.push_str(&format!(",\"pid\":{PID_SMS},\"tid\":{sm},\"ts\":{ts}}}"));
        self.events.push(e);
    }

    /// Adds one discrete event as a thread-scoped instant on its site's
    /// track, with the payload spelled out in `args`.
    pub fn add_event(&mut self, event: &TraceEvent) {
        let (pid, tid) = site_coords(event.site);
        let mut e = String::new();
        e.push_str("{\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"name\":");
        json::escape_into(&mut e, event.kind.name());
        e.push_str(&format!(
            ",\"pid\":{pid},\"tid\":{tid},\"ts\":{},\"args\":{{",
            event.cycle
        ));
        match event.kind {
            EventKind::Stall { reason } => {
                e.push_str("\"reason\":");
                json::escape_into(&mut e, reason.name());
            }
            EventKind::Coalesce {
                warp,
                accesses,
                lines,
            } => {
                e.push_str(&format!(
                    "\"warp\":{warp},\"accesses\":{accesses},\"lines\":{lines}"
                ));
            }
            EventKind::MshrAllocate { line } | EventKind::MshrMerge { line } => {
                e.push_str(&format!("\"line\":{line}"));
            }
            EventKind::MshrFill { line, waiters } => {
                e.push_str(&format!("\"line\":{line},\"waiters\":{waiters}"));
            }
            EventKind::IcntInject { net, req, port } | EventKind::IcntEject { net, req, port } => {
                e.push_str("\"net\":");
                json::escape_into(&mut e, net.name());
                e.push_str(&format!(",\"req\":{req},\"port\":{port}"));
            }
            EventKind::QueueEnter { queue, req } | EventKind::QueueLeave { queue, req } => {
                e.push_str("\"queue\":");
                json::escape_into(&mut e, queue.name());
                e.push_str(&format!(",\"req\":{req}"));
            }
            EventKind::RowActivate { bank, row } | EventKind::RowPrecharge { bank, row } => {
                e.push_str(&format!("\"bank\":{bank},\"row\":{row}"));
            }
            EventKind::Checkpoint { bytes } => {
                e.push_str(&format!("\"bytes\":{bytes}"));
            }
            EventKind::CacheHit { key } => {
                e.push_str(&format!("\"key\":{key}"));
            }
        }
        e.push_str("}}");
        self.events.push(e);
    }

    /// Adds one counter sample as `ph` `"C"` counter events on the GPU
    /// process (one per counter kind, so each gets its own Perfetto track,
    /// named from the builder's [`TrackNames`]).
    pub fn add_counter_sample(&mut self, sample: &CounterSample) {
        for kind in CounterKind::ALL {
            let mut e = String::new();
            e.push_str("{\"cat\":\"counter\",\"ph\":\"C\",\"name\":");
            json::escape_into(&mut e, &self.track_names.counters[kind.index()]);
            e.push_str(&format!(
                ",\"pid\":{PID_GPU},\"tid\":0,\"ts\":{},\"args\":{{\"value\":{}}}}}",
                sample.cycle,
                sample.values[kind.index()]
            ));
            self.events.push(e);
        }
    }

    /// Merges a host-clock self-profile into the document on its own
    /// process (pid 4, named from [`TrackNames::host_process`]):
    ///
    /// * **span totals** — one complete `ph` `"X"` slice per entered span,
    ///   laid out in attribution-tree order (children tile from their
    ///   parent's start, one thread per tree depth) so the process reads as
    ///   a flame view of where host time went;
    /// * **sampled tracks** — per-interval `ph` `"C"` deltas of the nine
    ///   tick-stage spans, the worker busy/idle spans and the profiler
    ///   counters, over host time, from the profiler's sample ring.
    ///
    /// Timestamps here are host *microseconds*; the simulated processes use
    /// cycles. They share the file, never a track.
    pub fn add_host_profile(&mut self, report: &ProfileReport) {
        let host_process = self.track_names.host_process.clone();
        self.metadata(PID_HOST, None, "process_name", &host_process);
        self.metadata(PID_HOST, Some(0), "thread_name", "span totals");
        self.metadata(PID_HOST, Some(1), "thread_name", "span totals (children)");
        self.metadata(
            PID_HOST,
            Some(2),
            "thread_name",
            "span totals (grandchildren)",
        );

        // Flame layout: roots tile [0, ..) in table order; every child
        // tiles from its parent's start. A slice sits on the thread for its
        // tree depth, so parallel children that out-sum their parent
        // (attribution, not a strict timeline) still render side by side.
        let mut start = [0u64; ProfSpan::COUNT];
        let mut cursor = [0u64; ProfSpan::COUNT];
        let mut next_root = 0u64;
        for s in ProfSpan::ALL {
            let stat = report.span(s);
            let at = match s.parent() {
                None => {
                    let at = next_root;
                    next_root += stat.nanos;
                    at
                }
                Some(p) => {
                    let at = cursor[p.index()];
                    cursor[p.index()] += stat.nanos;
                    at
                }
            };
            start[s.index()] = at;
            cursor[s.index()] = at;
            if stat.count == 0 {
                continue;
            }
            let depth = s.path().matches('/').count();
            let mut e = String::new();
            e.push_str("{\"cat\":\"host\",\"ph\":\"X\",\"name\":");
            json::escape_into(&mut e, &s.path());
            e.push_str(&format!(
                ",\"pid\":{PID_HOST},\"tid\":{depth},\"ts\":{},\"dur\":{},\"args\":{{\"count\":{},\"nanos\":{}}}}}",
                at / 1_000,
                stat.nanos / 1_000,
                stat.count,
                stat.nanos
            ));
            self.events.push(e);
        }

        // Sampled tracks: cumulative snapshots become per-interval deltas.
        const TRACKED: [ProfSpan; 12] = [
            ProfSpan::BeginNetworks,
            ProfSpan::TickPartitions,
            ProfSpan::InjectReplies,
            ProfSpan::EjectRequests,
            ProfSpan::TickSms,
            ProfSpan::DispatchCtas,
            ProfSpan::AuditInvariants,
            ProfSpan::SampleCounters,
            ProfSpan::AdvanceClock,
            ProfSpan::PoolWorkerBusy,
            ProfSpan::PoolWorkerIdle,
            ProfSpan::GridWorkerBusy,
        ];
        let mut prev_spans = [0u64; ProfSpan::COUNT];
        let mut prev_counters = [0u64; ProfCounter::COUNT];
        for sample in &report.samples {
            let ts = sample.host_nanos / 1_000;
            for s in TRACKED {
                let delta = sample.span_nanos[s.index()].saturating_sub(prev_spans[s.index()]);
                let mut e = String::new();
                e.push_str("{\"cat\":\"host\",\"ph\":\"C\",\"name\":");
                json::escape_into(&mut e, &format!("host us: {}", s.path()));
                e.push_str(&format!(
                    ",\"pid\":{PID_HOST},\"tid\":0,\"ts\":{ts},\"args\":{{\"value\":{}}}}}",
                    delta / 1_000
                ));
                self.events.push(e);
            }
            for c in ProfCounter::ALL {
                // Gauges are plotted raw; monotonic counts as deltas.
                let v = sample.counters[c.index()];
                let value = match c {
                    ProfCounter::Outstanding => v,
                    _ => v.saturating_sub(prev_counters[c.index()]),
                };
                let mut e = String::new();
                e.push_str("{\"cat\":\"host\",\"ph\":\"C\",\"name\":");
                json::escape_into(&mut e, &format!("host: {}", c.label()));
                e.push_str(&format!(
                    ",\"pid\":{PID_HOST},\"tid\":0,\"ts\":{ts},\"args\":{{\"value\":{value}}}}}",
                ));
                self.events.push(e);
            }
            prev_spans = sample.span_nanos;
            prev_counters = sample.counters;
        }
    }

    /// Events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Serialises the document: `{"traceEvents": [...]}`.
    pub fn finish(self) -> String {
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(e);
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Validates the request spans of a parsed Chrome trace: for every async
/// span pair (`ph` `b`/`e`, `cat` `"request"`), the child stage durations
/// must sum exactly to the outer `req{id}` span's duration — the same
/// stage-sum invariant the simulator's sanitizer enforces on timelines.
///
/// Returns the number of verified request spans, or a description of the
/// first violation.
pub fn check_span_sums(doc: &Value) -> Result<u64, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;

    // (id, name) -> begin ts; spans never repeat a (id, stage) pair because
    // timelines stamp each point once. Single pass: ends pair with their
    // begin via the map, and closed spans fold straight into a per-id
    // (outer duration, stage sum) accumulator.
    let mut begins: BTreeMap<(u64, String), u64> = BTreeMap::new();
    let mut per_id: BTreeMap<u64, (Option<u64>, u64)> = BTreeMap::new();
    for ev in events {
        if ev.get("cat").and_then(Value::as_str) != Some("request") {
            continue;
        }
        let ph = ev.get("ph").and_then(Value::as_str).unwrap_or("");
        let id = ev
            .get("id")
            .and_then(Value::as_num)
            .ok_or("request event without id")? as u64;
        let name = ev
            .get("name")
            .and_then(Value::as_str)
            .ok_or("request event without name")?
            .to_string();
        let ts = ev
            .get("ts")
            .and_then(Value::as_num)
            .ok_or("request event without ts")? as u64;
        match ph {
            "b" => {
                begins.insert((id, name), ts);
            }
            "e" => {
                let key = (id, name);
                let begin_ts = begins
                    .remove(&key)
                    .ok_or_else(|| format!("end without begin: req {} {:?}", key.0, key.1))?;
                if ts < begin_ts {
                    return Err(format!("span {key:?} ends before it begins"));
                }
                let (id, name) = key;
                let is_outer = name
                    .strip_prefix("req")
                    .is_some_and(|s| s.parse::<u64>().ok() == Some(id));
                let entry = per_id.entry(id).or_insert((None, 0));
                if is_outer {
                    if entry.0.replace(ts - begin_ts).is_some() {
                        return Err(format!("duplicate outer span for req{id}"));
                    }
                } else {
                    entry.1 += ts - begin_ts;
                }
            }
            other => return Err(format!("unexpected request ph {other:?}")),
        }
    }
    if let Some(((id, name), _)) = begins.iter().next() {
        return Err(format!("unclosed span: req {id} {name:?}"));
    }

    let mut checked = 0u64;
    for (id, (outer, stage_sum)) in per_id {
        let outer = outer.ok_or_else(|| format!("no outer span for req{id}"))?;
        if stage_sum != outer {
            return Err(format!(
                "stage sum {stage_sum} != lifetime {outer} for req{id}"
            ));
        }
        checked += 1;
    }
    Ok(checked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{NetDir, QueueKind, StallReason};
    use gpu_types::Cycle;

    fn dram_timeline(issue: u64) -> Timeline {
        let mut t = Timeline::new();
        t.record(Stamp::Issue, Cycle::new(issue));
        t.record(Stamp::L1Access, Cycle::new(issue + 30));
        t.record(Stamp::IcntInject, Cycle::new(issue + 80));
        t.record(Stamp::RopEnter, Cycle::new(issue + 140));
        t.record(Stamp::L2QueueEnter, Cycle::new(issue + 200));
        t.record(Stamp::DramQueueEnter, Cycle::new(issue + 320));
        t.record(Stamp::DramScheduled, Cycle::new(issue + 520));
        t.record(Stamp::DramDone, Cycle::new(issue + 620));
        t.record(Stamp::Returned, Cycle::new(issue + 700));
        t
    }

    #[test]
    fn spans_tile_the_lifetime_and_validate() {
        let mut b = ChromeTraceBuilder::new(2, 2);
        b.add_request_span(0, 7, &dram_timeline(100));
        // An L2 hit (sparse timeline) must still tile exactly.
        let mut sparse = Timeline::new();
        sparse.record(Stamp::Issue, Cycle::new(0));
        sparse.record(Stamp::L1Access, Cycle::new(30));
        sparse.record(Stamp::Returned, Cycle::new(90));
        b.add_request_span(1, 8, &sparse);
        let doc = json::parse(&b.finish()).unwrap();
        assert_eq!(check_span_sums(&doc).unwrap(), 2);
    }

    #[test]
    fn incomplete_timelines_are_skipped() {
        let mut b = ChromeTraceBuilder::new(1, 1);
        let mut t = Timeline::new();
        t.record(Stamp::Issue, Cycle::new(5));
        let before = b.len();
        b.add_request_span(0, 1, &t);
        assert_eq!(b.len(), before);
    }

    #[test]
    fn validator_rejects_bad_stage_sums() {
        // Hand-build a document whose stage slices do not tile the span.
        let doc = json::parse(
            r#"{"traceEvents":[
            {"cat":"request","ph":"b","id":1,"name":"req1","pid":1,"tid":0,"ts":0},
            {"cat":"request","ph":"b","id":1,"name":"SM Base","pid":1,"tid":0,"ts":0},
            {"cat":"request","ph":"e","id":1,"name":"SM Base","pid":1,"tid":0,"ts":40},
            {"cat":"request","ph":"e","id":1,"name":"req1","pid":1,"tid":0,"ts":100}
            ]}"#,
        )
        .unwrap();
        let err = check_span_sums(&doc).unwrap_err();
        assert!(err.contains("stage sum 40 != lifetime 100"), "{err}");
    }

    #[test]
    fn instants_and_counters_serialise_to_valid_json() {
        let mut b = ChromeTraceBuilder::new(1, 1);
        for kind in [
            EventKind::Stall {
                reason: StallReason::MshrFull,
            },
            EventKind::Coalesce {
                warp: 3,
                accesses: 32,
                lines: 5,
            },
            EventKind::MshrAllocate { line: 0x1280 },
            EventKind::MshrFill {
                line: 0x1280,
                waiters: 2,
            },
            EventKind::IcntInject {
                net: NetDir::Request,
                req: 12,
                port: 0,
            },
            EventKind::QueueLeave {
                queue: QueueKind::Rop,
                req: 12,
            },
            EventKind::RowActivate { bank: 5, row: 900 },
        ] {
            b.add_event(&TraceEvent {
                cycle: 50,
                site: TraceSite::Partition(0),
                kind,
            });
        }
        b.add_counter_sample(&CounterSample {
            cycle: 64,
            values: [9; CounterKind::COUNT],
        });
        let text = b.finish();
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events.len() >= 7 + CounterKind::COUNT);
        // No request spans: the validator trivially passes with 0.
        assert_eq!(check_span_sums(&doc).unwrap(), 0);
    }

    #[test]
    fn stage_labels_cover_every_non_issue_stamp() {
        assert_eq!(stage_label(Stamp::Issue), None);
        for stamp in &Stamp::ALL[1..] {
            assert!(stage_label(*stamp).is_some());
        }
    }

    #[test]
    fn default_stage_labels_match_the_static_table() {
        let labels = StageLabels::default();
        for stamp in Stamp::ALL {
            assert_eq!(labels.get(stamp), stage_label(stamp));
        }
    }

    #[test]
    fn custom_track_names_rename_processes_and_counters() {
        let mut names = TrackNames {
            sms_process: "GF100-like (Fermi) SMs".to_string(),
            sm_prefix: "SM (GF100-like)".to_string(),
            ..TrackNames::default()
        };
        names.counters[CounterKind::L1MshrOccupancy.index()] = "L1 MSHR occupancy".to_string();
        let mut b = ChromeTraceBuilder::with_names(1, 1, names);
        b.add_counter_sample(&CounterSample {
            cycle: 10,
            values: [1; CounterKind::COUNT],
        });
        let text = b.finish();
        assert!(text.contains("\"GF100-like (Fermi) SMs\""), "{text}");
        assert!(text.contains("\"SM (GF100-like) 0\""), "{text}");
        assert!(text.contains("\"L1 MSHR occupancy\""), "{text}");
        assert!(!text.contains("\"l1_mshr\""), "{text}");
        json::parse(&text).unwrap();
    }

    #[test]
    fn host_profile_emits_flame_slices_and_sample_tracks() {
        use crate::profile::{ProfCounter, ProfSample, ProfileReport, SpanStat};
        let mut spans: Vec<SpanStat> = ProfSpan::ALL
            .iter()
            .map(|&span| SpanStat {
                span,
                count: 0,
                nanos: 0,
            })
            .collect();
        spans[ProfSpan::Run.index()] = SpanStat {
            span: ProfSpan::Run,
            count: 1,
            nanos: 10_000_000,
        };
        spans[ProfSpan::TickSms.index()] = SpanStat {
            span: ProfSpan::TickSms,
            count: 100,
            nanos: 6_000_000,
        };
        spans[ProfSpan::SmsIssue.index()] = SpanStat {
            span: ProfSpan::SmsIssue,
            count: 100,
            nanos: 2_500_000,
        };
        let mut sample = ProfSample {
            host_nanos: 5_000_000,
            span_nanos: [0; ProfSpan::COUNT],
            counters: [0; ProfCounter::COUNT],
        };
        sample.span_nanos[ProfSpan::TickSms.index()] = 3_000_000;
        sample.counters[ProfCounter::CyclesTicked.index()] = 50;
        let report = ProfileReport {
            total_nanos: 10_000_000,
            spans,
            counters: [0; ProfCounter::COUNT],
            samples: vec![sample],
            samples_dropped: 0,
        };
        let mut b = ChromeTraceBuilder::new(1, 1);
        b.add_host_profile(&report);
        let text = b.finish();
        let doc = json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // The flame view: run at depth 0, tick_sms nested at depth 1 from
        // run's start, issue at depth 2 from tick_sms's start.
        let slice = |name: &str| {
            events
                .iter()
                .find(|e| {
                    e.get("ph").and_then(Value::as_str) == Some("X")
                        && e.get("name").and_then(Value::as_str) == Some(name)
                })
                .unwrap_or_else(|| panic!("no X slice named {name:?} in {text}"))
        };
        let run = slice("run");
        assert_eq!(run.get("ts").and_then(Value::as_num), Some(0.0));
        assert_eq!(run.get("dur").and_then(Value::as_num), Some(10_000.0));
        assert_eq!(run.get("tid").and_then(Value::as_num), Some(0.0));
        let sms = slice("run/tick_sms");
        assert_eq!(sms.get("tid").and_then(Value::as_num), Some(1.0));
        let issue = slice("run/tick_sms/issue");
        assert_eq!(issue.get("tid").and_then(Value::as_num), Some(2.0));
        // tick_sms tiles after the stages preceding it in the schedule
        // (all zero here except drain_check, also zero) — from run's start.
        assert_eq!(sms.get("ts").and_then(Value::as_num), Some(0.0));
        assert_eq!(issue.get("ts").and_then(Value::as_num), Some(0.0));
        // The sample ring became host-clock counter tracks.
        assert!(text.contains("\"host us: run/tick_sms\""), "{text}");
        assert!(text.contains("\"host: cycles_ticked\""), "{text}");
        assert!(text.contains("\"Host self-profile\""), "{text}");
    }

    #[test]
    fn custom_stage_labels_rename_span_children() {
        let mut b = ChromeTraceBuilder::new(1, 1);
        let mut renamed = StageLabels::default().as_slice().clone();
        renamed[0] = "Warmup".to_string();
        b.set_stage_labels(StageLabels::new(renamed));
        b.add_request_span(0, 7, &dram_timeline(100));
        let text = b.finish();
        assert!(text.contains("\"Warmup\""));
        assert!(!text.contains("\"SM Base\""));
        // Renaming must not break the tiling invariant.
        let doc = json::parse(&text).unwrap();
        assert_eq!(check_span_sums(&doc).unwrap(), 1);
    }
}
