//! The event taxonomy of the tracing layer.
//!
//! Every discrete thing the simulator can report — an SM stalling, a
//! coalesced access, an MSHR transition, a crossbar hop, a queue move, a
//! DRAM row-buffer command — becomes one [`TraceEvent`]: a cycle, a site,
//! and a payload. Events are plain `Copy` data so recording one is a couple
//! of stores into a pre-grown buffer, never an allocation.

/// Why an SM issued nothing on a cycle with live warps.
///
/// This extends the paper's Figure-2 exposed/hidden split: a zero-issue
/// cycle is not just *exposed*, it is exposed *for a reason*. The reasons
/// are tallied per SM ([`StallBreakdown`]) and attributed per load
/// (`LoadInstrRecord::stall_reasons` in `gpu-sim`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// A warp's next instruction waits on a register an outstanding
    /// load/ALU op still owns — the classic exposed-latency case.
    Scoreboard,
    /// The L1 MSHR table is full, so misses cannot leave the SM.
    MshrFull,
    /// The L1 miss queue toward the interconnect is full (network
    /// backpressure reaching into the SM).
    IcntBackpressure,
    /// Warps are parked at a CTA barrier.
    Barrier,
    /// None of the above: front-end/writeback structural limits or warps
    /// draining after exit.
    Other,
}

impl StallReason {
    /// All reasons, in attribution-priority order.
    pub const ALL: [StallReason; 5] = [
        StallReason::Scoreboard,
        StallReason::MshrFull,
        StallReason::IcntBackpressure,
        StallReason::Barrier,
        StallReason::Other,
    ];

    /// Number of reasons.
    pub const COUNT: usize = Self::ALL.len();

    /// Index into [`StallBreakdown`] storage.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short machine-readable name (JSONL/CSV key).
    pub fn name(self) -> &'static str {
        match self {
            StallReason::Scoreboard => "scoreboard",
            StallReason::MshrFull => "mshr_full",
            StallReason::IcntBackpressure => "icnt_backpressure",
            StallReason::Barrier => "barrier",
            StallReason::Other => "other",
        }
    }
}

/// Per-reason stall-cycle counters (one slot per [`StallReason`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    counts: [u64; StallReason::COUNT],
}

impl StallBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        StallBreakdown::default()
    }

    /// Adds one stall cycle to `reason`.
    pub fn bump(&mut self, reason: StallReason) {
        self.counts[reason.index()] += 1;
    }

    /// Stall cycles attributed to `reason`.
    pub fn get(&self, reason: StallReason) -> u64 {
        self.counts[reason.index()]
    }

    /// Total stall cycles across all reasons.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds another breakdown into this one.
    pub fn merge(&mut self, other: &StallBreakdown) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Per-reason counts accumulated since an `earlier` snapshot of the same
    /// counter set (used to attribute a load's lifetime stalls).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not a prefix snapshot (any
    /// reason counted more in `earlier` than in `self`).
    pub fn since(&self, earlier: &StallBreakdown) -> StallBreakdown {
        let mut out = StallBreakdown::default();
        for (i, slot) in out.counts.iter_mut().enumerate() {
            debug_assert!(
                self.counts[i] >= earlier.counts[i],
                "stall counters must be monotonic"
            );
            *slot = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        out
    }

    /// Iterates `(reason, count)` pairs in [`StallReason::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (StallReason, u64)> + '_ {
        StallReason::ALL
            .iter()
            .map(|&r| (r, self.counts[r.index()]))
    }
}

/// Which pipeline component recorded an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceSite {
    /// A streaming multiprocessor, by index.
    Sm(u32),
    /// A memory partition, by index.
    Partition(u32),
    /// The whole-GPU cycle loop (interconnect, dispatch).
    Gpu,
}

/// Which crossbar network a hop event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetDir {
    /// SM → partition request network.
    Request,
    /// Partition → SM reply network.
    Reply,
}

impl NetDir {
    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            NetDir::Request => "req",
            NetDir::Reply => "reply",
        }
    }
}

/// Which bounded queue a queue-transition event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// The partition's ROP pipeline queue.
    Rop,
    /// The L2 slice input queue.
    L2Input,
    /// The DRAM controller queue.
    DramController,
}

impl QueueKind {
    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            QueueKind::Rop => "rop",
            QueueKind::L2Input => "l2_input",
            QueueKind::DramController => "dram",
        }
    }
}

/// The payload of one trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An SM issued nothing this cycle despite live warps.
    Stall {
        /// Dominant reason among the blocked warps.
        reason: StallReason,
    },
    /// The coalescer turned one warp memory access into line transactions.
    Coalesce {
        /// Issuing warp slot.
        warp: u32,
        /// Active lanes in the access.
        accesses: u32,
        /// Line transactions generated.
        lines: u32,
    },
    /// An L1/L2 MSHR entry was allocated for a line.
    MshrAllocate {
        /// Line address.
        line: u64,
    },
    /// A request merged into an existing MSHR entry.
    MshrMerge {
        /// Line address.
        line: u64,
    },
    /// A fill released an MSHR entry and woke its merged waiters.
    MshrFill {
        /// Line address.
        line: u64,
        /// Waiters woken.
        waiters: u32,
    },
    /// A request entered a crossbar network.
    IcntInject {
        /// Which network.
        net: NetDir,
        /// Request id.
        req: u64,
        /// Source port index.
        port: u32,
    },
    /// A request left a crossbar network.
    IcntEject {
        /// Which network.
        net: NetDir,
        /// Request id.
        req: u64,
        /// Destination port index.
        port: u32,
    },
    /// A request entered a bounded queue.
    QueueEnter {
        /// Which queue.
        queue: QueueKind,
        /// Request id.
        req: u64,
    },
    /// A request left a bounded queue.
    QueueLeave {
        /// Which queue.
        queue: QueueKind,
        /// Request id.
        req: u64,
    },
    /// DRAM activated a row in a bank.
    RowActivate {
        /// Bank index.
        bank: u32,
        /// Row number.
        row: u64,
    },
    /// DRAM precharged (closed) a bank's open row.
    RowPrecharge {
        /// Bank index.
        bank: u32,
        /// Row that was open.
        row: u64,
    },
}

impl EventKind {
    /// Short machine-readable name (JSONL `kind` field, Chrome event name).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Stall { .. } => "stall",
            EventKind::Coalesce { .. } => "coalesce",
            EventKind::MshrAllocate { .. } => "mshr_alloc",
            EventKind::MshrMerge { .. } => "mshr_merge",
            EventKind::MshrFill { .. } => "mshr_fill",
            EventKind::IcntInject { .. } => "icnt_inject",
            EventKind::IcntEject { .. } => "icnt_eject",
            EventKind::QueueEnter { .. } => "queue_enter",
            EventKind::QueueLeave { .. } => "queue_leave",
            EventKind::RowActivate { .. } => "row_activate",
            EventKind::RowPrecharge { .. } => "row_precharge",
        }
    }
}

/// One recorded event: when, where, what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle.
    pub cycle: u64,
    /// Recording component.
    pub site: TraceSite,
    /// Payload.
    pub kind: EventKind,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_breakdown_accumulates_and_diffs() {
        let mut b = StallBreakdown::new();
        b.bump(StallReason::Scoreboard);
        b.bump(StallReason::Scoreboard);
        b.bump(StallReason::Barrier);
        assert_eq!(b.get(StallReason::Scoreboard), 2);
        assert_eq!(b.total(), 3);

        let snapshot = b;
        b.bump(StallReason::MshrFull);
        b.bump(StallReason::Scoreboard);
        let delta = b.since(&snapshot);
        assert_eq!(delta.get(StallReason::MshrFull), 1);
        assert_eq!(delta.get(StallReason::Scoreboard), 1);
        assert_eq!(delta.total(), 2);
    }

    #[test]
    fn merge_sums_per_reason() {
        let mut a = StallBreakdown::new();
        a.bump(StallReason::Other);
        let mut b = StallBreakdown::new();
        b.bump(StallReason::Other);
        b.bump(StallReason::Barrier);
        a.merge(&b);
        assert_eq!(a.get(StallReason::Other), 2);
        assert_eq!(a.get(StallReason::Barrier), 1);
    }

    #[test]
    fn reason_indices_cover_all() {
        for (i, r) in StallReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        let names: Vec<_> = StallReason::ALL.iter().map(|r| r.name()).collect();
        assert_eq!(names.len(), StallReason::COUNT);
    }

    #[test]
    fn event_names_are_stable() {
        let e = TraceEvent {
            cycle: 7,
            site: TraceSite::Sm(3),
            kind: EventKind::MshrAllocate { line: 0x80 },
        };
        assert_eq!(e.kind.name(), "mshr_alloc");
        assert_eq!(QueueKind::DramController.name(), "dram");
        assert_eq!(NetDir::Reply.name(), "reply");
    }
}
