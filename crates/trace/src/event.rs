//! The event taxonomy of the tracing layer.
//!
//! Every discrete thing the simulator can report — an SM stalling, a
//! coalesced access, an MSHR transition, a crossbar hop, a queue move, a
//! DRAM row-buffer command — becomes one [`TraceEvent`]: a cycle, a site,
//! and a payload. Events are plain `Copy` data so recording one is a couple
//! of stores into a pre-grown buffer, never an allocation.

/// Why an SM issued nothing on a cycle with live warps.
///
/// This extends the paper's Figure-2 exposed/hidden split: a zero-issue
/// cycle is not just *exposed*, it is exposed *for a reason*. The reasons
/// are tallied per SM ([`StallBreakdown`]) and attributed per load
/// (`LoadInstrRecord::stall_reasons` in `gpu-sim`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallReason {
    /// A warp's next instruction waits on a register an outstanding
    /// load/ALU op still owns — the classic exposed-latency case.
    Scoreboard,
    /// The L1 MSHR table is full, so misses cannot leave the SM.
    MshrFull,
    /// The L1 miss queue toward the interconnect is full (network
    /// backpressure reaching into the SM).
    IcntBackpressure,
    /// Warps are parked at a CTA barrier.
    Barrier,
    /// None of the above: front-end/writeback structural limits or warps
    /// draining after exit.
    Other,
}

impl StallReason {
    /// All reasons, in attribution-priority order.
    pub const ALL: [StallReason; 5] = [
        StallReason::Scoreboard,
        StallReason::MshrFull,
        StallReason::IcntBackpressure,
        StallReason::Barrier,
        StallReason::Other,
    ];

    /// Number of reasons.
    pub const COUNT: usize = Self::ALL.len();

    /// Index into [`StallBreakdown`] storage.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short machine-readable name (JSONL/CSV key).
    pub fn name(self) -> &'static str {
        match self {
            StallReason::Scoreboard => "scoreboard",
            StallReason::MshrFull => "mshr_full",
            StallReason::IcntBackpressure => "icnt_backpressure",
            StallReason::Barrier => "barrier",
            StallReason::Other => "other",
        }
    }
}

/// Per-reason stall-cycle counters (one slot per [`StallReason`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    counts: [u64; StallReason::COUNT],
}

impl StallBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        StallBreakdown::default()
    }

    /// Adds one stall cycle to `reason`.
    pub fn bump(&mut self, reason: StallReason) {
        self.counts[reason.index()] += 1;
    }

    /// Stall cycles attributed to `reason`.
    pub fn get(&self, reason: StallReason) -> u64 {
        self.counts[reason.index()]
    }

    /// Total stall cycles across all reasons.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Adds another breakdown into this one.
    pub fn merge(&mut self, other: &StallBreakdown) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// Per-reason counts accumulated since an `earlier` snapshot of the same
    /// counter set (used to attribute a load's lifetime stalls).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not a prefix snapshot (any
    /// reason counted more in `earlier` than in `self`).
    pub fn since(&self, earlier: &StallBreakdown) -> StallBreakdown {
        let mut out = StallBreakdown::default();
        for (i, slot) in out.counts.iter_mut().enumerate() {
            debug_assert!(
                self.counts[i] >= earlier.counts[i],
                "stall counters must be monotonic"
            );
            *slot = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        out
    }

    /// Iterates `(reason, count)` pairs in [`StallReason::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (StallReason, u64)> + '_ {
        StallReason::ALL
            .iter()
            .map(|&r| (r, self.counts[r.index()]))
    }

    /// The raw per-reason counters in [`StallReason::ALL`] order (snapshot
    /// codecs serialize breakdowns through this).
    pub fn to_array(&self) -> [u64; StallReason::COUNT] {
        self.counts
    }

    /// Rebuilds a breakdown from counters in [`StallReason::ALL`] order.
    pub fn from_array(counts: [u64; StallReason::COUNT]) -> Self {
        StallBreakdown { counts }
    }
}

/// Which pipeline component recorded an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceSite {
    /// A streaming multiprocessor, by index.
    Sm(u32),
    /// A memory partition, by index.
    Partition(u32),
    /// The whole-GPU cycle loop (interconnect, dispatch).
    Gpu,
}

/// Which crossbar network a hop event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetDir {
    /// SM → partition request network.
    Request,
    /// Partition → SM reply network.
    Reply,
}

impl NetDir {
    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            NetDir::Request => "req",
            NetDir::Reply => "reply",
        }
    }
}

/// Which bounded queue a queue-transition event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueueKind {
    /// The partition's ROP pipeline queue.
    Rop,
    /// The L2 slice input queue.
    L2Input,
    /// The DRAM controller queue.
    DramController,
}

impl QueueKind {
    /// Short machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            QueueKind::Rop => "rop",
            QueueKind::L2Input => "l2_input",
            QueueKind::DramController => "dram",
        }
    }
}

/// The payload of one trace event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An SM issued nothing this cycle despite live warps.
    Stall {
        /// Dominant reason among the blocked warps.
        reason: StallReason,
    },
    /// The coalescer turned one warp memory access into line transactions.
    Coalesce {
        /// Issuing warp slot.
        warp: u32,
        /// Active lanes in the access.
        accesses: u32,
        /// Line transactions generated.
        lines: u32,
    },
    /// An L1/L2 MSHR entry was allocated for a line.
    MshrAllocate {
        /// Line address.
        line: u64,
    },
    /// A request merged into an existing MSHR entry.
    MshrMerge {
        /// Line address.
        line: u64,
    },
    /// A fill released an MSHR entry and woke its merged waiters.
    MshrFill {
        /// Line address.
        line: u64,
        /// Waiters woken.
        waiters: u32,
    },
    /// A request entered a crossbar network.
    IcntInject {
        /// Which network.
        net: NetDir,
        /// Request id.
        req: u64,
        /// Source port index.
        port: u32,
    },
    /// A request left a crossbar network.
    IcntEject {
        /// Which network.
        net: NetDir,
        /// Request id.
        req: u64,
        /// Destination port index.
        port: u32,
    },
    /// A request entered a bounded queue.
    QueueEnter {
        /// Which queue.
        queue: QueueKind,
        /// Request id.
        req: u64,
    },
    /// A request left a bounded queue.
    QueueLeave {
        /// Which queue.
        queue: QueueKind,
        /// Request id.
        req: u64,
    },
    /// DRAM activated a row in a bank.
    RowActivate {
        /// Bank index.
        bank: u32,
        /// Row number.
        row: u64,
    },
    /// DRAM precharged (closed) a bank's open row.
    RowPrecharge {
        /// Bank index.
        bank: u32,
        /// Row that was open.
        row: u64,
    },
    /// The cycle loop wrote a checkpoint. Recorded *before* the snapshot is
    /// taken so the event itself lands inside the serialized tracer state
    /// and a resumed run replays an identical event stream.
    Checkpoint {
        /// Framed checkpoint size in bytes (0 when recorded pre-snapshot,
        /// before the size is known).
        bytes: u64,
    },
    /// A sweep grid point was answered from the content-addressed result
    /// cache instead of being simulated.
    CacheHit {
        /// The stable cache key (config + workload content hash).
        key: u64,
    },
}

impl EventKind {
    /// Short machine-readable name (JSONL `kind` field, Chrome event name).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Stall { .. } => "stall",
            EventKind::Coalesce { .. } => "coalesce",
            EventKind::MshrAllocate { .. } => "mshr_alloc",
            EventKind::MshrMerge { .. } => "mshr_merge",
            EventKind::MshrFill { .. } => "mshr_fill",
            EventKind::IcntInject { .. } => "icnt_inject",
            EventKind::IcntEject { .. } => "icnt_eject",
            EventKind::QueueEnter { .. } => "queue_enter",
            EventKind::QueueLeave { .. } => "queue_leave",
            EventKind::RowActivate { .. } => "row_activate",
            EventKind::RowPrecharge { .. } => "row_precharge",
            EventKind::Checkpoint { .. } => "checkpoint",
            EventKind::CacheHit { .. } => "cache_hit",
        }
    }
}

/// One recorded event: when, where, what.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated cycle.
    pub cycle: u64,
    /// Recording component.
    pub site: TraceSite,
    /// Payload.
    pub kind: EventKind,
}

// ---- snapshot codec --------------------------------------------------------
//
// Events are `Copy` data with small closed enums, so the codec is a flat
// tag-plus-fields layout. Tag values are part of the checkpoint format and
// must never be reordered; new variants append new tags.

use gpu_snapshot::{Decoder, Encoder, SnapshotError};

impl TraceSite {
    fn encode_state(&self, e: &mut Encoder) {
        match *self {
            TraceSite::Sm(i) => {
                e.u8(0);
                e.u32(i);
            }
            TraceSite::Partition(i) => {
                e.u8(1);
                e.u32(i);
            }
            TraceSite::Gpu => e.u8(2),
        }
    }

    fn decode(d: &mut Decoder) -> Result<Self, SnapshotError> {
        Ok(match d.u8()? {
            0 => TraceSite::Sm(d.u32()?),
            1 => TraceSite::Partition(d.u32()?),
            2 => TraceSite::Gpu,
            _ => return Err(SnapshotError::InvalidValue("unknown trace site tag")),
        })
    }
}

impl NetDir {
    fn encode_state(&self, e: &mut Encoder) {
        e.u8(match self {
            NetDir::Request => 0,
            NetDir::Reply => 1,
        });
    }

    fn decode(d: &mut Decoder) -> Result<Self, SnapshotError> {
        Ok(match d.u8()? {
            0 => NetDir::Request,
            1 => NetDir::Reply,
            _ => return Err(SnapshotError::InvalidValue("unknown net direction tag")),
        })
    }
}

impl QueueKind {
    fn encode_state(&self, e: &mut Encoder) {
        e.u8(match self {
            QueueKind::Rop => 0,
            QueueKind::L2Input => 1,
            QueueKind::DramController => 2,
        });
    }

    fn decode(d: &mut Decoder) -> Result<Self, SnapshotError> {
        Ok(match d.u8()? {
            0 => QueueKind::Rop,
            1 => QueueKind::L2Input,
            2 => QueueKind::DramController,
            _ => return Err(SnapshotError::InvalidValue("unknown queue kind tag")),
        })
    }
}

impl StallReason {
    fn decode(d: &mut Decoder) -> Result<Self, SnapshotError> {
        StallReason::ALL
            .get(d.u8()? as usize)
            .copied()
            .ok_or(SnapshotError::InvalidValue("unknown stall reason tag"))
    }
}

impl EventKind {
    fn encode_state(&self, e: &mut Encoder) {
        match *self {
            EventKind::Stall { reason } => {
                e.u8(0);
                e.u8(reason.index() as u8);
            }
            EventKind::Coalesce {
                warp,
                accesses,
                lines,
            } => {
                e.u8(1);
                e.u32(warp);
                e.u32(accesses);
                e.u32(lines);
            }
            EventKind::MshrAllocate { line } => {
                e.u8(2);
                e.u64(line);
            }
            EventKind::MshrMerge { line } => {
                e.u8(3);
                e.u64(line);
            }
            EventKind::MshrFill { line, waiters } => {
                e.u8(4);
                e.u64(line);
                e.u32(waiters);
            }
            EventKind::IcntInject { net, req, port } => {
                e.u8(5);
                net.encode_state(e);
                e.u64(req);
                e.u32(port);
            }
            EventKind::IcntEject { net, req, port } => {
                e.u8(6);
                net.encode_state(e);
                e.u64(req);
                e.u32(port);
            }
            EventKind::QueueEnter { queue, req } => {
                e.u8(7);
                queue.encode_state(e);
                e.u64(req);
            }
            EventKind::QueueLeave { queue, req } => {
                e.u8(8);
                queue.encode_state(e);
                e.u64(req);
            }
            EventKind::RowActivate { bank, row } => {
                e.u8(9);
                e.u32(bank);
                e.u64(row);
            }
            EventKind::RowPrecharge { bank, row } => {
                e.u8(10);
                e.u32(bank);
                e.u64(row);
            }
            EventKind::Checkpoint { bytes } => {
                e.u8(11);
                e.u64(bytes);
            }
            EventKind::CacheHit { key } => {
                e.u8(12);
                e.u64(key);
            }
        }
    }

    fn decode(d: &mut Decoder) -> Result<Self, SnapshotError> {
        Ok(match d.u8()? {
            0 => EventKind::Stall {
                reason: StallReason::decode(d)?,
            },
            1 => EventKind::Coalesce {
                warp: d.u32()?,
                accesses: d.u32()?,
                lines: d.u32()?,
            },
            2 => EventKind::MshrAllocate { line: d.u64()? },
            3 => EventKind::MshrMerge { line: d.u64()? },
            4 => EventKind::MshrFill {
                line: d.u64()?,
                waiters: d.u32()?,
            },
            5 => EventKind::IcntInject {
                net: NetDir::decode(d)?,
                req: d.u64()?,
                port: d.u32()?,
            },
            6 => EventKind::IcntEject {
                net: NetDir::decode(d)?,
                req: d.u64()?,
                port: d.u32()?,
            },
            7 => EventKind::QueueEnter {
                queue: QueueKind::decode(d)?,
                req: d.u64()?,
            },
            8 => EventKind::QueueLeave {
                queue: QueueKind::decode(d)?,
                req: d.u64()?,
            },
            9 => EventKind::RowActivate {
                bank: d.u32()?,
                row: d.u64()?,
            },
            10 => EventKind::RowPrecharge {
                bank: d.u32()?,
                row: d.u64()?,
            },
            11 => EventKind::Checkpoint { bytes: d.u64()? },
            12 => EventKind::CacheHit { key: d.u64()? },
            _ => return Err(SnapshotError::InvalidValue("unknown event kind tag")),
        })
    }
}

impl TraceEvent {
    /// Serializes one event (cycle, site, tagged payload).
    pub fn encode_state(&self, e: &mut Encoder) {
        e.u64(self.cycle);
        self.site.encode_state(e);
        self.kind.encode_state(e);
    }

    /// Decodes one event, rejecting unknown tags with a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`SnapshotError::InvalidValue`] on an unknown site, kind,
    /// reason, net or queue tag, and propagates decoder errors.
    pub fn decode(d: &mut Decoder) -> Result<Self, SnapshotError> {
        Ok(TraceEvent {
            cycle: d.u64()?,
            site: TraceSite::decode(d)?,
            kind: EventKind::decode(d)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_breakdown_accumulates_and_diffs() {
        let mut b = StallBreakdown::new();
        b.bump(StallReason::Scoreboard);
        b.bump(StallReason::Scoreboard);
        b.bump(StallReason::Barrier);
        assert_eq!(b.get(StallReason::Scoreboard), 2);
        assert_eq!(b.total(), 3);

        let snapshot = b;
        b.bump(StallReason::MshrFull);
        b.bump(StallReason::Scoreboard);
        let delta = b.since(&snapshot);
        assert_eq!(delta.get(StallReason::MshrFull), 1);
        assert_eq!(delta.get(StallReason::Scoreboard), 1);
        assert_eq!(delta.total(), 2);
    }

    #[test]
    fn merge_sums_per_reason() {
        let mut a = StallBreakdown::new();
        a.bump(StallReason::Other);
        let mut b = StallBreakdown::new();
        b.bump(StallReason::Other);
        b.bump(StallReason::Barrier);
        a.merge(&b);
        assert_eq!(a.get(StallReason::Other), 2);
        assert_eq!(a.get(StallReason::Barrier), 1);
    }

    #[test]
    fn reason_indices_cover_all() {
        for (i, r) in StallReason::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        let names: Vec<_> = StallReason::ALL.iter().map(|r| r.name()).collect();
        assert_eq!(names.len(), StallReason::COUNT);
    }

    /// One event of every kind, covering each tag and payload shape.
    fn one_of_each_kind() -> Vec<TraceEvent> {
        let kinds = [
            EventKind::Stall {
                reason: StallReason::IcntBackpressure,
            },
            EventKind::Coalesce {
                warp: 3,
                accesses: 32,
                lines: 5,
            },
            EventKind::MshrAllocate { line: 0x1280 },
            EventKind::MshrMerge { line: 0x1280 },
            EventKind::MshrFill {
                line: 0x1280,
                waiters: 2,
            },
            EventKind::IcntInject {
                net: NetDir::Request,
                req: 12,
                port: 0,
            },
            EventKind::IcntEject {
                net: NetDir::Reply,
                req: 12,
                port: 7,
            },
            EventKind::QueueEnter {
                queue: QueueKind::L2Input,
                req: 44,
            },
            EventKind::QueueLeave {
                queue: QueueKind::DramController,
                req: 44,
            },
            EventKind::RowActivate { bank: 5, row: 900 },
            EventKind::RowPrecharge { bank: 5, row: 900 },
            EventKind::Checkpoint { bytes: 1 << 20 },
            EventKind::CacheHit {
                key: 0xdead_beef_cafe_f00d,
            },
        ];
        let sites = [TraceSite::Sm(2), TraceSite::Partition(1), TraceSite::Gpu];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| TraceEvent {
                cycle: 100 + i as u64,
                site: sites[i % sites.len()],
                kind,
            })
            .collect()
    }

    #[test]
    fn event_codec_round_trips_every_kind() {
        let events = one_of_each_kind();
        let mut e = gpu_snapshot::Encoder::new();
        for ev in &events {
            ev.encode_state(&mut e);
        }
        let framed = e.finish();

        let mut d = gpu_snapshot::Decoder::open(&framed).unwrap();
        let mut decoded = Vec::new();
        for _ in 0..events.len() {
            decoded.push(TraceEvent::decode(&mut d).unwrap());
        }
        d.expect_end().unwrap();
        assert_eq!(decoded, events);

        // Re-encoding the decoded events reproduces identical bytes.
        let mut e2 = gpu_snapshot::Encoder::new();
        for ev in &decoded {
            ev.encode_state(&mut e2);
        }
        assert_eq!(e2.finish(), framed);
    }

    #[test]
    fn event_decode_rejects_unknown_tags() {
        // A site tag of 9 does not exist.
        let mut e = gpu_snapshot::Encoder::new();
        e.u64(5);
        e.u8(9);
        let framed = e.finish();
        let mut d = gpu_snapshot::Decoder::open(&framed).unwrap();
        assert!(matches!(
            TraceEvent::decode(&mut d),
            Err(gpu_snapshot::SnapshotError::InvalidValue(_))
        ));

        // A kind tag of 200 does not exist.
        let mut e = gpu_snapshot::Encoder::new();
        e.u64(5);
        e.u8(2); // Gpu site
        e.u8(200);
        let framed = e.finish();
        let mut d = gpu_snapshot::Decoder::open(&framed).unwrap();
        assert!(matches!(
            TraceEvent::decode(&mut d),
            Err(gpu_snapshot::SnapshotError::InvalidValue(_))
        ));
    }

    #[test]
    fn breakdown_array_round_trip() {
        let mut b = StallBreakdown::new();
        b.bump(StallReason::Barrier);
        b.bump(StallReason::Other);
        b.bump(StallReason::Other);
        assert_eq!(StallBreakdown::from_array(b.to_array()), b);
    }

    #[test]
    fn event_names_are_stable() {
        let e = TraceEvent {
            cycle: 7,
            site: TraceSite::Sm(3),
            kind: EventKind::MshrAllocate { line: 0x80 },
        };
        assert_eq!(e.kind.name(), "mshr_alloc");
        assert_eq!(QueueKind::DramController.name(), "dram");
        assert_eq!(NetDir::Reply.name(), "reply");
    }
}
