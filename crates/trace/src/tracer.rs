//! The event sink and sampled-counter registry.
//!
//! A [`Tracer`] is owned by the simulator's cycle loop. It is built from a
//! [`TraceConfig`] and is *zero-cost when disabled*: every recording entry
//! point checks a single `bool` and returns — no formatting, no allocation,
//! no hashing (verified by the `no_alloc` integration test).

use std::collections::VecDeque;

use crate::event::TraceEvent;

/// Tracing configuration, carried inside the simulator's `GpuConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. Off by default; when off the tracer records nothing
    /// and the simulated timing is bit-identical to an untraced build.
    pub enabled: bool,
    /// Sample the counter registry every this many cycles.
    pub sample_interval: u64,
    /// Cap on stored events; recording past it increments a drop counter
    /// instead of growing without bound.
    pub max_events: usize,
    /// Ring-buffer capacity for counter samples. The per-counter summaries
    /// keep integrating over *all* samples even after old ones rotate out.
    pub counter_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            sample_interval: 64,
            max_events: 1 << 20,
            counter_capacity: 1 << 16,
        }
    }
}

/// The gauges sampled each interval (instantaneous occupancies plus the
/// cumulative DRAM row-hit rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterKind {
    /// Occupied L1 MSHR entries, summed over SMs.
    L1MshrOccupancy,
    /// SM memory front-end pipe occupancy, summed over SMs.
    FrontDepth,
    /// L1 miss-queue occupancy, summed over SMs.
    MissQueueDepth,
    /// ROP pipeline occupancy, summed over partitions.
    RopQueueDepth,
    /// L2 input-queue occupancy, summed over partitions.
    L2QueueDepth,
    /// Occupied L2 MSHR entries, summed over partitions.
    L2MshrOccupancy,
    /// DRAM controller-queue occupancy, summed over partitions.
    DramQueueDepth,
    /// Requests in flight inside both crossbar networks.
    IcntInFlight,
    /// The GPU's global outstanding-request counter.
    Outstanding,
    /// Cumulative DRAM row-hit rate in permille (row hits × 1000 /
    /// serviced), all partitions.
    DramRowHitPermille,
}

impl CounterKind {
    /// All counters, in sample-array order.
    pub const ALL: [CounterKind; 10] = [
        CounterKind::L1MshrOccupancy,
        CounterKind::FrontDepth,
        CounterKind::MissQueueDepth,
        CounterKind::RopQueueDepth,
        CounterKind::L2QueueDepth,
        CounterKind::L2MshrOccupancy,
        CounterKind::DramQueueDepth,
        CounterKind::IcntInFlight,
        CounterKind::Outstanding,
        CounterKind::DramRowHitPermille,
    ];

    /// Number of counters.
    pub const COUNT: usize = Self::ALL.len();

    /// Index into sample arrays.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short machine-readable name (CSV header, Chrome counter-track name).
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::L1MshrOccupancy => "l1_mshr",
            CounterKind::FrontDepth => "sm_front",
            CounterKind::MissQueueDepth => "l1_miss_queue",
            CounterKind::RopQueueDepth => "rop_queue",
            CounterKind::L2QueueDepth => "l2_queue",
            CounterKind::L2MshrOccupancy => "l2_mshr",
            CounterKind::DramQueueDepth => "dram_queue",
            CounterKind::IcntInFlight => "icnt_in_flight",
            CounterKind::Outstanding => "outstanding",
            CounterKind::DramRowHitPermille => "dram_row_hit_permille",
        }
    }
}

/// One row of the counter registry: every gauge at one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSample {
    /// Sample cycle.
    pub cycle: u64,
    /// Gauge values, indexed by [`CounterKind::index`].
    pub values: [u64; CounterKind::COUNT],
}

/// Running summary of one counter over every sample taken (survives the
/// ring buffer rotating old samples out).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSummary {
    /// Smallest sampled value (zero when no samples).
    pub min: u64,
    /// Largest sampled value.
    pub max: u64,
    /// Sum of sampled values.
    pub sum: u64,
    /// Samples integrated.
    pub samples: u64,
}

impl CounterSummary {
    /// Integrates one sampled value.
    pub fn observe(&mut self, v: u64) {
        if self.samples == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.sum += v;
        self.samples += 1;
    }

    /// Arithmetic mean of the sampled values (0.0 when no samples).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }
}

/// Everything a traced run collected, taken out of the tracer in one move.
#[derive(Debug, Default)]
pub struct TraceData {
    /// Recorded events, in recording order.
    pub events: Vec<TraceEvent>,
    /// Counter samples still in the ring (newest `counter_capacity`).
    pub samples: Vec<CounterSample>,
    /// Events dropped after `max_events` was reached.
    pub dropped_events: u64,
}

/// The simulator-side trace sink: bounded event buffer plus the sampled
/// counter registry.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    sample_interval: u64,
    max_events: usize,
    counter_capacity: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
    ring: VecDeque<CounterSample>,
    summaries: [CounterSummary; CounterKind::COUNT],
    samples_taken: u64,
}

impl Tracer {
    /// Builds a tracer from its configuration. Degenerate values are
    /// clamped (a zero sample interval samples every cycle).
    pub fn new(cfg: TraceConfig) -> Self {
        Tracer {
            enabled: cfg.enabled,
            sample_interval: cfg.sample_interval.max(1),
            max_events: cfg.max_events,
            counter_capacity: cfg.counter_capacity.max(1),
            events: Vec::new(),
            dropped: 0,
            ring: VecDeque::new(),
            summaries: [CounterSummary::default(); CounterKind::COUNT],
            samples_taken: 0,
        }
    }

    /// Is the tracer recording? Call sites use this to skip event
    /// construction entirely on the hot path.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off mid-run.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Records one event. A disabled tracer returns immediately; a full
    /// buffer counts the drop instead of growing.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.max_events {
            self.dropped += 1;
            return;
        }
        self.events.push(event);
    }

    /// Returns `true` when the counter registry should be sampled at
    /// `cycle` (enabled, and the cycle hits the sample interval).
    #[inline]
    pub fn should_sample(&self, cycle: u64) -> bool {
        self.enabled && cycle.is_multiple_of(self.sample_interval)
    }

    /// Stores one counter sample: pushed into the bounded ring (oldest
    /// rotates out) and integrated into the running summaries.
    pub fn sample(&mut self, cycle: u64, values: [u64; CounterKind::COUNT]) {
        if !self.enabled {
            return;
        }
        if self.ring.len() >= self.counter_capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(CounterSample { cycle, values });
        for (summary, &v) in self.summaries.iter_mut().zip(&values) {
            summary.observe(v);
        }
        self.samples_taken += 1;
    }

    /// Per-counter summaries over every sample taken so far.
    pub fn summaries(&self) -> &[CounterSummary; CounterKind::COUNT] {
        &self.summaries
    }

    /// Samples integrated (including any rotated out of the ring).
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Events recorded and retained so far.
    pub fn events_recorded(&self) -> u64 {
        self.events.len() as u64
    }

    /// Events dropped at the `max_events` cap.
    pub fn events_dropped(&self) -> u64 {
        self.dropped
    }

    /// Moves the collected data out, leaving the tracer empty (summaries
    /// and counts reset too).
    pub fn take(&mut self) -> TraceData {
        let data = TraceData {
            events: std::mem::take(&mut self.events),
            samples: self.ring.drain(..).collect(),
            dropped_events: std::mem::take(&mut self.dropped),
        };
        self.summaries = [CounterSummary::default(); CounterKind::COUNT];
        self.samples_taken = 0;
        data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceSite};

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            site: TraceSite::Gpu,
            kind: EventKind::MshrAllocate { line: cycle },
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new(TraceConfig::default());
        assert!(!t.enabled());
        t.record(ev(1));
        t.sample(0, [1; CounterKind::COUNT]);
        assert!(!t.should_sample(0));
        let data = t.take();
        assert!(data.events.is_empty());
        assert!(data.samples.is_empty());
    }

    #[test]
    fn event_cap_counts_drops() {
        let mut t = Tracer::new(TraceConfig {
            enabled: true,
            max_events: 2,
            ..TraceConfig::default()
        });
        for c in 0..5 {
            t.record(ev(c));
        }
        assert_eq!(t.events_recorded(), 2);
        assert_eq!(t.events_dropped(), 3);
        let data = t.take();
        assert_eq!(data.events.len(), 2);
        assert_eq!(data.dropped_events, 3);
    }

    #[test]
    fn counter_ring_rotates_but_summary_integrates_all() {
        let mut t = Tracer::new(TraceConfig {
            enabled: true,
            counter_capacity: 2,
            ..TraceConfig::default()
        });
        for (i, v) in [5u64, 1, 9, 3].into_iter().enumerate() {
            t.sample(i as u64, [v; CounterKind::COUNT]);
        }
        assert_eq!(t.samples_taken(), 4);
        let s = t.summaries()[0];
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
        assert_eq!(s.sum, 18);
        assert_eq!(s.samples, 4);
        assert!((s.mean() - 4.5).abs() < 1e-12);
        let data = t.take();
        // Only the newest two samples survive the ring.
        assert_eq!(data.samples.len(), 2);
        assert_eq!(data.samples[0].values[0], 9);
        assert_eq!(data.samples[1].values[0], 3);
    }

    #[test]
    fn sample_interval_gates_should_sample() {
        let t = Tracer::new(TraceConfig {
            enabled: true,
            sample_interval: 8,
            ..TraceConfig::default()
        });
        assert!(t.should_sample(0));
        assert!(!t.should_sample(7));
        assert!(t.should_sample(16));
    }

    #[test]
    fn counter_kind_indices_cover_all() {
        for (i, k) in CounterKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }
}
