//! The event sink and sampled-counter registry.
//!
//! A [`Tracer`] is owned by the simulator's cycle loop. It is built from a
//! [`TraceConfig`] and is *zero-cost when disabled*: every recording entry
//! point checks a single `bool` and returns — no formatting, no allocation,
//! no hashing (verified by the `no_alloc` integration test).

use std::collections::VecDeque;

use crate::event::TraceEvent;

/// Tracing configuration, carried inside the simulator's `GpuConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Master switch. Off by default; when off the tracer records nothing
    /// and the simulated timing is bit-identical to an untraced build.
    pub enabled: bool,
    /// Sample the counter registry every this many cycles.
    pub sample_interval: u64,
    /// Cap on stored events; recording past it increments a drop counter
    /// instead of growing without bound.
    pub max_events: usize,
    /// Ring-buffer capacity for counter samples. The per-counter summaries
    /// keep integrating over *all* samples even after old ones rotate out.
    pub counter_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: false,
            sample_interval: 64,
            max_events: 1 << 20,
            counter_capacity: 1 << 16,
        }
    }
}

/// The gauges sampled each interval (instantaneous occupancies plus the
/// cumulative DRAM row-hit rate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CounterKind {
    /// Occupied L1 MSHR entries, summed over SMs.
    L1MshrOccupancy,
    /// SM memory front-end pipe occupancy, summed over SMs.
    FrontDepth,
    /// L1 miss-queue occupancy, summed over SMs.
    MissQueueDepth,
    /// ROP pipeline occupancy, summed over partitions.
    RopQueueDepth,
    /// L2 input-queue occupancy, summed over partitions.
    L2QueueDepth,
    /// Occupied L2 MSHR entries, summed over partitions.
    L2MshrOccupancy,
    /// DRAM controller-queue occupancy, summed over partitions.
    DramQueueDepth,
    /// Requests in flight inside both crossbar networks.
    IcntInFlight,
    /// The GPU's global outstanding-request counter.
    Outstanding,
    /// Cumulative DRAM row-hit rate in permille (row hits × 1000 /
    /// serviced), all partitions.
    DramRowHitPermille,
}

impl CounterKind {
    /// All counters, in sample-array order.
    pub const ALL: [CounterKind; 10] = [
        CounterKind::L1MshrOccupancy,
        CounterKind::FrontDepth,
        CounterKind::MissQueueDepth,
        CounterKind::RopQueueDepth,
        CounterKind::L2QueueDepth,
        CounterKind::L2MshrOccupancy,
        CounterKind::DramQueueDepth,
        CounterKind::IcntInFlight,
        CounterKind::Outstanding,
        CounterKind::DramRowHitPermille,
    ];

    /// Number of counters.
    pub const COUNT: usize = Self::ALL.len();

    /// Index into sample arrays.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short machine-readable name (CSV header, Chrome counter-track name).
    pub fn name(self) -> &'static str {
        match self {
            CounterKind::L1MshrOccupancy => "l1_mshr",
            CounterKind::FrontDepth => "sm_front",
            CounterKind::MissQueueDepth => "l1_miss_queue",
            CounterKind::RopQueueDepth => "rop_queue",
            CounterKind::L2QueueDepth => "l2_queue",
            CounterKind::L2MshrOccupancy => "l2_mshr",
            CounterKind::DramQueueDepth => "dram_queue",
            CounterKind::IcntInFlight => "icnt_in_flight",
            CounterKind::Outstanding => "outstanding",
            CounterKind::DramRowHitPermille => "dram_row_hit_permille",
        }
    }
}

/// One row of the counter registry: every gauge at one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSample {
    /// Sample cycle.
    pub cycle: u64,
    /// Gauge values, indexed by [`CounterKind::index`].
    pub values: [u64; CounterKind::COUNT],
}

/// Running summary of one counter over every sample taken (survives the
/// ring buffer rotating old samples out).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSummary {
    /// Smallest sampled value (zero when no samples).
    pub min: u64,
    /// Largest sampled value.
    pub max: u64,
    /// Sum of sampled values.
    pub sum: u64,
    /// Samples integrated.
    pub samples: u64,
}

impl CounterSummary {
    /// Integrates one sampled value.
    pub fn observe(&mut self, v: u64) {
        if self.samples == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.sum += v;
        self.samples += 1;
    }

    /// Arithmetic mean of the sampled values (0.0 when no samples).
    pub fn mean(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            self.sum as f64 / self.samples as f64
        }
    }
}

/// Everything a traced run collected, taken out of the tracer in one move.
#[derive(Debug, Default)]
pub struct TraceData {
    /// Recorded events, in recording order.
    pub events: Vec<TraceEvent>,
    /// Counter samples still in the ring (newest `counter_capacity`).
    pub samples: Vec<CounterSample>,
    /// Events dropped after `max_events` was reached.
    pub dropped_events: u64,
}

/// The simulator-side trace sink: bounded event buffer plus the sampled
/// counter registry.
#[derive(Debug)]
pub struct Tracer {
    enabled: bool,
    sample_interval: u64,
    max_events: usize,
    counter_capacity: usize,
    events: Vec<TraceEvent>,
    dropped: u64,
    ring: VecDeque<CounterSample>,
    summaries: [CounterSummary; CounterKind::COUNT],
    samples_taken: u64,
}

impl Tracer {
    /// Builds a tracer from its configuration. Degenerate values are
    /// clamped (a zero sample interval samples every cycle).
    pub fn new(cfg: TraceConfig) -> Self {
        Tracer {
            enabled: cfg.enabled,
            sample_interval: cfg.sample_interval.max(1),
            max_events: cfg.max_events,
            counter_capacity: cfg.counter_capacity.max(1),
            events: Vec::new(),
            dropped: 0,
            ring: VecDeque::new(),
            summaries: [CounterSummary::default(); CounterKind::COUNT],
            samples_taken: 0,
        }
    }

    /// Is the tracer recording? Call sites use this to skip event
    /// construction entirely on the hot path.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Turns recording on or off mid-run.
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }

    /// Records one event. A disabled tracer returns immediately; a full
    /// buffer counts the drop instead of growing.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() >= self.max_events {
            self.dropped += 1;
            return;
        }
        self.events.push(event);
    }

    /// Drains every event out of `src` into this tracer, applying *this*
    /// tracer's `max_events` cap and drop accounting, plus any drops `src`
    /// already counted at its own cap.
    ///
    /// This is the merge half of the parallel tick executor: each component
    /// records into a private scratch tracer during a concurrent stage, and
    /// the scratch buffers are drained here in fixed component-index order.
    /// Because the serial schedule keeps the *first* `max_events` events in
    /// recording order and this merge appends in that same order, the merged
    /// stream is bit-identical to a serial run's.
    pub fn append_events_from(&mut self, src: &mut Tracer) {
        for event in src.events.drain(..) {
            if self.events.len() >= self.max_events {
                self.dropped += 1;
            } else {
                self.events.push(event);
            }
        }
        self.dropped += std::mem::take(&mut src.dropped);
    }

    /// Returns `true` when the counter registry should be sampled at
    /// `cycle` (enabled, and the cycle hits the sample interval).
    #[inline]
    pub fn should_sample(&self, cycle: u64) -> bool {
        self.enabled && cycle.is_multiple_of(self.sample_interval)
    }

    /// Stores one counter sample: pushed into the bounded ring (oldest
    /// rotates out) and integrated into the running summaries.
    pub fn sample(&mut self, cycle: u64, values: [u64; CounterKind::COUNT]) {
        if !self.enabled {
            return;
        }
        if self.ring.len() >= self.counter_capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(CounterSample { cycle, values });
        for (summary, &v) in self.summaries.iter_mut().zip(&values) {
            summary.observe(v);
        }
        self.samples_taken += 1;
    }

    /// Per-counter summaries over every sample taken so far.
    pub fn summaries(&self) -> &[CounterSummary; CounterKind::COUNT] {
        &self.summaries
    }

    /// Samples integrated (including any rotated out of the ring).
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }

    /// Events recorded and retained so far.
    pub fn events_recorded(&self) -> u64 {
        self.events.len() as u64
    }

    /// Events dropped at the `max_events` cap.
    pub fn events_dropped(&self) -> u64 {
        self.dropped
    }

    /// Moves the collected data out, leaving the tracer empty (summaries
    /// and counts reset too).
    pub fn take(&mut self) -> TraceData {
        let data = TraceData {
            events: std::mem::take(&mut self.events),
            samples: self.ring.drain(..).collect(),
            dropped_events: std::mem::take(&mut self.dropped),
        };
        self.summaries = [CounterSummary::default(); CounterKind::COUNT];
        self.samples_taken = 0;
        data
    }

    // ---- snapshot codec ---------------------------------------------------

    /// Serializes the tracer completely: configuration knobs, every retained
    /// event, the drop counter, the counter-sample ring and the running
    /// summaries. A restored tracer keeps recording exactly where this one
    /// stopped, so a resumed run emits the identical event stream.
    pub fn encode_state(&self, e: &mut gpu_snapshot::Encoder) {
        e.bool(self.enabled);
        e.u64(self.sample_interval);
        e.usize(self.max_events);
        e.usize(self.counter_capacity);
        e.usize(self.events.len());
        for ev in &self.events {
            ev.encode_state(e);
        }
        e.u64(self.dropped);
        e.usize(self.ring.len());
        for s in &self.ring {
            e.u64(s.cycle);
            for v in s.values {
                e.u64(v);
            }
        }
        for s in &self.summaries {
            e.u64(s.min);
            e.u64(s.max);
            e.u64(s.sum);
            e.u64(s.samples);
        }
        e.u64(self.samples_taken);
    }

    /// Overwrites this tracer with a decoded checkpoint.
    ///
    /// # Errors
    ///
    /// Rejects degenerate knob values and buffers exceeding their own caps,
    /// and propagates decoder errors.
    pub fn restore_state(
        &mut self,
        d: &mut gpu_snapshot::Decoder,
    ) -> Result<(), gpu_snapshot::SnapshotError> {
        use gpu_snapshot::SnapshotError::InvalidValue;
        self.enabled = d.bool()?;
        self.sample_interval = d.u64()?;
        if self.sample_interval == 0 {
            return Err(InvalidValue("tracer sample interval is zero"));
        }
        self.max_events = d.usize()?;
        self.counter_capacity = d.usize()?;
        if self.counter_capacity == 0 {
            return Err(InvalidValue("tracer counter capacity is zero"));
        }
        let n_events = d.usize()?;
        if n_events > self.max_events {
            return Err(InvalidValue("tracer events exceed their own cap"));
        }
        self.events.clear();
        self.events.reserve(n_events);
        for _ in 0..n_events {
            self.events.push(TraceEvent::decode(d)?);
        }
        self.dropped = d.u64()?;
        let n_samples = d.usize()?;
        if n_samples > self.counter_capacity {
            return Err(InvalidValue("tracer ring exceeds its own capacity"));
        }
        self.ring.clear();
        for _ in 0..n_samples {
            let cycle = d.u64()?;
            let mut values = [0u64; CounterKind::COUNT];
            for v in &mut values {
                *v = d.u64()?;
            }
            self.ring.push_back(CounterSample { cycle, values });
        }
        for s in &mut self.summaries {
            *s = CounterSummary {
                min: d.u64()?,
                max: d.u64()?,
                sum: d.u64()?,
                samples: d.u64()?,
            };
        }
        self.samples_taken = d.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKind, TraceSite};

    fn ev(cycle: u64) -> TraceEvent {
        TraceEvent {
            cycle,
            site: TraceSite::Gpu,
            kind: EventKind::MshrAllocate { line: cycle },
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::new(TraceConfig::default());
        assert!(!t.enabled());
        t.record(ev(1));
        t.sample(0, [1; CounterKind::COUNT]);
        assert!(!t.should_sample(0));
        let data = t.take();
        assert!(data.events.is_empty());
        assert!(data.samples.is_empty());
    }

    #[test]
    fn event_cap_counts_drops() {
        let mut t = Tracer::new(TraceConfig {
            enabled: true,
            max_events: 2,
            ..TraceConfig::default()
        });
        for c in 0..5 {
            t.record(ev(c));
        }
        assert_eq!(t.events_recorded(), 2);
        assert_eq!(t.events_dropped(), 3);
        let data = t.take();
        assert_eq!(data.events.len(), 2);
        assert_eq!(data.dropped_events, 3);
    }

    #[test]
    fn counter_ring_rotates_but_summary_integrates_all() {
        let mut t = Tracer::new(TraceConfig {
            enabled: true,
            counter_capacity: 2,
            ..TraceConfig::default()
        });
        for (i, v) in [5u64, 1, 9, 3].into_iter().enumerate() {
            t.sample(i as u64, [v; CounterKind::COUNT]);
        }
        assert_eq!(t.samples_taken(), 4);
        let s = t.summaries()[0];
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
        assert_eq!(s.sum, 18);
        assert_eq!(s.samples, 4);
        assert!((s.mean() - 4.5).abs() < 1e-12);
        let data = t.take();
        // Only the newest two samples survive the ring.
        assert_eq!(data.samples.len(), 2);
        assert_eq!(data.samples[0].values[0], 9);
        assert_eq!(data.samples[1].values[0], 3);
    }

    #[test]
    fn sample_interval_gates_should_sample() {
        let t = Tracer::new(TraceConfig {
            enabled: true,
            sample_interval: 8,
            ..TraceConfig::default()
        });
        assert!(t.should_sample(0));
        assert!(!t.should_sample(7));
        assert!(t.should_sample(16));
    }

    #[test]
    fn tracer_codec_resumes_recording_mid_run() {
        let cfg = TraceConfig {
            enabled: true,
            sample_interval: 4,
            max_events: 8,
            counter_capacity: 2,
        };
        let mut t = Tracer::new(cfg);
        for c in 0..6 {
            t.record(ev(c));
        }
        t.record(TraceEvent {
            cycle: 6,
            site: TraceSite::Gpu,
            kind: EventKind::Checkpoint { bytes: 0 },
        });
        for (i, v) in [5u64, 1, 9].into_iter().enumerate() {
            t.sample(i as u64 * 4, [v; CounterKind::COUNT]);
        }

        let mut e = gpu_snapshot::Encoder::new();
        t.encode_state(&mut e);
        let framed = e.finish();

        let mut restored = Tracer::new(TraceConfig::default());
        let mut d = gpu_snapshot::Decoder::open(&framed).unwrap();
        restored.restore_state(&mut d).unwrap();
        d.expect_end().unwrap();

        // Re-encode equality.
        let mut e2 = gpu_snapshot::Encoder::new();
        restored.encode_state(&mut e2);
        assert_eq!(e2.finish(), framed);

        // Both tracers continue identically: fill to the cap, sample once
        // more, then compare everything they hand back.
        for tr in [&mut t, &mut restored] {
            for c in 7..12 {
                tr.record(ev(c));
            }
            tr.sample(12, [2; CounterKind::COUNT]);
        }
        assert_eq!(restored.events_recorded(), t.events_recorded());
        assert_eq!(restored.events_dropped(), t.events_dropped());
        assert_eq!(restored.samples_taken(), t.samples_taken());
        assert_eq!(restored.summaries(), t.summaries());
        let (a, b) = (t.take(), restored.take());
        assert_eq!(a.events, b.events);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.dropped_events, b.dropped_events);
    }

    #[test]
    fn tracer_restore_rejects_over_cap_buffers() {
        let mut t = Tracer::new(TraceConfig {
            enabled: true,
            max_events: 4,
            ..TraceConfig::default()
        });
        for c in 0..3 {
            t.record(ev(c));
        }
        let mut e = gpu_snapshot::Encoder::new();
        t.encode_state(&mut e);
        let good = e.finish();

        // Corrupt the payload: claiming more events than max_events must be
        // rejected. Easier to re-encode a lying stream than to patch bytes
        // (the checksum would catch a patch).
        let mut e = gpu_snapshot::Encoder::new();
        e.bool(true);
        e.u64(64);
        e.usize(2); // max_events
        e.usize(1 << 16);
        e.usize(3); // ...but three events follow
        let framed = e.finish();
        let mut d = gpu_snapshot::Decoder::open(&framed).unwrap();
        let mut fresh = Tracer::new(TraceConfig::default());
        assert!(matches!(
            fresh.restore_state(&mut d),
            Err(gpu_snapshot::SnapshotError::InvalidValue(_))
        ));

        // The untampered stream restores fine.
        let mut d = gpu_snapshot::Decoder::open(&good).unwrap();
        fresh.restore_state(&mut d).unwrap();
        d.expect_end().unwrap();
        assert_eq!(fresh.events_recorded(), 3);
    }

    #[test]
    fn counter_kind_indices_cover_all() {
        for (i, k) in CounterKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }
}
