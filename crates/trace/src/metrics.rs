//! Run-level metrics attached to the simulator's `RunSummary`.
//!
//! Everything in here is integer-valued and `Copy` so the report composes
//! into the summary's `Eq`/`Default` derives: determinism tests can still
//! compare whole summaries after normalising the one wall-clock field.

use std::time::Duration;

use crate::event::StallBreakdown;
use crate::tracer::{CounterKind, CounterSummary, Tracer};

/// Counter summaries, stall attribution and host-side throughput for one
/// simulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsReport {
    /// Host wall-clock spent inside the cycle loop, in nanoseconds. The
    /// only non-deterministic field — normalise it before comparing
    /// summaries for run-identity.
    pub host_nanos: u64,
    /// Counter samples integrated.
    pub samples: u64,
    /// Per-counter min/max/sum/count over the sampled run, indexed by
    /// [`CounterKind::index`].
    pub counters: [CounterSummary; CounterKind::COUNT],
    /// GPU-wide stall cycles by reason (summed over SMs).
    pub stalls: StallBreakdown,
    /// Events recorded and retained by the tracer.
    pub events_recorded: u64,
    /// Events dropped at the tracer's cap.
    pub events_dropped: u64,
}

/// The workspace's one simulated-cycles-per-host-second implementation.
///
/// **Zero-wall-clock contract:** a run that recorded no host time
/// (`host_nanos == 0` — e.g. a summary restored from a snapshot taken
/// before any ticking, or a normalised `--stable` report) has *no*
/// throughput, and this returns exactly `0.0` rather than an infinity or a
/// NaN. Every throughput figure in the workspace — `MetricsReport`,
/// `RunSummary::cycles_per_second`, the bench bins' stdout and their
/// `BENCH_*.json` artifacts — funnels through here, pinned by a shared
/// cross-crate test.
pub fn cycles_per_second(cycles: u64, host_nanos: u64) -> f64 {
    if host_nanos == 0 {
        0.0
    } else {
        cycles as f64 * 1e9 / host_nanos as f64
    }
}

impl MetricsReport {
    /// Simulated cycles per host second (0.0 when no wall-clock elapsed —
    /// see [`cycles_per_second`] for the contract).
    pub fn cycles_per_second(&self, cycles: u64) -> f64 {
        cycles_per_second(cycles, self.host_nanos)
    }

    /// Host wall-clock as a `Duration`.
    pub fn wall_clock(&self) -> Duration {
        Duration::from_nanos(self.host_nanos)
    }

    /// Summary for one counter.
    pub fn counter(&self, kind: CounterKind) -> CounterSummary {
        self.counters[kind.index()]
    }

    /// Fills the tracer-derived fields (counter summaries, sample/event
    /// counts) from the live tracer, leaving `host_nanos` and `stalls` to
    /// the caller.
    pub fn capture_from(&mut self, tracer: &Tracer) {
        self.samples = tracer.samples_taken();
        self.counters = *tracer.summaries();
        self.events_recorded = tracer.events_recorded();
        self.events_dropped = tracer.events_dropped();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::TraceConfig;

    #[test]
    fn throughput_handles_zero_wall_clock() {
        let m = MetricsReport::default();
        assert_eq!(m.cycles_per_second(1_000_000), 0.0);
        let m = MetricsReport {
            host_nanos: 1_000_000_000,
            ..MetricsReport::default()
        };
        assert!((m.cycles_per_second(2_000_000) - 2_000_000.0).abs() < 1e-6);
        assert_eq!(m.wall_clock(), Duration::from_secs(1));
    }

    /// The zero-wall-clock contract of the workspace's single
    /// `cycles_per_second` implementation: exactly 0.0 (never inf/NaN) at
    /// `host_nanos == 0`, finite and exact elsewhere — including the
    /// cycles-without-time corner (`0 / t`) and u64-range inputs.
    #[test]
    fn cycles_per_second_contract() {
        assert_eq!(cycles_per_second(0, 0), 0.0);
        assert_eq!(cycles_per_second(u64::MAX, 0), 0.0);
        assert!(cycles_per_second(u64::MAX, 0).is_finite());
        assert_eq!(cycles_per_second(0, 1_000_000_000), 0.0);
        assert_eq!(cycles_per_second(3_000, 1_000_000_000), 3_000.0);
        // Sub-second runs scale up, not down.
        assert_eq!(cycles_per_second(500, 500_000_000), 1_000.0);
        assert!(cycles_per_second(u64::MAX, 1).is_finite());
    }

    #[test]
    fn capture_pulls_tracer_state() {
        let mut t = Tracer::new(TraceConfig {
            enabled: true,
            ..TraceConfig::default()
        });
        t.sample(0, [3; CounterKind::COUNT]);
        t.sample(64, [5; CounterKind::COUNT]);
        let mut m = MetricsReport::default();
        m.capture_from(&t);
        assert_eq!(m.samples, 2);
        assert_eq!(m.counter(CounterKind::Outstanding).max, 5);
        assert_eq!(m.counter(CounterKind::Outstanding).sum, 8);
    }
}
