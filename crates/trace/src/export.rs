//! Scripting-friendly exporters: one JSON object per line for events, CSV
//! for counter samples. Both are plain-text sidecars of the Chrome trace so
//! ad-hoc analysis does not need a trace viewer.

use crate::event::{EventKind, TraceEvent, TraceSite};
use crate::json;
use crate::tracer::{CounterKind, CounterSample};

fn site_fields(out: &mut String, site: TraceSite) {
    match site {
        TraceSite::Sm(i) => out.push_str(&format!("\"site\":\"sm\",\"index\":{i}")),
        TraceSite::Partition(i) => out.push_str(&format!("\"site\":\"partition\",\"index\":{i}")),
        TraceSite::Gpu => out.push_str("\"site\":\"gpu\",\"index\":0"),
    }
}

/// Serialises events as JSONL: one compact object per line with `cycle`,
/// `site`, `index`, `kind` and the payload fields flattened in.
pub fn events_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&format!("{{\"cycle\":{},", ev.cycle));
        site_fields(&mut out, ev.site);
        out.push_str(",\"kind\":");
        json::escape_into(&mut out, ev.kind.name());
        match ev.kind {
            EventKind::Stall { reason } => {
                out.push_str(",\"reason\":");
                json::escape_into(&mut out, reason.name());
            }
            EventKind::Coalesce {
                warp,
                accesses,
                lines,
            } => {
                out.push_str(&format!(
                    ",\"warp\":{warp},\"accesses\":{accesses},\"lines\":{lines}"
                ));
            }
            EventKind::MshrAllocate { line } | EventKind::MshrMerge { line } => {
                out.push_str(&format!(",\"line\":{line}"));
            }
            EventKind::MshrFill { line, waiters } => {
                out.push_str(&format!(",\"line\":{line},\"waiters\":{waiters}"));
            }
            EventKind::IcntInject { net, req, port } | EventKind::IcntEject { net, req, port } => {
                out.push_str(",\"net\":");
                json::escape_into(&mut out, net.name());
                out.push_str(&format!(",\"req\":{req},\"port\":{port}"));
            }
            EventKind::QueueEnter { queue, req } | EventKind::QueueLeave { queue, req } => {
                out.push_str(",\"queue\":");
                json::escape_into(&mut out, queue.name());
                out.push_str(&format!(",\"req\":{req}"));
            }
            EventKind::RowActivate { bank, row } | EventKind::RowPrecharge { bank, row } => {
                out.push_str(&format!(",\"bank\":{bank},\"row\":{row}"));
            }
            EventKind::Checkpoint { bytes } => {
                out.push_str(&format!(",\"bytes\":{bytes}"));
            }
            EventKind::CacheHit { key } => {
                out.push_str(&format!(",\"key\":{key}"));
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Serialises counter samples as CSV: a `cycle` column followed by one
/// column per counter, in [`CounterKind::ALL`] order.
pub fn counters_csv(samples: &[CounterSample]) -> String {
    let mut out = String::from("cycle");
    for kind in CounterKind::ALL {
        out.push(',');
        out.push_str(kind.name());
    }
    out.push('\n');
    for s in samples {
        out.push_str(&s.cycle.to_string());
        for v in s.values {
            out.push(',');
            out.push_str(&v.to_string());
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{QueueKind, StallReason};
    use crate::json;

    #[test]
    fn jsonl_lines_parse_individually() {
        let events = [
            TraceEvent {
                cycle: 10,
                site: TraceSite::Sm(2),
                kind: EventKind::Stall {
                    reason: StallReason::Scoreboard,
                },
            },
            TraceEvent {
                cycle: 11,
                site: TraceSite::Partition(1),
                kind: EventKind::QueueEnter {
                    queue: QueueKind::L2Input,
                    req: 44,
                },
            },
        ];
        let text = events_jsonl(&events);
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let v = json::parse(lines[0]).unwrap();
        assert_eq!(v.get("cycle").unwrap().as_num(), Some(10.0));
        assert_eq!(v.get("site").unwrap().as_str(), Some("sm"));
        assert_eq!(v.get("reason").unwrap().as_str(), Some("scoreboard"));
        let v = json::parse(lines[1]).unwrap();
        assert_eq!(v.get("queue").unwrap().as_str(), Some("l2_input"));
        assert_eq!(v.get("req").unwrap().as_num(), Some(44.0));
    }

    #[test]
    fn csv_has_header_and_full_rows() {
        let samples = [CounterSample {
            cycle: 128,
            values: [7; CounterKind::COUNT],
        }];
        let text = counters_csv(&samples);
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("cycle,l1_mshr,"));
        assert_eq!(header.split(',').count(), 1 + CounterKind::COUNT);
        let row = lines.next().unwrap();
        assert_eq!(row.split(',').count(), 1 + CounterKind::COUNT);
        assert!(row.starts_with("128,7,"));
    }
}
