//! Scripting-friendly exporters: one JSON object per line for events, CSV
//! for counter samples. Both are plain-text sidecars of the Chrome trace so
//! ad-hoc analysis does not need a trace viewer.

use crate::event::{EventKind, TraceEvent, TraceSite};
use crate::json;
use crate::tracer::{CounterKind, CounterSample};

fn site_fields(out: &mut String, site: TraceSite) {
    match site {
        TraceSite::Sm(i) => out.push_str(&format!("\"site\":\"sm\",\"index\":{i}")),
        TraceSite::Partition(i) => out.push_str(&format!("\"site\":\"partition\",\"index\":{i}")),
        TraceSite::Gpu => out.push_str("\"site\":\"gpu\",\"index\":0"),
    }
}

/// Serialises events as JSONL: one compact object per line with `cycle`,
/// `site`, `index`, `kind` and the payload fields flattened in.
pub fn events_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&format!("{{\"cycle\":{},", ev.cycle));
        site_fields(&mut out, ev.site);
        out.push_str(",\"kind\":");
        json::escape_into(&mut out, ev.kind.name());
        match ev.kind {
            EventKind::Stall { reason } => {
                out.push_str(",\"reason\":");
                json::escape_into(&mut out, reason.name());
            }
            EventKind::Coalesce {
                warp,
                accesses,
                lines,
            } => {
                out.push_str(&format!(
                    ",\"warp\":{warp},\"accesses\":{accesses},\"lines\":{lines}"
                ));
            }
            EventKind::MshrAllocate { line } | EventKind::MshrMerge { line } => {
                out.push_str(&format!(",\"line\":{line}"));
            }
            EventKind::MshrFill { line, waiters } => {
                out.push_str(&format!(",\"line\":{line},\"waiters\":{waiters}"));
            }
            EventKind::IcntInject { net, req, port } | EventKind::IcntEject { net, req, port } => {
                out.push_str(",\"net\":");
                json::escape_into(&mut out, net.name());
                out.push_str(&format!(",\"req\":{req},\"port\":{port}"));
            }
            EventKind::QueueEnter { queue, req } | EventKind::QueueLeave { queue, req } => {
                out.push_str(",\"queue\":");
                json::escape_into(&mut out, queue.name());
                out.push_str(&format!(",\"req\":{req}"));
            }
            EventKind::RowActivate { bank, row } | EventKind::RowPrecharge { bank, row } => {
                out.push_str(&format!(",\"bank\":{bank},\"row\":{row}"));
            }
            EventKind::Checkpoint { bytes } => {
                out.push_str(&format!(",\"bytes\":{bytes}"));
            }
            EventKind::CacheHit { key } => {
                out.push_str(&format!(",\"key\":{key}"));
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Serialises counter samples as CSV: a `cycle` column followed by one
/// column per counter, in [`CounterKind::ALL`] order.
pub fn counters_csv(samples: &[CounterSample]) -> String {
    let mut out = String::from("cycle");
    for kind in CounterKind::ALL {
        out.push(',');
        out.push_str(kind.name());
    }
    out.push('\n');
    for s in samples {
        out.push_str(&s.cycle.to_string());
        for v in s.values {
            out.push(',');
            out.push_str(&v.to_string());
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{QueueKind, StallReason};
    use crate::json;

    #[test]
    fn jsonl_lines_parse_individually() {
        let events = [
            TraceEvent {
                cycle: 10,
                site: TraceSite::Sm(2),
                kind: EventKind::Stall {
                    reason: StallReason::Scoreboard,
                },
            },
            TraceEvent {
                cycle: 11,
                site: TraceSite::Partition(1),
                kind: EventKind::QueueEnter {
                    queue: QueueKind::L2Input,
                    req: 44,
                },
            },
        ];
        let text = events_jsonl(&events);
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let v = json::parse(lines[0]).unwrap();
        assert_eq!(v.get("cycle").unwrap().as_num(), Some(10.0));
        assert_eq!(v.get("site").unwrap().as_str(), Some("sm"));
        assert_eq!(v.get("reason").unwrap().as_str(), Some("scoreboard"));
        let v = json::parse(lines[1]).unwrap();
        assert_eq!(v.get("queue").unwrap().as_str(), Some("l2_input"));
        assert_eq!(v.get("req").unwrap().as_num(), Some(44.0));
    }

    /// One event per [`EventKind`] variant, exercising every payload shape.
    fn one_event_per_kind() -> Vec<TraceEvent> {
        use crate::event::NetDir;
        vec![
            TraceEvent {
                cycle: 1,
                site: TraceSite::Sm(3),
                kind: EventKind::Stall {
                    reason: StallReason::MshrFull,
                },
            },
            TraceEvent {
                cycle: 2,
                site: TraceSite::Sm(0),
                kind: EventKind::Coalesce {
                    warp: 5,
                    accesses: 32,
                    lines: 4,
                },
            },
            TraceEvent {
                cycle: 3,
                site: TraceSite::Sm(1),
                kind: EventKind::MshrAllocate { line: 0x00de_ad00 },
            },
            TraceEvent {
                cycle: 4,
                site: TraceSite::Sm(1),
                kind: EventKind::MshrMerge { line: 0x00de_ad00 },
            },
            TraceEvent {
                cycle: 5,
                site: TraceSite::Sm(1),
                kind: EventKind::MshrFill {
                    line: 0x00de_ad00,
                    waiters: 7,
                },
            },
            TraceEvent {
                cycle: 6,
                site: TraceSite::Gpu,
                kind: EventKind::IcntInject {
                    net: NetDir::Request,
                    req: 9,
                    port: 2,
                },
            },
            TraceEvent {
                cycle: 7,
                site: TraceSite::Gpu,
                kind: EventKind::IcntEject {
                    net: NetDir::Reply,
                    req: 9,
                    port: 0,
                },
            },
            TraceEvent {
                cycle: 8,
                site: TraceSite::Partition(2),
                kind: EventKind::QueueEnter {
                    queue: QueueKind::DramController,
                    req: 11,
                },
            },
            TraceEvent {
                cycle: 9,
                site: TraceSite::Partition(2),
                kind: EventKind::QueueLeave {
                    queue: QueueKind::Rop,
                    req: 11,
                },
            },
            TraceEvent {
                cycle: 10,
                site: TraceSite::Partition(0),
                kind: EventKind::RowActivate { bank: 1, row: 42 },
            },
            TraceEvent {
                cycle: 11,
                site: TraceSite::Partition(0),
                kind: EventKind::RowPrecharge { bank: 1, row: 42 },
            },
            TraceEvent {
                cycle: 12,
                site: TraceSite::Gpu,
                kind: EventKind::Checkpoint { bytes: 4096 },
            },
            TraceEvent {
                cycle: 13,
                site: TraceSite::Gpu,
                kind: EventKind::CacheHit { key: 77 },
            },
        ]
    }

    fn num(v: &json::Value, key: &str) -> u64 {
        v.get(key)
            .unwrap_or_else(|| panic!("missing {key}"))
            .as_num()
            .unwrap_or_else(|| panic!("{key} not a number")) as u64
    }

    fn text<'a>(v: &'a json::Value, key: &str) -> &'a str {
        v.get(key)
            .unwrap_or_else(|| panic!("missing {key}"))
            .as_str()
            .unwrap_or_else(|| panic!("{key} not a string"))
    }

    /// Every variant's JSONL line re-parses through `gpu_trace::json` with
    /// every payload field equal to the source event's — catching both a
    /// broken serializer and a field silently dropped from one arm.
    #[test]
    fn jsonl_round_trips_every_event_kind() {
        let events = one_event_per_kind();
        let serialized = events_jsonl(&events);
        let lines: Vec<_> = serialized.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, ev) in lines.iter().zip(&events) {
            let v = json::parse(line).unwrap_or_else(|e| panic!("bad line {line}: {e}"));
            assert_eq!(num(&v, "cycle"), ev.cycle);
            let (site, index) = match ev.site {
                TraceSite::Sm(i) => ("sm", u64::from(i)),
                TraceSite::Partition(i) => ("partition", u64::from(i)),
                TraceSite::Gpu => ("gpu", 0),
            };
            assert_eq!(text(&v, "site"), site);
            assert_eq!(num(&v, "index"), index);
            assert_eq!(text(&v, "kind"), ev.kind.name());
            match ev.kind {
                EventKind::Stall { reason } => assert_eq!(text(&v, "reason"), reason.name()),
                EventKind::Coalesce {
                    warp,
                    accesses,
                    lines,
                } => {
                    assert_eq!(num(&v, "warp"), u64::from(warp));
                    assert_eq!(num(&v, "accesses"), u64::from(accesses));
                    assert_eq!(num(&v, "lines"), u64::from(lines));
                }
                EventKind::MshrAllocate { line } | EventKind::MshrMerge { line } => {
                    assert_eq!(num(&v, "line"), line);
                }
                EventKind::MshrFill { line, waiters } => {
                    assert_eq!(num(&v, "line"), line);
                    assert_eq!(num(&v, "waiters"), u64::from(waiters));
                }
                EventKind::IcntInject { net, req, port }
                | EventKind::IcntEject { net, req, port } => {
                    assert_eq!(text(&v, "net"), net.name());
                    assert_eq!(num(&v, "req"), req);
                    assert_eq!(num(&v, "port"), u64::from(port));
                }
                EventKind::QueueEnter { queue, req } | EventKind::QueueLeave { queue, req } => {
                    assert_eq!(text(&v, "queue"), queue.name());
                    assert_eq!(num(&v, "req"), req);
                }
                EventKind::RowActivate { bank, row } | EventKind::RowPrecharge { bank, row } => {
                    assert_eq!(num(&v, "bank"), u64::from(bank));
                    assert_eq!(num(&v, "row"), row);
                }
                EventKind::Checkpoint { bytes } => assert_eq!(num(&v, "bytes"), bytes),
                EventKind::CacheHit { key } => assert_eq!(num(&v, "key"), key),
            }
        }
    }

    /// CSV rows re-parse to exactly the sampled values, column for column,
    /// with the header naming every counter in table order.
    #[test]
    fn csv_round_trips_field_for_field() {
        let mut values = [0u64; CounterKind::COUNT];
        for (i, v) in values.iter_mut().enumerate() {
            *v = (i as u64 + 1) * 3;
        }
        let samples = [
            CounterSample { cycle: 64, values },
            CounterSample {
                cycle: 128,
                values: values.map(|v| v * 10),
            },
        ];
        let serialized = counters_csv(&samples);
        let mut lines = serialized.lines();
        let header: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(header[0], "cycle");
        for (i, kind) in CounterKind::ALL.iter().enumerate() {
            assert_eq!(header[i + 1], kind.name());
        }
        for (line, sample) in lines.zip(&samples) {
            let cols: Vec<u64> = line.split(',').map(|c| c.parse().unwrap()).collect();
            assert_eq!(cols[0], sample.cycle);
            assert_eq!(&cols[1..], sample.values.as_slice());
        }
    }

    /// The escaping edge cases: quotes, backslashes, the named control
    /// escapes, `\uXXXX` controls and non-ASCII survive a full
    /// escape → parse round trip unchanged.
    #[test]
    fn escaping_survives_a_json_round_trip() {
        let nasty = "quote \" backslash \\ newline \n cr \r tab \t nul-ish \u{1} snow ☃";
        let mut serialized = String::new();
        json::escape_into(&mut serialized, nasty);
        assert!(serialized.contains("\\u0001"), "{serialized}");
        let v = json::parse(&serialized).expect("escaped string parses");
        assert_eq!(v.as_str(), Some(nasty));
    }

    #[test]
    fn csv_has_header_and_full_rows() {
        let samples = [CounterSample {
            cycle: 128,
            values: [7; CounterKind::COUNT],
        }];
        let text = counters_csv(&samples);
        let mut lines = text.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("cycle,l1_mshr,"));
        assert_eq!(header.split(',').count(), 1 + CounterKind::COUNT);
        let row = lines.next().unwrap();
        assert_eq!(row.split(',').count(), 1 + CounterKind::COUNT);
        assert!(row.starts_with("128,7,"));
    }
}
