//! `gpu-profile` — the simulator's host-side self-observability layer.
//!
//! The paper's methodology is instrumentation-first: GPGPU-Sim was profiled
//! until every fetch's latency was attributable. This module gives the
//! *simulator itself* the same treatment: a process-global, hierarchical
//! scoped profiler over the host monotonic clock, answering "where does
//! host wall-clock go?" across the tick schedule, the parallel executors
//! and the bench harness.
//!
//! # Design
//!
//! Every instrumentation site is a variant of a fixed enum ([`ProfSpan`]
//! for timed scopes, [`ProfCounter`] for event counts and gauges) backed by
//! a static table of atomics. Consequences:
//!
//! * **Zero-cost when off.** Every entry point loads one relaxed atomic
//!   bool and returns; no clock read, no allocation, no branch beyond the
//!   gate (pinned by `tests/profile_no_alloc.rs` with a counting
//!   allocator).
//! * **Allocation-free when on.** Recording a span or bumping a counter is
//!   two relaxed atomic adds; worker threads accumulate into the same
//!   table without locks. Only the bounded sample ring (for host-clock
//!   Perfetto tracks) takes a mutex, on a rate-limited path.
//! * **Simulation-invisible.** The profiler observes host time only; it
//!   never reads or writes simulated state, so `RunSummary` and
//!   `content_hash` are bit-identical with profiling on or off (pinned by
//!   `tests/profile_observability.rs`).
//!
//! # Clock domains
//!
//! Span totals and samples are *host* nanoseconds from
//! [`std::time::Instant`]; the simulator's own tracer records *simulated
//! cycles*. The two meet only in the exported Perfetto bundle, where
//! host-clock tracks live on their own process and are never compared
//! against cycle timestamps.
//!
//! # Hierarchy
//!
//! Spans form a static tree via [`ProfSpan::parent`]: the `run` span holds
//! the nine tick-schedule stages, `tick_sms` holds the five parallel-phase
//! spans and the per-SM component span, and so on. Parallel-phase component
//! spans are summed across worker threads, so a child's total can exceed
//! its parent's wall-clock on multi-core hosts — the tree is attribution,
//! not a strict timeline.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json;

/// Environment variable that switches the self-profiler on (`1`, `true`,
/// `on`; anything else, or unset, leaves it off).
pub const PROFILE_ENV: &str = "LATENCY_PROFILE";

/// A timed instrumentation site. The set is fixed at compile time so the
/// backing store is a static table of atomics — no allocation, no
/// registration, no locks on the hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfSpan {
    /// The whole cycle loop of one `Gpu::run` (or `run_checkpointed`).
    Run,
    /// The per-cycle grid-drained check inside the run loop.
    DrainCheck,
    /// `TickStage::BeginNetworks`.
    BeginNetworks,
    /// `TickStage::TickPartitions`.
    TickPartitions,
    /// `TickStage::InjectReplies`.
    InjectReplies,
    /// `TickStage::EjectRequests`.
    EjectRequests,
    /// `TickStage::TickSms`.
    TickSms,
    /// `TickStage::DispatchCtas`.
    DispatchCtas,
    /// `TickStage::AuditInvariants` (scheduled on sanitizing machines).
    AuditInvariants,
    /// `TickStage::SampleCounters`.
    SampleCounters,
    /// `TickStage::AdvanceClock`.
    AdvanceClock,
    /// Parallel `TickSms` phase 1: writeback + reply ejection + memory.
    SmsWriteback,
    /// Parallel `TickSms` phase 2: serial miss injection.
    SmsMissInject,
    /// Parallel `TickSms` phase 3: parallel issue with deferred device ops.
    SmsIssue,
    /// Parallel `TickSms` phase 4: serial deferred-op replay.
    SmsReplay,
    /// Parallel `TickSms` phase 5: serial index-ordered scratch merge.
    SmsMerge,
    /// Parallel `TickPartitions`: the fan-out across partitions.
    PartitionsFanout,
    /// Parallel `TickPartitions`: the serial index-ordered merge.
    PartitionsMerge,
    /// One SM's share of a `TickSms` stage (summed over SMs and, in
    /// parallel mode, over worker threads).
    SmTick,
    /// One partition's share of a `TickPartitions` stage.
    PartitionTick,
    /// One crossbar network's `begin_cycle`.
    CrossbarTick,
    /// Tick-pool workers executing claimed component indices.
    PoolWorkerBusy,
    /// Tick-pool workers spinning / yielding / sleeping between jobs.
    PoolWorkerIdle,
    /// Grid-pool workers executing experiment points (`par_map`).
    GridWorkerBusy,
}

impl ProfSpan {
    /// Every span, in table order.
    pub const ALL: [ProfSpan; 24] = [
        ProfSpan::Run,
        ProfSpan::DrainCheck,
        ProfSpan::BeginNetworks,
        ProfSpan::TickPartitions,
        ProfSpan::InjectReplies,
        ProfSpan::EjectRequests,
        ProfSpan::TickSms,
        ProfSpan::DispatchCtas,
        ProfSpan::AuditInvariants,
        ProfSpan::SampleCounters,
        ProfSpan::AdvanceClock,
        ProfSpan::SmsWriteback,
        ProfSpan::SmsMissInject,
        ProfSpan::SmsIssue,
        ProfSpan::SmsReplay,
        ProfSpan::SmsMerge,
        ProfSpan::PartitionsFanout,
        ProfSpan::PartitionsMerge,
        ProfSpan::SmTick,
        ProfSpan::PartitionTick,
        ProfSpan::CrossbarTick,
        ProfSpan::PoolWorkerBusy,
        ProfSpan::PoolWorkerIdle,
        ProfSpan::GridWorkerBusy,
    ];

    /// Number of spans.
    pub const COUNT: usize = Self::ALL.len();

    /// The nine tick-schedule stage spans, in schedule order. Their totals
    /// tile the cycle loop: `tick()` stamps the clock once between stages,
    /// so consecutive deltas sum to the loop body with no metering gaps.
    pub const STAGES: [ProfSpan; 9] = [
        ProfSpan::BeginNetworks,
        ProfSpan::TickPartitions,
        ProfSpan::InjectReplies,
        ProfSpan::EjectRequests,
        ProfSpan::TickSms,
        ProfSpan::DispatchCtas,
        ProfSpan::AuditInvariants,
        ProfSpan::SampleCounters,
        ProfSpan::AdvanceClock,
    ];

    /// Index into the static span table.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short machine-readable name (JSON keys, Perfetto track names).
    pub const fn label(self) -> &'static str {
        match self {
            ProfSpan::Run => "run",
            ProfSpan::DrainCheck => "drain_check",
            ProfSpan::BeginNetworks => "begin_networks",
            ProfSpan::TickPartitions => "tick_partitions",
            ProfSpan::InjectReplies => "inject_replies",
            ProfSpan::EjectRequests => "eject_requests",
            ProfSpan::TickSms => "tick_sms",
            ProfSpan::DispatchCtas => "dispatch_ctas",
            ProfSpan::AuditInvariants => "audit_invariants",
            ProfSpan::SampleCounters => "sample_counters",
            ProfSpan::AdvanceClock => "advance_clock",
            ProfSpan::SmsWriteback => "writeback",
            ProfSpan::SmsMissInject => "miss_inject",
            ProfSpan::SmsIssue => "issue",
            ProfSpan::SmsReplay => "replay",
            ProfSpan::SmsMerge => "merge",
            ProfSpan::PartitionsFanout => "fanout",
            ProfSpan::PartitionsMerge => "merge",
            ProfSpan::SmTick => "sm_tick",
            ProfSpan::PartitionTick => "partition_tick",
            ProfSpan::CrossbarTick => "crossbar_tick",
            ProfSpan::PoolWorkerBusy => "pool_worker_busy",
            ProfSpan::PoolWorkerIdle => "pool_worker_idle",
            ProfSpan::GridWorkerBusy => "grid_worker_busy",
        }
    }

    /// The span's parent in the attribution tree (`None` for roots: the
    /// run loop itself and the cross-cutting worker-thread spans).
    pub const fn parent(self) -> Option<ProfSpan> {
        match self {
            ProfSpan::Run
            | ProfSpan::PoolWorkerBusy
            | ProfSpan::PoolWorkerIdle
            | ProfSpan::GridWorkerBusy => None,
            ProfSpan::DrainCheck
            | ProfSpan::BeginNetworks
            | ProfSpan::TickPartitions
            | ProfSpan::InjectReplies
            | ProfSpan::EjectRequests
            | ProfSpan::TickSms
            | ProfSpan::DispatchCtas
            | ProfSpan::AuditInvariants
            | ProfSpan::SampleCounters
            | ProfSpan::AdvanceClock => Some(ProfSpan::Run),
            ProfSpan::SmsWriteback
            | ProfSpan::SmsMissInject
            | ProfSpan::SmsIssue
            | ProfSpan::SmsReplay
            | ProfSpan::SmsMerge
            | ProfSpan::SmTick => Some(ProfSpan::TickSms),
            ProfSpan::PartitionsFanout | ProfSpan::PartitionsMerge | ProfSpan::PartitionTick => {
                Some(ProfSpan::TickPartitions)
            }
            ProfSpan::CrossbarTick => Some(ProfSpan::BeginNetworks),
        }
    }

    /// The `/`-joined label path from the root (e.g. `run/tick_sms/issue`).
    pub fn path(self) -> String {
        match self.parent() {
            None => self.label().to_string(),
            Some(p) => format!("{}/{}", p.path(), self.label()),
        }
    }
}

/// A counted instrumentation site: monotonic event counts plus a few
/// last-write-wins gauges (marked in the variant docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfCounter {
    /// Jobs the tick pool fanned out (one per parallel stage per cycle).
    PoolJobs,
    /// `notify_all` wakeups the tick pool issued to sleeping workers.
    PoolNotifies,
    /// Times a tick-pool worker gave up spinning and went to sleep.
    PoolSleeps,
    /// Experiment points executed by the grid pool (`par_map`).
    GridTasks,
    /// Simulated cycles ticked while profiling was enabled.
    CyclesTicked,
    /// Gauge: the GPU's outstanding-request counter at the last sample.
    Outstanding,
}

impl ProfCounter {
    /// Every counter, in table order.
    pub const ALL: [ProfCounter; 6] = [
        ProfCounter::PoolJobs,
        ProfCounter::PoolNotifies,
        ProfCounter::PoolSleeps,
        ProfCounter::GridTasks,
        ProfCounter::CyclesTicked,
        ProfCounter::Outstanding,
    ];

    /// Number of counters.
    pub const COUNT: usize = Self::ALL.len();

    /// Index into the static counter table.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Short machine-readable name (JSON keys, Perfetto track names).
    pub const fn label(self) -> &'static str {
        match self {
            ProfCounter::PoolJobs => "pool_jobs",
            ProfCounter::PoolNotifies => "pool_notifies",
            ProfCounter::PoolSleeps => "pool_sleeps",
            ProfCounter::GridTasks => "grid_tasks",
            ProfCounter::CyclesTicked => "cycles_ticked",
            ProfCounter::Outstanding => "outstanding",
        }
    }
}

struct SpanCell {
    count: AtomicU64,
    nanos: AtomicU64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SPANS: [SpanCell; ProfSpan::COUNT] = [const {
    SpanCell {
        count: AtomicU64::new(0),
        nanos: AtomicU64::new(0),
    }
}; ProfSpan::COUNT];
static COUNTERS: [AtomicU64; ProfCounter::COUNT] =
    [const { AtomicU64::new(0) }; ProfCounter::COUNT];
/// Host nanoseconds (since `START`) of the newest sample; gates the
/// rate-limited sampling path without taking the ring mutex. `u64::MAX`
/// means "no sample yet" so the first call always samples.
static LAST_SAMPLE: AtomicU64 = AtomicU64::new(u64::MAX);
static START: Mutex<Option<Instant>> = Mutex::new(None);
static SAMPLES: Mutex<SampleRing> = Mutex::new(SampleRing {
    samples: Vec::new(),
    dropped: 0,
});

/// Bound on retained samples: at the default 10 ms sampling gap this covers
/// a ~40-second run; longer runs keep the earliest window and count drops.
const SAMPLE_CAP: usize = 4096;

struct SampleRing {
    samples: Vec<ProfSample>,
    dropped: u64,
}

/// One host-clock snapshot of the cumulative span and counter tables, taken
/// on the rate-limited sampling path (see [`sample_at_interval`]). Exported
/// as Perfetto counter tracks: per-interval deltas of `span_nanos` show
/// where host time went over host time.
#[derive(Debug, Clone)]
pub struct ProfSample {
    /// Host nanoseconds since profiling was enabled.
    pub host_nanos: u64,
    /// Cumulative span nanoseconds, indexed by [`ProfSpan::index`].
    pub span_nanos: [u64; ProfSpan::COUNT],
    /// Counter values, indexed by [`ProfCounter::index`].
    pub counters: [u64; ProfCounter::COUNT],
}

/// Whether the self-profiler is currently recording. One relaxed load —
/// this is the whole cost of every instrumentation site when profiling is
/// off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Switches the self-profiler on or off. Enabling (re)bases the host clock
/// for samples if no base exists yet; accumulated totals are kept — call
/// [`reset`] for a fresh measurement window.
pub fn set_enabled(on: bool) {
    if on {
        let mut start = START.lock().expect("profiler start lock");
        if start.is_none() {
            *start = Some(Instant::now());
        }
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Reads [`PROFILE_ENV`]: `1`, `true` or `on` request profiling.
pub fn env_requested() -> bool {
    matches!(
        std::env::var(PROFILE_ENV).as_deref().map(str::trim),
        Ok("1") | Ok("true") | Ok("on")
    )
}

/// Clears every span total, counter, and retained sample, and re-bases the
/// host clock. The enabled flag is left as is.
pub fn reset() {
    for cell in &SPANS {
        cell.count.store(0, Ordering::Relaxed);
        cell.nanos.store(0, Ordering::Relaxed);
    }
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    LAST_SAMPLE.store(u64::MAX, Ordering::Relaxed);
    {
        let mut ring = SAMPLES.lock().expect("profiler sample lock");
        ring.samples.clear();
        ring.dropped = 0;
    }
    let mut start = START.lock().expect("profiler start lock");
    *start = Some(Instant::now());
}

/// A scope guard returned by [`span`]: records the elapsed host time into
/// its site's total on drop. Inert (no clock read ever happens) when the
/// profiler was disabled at creation.
#[derive(Debug)]
#[must_use = "a span guard measures until it is dropped"]
pub struct SpanGuard {
    site: ProfSpan,
    start: Option<Instant>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            span_add(self.site, t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Opens a timed scope at `site`. When profiling is off this is one atomic
/// load and a stack write — no clock read, no allocation.
#[inline]
pub fn span(site: ProfSpan) -> SpanGuard {
    SpanGuard {
        site,
        start: enabled().then(Instant::now),
    }
}

/// Adds one occurrence of `nanos` host time to `site` (the manual form of
/// [`span`], for worker threads that batch their own clock reads). No-op
/// when profiling is off.
#[inline]
pub fn span_add(site: ProfSpan, nanos: u64) {
    if !enabled() {
        return;
    }
    let cell = &SPANS[site.index()];
    cell.count.fetch_add(1, Ordering::Relaxed);
    cell.nanos.fetch_add(nanos, Ordering::Relaxed);
}

/// Adds `n` to a counter. No-op when profiling is off.
#[inline]
pub fn add(counter: ProfCounter, n: u64) {
    if !enabled() {
        return;
    }
    COUNTERS[counter.index()].fetch_add(n, Ordering::Relaxed);
}

/// Stores `v` into a gauge-style counter. No-op when profiling is off.
#[inline]
pub fn set(counter: ProfCounter, v: u64) {
    if !enabled() {
        return;
    }
    COUNTERS[counter.index()].store(v, Ordering::Relaxed);
}

/// Reads a counter's current value (works whether or not profiling is on;
/// the progress heartbeat polls this from its own thread).
pub fn value(counter: ProfCounter) -> u64 {
    COUNTERS[counter.index()].load(Ordering::Relaxed)
}

/// Host nanoseconds since profiling was first enabled (0 before that).
pub fn elapsed_nanos() -> u64 {
    START
        .lock()
        .expect("profiler start lock")
        .map_or(0, |t0| t0.elapsed().as_nanos() as u64)
}

/// Takes a host-clock sample of the cumulative tables if at least
/// `min_gap_nanos` have passed since the previous one. Cheap to call every
/// cycle: the off path is one atomic load, the rate-limited path one clock
/// read and one atomic compare. Samples beyond the retention cap are
/// dropped (and counted) rather than evicting history.
pub fn sample_at_interval(min_gap_nanos: u64) {
    if !enabled() {
        return;
    }
    let now = elapsed_nanos();
    let last = LAST_SAMPLE.load(Ordering::Relaxed);
    if last != u64::MAX && now < last.saturating_add(min_gap_nanos) {
        return;
    }
    if LAST_SAMPLE
        .compare_exchange(last, now, Ordering::Relaxed, Ordering::Relaxed)
        .is_err()
    {
        return; // another thread raced us to this interval
    }
    let mut span_nanos = [0u64; ProfSpan::COUNT];
    for (i, cell) in SPANS.iter().enumerate() {
        span_nanos[i] = cell.nanos.load(Ordering::Relaxed);
    }
    let mut counters = [0u64; ProfCounter::COUNT];
    for (i, c) in COUNTERS.iter().enumerate() {
        counters[i] = c.load(Ordering::Relaxed);
    }
    let mut ring = SAMPLES.lock().expect("profiler sample lock");
    if ring.samples.len() >= SAMPLE_CAP {
        ring.dropped += 1;
        return;
    }
    ring.samples.push(ProfSample {
        host_nanos: now,
        span_nanos,
        counters,
    });
}

/// One span's aggregate in a [`ProfileReport`].
#[derive(Debug, Clone, Copy)]
pub struct SpanStat {
    /// The instrumentation site.
    pub span: ProfSpan,
    /// Times the scope was entered.
    pub count: u64,
    /// Total host nanoseconds spent inside it.
    pub nanos: u64,
}

/// A snapshot of everything the profiler accumulated: span totals, counter
/// values, and the host-clock sample ring. Produced by [`report`];
/// rendered by [`ProfileReport::text`] (the `profile.txt` top-table) and
/// [`ProfileReport::json`] (`profile.json`), and consumed by the Chrome
/// trace builder for host-clock Perfetto tracks.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Host nanoseconds from enabling to this snapshot.
    pub total_nanos: u64,
    /// Aggregates for every span, in [`ProfSpan::ALL`] order.
    pub spans: Vec<SpanStat>,
    /// Counter values, in [`ProfCounter::ALL`] order.
    pub counters: [u64; ProfCounter::COUNT],
    /// The retained host-clock samples, oldest first.
    pub samples: Vec<ProfSample>,
    /// Samples dropped at the retention cap.
    pub samples_dropped: u64,
}

/// Snapshots the profiler's current state.
pub fn report() -> ProfileReport {
    let spans = ProfSpan::ALL
        .iter()
        .map(|&s| {
            let cell = &SPANS[s.index()];
            SpanStat {
                span: s,
                count: cell.count.load(Ordering::Relaxed),
                nanos: cell.nanos.load(Ordering::Relaxed),
            }
        })
        .collect();
    let mut counters = [0u64; ProfCounter::COUNT];
    for (i, c) in COUNTERS.iter().enumerate() {
        counters[i] = c.load(Ordering::Relaxed);
    }
    let (samples, samples_dropped) = {
        let ring = SAMPLES.lock().expect("profiler sample lock");
        (ring.samples.clone(), ring.dropped)
    };
    ProfileReport {
        total_nanos: elapsed_nanos(),
        spans,
        counters,
        samples,
        samples_dropped,
    }
}

impl ProfileReport {
    /// The aggregate for one span.
    pub fn span(&self, s: ProfSpan) -> SpanStat {
        self.spans[s.index()]
    }

    /// Total nanoseconds across the nine tick-schedule stage spans. The
    /// per-stage deltas are stamped back to back inside `Gpu::tick`, so
    /// this tiles the cycle-loop body (the gap to the `run` span is the
    /// drain check plus loop control).
    pub fn stage_nanos_sum(&self) -> u64 {
        ProfSpan::STAGES.iter().map(|&s| self.span(s).nanos).sum()
    }

    /// The value of one counter.
    pub fn counter(&self, c: ProfCounter) -> u64 {
        self.counters[c.index()]
    }

    /// Renders the `profile.txt` top-table: every entered span as one row
    /// (full path, count, total, mean, share of the `run` span), sorted by
    /// total descending, followed by the counters.
    pub fn text(&self) -> String {
        let run_nanos = self.span(ProfSpan::Run).nanos.max(1);
        let mut rows: Vec<&SpanStat> = self.spans.iter().filter(|s| s.count > 0).collect();
        rows.sort_by(|a, b| {
            b.nanos
                .cmp(&a.nanos)
                .then(a.span.index().cmp(&b.span.index()))
        });
        let mut out = String::new();
        out.push_str(&format!(
            "# gpu-profile: host-side self-observability ({:.3} s wall)\n",
            self.total_nanos as f64 / 1e9
        ));
        out.push_str(&format!(
            "{:<34} {:>12} {:>12} {:>11} {:>7}\n",
            "span", "count", "total_ms", "mean_us", "%run"
        ));
        for s in rows {
            out.push_str(&format!(
                "{:<34} {:>12} {:>12.3} {:>11.3} {:>6.1}%\n",
                s.span.path(),
                s.count,
                s.nanos as f64 / 1e6,
                s.nanos as f64 / 1e3 / s.count.max(1) as f64,
                s.nanos as f64 * 100.0 / run_nanos as f64,
            ));
        }
        out.push_str("\n[counters]\n");
        for c in ProfCounter::ALL {
            out.push_str(&format!("{} = {}\n", c.label(), self.counter(c)));
        }
        if self.samples_dropped > 0 {
            out.push_str(&format!(
                "\n# {} host-clock samples dropped at the retention cap\n",
                self.samples_dropped
            ));
        }
        out
    }

    /// Renders `profile.json`: machine-readable span totals (with paths and
    /// parents), counters, and sample metadata.
    pub fn json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"total_nanos\": {},\n", self.total_nanos));
        out.push_str("  \"spans\": [\n");
        let mut first = true;
        for s in &self.spans {
            if s.count == 0 {
                continue;
            }
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("    {\"path\": ");
            json::escape_into(&mut out, &s.span.path());
            out.push_str(", \"label\": ");
            json::escape_into(&mut out, s.span.label());
            match s.span.parent() {
                Some(p) => {
                    out.push_str(", \"parent\": ");
                    json::escape_into(&mut out, p.label());
                }
                None => out.push_str(", \"parent\": null"),
            }
            out.push_str(&format!(
                ", \"count\": {}, \"nanos\": {}}}",
                s.count, s.nanos
            ));
        }
        out.push_str("\n  ],\n");
        out.push_str("  \"counters\": {");
        for (i, c) in ProfCounter::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(c.label());
            out.push_str(&format!("\": {}", self.counter(*c)));
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "  \"samples_retained\": {},\n  \"samples_dropped\": {}\n}}\n",
            self.samples.len(),
            self.samples_dropped
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Profiler state is process-global; tests that toggle it serialize on
    /// this lock so the multi-threaded test runner cannot interleave them.
    static PROFILE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn span_table_is_consistent() {
        for (i, s) in ProfSpan::ALL.iter().enumerate() {
            assert_eq!(s.index(), i, "{s:?} out of table order");
            assert!(!s.label().is_empty());
            // The parent chain terminates (paths are finite).
            assert!(s.path().split('/').count() <= 3, "{s:?} path too deep");
        }
        for (i, c) in ProfCounter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c:?} out of table order");
        }
        for stage in ProfSpan::STAGES {
            assert_eq!(stage.parent(), Some(ProfSpan::Run));
        }
    }

    #[test]
    fn disabled_sites_record_nothing() {
        let _guard = PROFILE_LOCK.lock().unwrap();
        set_enabled(false);
        reset();
        {
            let _s = span(ProfSpan::TickSms);
            add(ProfCounter::PoolJobs, 5);
            set(ProfCounter::Outstanding, 9);
            span_add(ProfSpan::SmTick, 1000);
            sample_at_interval(0);
        }
        let r = report();
        assert_eq!(r.span(ProfSpan::TickSms).count, 0);
        assert_eq!(r.span(ProfSpan::SmTick).nanos, 0);
        assert_eq!(r.counter(ProfCounter::PoolJobs), 0);
        assert_eq!(r.counter(ProfCounter::Outstanding), 0);
        assert!(r.samples.is_empty());
    }

    #[test]
    fn enabled_spans_and_counters_accumulate_and_render() {
        let _guard = PROFILE_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        {
            let _s = span(ProfSpan::Run);
            for _ in 0..3 {
                let _t = span(ProfSpan::TickSms);
                std::hint::black_box(0u64);
            }
            span_add(ProfSpan::SmTick, 500);
            add(ProfCounter::CyclesTicked, 7);
            set(ProfCounter::Outstanding, 42);
            sample_at_interval(0);
        }
        let r = report();
        set_enabled(false);
        assert_eq!(r.span(ProfSpan::TickSms).count, 3);
        assert_eq!(r.span(ProfSpan::Run).count, 1);
        assert_eq!(r.span(ProfSpan::SmTick).nanos, 500);
        assert_eq!(r.counter(ProfCounter::CyclesTicked), 7);
        assert_eq!(r.counter(ProfCounter::Outstanding), 42);
        assert_eq!(r.samples.len(), 1);
        assert!(r.samples[0].counters[ProfCounter::Outstanding.index()] == 42);

        let text = r.text();
        assert!(text.contains("run/tick_sms"), "{text}");
        assert!(text.contains("cycles_ticked = 7"), "{text}");

        let parsed = json::parse(&r.json()).expect("profile.json parses");
        let spans = parsed.get("spans").unwrap().as_arr().unwrap();
        assert!(spans.iter().any(|s| {
            s.get("path").and_then(json::Value::as_str) == Some("run/tick_sms")
                && s.get("count").and_then(json::Value::as_num) == Some(3.0)
        }));
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("cycles_ticked")
                .unwrap()
                .as_num(),
            Some(7.0)
        );
    }

    #[test]
    fn sampling_is_rate_limited_and_capped() {
        let _guard = PROFILE_LOCK.lock().unwrap();
        set_enabled(true);
        reset();
        // A huge gap: only the first call samples.
        sample_at_interval(u64::MAX);
        sample_at_interval(u64::MAX);
        let r = report();
        set_enabled(false);
        assert_eq!(r.samples.len(), 1);
        assert_eq!(r.samples_dropped, 0);
    }

    #[test]
    fn env_parsing_matches_contract() {
        // No env mutation (other tests run concurrently): exercise the
        // matcher through documented values only.
        assert_eq!(PROFILE_ENV, "LATENCY_PROFILE");
    }
}
