//! # gpu-trace — observability layer for the GPU latency simulator
//!
//! The paper's dynamic analysis (Section III) is an observability exercise:
//! GPGPU-Sim instrumented to follow every memory fetch through the
//! pipeline. This crate generalises our simulator's fixed Figure-1/2
//! aggregations into a first-class tracing layer:
//!
//! * [`Tracer`] — a zero-cost-when-disabled event sink plus a per-cycle
//!   sampled counter registry with bounded ring-buffer storage;
//! * [`TraceEvent`]/[`EventKind`] — the event taxonomy (SM stalls with
//!   [`StallReason`] attribution, coalescer, MSHR transitions, crossbar
//!   hops, queue moves, DRAM row commands);
//! * [`MetricsReport`] — counter summaries, stall breakdowns and host
//!   throughput, embedded in the simulator's `RunSummary`;
//! * exporters — Chrome trace-event JSON for Perfetto
//!   ([`ChromeTraceBuilder`]), JSONL and CSV for scripting, and a
//!   [`check_span_sums`] validator that re-parses the emitted JSON with the
//!   built-in [`json`] parser and re-checks the sanitizer's stage-sum
//!   invariant on the exported spans;
//! * [`profile`] — the host-side self-profiler (`gpu-profile`): a
//!   zero-cost-when-off scoped profiler over the host monotonic clock that
//!   the simulator's cycle loop, parallel executors and bench harness
//!   report into, exported as `profile.txt`/`profile.json` and host-clock
//!   Perfetto tracks.
//!
//! The crate deliberately depends only on `gpu-types` and `gpu-mem` (for
//! `Timeline`): the simulator depends on *it*, not the other way around.

#![warn(missing_docs)]

pub mod chrome;
pub mod event;
pub mod export;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod tracer;

pub use chrome::{check_span_sums, stage_label, ChromeTraceBuilder, StageLabels, TrackNames};
pub use event::{EventKind, NetDir, QueueKind, StallBreakdown, StallReason, TraceEvent, TraceSite};
pub use export::{counters_csv, events_jsonl};
pub use metrics::{cycles_per_second, MetricsReport};
pub use profile::{ProfCounter, ProfSpan, ProfileReport};
pub use tracer::{CounterKind, CounterSample, CounterSummary, TraceConfig, TraceData, Tracer};
