use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in hot-clock cycles.
///
/// All latencies reported by this workspace are in the clock domain of the
/// execution hardware ("hot clock"), matching Table I of the paper.
///
/// `Cycle` is an absolute timestamp; durations are plain `u64`s obtained via
/// [`Cycle::since`] or subtraction of two `Cycle`s.
///
/// # Examples
///
/// ```
/// use gpu_types::Cycle;
///
/// let start = Cycle::new(100);
/// let end = start + 45;
/// assert_eq!(end - start, 45);
/// assert_eq!(end.since(start), 45);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycle(u64);

impl Cycle {
    /// The beginning of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a timestamp at the given absolute cycle count.
    #[inline]
    pub const fn new(cycle: u64) -> Self {
        Cycle(cycle)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the duration in cycles since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: Cycle) -> u64 {
        debug_assert!(
            earlier.0 <= self.0,
            "Cycle::since: earlier ({}) is after self ({})",
            earlier.0,
            self.0
        );
        self.0.wrapping_sub(earlier.0)
    }

    /// Returns the duration since `earlier`, or `None` if `earlier` is later.
    #[inline]
    pub fn checked_since(self, earlier: Cycle) -> Option<u64> {
        self.0.checked_sub(earlier.0)
    }

    /// Returns the duration since `earlier`, clamping to zero if `earlier`
    /// is later than `self`.
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Advances the timestamp by one cycle.
    #[inline]
    pub fn tick(&mut self) {
        self.0 += 1;
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = u64;

    /// Duration between two timestamps, in cycles.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.since(rhs)
    }
}

impl From<u64> for Cycle {
    fn from(cycle: u64) -> Self {
        Cycle(cycle)
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(Cycle::default(), Cycle::ZERO);
        assert_eq!(Cycle::ZERO.get(), 0);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = Cycle::new(17);
        let b = a + 25;
        assert_eq!(b.get(), 42);
        assert_eq!(b - a, 25);
        assert_eq!(b.since(a), 25);
    }

    #[test]
    fn checked_since_detects_order() {
        let a = Cycle::new(10);
        let b = Cycle::new(20);
        assert_eq!(b.checked_since(a), Some(10));
        assert_eq!(a.checked_since(b), None);
        assert_eq!(a.saturating_since(b), 0);
    }

    #[test]
    fn tick_advances_one() {
        let mut c = Cycle::new(7);
        c.tick();
        assert_eq!(c.get(), 8);
        c += 2;
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn ordering_follows_value() {
        assert!(Cycle::new(1) < Cycle::new(2));
        assert_eq!(Cycle::from(5u64), Cycle::new(5));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(3).to_string(), "cycle 3");
    }
}
