//! Hermetic pseudo-random number generation for the whole workspace.
//!
//! The workspace must build and test with **no network access and no
//! external crates**, so the small amount of randomness it needs — workload
//! generation, shuffled chase chains, randomized tests — comes from this
//! module instead of the `rand` crate. Two classic generators are provided:
//!
//! - [`SplitMix64`]: a tiny 64-bit state mixer. Used to expand a single
//!   `u64` seed into the larger state of other generators and as a
//!   throwaway stream for simple cases.
//! - [`Xoshiro256pp`] (xoshiro256++ 1.0, Blackman & Vigna): the workhorse
//!   generator. 256-bit state, 1.17·10⁷⁷ period, passes BigCrush; this is
//!   the same construction the `rand` crate's `SmallRng` family uses.
//!
//! Everything here is `core`-only (no_std-friendly), allocation-free and
//! fully deterministic: a given seed produces the same stream on every
//! platform, which is what makes the workspace's golden-value tests and
//! reproducible experiments possible.
//!
//! # Examples
//!
//! ```
//! use gpu_types::rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let a = rng.gen_range_u32(0, 100); // uniform in [0, 100)
//! assert!(a < 100);
//! let f = rng.gen_f64(); // uniform in [0, 1)
//! assert!((0.0..1.0).contains(&f));
//! // Same seed, same stream:
//! assert_eq!(Rng::seed_from_u64(7).next_u64(), Rng::seed_from_u64(7).next_u64());
//! ```

/// The default workspace generator: [`Xoshiro256pp`].
pub type Rng = Xoshiro256pp;

/// SplitMix64 (Steele, Lea & Flood): a 64-bit state avalanche mixer.
///
/// Weak on its own for statistics-heavy use, but ideal for turning one
/// `u64` seed into well-decorrelated words of seed material — its output
/// function is a bijection, so distinct seeds can never collapse onto the
/// same stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Every seed, including 0, is valid.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The raw generator state, for snapshot export. Feeding it back to
    /// [`SplitMix64::new`] resumes the stream exactly.
    #[must_use]
    pub fn state(&self) -> u64 {
        self.state
    }
}

/// xoshiro256++ 1.0: the workspace's general-purpose generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the 256-bit state from a single `u64` via [`SplitMix64`]
    /// expansion (the seeding procedure recommended by the xoshiro
    /// authors).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut mix = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
                mix.next_u64(),
            ],
        }
    }

    /// Constructs a generator from raw state.
    ///
    /// # Panics
    ///
    /// Panics if the state is all zeros (the one fixed point of the
    /// transition function).
    #[must_use]
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
        Xoshiro256pp { s }
    }

    /// The raw 256-bit state, for snapshot export. Feeding it back to
    /// [`Xoshiro256pp::from_state`] resumes the stream exactly.
    #[must_use]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of the 64-bit output, which has the
    /// better-mixed bits).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[lo, hi)` using Lemire's unbiased
    /// multiply-and-reject method.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range_u64 needs lo < hi, got {lo}..{hi}");
        let span = hi - lo;
        // Lemire 2018: draw x, take the high word of x*span; reject the few
        // low-word values that would make small spans slightly non-uniform.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform `u32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.gen_range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.gen_range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        let span = hi.checked_sub(lo).expect("range fits in i64") as u64;
        lo.wrapping_add(self.gen_range_u64(0, span) as i64)
    }

    /// Uniform `f64` in `[0, 1)` with the full 53 bits of mantissa
    /// resolution.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fair coin flip.
    pub fn gen_bool(&mut self) -> bool {
        // Top bit of the output word.
        self.next_u64() >> 63 == 1
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn gen_ratio(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Splits off an independent generator: the child is seeded from this
    /// stream's next output, re-expanded through [`SplitMix64`] so parent
    /// and child states share no words. Used to give each parallel worker
    /// or sub-experiment its own stream.
    pub fn fork(&mut self) -> Self {
        Xoshiro256pp::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_matches_reference_vectors() {
        // Reference outputs for seed 1234567 from the public-domain
        // splitmix64.c (Vigna).
        let mut g = SplitMix64::new(1234567);
        assert_eq!(g.next_u64(), 6457827717110365317);
        assert_eq!(g.next_u64(), 3203168211198807973);
        assert_eq!(g.next_u64(), 9817491932198370423);
    }

    #[test]
    fn xoshiro_streams_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut g = Xoshiro256pp::seed_from_u64(99);
            (0..32).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = Xoshiro256pp::seed_from_u64(99);
            (0..32).map(|_| g.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut g = Xoshiro256pp::seed_from_u64(100);
            (0..32).map(|_| g.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_ends() {
        let mut g = Xoshiro256pp::seed_from_u64(5);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..2000 {
            let v = g.gen_range_u64(10, 14);
            assert!((10..14).contains(&v));
            seen_lo |= v == 10;
            seen_hi |= v == 13;
        }
        assert!(seen_lo && seen_hi, "4-value range must hit both ends");
    }

    #[test]
    fn gen_range_i64_spans_negative_ranges() {
        let mut g = Xoshiro256pp::seed_from_u64(6);
        for _ in 0..500 {
            let v = g.gen_range_i64(-50, 50);
            assert!((-50..50).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn empty_range_rejected() {
        Xoshiro256pp::seed_from_u64(0).gen_range_u64(3, 3);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_state_rejected() {
        let _ = Xoshiro256pp::from_state([0; 4]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = Xoshiro256pp::seed_from_u64(11);
        let mut v: Vec<u32> = (0..100).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle of 100 elements should move something");
    }

    #[test]
    fn fork_produces_decorrelated_stream() {
        let mut parent = Xoshiro256pp::seed_from_u64(1);
        let mut child = parent.fork();
        let p: Vec<u64> = (0..16).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut g = Xoshiro256pp::seed_from_u64(21);
        for _ in 0..1000 {
            let f = g.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn exported_state_resumes_both_generators_exactly() {
        let mut g = Xoshiro256pp::seed_from_u64(99);
        for _ in 0..17 {
            g.next_u64();
        }
        let mut resumed = Xoshiro256pp::from_state(g.state());
        for _ in 0..100 {
            assert_eq!(g.next_u64(), resumed.next_u64());
        }

        let mut m = SplitMix64::new(5);
        m.next_u64();
        let mut resumed = SplitMix64::new(m.state());
        for _ in 0..100 {
            assert_eq!(m.next_u64(), resumed.next_u64());
        }
    }
}
