use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id with the given index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                $name(index)
            }

            /// Returns the raw index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw index as `u32`.
            #[inline]
            pub const fn get(self) -> u32 {
                self.0
            }
        }

        impl From<u32> for $name {
            fn from(index: u32) -> Self {
                $name(index)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// Identifies a streaming multiprocessor (SM) in the simulated GPU.
    SmId,
    "sm"
);

id_newtype!(
    /// Identifies a memory partition (an L2 slice plus its DRAM channel).
    PartitionId,
    "mp"
);

id_newtype!(
    /// Identifies a warp *slot* within one SM (not globally unique).
    WarpId,
    "w"
);

id_newtype!(
    /// Identifies a cooperative thread array (thread block) within a grid.
    CtaId,
    "cta"
);

id_newtype!(
    /// Identifies a thread within its CTA (linearized).
    ThreadId,
    "t"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let sm = SmId::new(3);
        assert_eq!(sm.index(), 3);
        assert_eq!(sm.get(), 3);
        assert_eq!(sm.to_string(), "sm3");
        assert_eq!(PartitionId::from(1).to_string(), "mp1");
        assert_eq!(WarpId::new(4).to_string(), "w4");
        assert_eq!(CtaId::new(9).to_string(), "cta9");
        assert_eq!(ThreadId::new(31).to_string(), "t31");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(SmId::new(0) < SmId::new(1));
        assert_eq!(WarpId::default(), WarpId::new(0));
    }
}
