use std::fmt;

/// A collection of raw `u64` samples (e.g. per-request latencies) that can be
/// summarized or partitioned into equal-width [`Buckets`].
///
/// The paper's Figures 1 and 2 classify dynamic memory requests into
/// equal-width latency ranges ("buckets"); [`Histogram::bucketize`] performs
/// that classification.
///
/// # Examples
///
/// ```
/// use gpu_types::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [3, 10, 40, 41, 78] {
///     h.record(v);
/// }
/// assert_eq!(h.len(), 5);
/// assert_eq!(h.min(), Some(3));
/// assert_eq!(h.max(), Some(78));
/// let buckets = h.bucketize(2);
/// assert_eq!(buckets.count(0) + buckets.count(1), 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    samples: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
    }

    /// Returns the number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Returns the smallest sample.
    pub fn min(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// Returns the largest sample.
    pub fn max(&self) -> Option<u64> {
        self.samples.iter().copied().max()
    }

    /// Returns the arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64)
        }
    }

    /// Returns the `q`-quantile (0.0 ≤ `q` ≤ 1.0) using nearest-rank on the
    /// sorted samples, or `None` if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be within [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// Returns a view of the raw samples.
    pub fn samples(&self) -> &[u64] {
        &self.samples
    }

    /// Partitions the sample range `[min, max]` into `n` equal-width buckets
    /// and counts samples per bucket, like the latency ranges on the x-axis
    /// of the paper's Figures 1 and 2.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn bucketize(&self, n: usize) -> Buckets {
        assert!(n > 0, "bucket count must be positive");
        let (min, max) = match (self.min(), self.max()) {
            (Some(min), Some(max)) => (min, max),
            _ => {
                return Buckets {
                    min: 0,
                    max: 0,
                    counts: vec![0; n],
                }
            }
        };
        let mut buckets = Buckets {
            min,
            max,
            counts: vec![0; n],
        };
        for &s in &self.samples {
            let idx = buckets.index_of(s).expect("sample within [min, max]");
            buckets.counts[idx] += 1;
        }
        buckets
    }
}

impl Extend<u64> for Histogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

impl FromIterator<u64> for Histogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Histogram {
            samples: iter.into_iter().collect(),
        }
    }
}

/// Equal-width bucketization of a sample range, produced by
/// [`Histogram::bucketize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Buckets {
    min: u64,
    max: u64,
    counts: Vec<u64>,
}

impl Buckets {
    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` if there are no buckets (never produced by
    /// [`Histogram::bucketize`], which requires `n > 0`).
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Returns the bucket index for a value, or `None` if outside
    /// `[min, max]`.
    pub fn index_of(&self, value: u64) -> Option<usize> {
        if value < self.min || value > self.max {
            return None;
        }
        // Largest `i` with `range(i).0 <= value`, derived so that it is exactly
        // consistent with the integer tiling used by `range`.
        let n = self.counts.len() as u128;
        let span = (self.max - self.min + 1) as u128;
        let d = (value - self.min) as u128;
        let idx = (((d + 1) * n - 1) / span) as usize;
        Some(idx.min(self.counts.len() - 1))
    }

    /// Returns the count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Returns the inclusive value range `[lo, hi]` covered by bucket `i`,
    /// matching the "lo-hi" labels on the paper's figure x-axes.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn range(&self, i: usize) -> (u64, u64) {
        assert!(i < self.counts.len(), "bucket index out of range");
        let n = self.counts.len() as u128;
        let span = (self.max - self.min + 1) as u128;
        let lo = self.min + (i as u128 * span / n) as u64;
        let hi = if i + 1 == self.counts.len() {
            self.max
        } else {
            self.min + ((i as u128 + 1) * span / n) as u64 - 1
        };
        (lo, hi)
    }

    /// Returns the label for bucket `i` in the paper's "lo-hi" style.
    pub fn label(&self, i: usize) -> String {
        let (lo, hi) = self.range(i);
        format!("{lo}-{hi}")
    }

    /// Iterates over `(range, count)` pairs from lowest to highest bucket.
    pub fn iter(&self) -> impl Iterator<Item = ((u64, u64), u64)> + '_ {
        (0..self.counts.len()).map(move |i| (self.range(i), self.counts[i]))
    }

    /// Total number of bucketed samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl fmt::Display for Buckets {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.counts.len() {
            writeln!(f, "{:>16}: {}", self.label(i), self.counts[i])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let h: Histogram = [5u64, 1, 9, 5].into_iter().collect();
        assert_eq!(h.len(), 4);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(9));
        assert_eq!(h.mean(), Some(5.0));
    }

    #[test]
    fn empty_histogram_stats() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let h: Histogram = (1..=100u64).collect();
        assert_eq!(h.quantile(0.0), Some(1));
        assert_eq!(h.quantile(0.5), Some(50));
        assert_eq!(h.quantile(0.99), Some(99));
        assert_eq!(h.quantile(1.0), Some(100));
    }

    #[test]
    fn bucketize_counts_everything_once() {
        let h: Histogram = (0..1000u64).collect();
        let b = h.bucketize(48);
        assert_eq!(b.len(), 48);
        assert_eq!(b.total(), 1000);
        // Buckets of an even spread are nearly equal.
        for i in 0..48 {
            let c = b.count(i);
            assert!((20..=22).contains(&c), "bucket {i} count {c}");
        }
    }

    #[test]
    fn bucket_ranges_tile_the_domain() {
        let h: Histogram = [3u64, 1806].into_iter().collect();
        let b = h.bucketize(48);
        let mut expected_lo = 3;
        for i in 0..b.len() {
            let (lo, hi) = b.range(i);
            assert_eq!(
                lo, expected_lo,
                "bucket {i} must start where previous ended"
            );
            assert!(hi >= lo);
            expected_lo = hi + 1;
        }
        assert_eq!(expected_lo, 1807);
    }

    #[test]
    fn index_of_is_consistent_with_range() {
        let h: Histogram = [10u64, 110].into_iter().collect();
        let b = h.bucketize(7);
        for v in 10..=110u64 {
            let i = b.index_of(v).unwrap();
            let (lo, hi) = b.range(i);
            assert!(
                v >= lo && v <= hi,
                "value {v} outside bucket {i} [{lo},{hi}]"
            );
        }
        assert_eq!(b.index_of(9), None);
        assert_eq!(b.index_of(111), None);
    }

    #[test]
    fn single_value_histogram_buckets() {
        let h: Histogram = [42u64, 42, 42].into_iter().collect();
        let b = h.bucketize(4);
        assert_eq!(b.total(), 3);
        // With span < n some buckets are degenerate; the chosen bucket must
        // still contain the value.
        let i = b.index_of(42).unwrap();
        let (lo, hi) = b.range(i);
        assert!(lo <= 42 && 42 <= hi);
        assert_eq!(b.count(i), 3);
    }

    #[test]
    fn labels_match_paper_style() {
        let h: Histogram = [0u64, 99].into_iter().collect();
        let b = h.bucketize(2);
        assert_eq!(b.label(0), "0-49");
        assert_eq!(b.label(1), "50-99");
        let display = b.to_string();
        assert!(display.contains("0-49"));
    }

    #[test]
    fn extend_adds_samples() {
        let mut h = Histogram::new();
        h.extend([1u64, 2, 3]);
        h.record(4);
        assert_eq!(h.samples(), &[1, 2, 3, 4]);
    }
}
