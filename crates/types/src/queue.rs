use std::collections::VecDeque;
use std::fmt;

use crate::Cycle;

/// Error returned when pushing into a full [`BoundedQueue`] or [`DelayQueue`].
///
/// Carries the rejected element back to the caller so it can be retried next
/// cycle — this is how back-pressure propagates upstream through the memory
/// pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushError<T>(pub T);

impl<T> PushError<T> {
    /// Returns the element that could not be enqueued.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> fmt::Display for PushError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "queue full")
    }
}

impl<T: fmt::Debug> std::error::Error for PushError<T> {}

/// A finite-capacity FIFO queue.
///
/// Every queue in the simulated memory pipeline (L1 miss queue, interconnect
/// ports, ROP queue, L2 queue, DRAM controller queue, return queues) is a
/// `BoundedQueue`. When a queue is full the producer must stall, which is the
/// mechanism by which *queueing latency* — one of the paper's two dominant
/// dynamic latency contributors — arises in the model.
///
/// # Examples
///
/// ```
/// use gpu_types::BoundedQueue;
///
/// let mut q = BoundedQueue::new(1);
/// q.push("req").unwrap();
/// let rejected = q.push("more").unwrap_err();
/// assert_eq!(rejected.into_inner(), "more");
/// assert_eq!(q.pop(), Some("req"));
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero; a zero-capacity queue could never
    /// transport anything and always indicates a configuration bug.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Attempts to enqueue `item`.
    ///
    /// # Errors
    ///
    /// Returns [`PushError`] carrying `item` back if the queue is full.
    pub fn push(&mut self, item: T) -> Result<(), PushError<T>> {
        if self.items.len() >= self.capacity {
            Err(PushError(item))
        } else {
            self.items.push_back(item);
            Ok(())
        }
    }

    /// Dequeues the oldest element, if any.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest element without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Returns the number of queued elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if no elements are queued.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns `true` if the queue cannot accept another element.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Returns the configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Returns remaining free slots.
    pub fn free(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// Iterates over queued elements from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }
}

/// A FIFO whose entries only become poppable a fixed number of cycles after
/// they were pushed.
///
/// This models fixed-latency pipeline segments — e.g. the raster-operations
/// (ROP) pipeline in front of the L2, or interconnect zero-load traversal —
/// while still being a finite resource (entries occupy a slot for their whole
/// transit, so a saturated segment back-pressures its producer).
///
/// # Examples
///
/// ```
/// use gpu_types::{Cycle, DelayQueue};
///
/// let mut q = DelayQueue::new(4, 10);
/// q.push(Cycle::new(100), "pkt").unwrap();
/// assert_eq!(q.pop_ready(Cycle::new(109)), None);       // still in flight
/// assert_eq!(q.pop_ready(Cycle::new(110)), Some("pkt")); // delay elapsed
/// ```
#[derive(Debug, Clone)]
pub struct DelayQueue<T> {
    items: VecDeque<(Cycle, T)>,
    capacity: usize,
    delay: u64,
}

impl<T> DelayQueue<T> {
    /// Creates a delay queue with the given slot `capacity` and fixed
    /// `delay` in cycles.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, delay: u64) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        DelayQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            delay,
        }
    }

    /// Attempts to enqueue `item` at time `now`; it becomes poppable at
    /// `now + delay`.
    ///
    /// # Errors
    ///
    /// Returns [`PushError`] carrying `item` back if all slots are occupied.
    pub fn push(&mut self, now: Cycle, item: T) -> Result<(), PushError<T>> {
        if self.items.len() >= self.capacity {
            Err(PushError(item))
        } else {
            self.items.push_back((now + self.delay, item));
            Ok(())
        }
    }

    /// Pops the oldest element whose delay has elapsed by `now`, preserving
    /// FIFO order (a ready element behind a not-yet-ready one stays queued).
    pub fn pop_ready(&mut self, now: Cycle) -> Option<T> {
        match self.items.front() {
            Some((ready_at, _)) if *ready_at <= now => self.items.pop_front().map(|(_, t)| t),
            _ => None,
        }
    }

    /// Peeks at the oldest element if its delay has elapsed by `now`.
    pub fn front_ready(&self, now: Cycle) -> Option<&T> {
        match self.items.front() {
            Some((ready_at, item)) if *ready_at <= now => Some(item),
            _ => None,
        }
    }

    /// Returns the number of in-flight elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if nothing is in flight.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns `true` if all slots are occupied.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Returns the configured fixed delay in cycles.
    pub fn delay(&self) -> u64 {
        self.delay
    }

    /// Returns the configured slot capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over in-flight entries from oldest to newest as
    /// `(ready_at, item)` pairs — the raw state a snapshot must capture to
    /// reconstruct the queue exactly.
    pub fn entries(&self) -> impl Iterator<Item = (Cycle, &T)> {
        self.items.iter().map(|(at, item)| (*at, item))
    }

    /// Enqueues `item` with an explicit absolute ready time, bypassing the
    /// `now + delay` computation. This exists for snapshot restore: entries
    /// must re-enter the queue with their original ready times, in their
    /// original order.
    ///
    /// # Errors
    ///
    /// Returns [`PushError`] carrying `item` back if all slots are occupied.
    pub fn push_with_ready_at(&mut self, ready_at: Cycle, item: T) -> Result<(), PushError<T>> {
        if self.items.len() >= self.capacity {
            Err(PushError(item))
        } else {
            self.items.push_back((ready_at, item));
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_fifo_order() {
        let mut q = BoundedQueue::new(3);
        for i in 0..3 {
            q.push(i).unwrap();
        }
        assert!(q.is_full());
        assert_eq!(q.push(99).unwrap_err().into_inner(), 99);
        assert_eq!(q.pop(), Some(0));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.free(), 2);
        q.push(3).unwrap();
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn bounded_front_and_iter() {
        let mut q = BoundedQueue::new(2);
        q.push('a').unwrap();
        q.push('b').unwrap();
        assert_eq!(q.front(), Some(&'a'));
        let collected: Vec<_> = q.iter().copied().collect();
        assert_eq!(collected, vec!['a', 'b']);
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn delay_queue_respects_delay() {
        let mut q = DelayQueue::new(2, 5);
        q.push(Cycle::new(0), 1).unwrap();
        q.push(Cycle::new(2), 2).unwrap();
        assert!(q.is_full());
        assert_eq!(q.pop_ready(Cycle::new(4)), None);
        assert_eq!(q.front_ready(Cycle::new(5)), Some(&1));
        assert_eq!(q.pop_ready(Cycle::new(5)), Some(1));
        // FIFO: item 2 ready at cycle 7.
        assert_eq!(q.pop_ready(Cycle::new(6)), None);
        assert_eq!(q.pop_ready(Cycle::new(7)), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn delay_queue_is_strictly_fifo() {
        // Even if a later push would be "ready" it cannot overtake the head.
        let mut q = DelayQueue::new(4, 10);
        q.push(Cycle::new(0), 'x').unwrap();
        q.push(Cycle::new(0), 'y').unwrap();
        assert_eq!(q.pop_ready(Cycle::new(10)), Some('x'));
        assert_eq!(q.pop_ready(Cycle::new(10)), Some('y'));
    }

    #[test]
    fn delay_queue_zero_delay_available_same_cycle() {
        let mut q = DelayQueue::new(1, 0);
        q.push(Cycle::new(3), 7u8).unwrap();
        assert_eq!(q.pop_ready(Cycle::new(3)), Some(7));
        assert_eq!(q.delay(), 0);
        assert_eq!(q.capacity(), 1);
    }

    #[test]
    fn delay_queue_state_round_trips_through_entries() {
        let mut q = DelayQueue::new(4, 10);
        q.push(Cycle::new(0), 'x').unwrap();
        q.push(Cycle::new(3), 'y').unwrap();
        let saved: Vec<(Cycle, char)> = q.entries().map(|(at, c)| (at, *c)).collect();
        assert_eq!(saved, vec![(Cycle::new(10), 'x'), (Cycle::new(13), 'y')]);

        let mut restored = DelayQueue::new(4, 10);
        for (at, c) in saved {
            restored.push_with_ready_at(at, c).unwrap();
        }
        assert_eq!(restored.pop_ready(Cycle::new(9)), None);
        assert_eq!(restored.pop_ready(Cycle::new(10)), Some('x'));
        assert_eq!(restored.pop_ready(Cycle::new(13)), Some('y'));
    }

    #[test]
    fn push_with_ready_at_respects_capacity() {
        let mut q = DelayQueue::new(1, 0);
        q.push_with_ready_at(Cycle::new(5), 1u8).unwrap();
        assert_eq!(
            q.push_with_ready_at(Cycle::new(5), 2u8)
                .unwrap_err()
                .into_inner(),
            2
        );
    }

    #[test]
    fn push_error_displays() {
        let e = PushError(());
        assert_eq!(e.to_string(), "queue full");
    }
}
