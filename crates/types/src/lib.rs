//! Common foundation types for the `gpu-latency` simulator workspace.
//!
//! This crate provides the small, dependency-free vocabulary shared by every
//! other crate in the workspace:
//!
//! - [`Cycle`]: a point in simulated time, measured in hot-clock cycles.
//! - [`Addr`]: a byte address in the simulated device memory space.
//! - id newtypes ([`SmId`], [`PartitionId`], [`WarpId`], …) that keep the
//!   many small integers in a GPU model from being mixed up.
//! - [`BoundedQueue`]: the finite FIFO from which all queueing latency in the
//!   memory pipeline emerges.
//! - [`DelayQueue`]: a FIFO whose entries only become visible after a fixed
//!   pipeline delay, used to model fixed-latency pipeline segments.
//! - [`Histogram`] and [`Buckets`]: sample collection and the equal-width
//!   latency bucketing used by the paper's Figures 1 and 2.
//! - [`rng`]: hermetic, seedable pseudo-random number generation
//!   (SplitMix64 + xoshiro256++) so the workspace needs no external `rand`
//!   dependency and builds fully offline.
//!
//! # Examples
//!
//! ```
//! use gpu_types::{Cycle, BoundedQueue};
//!
//! let mut q: BoundedQueue<u32> = BoundedQueue::new(2);
//! assert!(q.push(1).is_ok());
//! assert!(q.push(2).is_ok());
//! assert!(q.push(3).is_err()); // full: back-pressure, i.e. queueing latency
//! assert_eq!(q.pop(), Some(1));
//!
//! let t = Cycle::ZERO + 5;
//! assert_eq!(t.since(Cycle::ZERO), 5);
//! ```

mod addr;
mod cycle;
mod histogram;
mod ids;
mod queue;
pub mod rng;

pub use addr::Addr;
pub use cycle::Cycle;
pub use histogram::{Buckets, Histogram};
pub use ids::{CtaId, PartitionId, SmId, ThreadId, WarpId};
pub use queue::{BoundedQueue, DelayQueue, PushError};
pub use rng::{Rng, SplitMix64, Xoshiro256pp};
