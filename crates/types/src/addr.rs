use std::fmt;
use std::ops::{Add, Sub};

/// A byte address in the simulated device (global/local) memory space.
///
/// Addresses are 64-bit like on real GPUs; the simulator's allocator hands
/// out regions of this space and the memory pipeline routes requests by
/// address bits (partition interleaving, cache set index, DRAM bank/row).
///
/// # Examples
///
/// ```
/// use gpu_types::Addr;
///
/// let a = Addr::new(0x1234);
/// assert_eq!(a.align_down(128), Addr::new(0x1200));
/// assert_eq!(a.offset_in(128), 0x34);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// The null address. The simulator's allocator never hands out a region
    /// containing it, so kernels may use 0 as an "invalid pointer" sentinel.
    pub const NULL: Addr = Addr(0);

    /// Creates an address from a raw byte offset.
    #[inline]
    pub const fn new(addr: u64) -> Self {
        Addr(addr)
    }

    /// Returns the raw byte address.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Rounds the address down to a multiple of `align`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `align` is not a power of two.
    #[inline]
    pub fn align_down(self, align: u64) -> Addr {
        debug_assert!(align.is_power_of_two(), "alignment must be a power of two");
        Addr(self.0 & !(align - 1))
    }

    /// Rounds the address up to a multiple of `align`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `align` is not a power of two.
    #[inline]
    pub fn align_up(self, align: u64) -> Addr {
        debug_assert!(align.is_power_of_two(), "alignment must be a power of two");
        Addr(self.0.checked_add(align - 1).expect("address overflow") & !(align - 1))
    }

    /// Returns the byte offset of this address within its `align`-sized block.
    #[inline]
    pub fn offset_in(self, align: u64) -> u64 {
        debug_assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.0 & (align - 1)
    }

    /// Returns `true` if the address is a multiple of `align`.
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        self.offset_in(align) == 0
    }

    /// Extracts bits `[lo, hi)` of the address, a helper for address mapping
    /// (cache set index, DRAM bank/row decoding, partition interleaving).
    #[inline]
    pub fn bits(self, lo: u32, hi: u32) -> u64 {
        debug_assert!(lo <= hi && hi <= 64);
        if hi == lo {
            return 0;
        }
        let shifted = self.0 >> lo;
        if hi - lo >= 64 {
            shifted
        } else {
            shifted & ((1u64 << (hi - lo)) - 1)
        }
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    #[inline]
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl Sub for Addr {
    type Output = u64;

    /// Byte distance between two addresses.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`.
    #[inline]
    fn sub(self, rhs: Addr) -> u64 {
        debug_assert!(rhs.0 <= self.0, "address underflow");
        self.0 - rhs.0
    }
}

impl From<u64> for Addr {
    fn from(addr: u64) -> Self {
        Addr(addr)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_helpers() {
        let a = Addr::new(0x1234);
        assert_eq!(a.align_down(128).get(), 0x1200);
        assert_eq!(a.align_up(128).get(), 0x1280);
        assert_eq!(a.offset_in(128), 0x34);
        assert!(!a.is_aligned(128));
        assert!(Addr::new(0x1200).is_aligned(128));
    }

    #[test]
    fn align_of_aligned_address_is_identity() {
        let a = Addr::new(4096);
        assert_eq!(a.align_down(4096), a);
        assert_eq!(a.align_up(4096), a);
    }

    #[test]
    fn bit_extraction() {
        let a = Addr::new(0b1011_0110);
        assert_eq!(a.bits(1, 4), 0b011);
        assert_eq!(a.bits(4, 8), 0b1011);
        assert_eq!(a.bits(3, 3), 0);
        assert_eq!(Addr::new(u64::MAX).bits(0, 64), u64::MAX);
    }

    #[test]
    fn arithmetic() {
        let a = Addr::new(100);
        assert_eq!((a + 28).get(), 128);
        assert_eq!(Addr::new(128) - a, 28);
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
    }
}
