//! Property-based tests for the foundation types.

use gpu_types::{BoundedQueue, Cycle, DelayQueue, Histogram};
use proptest::prelude::*;
use std::collections::VecDeque;

proptest! {
    /// A BoundedQueue behaves exactly like a capacity-checked VecDeque.
    #[test]
    fn bounded_queue_matches_model(
        capacity in 1usize..16,
        ops in proptest::collection::vec(any::<Option<u8>>(), 0..200),
    ) {
        let mut queue = BoundedQueue::new(capacity);
        let mut model: VecDeque<u8> = VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    let accepted = queue.push(v).is_ok();
                    let model_accepts = model.len() < capacity;
                    prop_assert_eq!(accepted, model_accepts);
                    if accepted {
                        model.push_back(v);
                    }
                }
                None => {
                    prop_assert_eq!(queue.pop(), model.pop_front());
                }
            }
            prop_assert_eq!(queue.len(), model.len());
            prop_assert_eq!(queue.is_empty(), model.is_empty());
            prop_assert_eq!(queue.is_full(), model.len() == capacity);
            prop_assert_eq!(queue.front(), model.front());
        }
    }

    /// DelayQueue never releases an element before its delay has elapsed,
    /// and preserves FIFO order.
    #[test]
    fn delay_queue_respects_delay_and_order(
        delay in 0u64..50,
        pushes in proptest::collection::vec(0u64..100, 1..30),
    ) {
        let mut q = DelayQueue::new(64, delay);
        let mut sorted = pushes.clone();
        sorted.sort_unstable();
        for (i, &t) in sorted.iter().enumerate() {
            q.push(Cycle::new(t), i as u64).unwrap();
        }
        let mut now = 0u64;
        let mut popped = Vec::new();
        while popped.len() < sorted.len() {
            if let Some(v) = q.pop_ready(Cycle::new(now)) {
                let idx = v as usize;
                // Element pushed at sorted[idx] must not appear before
                // sorted[idx] + delay.
                prop_assert!(now >= sorted[idx] + delay);
                popped.push(v);
            } else {
                now += 1;
            }
            prop_assert!(now < 10_000, "runaway drain loop");
        }
        // FIFO: popped in push order.
        let expect: Vec<u64> = (0..sorted.len() as u64).collect();
        prop_assert_eq!(popped, expect);
    }

    /// Every sample lands in exactly one bucket and bucket ranges tile the
    /// sampled domain.
    #[test]
    fn bucketize_partitions_samples(
        samples in proptest::collection::vec(0u64..100_000, 1..300),
        n_buckets in 1usize..64,
    ) {
        let hist: Histogram = samples.iter().copied().collect();
        let buckets = hist.bucketize(n_buckets);
        prop_assert_eq!(buckets.total(), samples.len() as u64);
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        for &s in &samples {
            let i = buckets.index_of(s).expect("sample in range");
            let (lo, hi) = buckets.range(i);
            prop_assert!(lo <= s && s <= hi, "sample {} not in bucket {} [{},{}]", s, i, lo, hi);
        }
        // When the domain has at least one value per bucket, the minimum
        // lands in bucket 0 (degenerate narrower domains may collapse
        // buckets, in which case only containment is guaranteed).
        if max - min + 1 >= n_buckets as u64 {
            prop_assert_eq!(buckets.index_of(min), Some(0));
        }
        prop_assert!(buckets.index_of(min).is_some());
        prop_assert!(buckets.index_of(max).is_some());
        prop_assert_eq!(buckets.index_of(max.saturating_add(1)), None);
    }

    /// Quantiles are monotone and bounded by min/max.
    #[test]
    fn quantiles_are_monotone(
        samples in proptest::collection::vec(0u64..1_000_000, 1..200),
    ) {
        let hist: Histogram = samples.iter().copied().collect();
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        let mut last = min;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = hist.quantile(q).unwrap();
            prop_assert!(v >= last);
            prop_assert!(v >= min && v <= max);
            last = v;
        }
        prop_assert_eq!(hist.quantile(1.0), Some(max));
    }

    /// Cycle arithmetic: (a + d) - a == d.
    #[test]
    fn cycle_roundtrip(a in 0u64..u64::MAX / 2, d in 0u64..1_000_000) {
        let start = Cycle::new(a);
        let end = start + d;
        prop_assert_eq!(end - start, d);
        prop_assert_eq!(end.checked_since(start), Some(d));
        prop_assert_eq!(start.saturating_since(end), 0);
    }
}
