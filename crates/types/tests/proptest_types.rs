//! Randomized model-based tests for the foundation types, driven by the
//! workspace's hermetic [`gpu_types::rng`] (no external property-testing
//! dependency, so the suite runs fully offline). Each property replays a
//! fixed number of seeded cases; failures print the offending seed so the
//! case can be replayed exactly.

use gpu_types::rng::Rng;
use gpu_types::{BoundedQueue, Cycle, DelayQueue, Histogram};
use std::collections::VecDeque;

const CASES: u64 = 128;

/// A BoundedQueue behaves exactly like a capacity-checked VecDeque.
#[test]
fn bounded_queue_matches_model() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xB0_0000 + case);
        let capacity = rng.gen_range_usize(1, 16);
        let n_ops = rng.gen_range_usize(0, 200);
        let mut queue = BoundedQueue::new(capacity);
        let mut model: VecDeque<u8> = VecDeque::new();
        for _ in 0..n_ops {
            if rng.gen_bool() {
                let v = rng.next_u32() as u8;
                let accepted = queue.push(v).is_ok();
                let model_accepts = model.len() < capacity;
                assert_eq!(accepted, model_accepts, "case {case}");
                if accepted {
                    model.push_back(v);
                }
            } else {
                assert_eq!(queue.pop(), model.pop_front(), "case {case}");
            }
            assert_eq!(queue.len(), model.len(), "case {case}");
            assert_eq!(queue.is_empty(), model.is_empty(), "case {case}");
            assert_eq!(queue.is_full(), model.len() == capacity, "case {case}");
            assert_eq!(queue.front(), model.front(), "case {case}");
        }
    }
}

/// DelayQueue never releases an element before its delay has elapsed, and
/// preserves FIFO order.
#[test]
fn delay_queue_respects_delay_and_order() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xD0_0000 + case);
        let delay = rng.gen_range_u64(0, 50);
        let n_pushes = rng.gen_range_usize(1, 30);
        let mut sorted: Vec<u64> = (0..n_pushes).map(|_| rng.gen_range_u64(0, 100)).collect();
        sorted.sort_unstable();
        let mut q = DelayQueue::new(64, delay);
        for (i, &t) in sorted.iter().enumerate() {
            q.push(Cycle::new(t), i as u64).unwrap();
        }
        let mut now = 0u64;
        let mut popped = Vec::new();
        while popped.len() < sorted.len() {
            if let Some(v) = q.pop_ready(Cycle::new(now)) {
                let idx = v as usize;
                // Element pushed at sorted[idx] must not appear before
                // sorted[idx] + delay.
                assert!(now >= sorted[idx] + delay, "case {case}");
                popped.push(v);
            } else {
                now += 1;
            }
            assert!(now < 10_000, "case {case}: runaway drain loop");
        }
        // FIFO: popped in push order.
        let expect: Vec<u64> = (0..sorted.len() as u64).collect();
        assert_eq!(popped, expect, "case {case}");
    }
}

/// Every sample lands in exactly one bucket and bucket ranges tile the
/// sampled domain.
#[test]
fn bucketize_partitions_samples() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x0B_0000 + case);
        let n_samples = rng.gen_range_usize(1, 300);
        let samples: Vec<u64> = (0..n_samples)
            .map(|_| rng.gen_range_u64(0, 100_000))
            .collect();
        let n_buckets = rng.gen_range_usize(1, 64);
        let hist: Histogram = samples.iter().copied().collect();
        let buckets = hist.bucketize(n_buckets);
        assert_eq!(buckets.total(), samples.len() as u64, "case {case}");
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        for &s in &samples {
            let i = buckets.index_of(s).expect("sample in range");
            let (lo, hi) = buckets.range(i);
            assert!(
                lo <= s && s <= hi,
                "case {case}: sample {s} not in bucket {i} [{lo},{hi}]"
            );
        }
        // When the domain has at least one value per bucket, the minimum
        // lands in bucket 0 (degenerate narrower domains may collapse
        // buckets, in which case only containment is guaranteed).
        if max - min + 1 >= n_buckets as u64 {
            assert_eq!(buckets.index_of(min), Some(0), "case {case}");
        }
        assert!(buckets.index_of(min).is_some(), "case {case}");
        assert!(buckets.index_of(max).is_some(), "case {case}");
        assert_eq!(buckets.index_of(max.saturating_add(1)), None, "case {case}");
    }
}

/// Quantiles are monotone and bounded by min/max.
#[test]
fn quantiles_are_monotone() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x0A_0000 + case);
        let n_samples = rng.gen_range_usize(1, 200);
        let samples: Vec<u64> = (0..n_samples)
            .map(|_| rng.gen_range_u64(0, 1_000_000))
            .collect();
        let hist: Histogram = samples.iter().copied().collect();
        let min = *samples.iter().min().unwrap();
        let max = *samples.iter().max().unwrap();
        let mut last = min;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = hist.quantile(q).unwrap();
            assert!(v >= last, "case {case}");
            assert!(v >= min && v <= max, "case {case}");
            last = v;
        }
        assert_eq!(hist.quantile(1.0), Some(max), "case {case}");
    }
}

/// Cycle arithmetic: (a + d) - a == d.
#[test]
fn cycle_roundtrip() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xC0_0000 + case);
        let a = rng.gen_range_u64(0, u64::MAX / 2);
        let d = rng.gen_range_u64(0, 1_000_000);
        let start = Cycle::new(a);
        let end = start + d;
        assert_eq!(end - start, d, "case {case}");
        assert_eq!(end.checked_since(start), Some(d), "case {case}");
        assert_eq!(start.saturating_since(end), 0, "case {case}");
    }
}
