//! Statistical smoke tests for `gpu_types::rng`: the generator that
//! replaced the external `rand` dependency must be deterministic per seed,
//! produce decorrelated streams across seeds, and be uniform enough for
//! workload generation.

use gpu_types::rng::{Rng, SplitMix64};

#[test]
fn identical_seeds_produce_identical_streams() {
    for seed in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF] {
        let mut a = Rng::seed_from_u64(seed);
        let mut b = Rng::seed_from_u64(seed);
        for i in 0..256 {
            assert_eq!(a.next_u64(), b.next_u64(), "seed {seed} diverged at {i}");
        }
    }
}

#[test]
fn distinct_seeds_produce_distinct_streams() {
    // Adjacent seeds are the worst case for naive seeding; the SplitMix64
    // expansion must decorrelate them completely.
    let streams: Vec<Vec<u64>> = (0..16u64)
        .map(|seed| {
            let mut g = Rng::seed_from_u64(seed);
            (0..64).map(|_| g.next_u64()).collect()
        })
        .collect();
    for i in 0..streams.len() {
        for j in (i + 1)..streams.len() {
            let shared = streams[i].iter().filter(|v| streams[j].contains(v)).count();
            assert_eq!(shared, 0, "seeds {i} and {j} share {shared} of 64 outputs");
        }
    }
}

#[test]
fn gen_range_mean_and_variance_are_sane() {
    // Uniform on [0, n): mean = (n-1)/2, variance = (n^2 - 1)/12.
    let n = 1000u64;
    let draws = 200_000usize;
    let mut g = Rng::seed_from_u64(0x5EED);
    let samples: Vec<u64> = (0..draws).map(|_| g.gen_range_u64(0, n)).collect();
    let mean = samples.iter().sum::<u64>() as f64 / draws as f64;
    let expect_mean = (n - 1) as f64 / 2.0;
    let var = samples
        .iter()
        .map(|&s| (s as f64 - mean).powi(2))
        .sum::<f64>()
        / draws as f64;
    let expect_var = ((n * n - 1) as f64) / 12.0;
    // 200k draws: the sample mean's own std-dev is ~0.65, so a ±5 band is
    // already > 7 sigma; these bounds fail only on real bias.
    assert!(
        (mean - expect_mean).abs() < 5.0,
        "mean {mean} vs expected {expect_mean}"
    );
    assert!(
        (var / expect_var - 1.0).abs() < 0.02,
        "variance {var} vs expected {expect_var}"
    );
}

#[test]
fn gen_range_is_roughly_equidistributed() {
    // Chi-square-style sanity over 100 cells.
    let cells = 100u64;
    let per_cell = 2000u64;
    let mut counts = vec![0u64; cells as usize];
    let mut g = Rng::seed_from_u64(777);
    for _ in 0..cells * per_cell {
        counts[g.gen_range_u64(0, cells) as usize] += 1;
    }
    for (i, &c) in counts.iter().enumerate() {
        // Poisson-ish sigma = sqrt(2000) ≈ 45; allow ±5 sigma.
        assert!(
            (c as i64 - per_cell as i64).unsigned_abs() < 225,
            "cell {i} holds {c}, expected ~{per_cell}"
        );
    }
}

#[test]
fn gen_f64_mean_near_half() {
    let mut g = Rng::seed_from_u64(31337);
    let n = 100_000;
    let mean = (0..n).map(|_| g.gen_f64()).sum::<f64>() / n as f64;
    assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
}

#[test]
fn gen_bool_is_fair() {
    let mut g = Rng::seed_from_u64(4242);
    let n = 100_000;
    let heads = (0..n).filter(|_| g.gen_bool()).count();
    let frac = heads as f64 / n as f64;
    assert!((frac - 0.5).abs() < 0.01, "heads fraction {frac}");
}

#[test]
fn splitmix_is_a_bijection_on_small_sample() {
    // Distinct states must produce distinct outputs (output fn is invertible).
    let mut outs: Vec<u64> = (0..10_000u64)
        .map(|s| SplitMix64::new(s).next_u64())
        .collect();
    outs.sort_unstable();
    outs.dedup();
    assert_eq!(outs.len(), 10_000);
}

#[test]
fn golden_first_outputs_are_pinned() {
    // Cross-platform reproducibility contract: these exact values anchor
    // every seeded artifact in the workspace (graphs, matrices, shuffles).
    let mut g = Rng::seed_from_u64(20150301); // the BFS experiment seed
    let first: Vec<u64> = (0..4).map(|_| g.next_u64()).collect();
    assert_eq!(
        first,
        vec![
            8302859917470987098,
            10885936547706937428,
            12033230009467505430,
            7331581498344257092,
        ],
        "xoshiro256++ stream for the workspace seed changed"
    );
    // Pin the SplitMix64 expansion itself (reference vectors from the
    // public-domain splitmix64.c).
    let mut sm = SplitMix64::new(1234567);
    assert_eq!(sm.next_u64(), 6457827717110365317);
    assert_eq!(sm.next_u64(), 3203168211198807973);
}
