//! Round-trip and golden-rendering coverage for the diagnostics layer.
//!
//! The `lint` bin's `--json` and `--sarif` outputs are consumed by CI and
//! external SARIF viewers, so their shape is a contract: this suite
//! re-parses both through `gpu_trace::json::parse` (the workspace's own
//! JSON parser) and pins one golden human rendering per lint class.

use gpu_isa::{CmpOp, KernelBuilder, Space, Special, Width};
use gpu_trace::json::{parse, Value};
use latency_check::{analyze, to_sarif, AnalysisConfig, Diagnostic, Pass, Report, Severity};

/// A report exercising every severity, a kernel-level finding and every
/// JSON-hostile character class.
fn spiky_report() -> Report {
    let mut r = Report {
        kernel: "spiky \"kernel\"\n".into(),
        diagnostics: vec![
            Diagnostic::at(Severity::Error, Pass::UndefRead, 7, "read of \"r9\"\t(tab)"),
            Diagnostic::at(Severity::Warning, Pass::SharedRace, 3, "races with pc 4"),
            Diagnostic::at(Severity::Info, Pass::Coalescing, 1, "1 transaction\u{1}"),
            Diagnostic::kernel_level(Severity::Warning, Pass::Structure, "odd shape"),
        ],
    };
    r.dedup();
    r
}

#[test]
fn report_json_round_trips_through_the_workspace_parser() {
    let report = spiky_report();
    let parsed = parse(&report.to_json()).expect("lint --json output must be valid JSON");
    assert_eq!(
        parsed.get("kernel").and_then(Value::as_str),
        Some("spiky \"kernel\"\n")
    );
    assert_eq!(parsed.get("errors").and_then(Value::as_num), Some(1.0));
    assert_eq!(parsed.get("warnings").and_then(Value::as_num), Some(2.0));
    let diags = parsed
        .get("diagnostics")
        .and_then(Value::as_arr)
        .expect("diagnostics array");
    assert_eq!(diags.len(), report.diagnostics.len());
    // Every field of every diagnostic survives the trip, in order.
    for (d, j) in report.diagnostics.iter().zip(diags) {
        assert_eq!(
            j.get("severity").and_then(Value::as_str),
            Some(d.severity.name())
        );
        assert_eq!(j.get("pass").and_then(Value::as_str), Some(d.pass.name()));
        assert_eq!(
            j.get("pc").and_then(Value::as_num),
            d.pc.map(|pc| pc as f64)
        );
        match d.pc {
            Some(_) => {}
            None => assert_eq!(j.get("pc"), Some(&Value::Null)),
        }
        assert_eq!(
            j.get("message").and_then(Value::as_str),
            Some(d.message.as_str())
        );
    }
}

#[test]
fn sarif_round_trips_through_the_workspace_parser() {
    let sarif = to_sarif(&[spiky_report()]);
    let parsed = parse(&sarif).expect("SARIF output must be valid JSON");
    assert_eq!(parsed.get("version").and_then(Value::as_str), Some("2.1.0"));
    let runs = parsed.get("runs").and_then(Value::as_arr).expect("runs");
    let run = &runs[0];
    let rules = run
        .get("tool")
        .and_then(|t| t.get("driver"))
        .and_then(|d| d.get("rules"))
        .and_then(Value::as_arr)
        .expect("rules");
    assert_eq!(rules.len(), Pass::ALL.len(), "one rule per pass");
    let results = run.get("results").and_then(Value::as_arr).expect("results");
    assert_eq!(results.len(), 4);
    // Severity mapping: info -> note, kernel-level anchors line 1.
    let levels: Vec<&str> = results
        .iter()
        .filter_map(|r| r.get("level").and_then(Value::as_str))
        .collect();
    assert!(levels.contains(&"note") && levels.contains(&"warning") && levels.contains(&"error"));
    for r in results {
        let line = r
            .get("locations")
            .and_then(Value::as_arr)
            .and_then(|l| l[0].get("physicalLocation"))
            .and_then(|p| p.get("region"))
            .and_then(|reg| reg.get("startLine"))
            .and_then(Value::as_num)
            .expect("every result has a line");
        assert!(line >= 1.0, "SARIF lines are 1-based");
    }
}

#[test]
fn severity_ordering_gates_correctly() {
    assert!(Severity::Error > Severity::Warning);
    assert!(Severity::Warning > Severity::Info);
    // The `--deny` gate counts findings at Warning-or-worse; Info stays
    // advisory. Pin the boundary.
    let gated = |s: Severity| s >= Severity::Warning;
    assert!(!gated(Severity::Info));
    assert!(gated(Severity::Warning));
    assert!(gated(Severity::Error));
}

/// One golden human rendering per new lint class, produced through the
/// public `analyze` entry point on minimal kernels.
#[test]
fn golden_rendering_per_lint_class() {
    // Shared-memory race: thread t writes s[t] and s[t+1], no barrier.
    let mut b = KernelBuilder::new("racy");
    b.alloc_shared(256);
    let t = b.special(Special::TidX);
    let a0 = b.shl(t, 2);
    b.st(Space::Shared, Width::W4, a0, 0, 1i64);
    b.st(Space::Shared, Width::W4, a0, 4, 2i64);
    b.exit();
    let racy = analyze(&b.build().unwrap(), &AnalysisConfig::default());
    let race_line = racy
        .diagnostics
        .iter()
        .find(|d| d.pass == Pass::SharedRace)
        .expect("race fires")
        .to_string();
    assert_eq!(
        race_line,
        "warning [shared-race] at 3: shared-memory write/write race: this access overlaps \
         the shared access at pc 2 for threads -1 apart, with no barrier between them"
    );

    // Barrier under divergence.
    let mut b = KernelBuilder::new("divbar");
    let t = b.special(Special::TidX);
    let p = b.setp(CmpOp::Lt, t, 16i64);
    b.if_then(p, |b| b.bar());
    b.exit();
    let divbar = analyze(&b.build().unwrap(), &AnalysisConfig::default());
    let bar_line = divbar
        .diagnostics
        .iter()
        .find(|d| d.pass == Pass::BarrierDivergence)
        .expect("barrier lint fires")
        .to_string();
    assert_eq!(
        bar_line,
        "warning [barrier-divergence] at 3: bar.sync inside divergent control flow: a \
         lane-varying branch dominates this barrier, so a warp can reach it with only \
         part of its lanes"
    );

    // Coalescing prediction with exact transaction count.
    let mut b = KernelBuilder::new("strided");
    let base = b.param(0);
    let t = b.special(Special::GlobalTid);
    let off = b.mul(t, 128i64);
    let a = b.add(base, off);
    b.ld_global(Width::W4, a, 0);
    b.exit();
    let strided = analyze(&b.build().unwrap(), &AnalysisConfig::default());
    let coal_line = strided
        .diagnostics
        .iter()
        .find(|d| d.pass == Pass::Coalescing)
        .expect("coalescing note")
        .to_string();
    assert_eq!(
        coal_line,
        "warning [coalescing] at 4: global load: uncoalesced, stride 128 B, \
         32 transaction(s) per fully-active warp"
    );
}
