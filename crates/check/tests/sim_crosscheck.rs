//! Cross-checks the static coalescing prediction against the timing
//! model's actual transaction counts.
//!
//! The analyzer and the simulator share one coalescing routine
//! ([`gpu_sim::coalesce`]); these tests close the loop end-to-end: the
//! line counts the analyzer predicts from the abstract address pattern
//! must match the per-load transaction counts the simulator traces when
//! the kernel really runs on line-aligned buffers.

use gpu_isa::{KernelBuilder, Launch, Special, Width};
use gpu_sim::{Gpu, GpuConfig};
use latency_check::{analyze, AccessPattern, AnalysisConfig, Cfg, Severity};

fn small_config() -> GpuConfig {
    let mut cfg = GpuConfig::fermi_gf100();
    cfg.num_sms = 2;
    cfg
}

fn analysis_for(cfg: &GpuConfig) -> AnalysisConfig {
    AnalysisConfig {
        line_size: cfg.line_size,
        warp_size: cfg.warp_size,
        ..AnalysisConfig::default()
    }
}

#[test]
fn vecadd_prediction_matches_traced_lines() {
    let cfg = small_config();
    let analysis = analysis_for(&cfg);

    let kernel = gpu_workloads::vecadd::build_vecadd_kernel();
    let g = Cfg::build(&kernel);
    let predictions = latency_check::memlint::predict(&kernel, &g, &analysis);
    let load_lines: Vec<usize> = predictions
        .iter()
        .filter(|p| !p.is_store)
        .map(|p| p.lines_per_warp.expect("vecadd loads are affine"))
        .collect();
    assert_eq!(load_lines, vec![1, 1], "two fully-coalesced loads");

    // Run the same kernel; every traced load must coalesce to the
    // predicted single transaction (buffers are line-aligned and every
    // warp is fully active).
    let mut gpu = Gpu::new(cfg);
    let dev = gpu_workloads::vecadd::setup(&mut gpu, 1024);
    gpu.set_tracing(true);
    gpu_workloads::vecadd::run(&mut gpu, &dev, 256).unwrap();
    let (_, loads) = gpu.take_traces();
    assert!(!loads.is_empty());
    assert!(
        loads.iter().all(|l| l.lines == 1),
        "traced lines disagree with static prediction"
    );
}

#[test]
fn line_strided_load_prediction_matches_traced_lines() {
    let cfg = small_config();
    let analysis = analysis_for(&cfg);
    let line = cfg.line_size;

    // Each lane reads its own cache line: the fully-uncoalesced contrast.
    let mut b = KernelBuilder::new("strided");
    let base = b.param(0);
    let t = b.special(Special::GlobalTid);
    let off = b.mul(t, line as i64);
    let addr = b.add(base, off);
    let v = b.ld_global(Width::W4, addr, 0);
    let out = b.param(1);
    let off4 = b.shl(t, 2);
    let oaddr = b.add(out, off4);
    b.st_global(Width::W4, oaddr, 0, v);
    b.exit();
    let kernel = b.build().unwrap();

    let g = Cfg::build(&kernel);
    let predictions = latency_check::memlint::predict(&kernel, &g, &analysis);
    let strided = predictions.iter().find(|p| !p.is_store).unwrap();
    assert_eq!(
        strided.pattern,
        AccessPattern::Affine {
            stride: line as i64
        }
    );
    assert_eq!(strided.lines_per_warp, Some(cfg.warp_size as usize));
    let store = predictions.iter().find(|p| p.is_store).unwrap();
    assert_eq!(store.lines_per_warp, Some(1));

    let warps = 8u64;
    let n = warps * cfg.warp_size as u64;
    let mut gpu = Gpu::new(cfg.clone());
    let src = gpu.alloc(line * n, line);
    let dst = gpu.alloc(4 * n, line);
    for i in 0..n {
        gpu.device_mut().write_u32(src + line * i, i as u32);
    }
    gpu.set_tracing(true);
    gpu.launch(
        kernel,
        Launch::new(warps as u32, cfg.warp_size, vec![src.get(), dst.get()]),
    )
    .unwrap();
    gpu.run(100_000_000).unwrap();
    for i in 0..n {
        assert_eq!(gpu.device().read_u32(dst + 4 * i), i as u32);
    }

    let (_, loads) = gpu.take_traces();
    assert_eq!(loads.len() as u64, warps, "one traced load per warp");
    assert!(
        loads.iter().all(|l| l.lines == cfg.warp_size),
        "every warp's strided load must fan out to warp_size lines"
    );
}

#[test]
fn all_builtin_workload_kernels_lint_clean() {
    // The acceptance bar for the `lint` bin, asserted here as a test so a
    // regression fails CI even when the bin is not run.
    let analysis = AnalysisConfig::default();
    let kernels = [
        gpu_workloads::vecadd::build_vecadd_kernel(),
        gpu_workloads::matmul::build_matmul_kernel(),
        gpu_workloads::reduce::build_reduce_kernel(256),
        gpu_workloads::spmv::build_spmv_kernel(),
        gpu_workloads::stencil::build_stencil_kernel(),
        gpu_workloads::histogram::build_histogram_kernel(),
        gpu_workloads::transpose::build_transpose_kernel(gpu_workloads::transpose::Variant::Naive),
        gpu_workloads::transpose::build_transpose_kernel(gpu_workloads::transpose::Variant::Tiled),
        gpu_workloads::scan::build_scan_kernel(256),
        gpu_workloads::bfs::build_bfs_kernel(),
        gpu_workloads::bfs::build_bfs_mask_kernel1(),
        gpu_workloads::bfs::build_bfs_mask_kernel2(),
    ];
    for kernel in kernels {
        let report = analyze(&kernel, &analysis);
        assert!(
            report.is_clean(),
            "kernel '{}' has error diagnostics:\n{}",
            report.kernel,
            report.to_human()
        );
        assert_eq!(report.count(Severity::Error), 0);
    }
}
