//! Structured diagnostics emitted by the analyzer passes.
//!
//! A [`Diagnostic`] pins one finding to an instruction (by PC), names the
//! pass that produced it, and carries a severity so callers can gate on
//! "no errors" (the `lint` bin's exit code) while still surfacing advisory
//! information. [`Report`] renders a kernel's findings as either a human
//! listing or a line-oriented JSON document (hand-rolled: the workspace is
//! hermetic and carries no serialization dependency).

use std::fmt;

use gpu_isa::Pc;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: expected behavior worth knowing about (e.g. a predicted
    /// per-warp transaction count).
    Info,
    /// Suspicious but not certainly wrong (e.g. a dead write, a register
    /// that may be read before initialization on one path).
    Warning,
    /// Certainly wrong on every execution (e.g. a read of a register no
    /// path ever writes).
    Error,
}

impl Severity {
    /// Lowercase name used in both output formats.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The analyzer pass a diagnostic originated from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pass {
    /// Kernel-level structural validation ([`gpu_isa::Kernel::validate`]).
    Structure,
    /// Read-of-possibly-undefined-register dataflow pass.
    UndefRead,
    /// Dead-write (value never observed) liveness pass.
    DeadWrite,
    /// CFG reachability pass.
    Unreachable,
    /// Constant guard-predicate evaluation pass.
    GuardConst,
    /// Per-warp global/local coalescing prediction.
    Coalescing,
    /// Shared-memory bank-conflict estimation.
    BankConflict,
    /// Intra-block shared-memory race detection.
    SharedRace,
    /// Barrier-under-divergent-control-flow detection.
    BarrierDivergence,
}

impl Pass {
    /// Stable kebab-case pass name used in both output formats.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Structure => "structure",
            Pass::UndefRead => "undef-read",
            Pass::DeadWrite => "dead-write",
            Pass::Unreachable => "unreachable",
            Pass::GuardConst => "guard-const",
            Pass::Coalescing => "coalescing",
            Pass::BankConflict => "bank-conflict",
            Pass::SharedRace => "shared-race",
            Pass::BarrierDivergence => "barrier-divergence",
        }
    }

    /// Every pass, in declaration order (the `--deny` flag accepts these
    /// names).
    pub const ALL: [Pass; 9] = [
        Pass::Structure,
        Pass::UndefRead,
        Pass::DeadWrite,
        Pass::Unreachable,
        Pass::GuardConst,
        Pass::Coalescing,
        Pass::BankConflict,
        Pass::SharedRace,
        Pass::BarrierDivergence,
    ];

    /// Parses a kebab-case pass name as accepted by `--deny`.
    pub fn parse(name: &str) -> Option<Pass> {
        Pass::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding produced by an analyzer pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Originating pass.
    pub pass: Pass,
    /// Instruction the finding is anchored to, if any (kernel-level
    /// findings such as structural errors have none).
    pub pc: Option<Pc>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic anchored to an instruction.
    pub fn at(severity: Severity, pass: Pass, pc: Pc, message: impl Into<String>) -> Self {
        Diagnostic {
            severity,
            pass,
            pc: Some(pc),
            message: message.into(),
        }
    }

    /// Creates a kernel-level diagnostic.
    pub fn kernel_level(severity: Severity, pass: Pass, message: impl Into<String>) -> Self {
        Diagnostic {
            severity,
            pass,
            pc: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pc {
            Some(pc) => write!(
                f,
                "{} [{}] at {pc}: {}",
                self.severity, self.pass, self.message
            ),
            None => write!(f, "{} [{}]: {}", self.severity, self.pass, self.message),
        }
    }
}

/// All findings for one kernel.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Report {
    /// Name of the analyzed kernel.
    pub kernel: String,
    /// Findings in (pc, pass) order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Returns `true` when no error-severity findings exist.
    pub fn is_clean(&self) -> bool {
        self.count(Severity::Error) == 0
    }

    /// Sorts diagnostics into (pc, severity-descending) order for stable
    /// output; kernel-level findings sort first.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by_key(|d| (d.pc, std::cmp::Reverse(d.severity)));
    }

    /// Sorts and removes exact-duplicate findings, making rendered output
    /// byte-stable regardless of pass execution order.
    pub fn dedup(&mut self) {
        self.sort();
        self.diagnostics
            .dedup_by(|a, b| a.pc == b.pc && a.pass == b.pass && a.message == b.message);
    }

    /// Renders the human listing (one line per finding).
    pub fn to_human(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}: {} error(s), {} warning(s), {} note(s)",
            self.kernel,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        );
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        out
    }

    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"kernel\":{},\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            json_string(&self.kernel),
            self.count(Severity::Error),
            self.count(Severity::Warning),
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"severity\":\"{}\",\"pass\":\"{}\",\"pc\":{},\"message\":{}}}",
                d.severity,
                d.pass,
                match d.pc {
                    Some(pc) => pc.to_string(),
                    None => "null".to_string(),
                },
                json_string(&d.message),
            );
        }
        out.push_str("]}");
        out
    }
}

/// Renders a set of kernel reports as a SARIF 2.1.0 log, one result per
/// diagnostic. PCs map to SARIF line numbers (1-based) within a synthetic
/// `<kernel>.kasm` artifact so generic SARIF viewers and code-scanning
/// uploads can anchor the findings.
pub fn to_sarif(reports: &[Report]) -> String {
    use fmt::Write as _;
    let mut out = String::new();
    out.push_str(
        "{\"version\":\"2.1.0\",\
         \"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"runs\":[{\"tool\":{\"driver\":{\"name\":\"latency-check\",\
         \"informationUri\":\"https://github.com/gpu-latency\",\"rules\":[",
    );
    for (i, pass) in Pass::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"id\":{}}}", json_string(pass.name()));
    }
    out.push_str("]}},\"results\":[");
    let mut first = true;
    for report in reports {
        for d in &report.diagnostics {
            if !first {
                out.push(',');
            }
            first = false;
            let level = match d.severity {
                Severity::Info => "note",
                Severity::Warning => "warning",
                Severity::Error => "error",
            };
            let _ = write!(
                out,
                "{{\"ruleId\":{},\"level\":\"{level}\",\
                 \"message\":{{\"text\":{}}},\"locations\":[{{\
                 \"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{}}},\
                 \"region\":{{\"startLine\":{}}}}}}}]}}",
                json_string(d.pass.name()),
                json_string(&d.message),
                json_string(&format!("{}.kasm", report.kernel)),
                d.pc.map_or(1, |pc| pc + 1),
            );
        }
    }
    out.push_str("]}]}");
    out
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_names() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.to_string(), "error");
        assert_eq!(Pass::UndefRead.to_string(), "undef-read");
    }

    #[test]
    fn report_counts_and_cleanliness() {
        let mut r = Report {
            kernel: "k".into(),
            diagnostics: vec![
                Diagnostic::at(Severity::Warning, Pass::DeadWrite, 3, "w"),
                Diagnostic::kernel_level(Severity::Info, Pass::Coalescing, "i"),
            ],
        };
        assert!(r.is_clean());
        r.diagnostics
            .push(Diagnostic::at(Severity::Error, Pass::UndefRead, 1, "e"));
        assert!(!r.is_clean());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.count(Severity::Info), 1);
    }

    #[test]
    fn sort_puts_kernel_level_first_and_orders_by_pc() {
        let mut r = Report {
            kernel: "k".into(),
            diagnostics: vec![
                Diagnostic::at(Severity::Info, Pass::Coalescing, 9, "later"),
                Diagnostic::at(Severity::Error, Pass::UndefRead, 2, "earlier"),
                Diagnostic::kernel_level(Severity::Warning, Pass::Structure, "top"),
            ],
        };
        r.sort();
        assert_eq!(r.diagnostics[0].pc, None);
        assert_eq!(r.diagnostics[1].pc, Some(2));
        assert_eq!(r.diagnostics[2].pc, Some(9));
    }

    #[test]
    fn human_output_lists_each_finding() {
        let r = Report {
            kernel: "vecadd".into(),
            diagnostics: vec![Diagnostic::at(
                Severity::Warning,
                Pass::DeadWrite,
                4,
                "write to r3 is never read",
            )],
        };
        let text = r.to_human();
        assert!(text.contains("vecadd: 0 error(s), 1 warning(s)"));
        assert!(text.contains("warning [dead-write] at 4: write to r3 is never read"));
    }

    #[test]
    fn json_output_is_well_formed() {
        let r = Report {
            kernel: "k\"q".into(),
            diagnostics: vec![
                Diagnostic::at(Severity::Error, Pass::UndefRead, 1, "read of \"r9\"\n"),
                Diagnostic::kernel_level(Severity::Info, Pass::Structure, "ok"),
            ],
        };
        let json = r.to_json();
        assert!(json.starts_with("{\"kernel\":\"k\\\"q\""));
        assert!(json.contains("\"pc\":1"));
        assert!(json.contains("\"pc\":null"));
        assert!(json.contains("\\\"r9\\\"\\n"));
        assert!(json.ends_with("]}"));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
    }

    #[test]
    fn dedup_removes_exact_duplicates_only() {
        let mut r = Report {
            kernel: "k".into(),
            diagnostics: vec![
                Diagnostic::at(Severity::Warning, Pass::SharedRace, 5, "same"),
                Diagnostic::at(Severity::Warning, Pass::SharedRace, 5, "same"),
                Diagnostic::at(Severity::Warning, Pass::SharedRace, 5, "different"),
            ],
        };
        r.dedup();
        assert_eq!(r.diagnostics.len(), 2);
    }

    #[test]
    fn pass_parse_round_trips_every_name() {
        for p in Pass::ALL {
            assert_eq!(Pass::parse(p.name()), Some(p));
        }
        assert_eq!(Pass::parse("no-such-pass"), None);
        assert_eq!(Pass::parse("shared-race"), Some(Pass::SharedRace));
        assert_eq!(Pass::BarrierDivergence.to_string(), "barrier-divergence");
    }

    #[test]
    fn sarif_output_is_well_formed() {
        let r = Report {
            kernel: "vecadd".into(),
            diagnostics: vec![
                Diagnostic::at(Severity::Warning, Pass::SharedRace, 3, "race \"here\""),
                Diagnostic::kernel_level(Severity::Error, Pass::Structure, "bad"),
            ],
        };
        let sarif = to_sarif(&[r]);
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"ruleId\":\"shared-race\""));
        assert!(sarif.contains("\"level\":\"warning\""));
        assert!(sarif.contains("\"startLine\":4"), "pc 3 is line 4");
        assert!(
            sarif.contains("\"startLine\":1"),
            "kernel-level anchors line 1"
        );
        assert!(sarif.contains("vecadd.kasm"));
        assert_eq!(sarif.matches('{').count(), sarif.matches('}').count());
        assert_eq!(sarif.matches('[').count(), sarif.matches(']').count());
    }

    #[test]
    fn json_escapes_control_chars() {
        assert_eq!(json_string("a\u{1}b"), "\"a\\u0001b\"");
        assert_eq!(json_string("t\tn\n"), "\"t\\tn\\n\"");
    }
}
