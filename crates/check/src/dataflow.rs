//! Register dataflow passes: undefined reads, dead writes, unreachable
//! code, and constant guard predicates.
//!
//! All passes are conservative with respect to divergent SIMT execution:
//! the CFG treats both sides of a guarded branch as executable, so a
//! "must be undefined" verdict holds on *every* path and a "may be
//! undefined" verdict on *some* path.

use gpu_isa::{CmpOp, Instr, Kernel, Operand, Reg};

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, Pass, Severity};

/// Dense per-register bitset sized to the kernel's register file.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RegSet {
    bits: Vec<bool>,
}

impl RegSet {
    fn full(n: usize) -> Self {
        RegSet {
            bits: vec![true; n],
        }
    }

    fn empty(n: usize) -> Self {
        RegSet {
            bits: vec![false; n],
        }
    }

    fn contains(&self, r: Reg) -> bool {
        self.bits.get(r as usize).copied().unwrap_or(false)
    }

    fn insert(&mut self, r: Reg) {
        if let Some(b) = self.bits.get_mut(r as usize) {
            *b = true;
        }
    }

    fn remove(&mut self, r: Reg) {
        if let Some(b) = self.bits.get_mut(r as usize) {
            *b = false;
        }
    }

    fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            if *b && !*a {
                *a = true;
                changed = true;
            }
        }
        changed
    }

    fn intersect_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            if !*b && *a {
                *a = false;
                changed = true;
            }
        }
        changed
    }
}

/// Reports reads of registers that are undefined on all paths (error) or on
/// at least one path (warning) from kernel entry.
pub fn undef_read_pass(kernel: &Kernel, cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    let nregs = kernel.num_regs() as usize;
    let instrs = kernel.instrs();
    let nb = cfg.blocks().len();
    if nregs == 0 || nb == 0 {
        return;
    }

    // may[b] / must[b]: registers that may / must still be undefined at
    // entry to block b. Entry block starts all-undefined; unvisited merge
    // inputs are identity (may: empty for union, must: full for
    // intersection) — handled by seeding non-entry blocks with the
    // opposite extreme and iterating to fixpoint.
    let mut may_in: Vec<RegSet> = (0..nb).map(|_| RegSet::empty(nregs)).collect();
    let mut must_in: Vec<RegSet> = (0..nb).map(|_| RegSet::full(nregs)).collect();
    may_in[0] = RegSet::full(nregs);

    let transfer = |block: usize, may: &mut RegSet, must: &mut RegSet| {
        let b = &cfg.blocks()[block];
        for instr in &instrs[b.start..b.end] {
            if let Some(d) = instr.def_reg() {
                may.remove(d);
                must.remove(d);
            }
        }
    };

    let mut changed = true;
    while changed {
        changed = false;
        for bi in 0..nb {
            if !cfg.is_reachable(bi) {
                continue;
            }
            let mut may = may_in[bi].clone();
            let mut must = must_in[bi].clone();
            transfer(bi, &mut may, &mut must);
            for &s in &cfg.blocks()[bi].succs {
                changed |= may_in[s].union_with(&may);
                changed |= must_in[s].intersect_with(&must);
            }
        }
    }

    // Report, walking each reachable block with its fixpoint entry state.
    for bi in 0..nb {
        if !cfg.is_reachable(bi) {
            continue;
        }
        let mut may = may_in[bi].clone();
        let mut must = must_in[bi].clone();
        let b = &cfg.blocks()[bi];
        for (pc, instr) in instrs.iter().enumerate().take(b.end).skip(b.start) {
            for u in instr.use_regs() {
                if must.contains(u) {
                    out.push(Diagnostic::at(
                        Severity::Error,
                        Pass::UndefRead,
                        pc,
                        format!("read of r{u}, which is never written on any path from entry"),
                    ));
                } else if may.contains(u) {
                    out.push(Diagnostic::at(
                        Severity::Warning,
                        Pass::UndefRead,
                        pc,
                        format!("r{u} may be read before initialization on some path"),
                    ));
                }
            }
            if let Some(d) = instr.def_reg() {
                may.remove(d);
                must.remove(d);
            }
        }
    }
}

/// Reports writes whose value no later instruction can observe.
///
/// Pure register writes (ALU, `mov`, special/param reads) get a warning;
/// loads with a dead destination still perform the memory access, so they
/// are advisory only; atomics are never flagged (the memory side effect is
/// the point).
pub fn dead_write_pass(kernel: &Kernel, cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    let nregs = kernel.num_regs() as usize;
    let instrs = kernel.instrs();
    let nb = cfg.blocks().len();
    if nregs == 0 || nb == 0 {
        return;
    }

    // Backward liveness: live_out[b] = union of successors' live-in.
    let mut live_out: Vec<RegSet> = (0..nb).map(|_| RegSet::empty(nregs)).collect();
    let live_in_of = |block: usize, live_out: &RegSet| -> RegSet {
        let mut live = live_out.clone();
        let b = &cfg.blocks()[block];
        for pc in (b.start..b.end).rev() {
            if let Some(d) = instrs[pc].def_reg() {
                live.remove(d);
            }
            for u in instrs[pc].use_regs() {
                live.insert(u);
            }
        }
        live
    };

    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..nb).rev() {
            let live_in: Vec<RegSet> = cfg.blocks()[bi]
                .succs
                .iter()
                .map(|&s| live_in_of(s, &live_out[s]))
                .collect();
            for li in &live_in {
                changed |= live_out[bi].union_with(li);
            }
        }
    }

    for (bi, block_live_out) in live_out.iter().enumerate() {
        if !cfg.is_reachable(bi) {
            continue;
        }
        let mut live = block_live_out.clone();
        let b = &cfg.blocks()[bi];
        for pc in (b.start..b.end).rev() {
            let instr = &instrs[pc];
            if let Some(d) = instr.def_reg() {
                if !live.contains(d) {
                    match instr {
                        Instr::AtomAdd { .. } => {} // memory side effect is the point
                        Instr::Ld { .. } => out.push(Diagnostic::at(
                            Severity::Info,
                            Pass::DeadWrite,
                            pc,
                            format!("loaded value in r{d} is never read (load still issues)"),
                        )),
                        _ => out.push(Diagnostic::at(
                            Severity::Warning,
                            Pass::DeadWrite,
                            pc,
                            format!("write to r{d} is never read"),
                        )),
                    }
                }
                live.remove(d);
            }
            for u in instr.use_regs() {
                live.insert(u);
            }
        }
    }
}

/// Reports basic blocks no path from the kernel entry can reach.
pub fn unreachable_pass(cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    for bi in cfg.unreachable_blocks() {
        let b = &cfg.blocks()[bi];
        let count = b.end - b.start;
        out.push(Diagnostic::at(
            Severity::Warning,
            Pass::Unreachable,
            b.start,
            format!("unreachable code ({count} instruction(s) no path from entry executes)"),
        ));
    }
}

/// Reports guarded branches whose predicate is statically constant.
///
/// Predicate registers initialize to `false` ([`gpu_isa::WarpExec`] zeroes
/// them), so a predicate with no reachable `setp` is constant-false; one
/// whose reachable `setp`s all fold to `false` (immediate operands or a
/// register compared with itself) is too.
pub fn guard_const_pass(kernel: &Kernel, cfg: &Cfg, out: &mut Vec<Diagnostic>) {
    let instrs = kernel.instrs();

    // For each predicate: collect the statically-known outcomes of all
    // reachable defs. `None` in the set means "not statically known".
    let mut defs: std::collections::HashMap<u8, Vec<Option<bool>>> =
        std::collections::HashMap::new();
    for (bi, b) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(bi) {
            continue;
        }
        for instr in &instrs[b.start..b.end] {
            if let Instr::SetP { pred, op, a, b } = instr {
                defs.entry(*pred).or_default().push(const_setp(*op, *a, *b));
            }
        }
    }

    for (bi, b) in cfg.blocks().iter().enumerate() {
        if !cfg.is_reachable(bi) {
            continue;
        }
        for (pc, instr) in instrs.iter().enumerate().take(b.end).skip(b.start) {
            let Instr::Branch { guard: Some(g), .. } = instr else {
                continue;
            };
            // Constant-false holds when every reachable def folds to false
            // (the implicit initial value is false as well). Constant-true
            // would additionally require the use to be dominated by a def,
            // so only the false case is decided here.
            let all_false = defs
                .get(&g.pred)
                .is_none_or(|outcomes| outcomes.iter().all(|o| *o == Some(false)));
            if all_false {
                let effect = if g.expect {
                    "the branch is never taken"
                } else {
                    "the branch is always taken"
                };
                out.push(Diagnostic::at(
                    Severity::Warning,
                    Pass::GuardConst,
                    pc,
                    format!("guard tests p{}, which is always false: {effect}", g.pred),
                ));
            }
        }
    }
}

/// Folds a `setp` to a constant outcome when its operands allow it.
fn const_setp(op: CmpOp, a: Operand, b: Operand) -> Option<bool> {
    match (a, b) {
        (Operand::Imm(x), Operand::Imm(y)) => Some(op.eval(x, y)),
        (Operand::Reg(x), Operand::Reg(y)) if x == y => Some(match op {
            CmpOp::Eq | CmpOp::Le | CmpOp::Ge => true,
            CmpOp::Ne | CmpOp::Lt | CmpOp::Gt => false,
        }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::{AluOp, Guard, KernelBuilder, Operand, Special, Width, RECONV_NONE};

    fn diags_of(kernel: &Kernel, pass: fn(&Kernel, &Cfg, &mut Vec<Diagnostic>)) -> Vec<Diagnostic> {
        let cfg = Cfg::build(kernel);
        let mut out = Vec::new();
        pass(kernel, &cfg, &mut out);
        out
    }

    #[test]
    fn read_of_never_written_register_is_error() {
        let k = Kernel::from_parts(
            "k",
            vec![
                Instr::Alu {
                    op: AluOp::Add,
                    dst: 0,
                    a: Operand::Reg(1),
                    b: Operand::Imm(1),
                },
                Instr::Exit,
            ],
            2,
            0,
            0,
        );
        let d = diags_of(&k, undef_read_pass);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, Severity::Error);
        assert_eq!(d[0].pc, Some(0));
        assert!(d[0].message.contains("r1"));
    }

    #[test]
    fn read_defined_on_one_path_is_warning() {
        // r1 is written only inside the if-body, then read after reconvergence.
        let mut b = KernelBuilder::new("k");
        let t = b.special(Special::GlobalTid);
        let p = b.setp(gpu_isa::CmpOp::Lt, t, Operand::Imm(8));
        let r = b.reg();
        b.if_then(p, |b| {
            b.mov_to(r, Operand::Imm(7));
        });
        b.add(r, Operand::Imm(1));
        b.exit();
        let k = b.build().unwrap();
        let d = diags_of(&k, undef_read_pass);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].severity, Severity::Warning);
        assert!(d[0].message.contains("may be read"));
    }

    #[test]
    fn fully_initialized_kernel_is_quiet() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        let off = b.shl(t, 2);
        let a = b.add(base, off);
        let v = b.ld_global(Width::W4, a, 0);
        let w = b.add(v, v);
        b.st_global(Width::W4, a, 0, w);
        b.exit();
        let k = b.build().unwrap();
        assert!(diags_of(&k, undef_read_pass).is_empty());
    }

    #[test]
    fn loop_carried_register_is_not_flagged() {
        let mut b = KernelBuilder::new("k");
        let i = b.mov(Operand::Imm(0));
        b.while_loop(
            |b| b.setp(gpu_isa::CmpOp::Lt, i, Operand::Imm(4)),
            |b| {
                b.alu_to(AluOp::Add, i, i, Operand::Imm(1));
            },
        );
        b.exit();
        let k = b.build().unwrap();
        assert!(diags_of(&k, undef_read_pass).is_empty());
    }

    #[test]
    fn dead_pure_write_is_warning() {
        let mut b = KernelBuilder::new("k");
        b.mov(Operand::Imm(42)); // never read
        b.exit();
        let k = b.build().unwrap();
        let d = diags_of(&k, dead_write_pass);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].severity, Severity::Warning);
        assert_eq!(d[0].pc, Some(0));
    }

    #[test]
    fn overwritten_without_read_is_dead() {
        let mut b = KernelBuilder::new("k");
        let r = b.mov(Operand::Imm(1)); // dead: overwritten below
        b.mov_to(r, Operand::Imm(2)); // dead: never read
        b.exit();
        let k = b.build().unwrap();
        let d = diags_of(&k, dead_write_pass);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn dead_load_is_info_and_atomic_is_exempt() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        b.ld_global(Width::W4, base, 0); // dead dst, still issues
        b.atom_add(Width::W4, base, 0, 1i64); // dead dst, side effect
        b.exit();
        let k = b.build().unwrap();
        let d = diags_of(&k, dead_write_pass);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].severity, Severity::Info);
        assert!(d[0].message.contains("load still issues"));
    }

    #[test]
    fn loop_carried_use_keeps_write_live() {
        let mut b = KernelBuilder::new("k");
        let i = b.mov(Operand::Imm(0));
        b.while_loop(
            |b| b.setp(gpu_isa::CmpOp::Lt, i, Operand::Imm(4)),
            |b| {
                b.alu_to(AluOp::Add, i, i, Operand::Imm(1));
            },
        );
        b.exit();
        let k = b.build().unwrap();
        assert!(diags_of(&k, dead_write_pass).is_empty());
    }

    #[test]
    fn unreachable_block_is_reported() {
        let k = gpu_isa::parse_kernel(".kernel k\nloop:\nbra loop\nexit\n").unwrap();
        let cfg = Cfg::build(&k);
        let mut out = Vec::new();
        unreachable_pass(&cfg, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].pc, Some(1));
        assert_eq!(out[0].severity, Severity::Warning);
    }

    #[test]
    fn never_set_guard_is_constant_false() {
        let k = Kernel::from_parts(
            "k",
            vec![
                Instr::Branch {
                    guard: Some(Guard {
                        pred: 0,
                        expect: true,
                    }),
                    target: 2,
                    reconverge: 2,
                },
                Instr::Mov {
                    dst: 0,
                    src: Operand::Imm(1),
                },
                Instr::Exit,
            ],
            1,
            0,
            0,
        );
        let d = diags_of(&k, guard_const_pass);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("never taken"), "{d:?}");
    }

    #[test]
    fn immediate_false_setp_folds() {
        let mut b = KernelBuilder::new("k");
        let p = b.setp(gpu_isa::CmpOp::Lt, Operand::Imm(5), Operand::Imm(3));
        b.if_pred_then(p, false, |b| {
            b.mov(Operand::Imm(1));
        });
        b.exit();
        let k = b.build().unwrap();
        let d = diags_of(&k, guard_const_pass);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("always false"));
    }

    #[test]
    fn data_dependent_guard_is_quiet() {
        let mut b = KernelBuilder::new("k");
        let t = b.special(Special::GlobalTid);
        let p = b.setp(gpu_isa::CmpOp::Lt, t, Operand::Imm(8));
        b.if_then(p, |b| {
            b.mov(Operand::Imm(1));
        });
        b.exit();
        let k = b.build().unwrap();
        assert!(diags_of(&k, guard_const_pass).is_empty());
    }

    #[test]
    fn self_compare_folds() {
        assert_eq!(
            const_setp(CmpOp::Eq, Operand::Reg(3), Operand::Reg(3)),
            Some(true)
        );
        assert_eq!(
            const_setp(CmpOp::Lt, Operand::Reg(3), Operand::Reg(3)),
            Some(false)
        );
        assert_eq!(
            const_setp(CmpOp::Lt, Operand::Reg(3), Operand::Reg(4)),
            None
        );
        assert_eq!(
            const_setp(CmpOp::Ge, Operand::Imm(2), Operand::Imm(2)),
            Some(true)
        );
    }

    #[test]
    fn unreachable_code_does_not_feed_undef_pass() {
        // The unreachable block reads an undefined register; only the
        // unreachable pass should speak to it.
        let k = Kernel::from_parts(
            "k",
            vec![
                Instr::Branch {
                    guard: None,
                    target: 2,
                    reconverge: RECONV_NONE,
                },
                Instr::Alu {
                    op: AluOp::Add,
                    dst: 0,
                    a: Operand::Reg(1),
                    b: Operand::Imm(1),
                },
                Instr::Exit,
            ],
            2,
            0,
            0,
        );
        assert!(diags_of(&k, undef_read_pass).is_empty());
    }
}
