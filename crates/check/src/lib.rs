//! Static analyzer for `gpu-isa` kernels.
//!
//! `latency-check` complements the timing model with compile-time
//! correctness and performance lints, so latency attributions (paper
//! Fig. 1/2) rest on kernels whose dataflow is known-sound:
//!
//! - **Structure**: [`gpu_isa::Kernel::validate`] findings as diagnostics.
//! - **Undef reads**: registers read before any (or every) path writes them.
//! - **Dead writes**: register writes no later instruction observes.
//! - **Unreachable code**: blocks no path from entry executes.
//! - **Constant guards**: predicate guards that statically always fail.
//! - **Coalescing**: per-warp global/local transaction prediction from the
//!   symbolic address analysis ([`symaddr`]), computed with the simulator's
//!   own [`gpu_sim::coalesce`] rules.
//! - **Bank conflicts**: shared-memory conflict-degree estimation.
//! - **Shared races**: intra-block shared-memory write/write and read/write
//!   overlap between barriers ([`concurrency`]).
//! - **Barrier divergence**: `bar.sync` reachable under a lane-varying
//!   branch, including data-dependent loops.
//!
//! Beyond the lints, [`kernel_cost`] predicts per-load feasible service
//! levels, unloaded-latency floors and stall classes against any
//! [`gpu_arch::ArchDesc`]; the `latency-bench` crate differentially
//! validates these predictions against instrumented simulator runs.
//!
//! # Examples
//!
//! ```
//! use gpu_isa::{KernelBuilder, Special, Width};
//! use latency_check::{analyze, AnalysisConfig};
//!
//! let mut b = KernelBuilder::new("copy");
//! let src = b.param(0);
//! let dst = b.param(1);
//! let t = b.special(Special::GlobalTid);
//! let off = b.shl(t, 2);
//! let pa = b.add(src, off);
//! let pb = b.add(dst, off);
//! let v = b.ld_global(Width::W4, pa, 0);
//! b.st_global(Width::W4, pb, 0, v);
//! b.exit();
//! let kernel = b.build().unwrap();
//!
//! let report = analyze(&kernel, &AnalysisConfig::default());
//! assert!(report.is_clean());
//! // Two fully-coalesced accesses are reported as advisory findings.
//! assert_eq!(report.count(latency_check::Severity::Info), 2);
//! ```

pub mod cfg;
pub mod concurrency;
pub mod cost;
pub mod dataflow;
pub mod diag;
pub mod memlint;
pub mod symaddr;

use gpu_isa::Kernel;

pub use cfg::{Block, Cfg};
pub use cost::{kernel_cost, KernelCost, LoadCost, StallClass};
pub use diag::{to_sarif, Diagnostic, Pass, Report, Severity};
pub use memlint::{AccessPattern, MemPrediction};
pub use symaddr::{SymAnalysis, SymVal};

/// Machine parameters the memory-access lints predict against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Cache-line / memory-transaction size in bytes.
    pub line_size: u64,
    /// Lanes per warp.
    pub warp_size: u32,
    /// Shared-memory banks.
    pub shared_banks: u32,
    /// Bank word width in bytes.
    pub bank_bytes: u64,
}

impl Default for AnalysisConfig {
    /// Fermi-class defaults: 128 B lines, 32-lane warps, 32 x 4 B banks.
    fn default() -> Self {
        AnalysisConfig {
            line_size: 128,
            warp_size: 32,
            shared_banks: 32,
            bank_bytes: 4,
        }
    }
}

/// Runs every analyzer pass over `kernel` and returns the sorted report.
pub fn analyze(kernel: &Kernel, config: &AnalysisConfig) -> Report {
    let mut report = Report {
        kernel: kernel.name().to_string(),
        diagnostics: Vec::new(),
    };
    if let Err(e) = kernel.validate() {
        report.diagnostics.push(Diagnostic::kernel_level(
            Severity::Error,
            Pass::Structure,
            e.to_string(),
        ));
        if kernel.is_empty() {
            return report;
        }
    }
    let g = Cfg::build(kernel);
    dataflow::undef_read_pass(kernel, &g, &mut report.diagnostics);
    dataflow::dead_write_pass(kernel, &g, &mut report.diagnostics);
    dataflow::unreachable_pass(&g, &mut report.diagnostics);
    dataflow::guard_const_pass(kernel, &g, &mut report.diagnostics);
    // One symbolic solve feeds both the memory and the concurrency lints.
    let sym = symaddr::analyze(kernel, &g);
    for p in memlint::predict_from(&sym, config) {
        memlint::push_memory_diags(&p, config, &mut report.diagnostics);
    }
    concurrency::concurrency_pass(kernel, &g, &sym, &mut report.diagnostics);
    report.dedup();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::{Instr, KernelBuilder, Operand};

    #[test]
    fn empty_kernel_yields_structure_error_only() {
        let k = Kernel::from_parts("e", vec![], 0, 0, 0);
        let r = analyze(&k, &AnalysisConfig::default());
        assert_eq!(r.diagnostics.len(), 1);
        assert_eq!(r.diagnostics[0].pass, Pass::Structure);
        assert!(!r.is_clean());
    }

    #[test]
    fn invalid_register_still_gets_full_analysis() {
        let k = Kernel::from_parts(
            "bad",
            vec![
                Instr::Mov {
                    dst: 9, // out of range for num_regs = 1
                    src: Operand::Imm(0),
                },
                Instr::Exit,
            ],
            1,
            0,
            0,
        );
        let r = analyze(&k, &AnalysisConfig::default());
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.pass == Pass::Structure && d.severity == Severity::Error));
    }

    #[test]
    fn clean_kernel_reports_no_errors() {
        let mut b = KernelBuilder::new("k");
        let r = b.mov(Operand::Imm(1));
        let s = b.add(r, r);
        let base = b.param(0);
        let a = b.add(base, s);
        b.st_global(gpu_isa::Width::W4, a, 0, s);
        b.exit();
        let k = b.build().unwrap();
        let rep = analyze(&k, &AnalysisConfig::default());
        assert!(rep.is_clean(), "{}", rep.to_human());
    }

    #[test]
    fn report_is_sorted_by_pc() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        b.ld_global(gpu_isa::Width::W4, base, 0); // dead load (info)
        b.mov(Operand::Imm(3)); // dead write (warning)
        b.exit();
        let k = b.build().unwrap();
        let rep = analyze(&k, &AnalysisConfig::default());
        let pcs: Vec<_> = rep.diagnostics.iter().map(|d| d.pc).collect();
        let mut sorted = pcs.clone();
        sorted.sort();
        assert_eq!(pcs, sorted);
    }
}
