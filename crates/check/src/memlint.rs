//! Memory-access lints: per-warp global coalescing prediction and
//! shared-memory bank-conflict estimation.
//!
//! Addresses come from the symbolic engine in [`crate::symaddr`], which
//! solves each access into an affine form `base + c1·lane + c2·iter` over
//! warp-uniform terms. When the per-lane stride `c1` is known, the
//! predicted per-lane accesses are fed through the *same*
//! [`gpu_sim::coalesce`] routine the timing model uses, so the static
//! transaction count cannot drift from the simulator's counting rules; the
//! per-iteration stride `c2` is reported alongside as evidence.

use std::collections::HashMap;

use gpu_isa::{Kernel, LaneAccess, Pc, Space, Width};
use gpu_types::Addr;

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, Pass, Severity};
use crate::symaddr::{self, SymVal, Term};
use crate::AnalysisConfig;

/// Synthetic warp-uniform base address used when predicting transactions.
///
/// Real bases are unknown statically; assuming a well-aligned base gives
/// the best-case (and, for allocator-aligned buffers, the actual) line
/// count. Kept far from zero so negative strides stay in range.
const SYNTH_BASE: u64 = 1 << 20;

/// The lane-variation pattern inferred for one memory access's address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Address is not affine in the lane index; no prediction possible.
    Unknown,
    /// Every lane accesses the same address.
    Broadcast,
    /// Lane `i` accesses `base + i * stride` bytes.
    Affine {
        /// Per-lane byte stride.
        stride: i64,
    },
}

/// Static prediction for one memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemPrediction {
    /// Instruction analyzed.
    pub pc: Pc,
    /// Memory space accessed.
    pub space: Space,
    /// `true` for stores and atomics.
    pub is_store: bool,
    /// `true` for atomics.
    pub is_atomic: bool,
    /// Access width.
    pub width: Width,
    /// Inferred per-lane address pattern.
    pub pattern: AccessPattern,
    /// Per-iteration byte stride of the innermost enclosing loop, when the
    /// address is affine in that loop's counter.
    pub iter_stride: Option<i64>,
    /// Predicted line-sized transactions per fully-active warp
    /// (global/local accesses with a known pattern only).
    pub lines_per_warp: Option<usize>,
    /// Predicted worst-bank conflict degree (shared accesses with a known
    /// pattern only); `1` means conflict-free.
    pub conflict_ways: Option<u32>,
}

/// Runs the symbolic address analysis and predicts every reachable memory
/// instruction's per-warp behavior.
pub fn predict(kernel: &Kernel, cfg: &Cfg, config: &AnalysisConfig) -> Vec<MemPrediction> {
    let sym = symaddr::analyze(kernel, cfg);
    predict_from(&sym, config)
}

/// Like [`predict`], but reuses an already-computed symbolic analysis.
pub fn predict_from(sym: &symaddr::SymAnalysis, config: &AnalysisConfig) -> Vec<MemPrediction> {
    let mut out = Vec::new();
    for a in &sym.accesses {
        let (pattern, base, iter_stride) = match &a.addr {
            SymVal::Varying => (AccessPattern::Unknown, SYNTH_BASE, None),
            SymVal::Lin(e) => {
                let stride = e.lane_coeff();
                let pattern = if stride == 0 {
                    AccessPattern::Broadcast
                } else {
                    AccessPattern::Affine { stride }
                };
                // Shared bases from `alloc_shared` are concrete constants:
                // when the address is exactly `const + stride·lane`, bank
                // math can use the true base instead of a synthetic one.
                let concrete = a.mem.space == Space::Shared
                    && e.k >= 0
                    && e.terms.iter().all(|(t, _)| *t == Term::Lane);
                let base = if concrete {
                    e.k as u64
                } else {
                    SYNTH_BASE.wrapping_add_signed(e.k)
                };
                (pattern, base, e.iter_coeff())
            }
        };
        let stride = match pattern {
            AccessPattern::Affine { stride } => stride,
            _ => 0,
        };
        let lane_addr = |lane: u64| -> Addr {
            Addr::new(base.wrapping_add_signed(stride.wrapping_mul(lane as i64)))
        };
        let (lines_per_warp, conflict_ways) = match (pattern, a.mem.space) {
            (AccessPattern::Unknown, _) => (None, None),
            (_, Space::Global | Space::Local) => {
                let accesses: Vec<LaneAccess> = (0..config.warp_size)
                    .map(|lane| LaneAccess {
                        lane,
                        addr: lane_addr(lane as u64),
                        width: a.mem.width,
                    })
                    .collect();
                let lines = gpu_sim::coalesce(&accesses, config.line_size).len();
                (Some(lines), None)
            }
            (_, Space::Shared) => {
                // Distinct words per bank; the hardware broadcasts
                // same-word accesses, so only distinct words conflict.
                let mut words_per_bank: HashMap<u64, Vec<u64>> = HashMap::new();
                for lane in 0..config.warp_size {
                    let word = lane_addr(lane as u64).get() / config.bank_bytes;
                    let bank = word % config.shared_banks as u64;
                    let words = words_per_bank.entry(bank).or_default();
                    if !words.contains(&word) {
                        words.push(word);
                    }
                }
                let ways = words_per_bank
                    .values()
                    .map(|w| w.len() as u32)
                    .max()
                    .unwrap_or(1);
                (None, Some(ways))
            }
        };
        out.push(MemPrediction {
            pc: a.pc,
            space: a.mem.space,
            width: a.mem.width,
            is_store: a.mem.is_store,
            is_atomic: a.mem.is_atomic,
            pattern,
            iter_stride,
            lines_per_warp,
            conflict_ways,
        });
    }
    out
}

/// Converts memory predictions into coalescing / bank-conflict diagnostics.
pub fn memory_pass(kernel: &Kernel, cfg: &Cfg, config: &AnalysisConfig, out: &mut Vec<Diagnostic>) {
    for p in predict(kernel, cfg, config) {
        push_memory_diags(&p, config, out);
    }
}

/// Emits the diagnostics for one prediction (shared with [`crate::analyze`],
/// which reuses a single symbolic analysis across passes).
pub(crate) fn push_memory_diags(
    p: &MemPrediction,
    config: &AnalysisConfig,
    out: &mut Vec<Diagnostic>,
) {
    let what = if p.is_atomic {
        "atomic"
    } else if p.is_store {
        "store"
    } else {
        "load"
    };
    let iter_note = match p.iter_stride {
        Some(d) if d != 0 => format!(", per-iteration stride {d} B"),
        _ => String::new(),
    };
    match p.space {
        Space::Global | Space::Local => {
            let pass = Pass::Coalescing;
            match (p.pattern, p.lines_per_warp) {
                (AccessPattern::Unknown, _) => out.push(Diagnostic::at(
                    Severity::Info,
                    pass,
                    p.pc,
                    format!("{} {what}: address is not affine in the lane index; cannot predict coalescing", p.space),
                )),
                (AccessPattern::Broadcast, Some(lines)) => out.push(Diagnostic::at(
                    Severity::Info,
                    pass,
                    p.pc,
                    format!("{} {what}: warp-uniform address, {lines} transaction(s) per warp{iter_note}", p.space),
                )),
                (AccessPattern::Affine { stride }, Some(lines)) => {
                    // Best case for this footprint: densely packed lanes.
                    let dense = (config.warp_size as u64 * p.width.bytes())
                        .div_ceil(config.line_size)
                        .max(1) as usize;
                    let (sev, verdict) = if lines <= dense {
                        (Severity::Info, "fully coalesced")
                    } else if lines >= config.warp_size as usize {
                        (Severity::Warning, "uncoalesced")
                    } else {
                        (Severity::Info, "partially coalesced")
                    };
                    out.push(Diagnostic::at(
                        sev,
                        pass,
                        p.pc,
                        format!(
                            "{} {what}: {verdict}, stride {stride} B{iter_note}, {lines} transaction(s) per fully-active warp",
                            p.space
                        ),
                    ));
                }
                _ => {}
            }
        }
        Space::Shared => match (p.pattern, p.conflict_ways) {
            (AccessPattern::Unknown, _) => out.push(Diagnostic::at(
                Severity::Info,
                Pass::BankConflict,
                p.pc,
                format!("shared {what}: address is not affine in the lane index; cannot predict bank conflicts"),
            )),
            (_, Some(1)) => out.push(Diagnostic::at(
                Severity::Info,
                Pass::BankConflict,
                p.pc,
                format!("shared {what}: conflict-free (1 word per bank)"),
            )),
            (_, Some(ways)) => out.push(Diagnostic::at(
                Severity::Warning,
                Pass::BankConflict,
                p.pc,
                format!("shared {what}: predicted {ways}-way bank conflict"),
            )),
            _ => {}
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::{AluOp, CmpOp, KernelBuilder, Operand, Special};

    fn predictions(kernel: &Kernel) -> Vec<MemPrediction> {
        let cfg = Cfg::build(kernel);
        predict(kernel, &cfg, &AnalysisConfig::default())
    }

    #[test]
    fn dense_w4_load_is_one_line() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        let off = b.shl(t, 2);
        let a = b.add(base, off);
        b.ld_global(Width::W4, a, 0);
        b.exit();
        let k = b.build().unwrap();
        let p = predictions(&k);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].pattern, AccessPattern::Affine { stride: 4 });
        assert_eq!(p[0].lines_per_warp, Some(1));
    }

    #[test]
    fn line_strided_store_fans_to_32() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        let off = b.mul(t, 128i64);
        let a = b.add(base, off);
        b.st_global(Width::W4, a, 0, 7i64);
        b.exit();
        let k = b.build().unwrap();
        let p = predictions(&k);
        assert_eq!(p[0].pattern, AccessPattern::Affine { stride: 128 });
        assert_eq!(p[0].lines_per_warp, Some(32));
        assert!(p[0].is_store);
    }

    #[test]
    fn uniform_address_broadcasts() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        b.ld_global(Width::W4, base, 16);
        b.exit();
        let k = b.build().unwrap();
        let p = predictions(&k);
        assert_eq!(p[0].pattern, AccessPattern::Broadcast);
        assert_eq!(p[0].lines_per_warp, Some(1));
    }

    #[test]
    fn loaded_address_is_unknown() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let idx = b.ld_global(Width::W8, base, 0);
        b.ld_global(Width::W4, idx, 0);
        b.exit();
        let k = b.build().unwrap();
        let p = predictions(&k);
        assert_eq!(p[1].pattern, AccessPattern::Unknown);
        assert_eq!(p[1].lines_per_warp, None);
    }

    #[test]
    fn shared_dense_is_conflict_free_and_row_stride_conflicts() {
        let mut b = KernelBuilder::new("k");
        b.alloc_shared(32 * 128);
        let lane = b.special(Special::LaneId);
        let dense = b.shl(lane, 2); // 4 B stride: one word per bank
        b.ld(Space::Shared, Width::W4, dense, 0);
        let strided = b.mul(lane, 128i64); // 128 B stride: all lanes hit bank 0
        b.ld(Space::Shared, Width::W4, strided, 0);
        b.exit();
        let k = b.build().unwrap();
        let p = predictions(&k);
        assert_eq!(p[0].conflict_ways, Some(1));
        assert_eq!(p[1].conflict_ways, Some(32));
    }

    #[test]
    fn w8_dense_access_spans_two_lines() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        let off = b.shl(t, 3);
        let a = b.add(base, off);
        b.ld_global(Width::W8, a, 0);
        b.exit();
        let k = b.build().unwrap();
        let p = predictions(&k);
        assert_eq!(p[0].pattern, AccessPattern::Affine { stride: 8 });
        // 32 lanes * 8 B = 256 B = two 128 B lines.
        assert_eq!(p[0].lines_per_warp, Some(2));
    }

    #[test]
    fn join_of_divergent_values_degrades_to_unknown() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        let p = b.setp(CmpOp::Lt, t, 8i64);
        let r = b.mov(0i64);
        b.if_then_else(p, |b| b.mov_to(r, 4i64), |b| b.mov_to(r, 8i64));
        let off = b.mul(t, r);
        let a = b.add(base, off);
        b.ld_global(Width::W4, a, 0);
        b.exit();
        let k = b.build().unwrap();
        let preds = predictions(&k);
        assert_eq!(preds[0].pattern, AccessPattern::Unknown);
    }

    #[test]
    fn negative_stride_predicts_like_positive() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::LaneId);
        let neg = b.sub(0i64, t);
        let off = b.mul(neg, 4i64);
        let a = b.add(base, off);
        b.ld_global(Width::W4, a, 0);
        b.exit();
        let k = b.build().unwrap();
        let p = predictions(&k);
        assert_eq!(p[0].pattern, AccessPattern::Affine { stride: -4 });
        // 128 B of densely-packed lanes, possibly split across a boundary.
        assert!(p[0].lines_per_warp.unwrap() <= 2);
    }

    #[test]
    fn loop_access_reports_iteration_stride() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        b.for_range(Operand::Imm(0), Operand::Imm(16), 1, |b, i| {
            let row = b.mul(i, 512i64);
            let col = b.shl(t, 2);
            let x = b.add(row, col);
            let a = b.add(base, x);
            b.ld_global(Width::W4, a, 0);
        });
        b.exit();
        let k = b.build().unwrap();
        let p = predictions(&k);
        let ld = p.iter().rfind(|p| !p.is_store).unwrap();
        assert_eq!(ld.pattern, AccessPattern::Affine { stride: 4 });
        assert_eq!(ld.iter_stride, Some(512));
        assert_eq!(ld.lines_per_warp, Some(1));
    }

    #[test]
    fn alu_domain_rules() {
        use crate::symaddr::{eval_alu, LinExpr, SymVal, Term};
        let konst = |k: i64| SymVal::Lin(LinExpr::constant(k));
        let affine = |s: i64| {
            SymVal::Lin(LinExpr {
                k: 0,
                terms: vec![(Term::Lane, s)],
            })
        };
        let uniform = || SymVal::Lin(LinExpr::term(Term::Param(0)));
        let stride_of = |v: &SymVal| v.lin().map(LinExpr::lane_coeff);

        assert_eq!(eval_alu(AluOp::Add, &konst(3), &konst(4), 0), konst(7));
        assert_eq!(
            stride_of(&eval_alu(AluOp::Add, &affine(4), &uniform(), 0)),
            Some(4)
        );
        assert_eq!(
            stride_of(&eval_alu(AluOp::Sub, &uniform(), &affine(4), 0)),
            Some(-4)
        );
        assert_eq!(
            stride_of(&eval_alu(AluOp::Sub, &affine(4), &affine(4), 0)),
            Some(0)
        );
        assert_eq!(
            stride_of(&eval_alu(AluOp::Mul, &affine(1), &konst(12), 0)),
            Some(12)
        );
        assert_eq!(
            stride_of(&eval_alu(AluOp::Shl, &affine(1), &konst(2), 0)),
            Some(4)
        );
        // Lane-varying through a non-affine op: no linear form.
        assert_eq!(
            eval_alu(AluOp::Mul, &affine(1), &uniform(), 0),
            SymVal::Varying
        );
        assert_eq!(
            eval_alu(AluOp::Xor, &affine(1), &konst(1), 0),
            SymVal::Varying
        );
        // Warp-uniform through a non-affine op: opaque but still uniform.
        assert!(eval_alu(AluOp::Div, &uniform(), &konst(2), 7).is_warp_uniform());
        assert_eq!(eval_alu(AluOp::Mul, &affine(1), &konst(0), 0), konst(0));
    }
}
