//! Memory-access lints: per-warp global coalescing prediction and
//! shared-memory bank-conflict estimation.
//!
//! Addresses are tracked through a small abstract domain that captures how
//! a register varies across the lanes of one warp. When an address is
//! affine in the lane index, the predicted per-lane accesses are fed
//! through the *same* [`gpu_sim::coalesce`] routine the timing model uses,
//! so the static prediction cannot drift from the simulator's transaction
//! counting rules.

use std::collections::HashMap;

use gpu_isa::{AluOp, Instr, Kernel, LaneAccess, Operand, Pc, Space, Special, Width};
use gpu_types::Addr;

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, Pass, Severity};
use crate::AnalysisConfig;

/// Synthetic warp-uniform base address used when predicting transactions.
///
/// Real bases are unknown statically; assuming a well-aligned base gives
/// the best-case (and, for allocator-aligned buffers, the actual) line
/// count. Kept far from zero so negative strides stay in range.
const SYNTH_BASE: u64 = 1 << 20;

/// How a register's value varies across the 32 lanes of a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// A known compile-time constant (also warp-uniform).
    Const(i64),
    /// Identical in every lane of a warp, value unknown.
    Uniform,
    /// `base + lane * stride` for a warp-uniform base (stride non-zero).
    Affine {
        /// Per-lane byte stride.
        stride: i64,
    },
    /// No static knowledge.
    Unknown,
}

impl AbsVal {
    /// Canonicalizes degenerate affine values.
    fn norm(self) -> Self {
        match self {
            AbsVal::Affine { stride: 0 } => AbsVal::Uniform,
            v => v,
        }
    }

    fn is_warp_uniform(self) -> bool {
        matches!(self, AbsVal::Const(_) | AbsVal::Uniform)
    }
}

/// Lattice meet at control-flow joins.
///
/// Divergent warps can reconverge with different lanes having taken
/// different paths, so even two per-path warp-uniform values merge to
/// `Unknown` unless they are identical.
fn meet(a: AbsVal, b: AbsVal) -> AbsVal {
    if a == b {
        a
    } else {
        AbsVal::Unknown
    }
}

fn operand_val(op: Operand, env: &[AbsVal]) -> AbsVal {
    match op {
        Operand::Imm(v) => AbsVal::Const(v),
        Operand::Reg(r) => env.get(r as usize).copied().unwrap_or(AbsVal::Unknown),
    }
}

/// Abstract transfer function for ALU operations.
fn eval_alu(op: AluOp, a: AbsVal, b: AbsVal) -> AbsVal {
    use AbsVal::{Affine, Const, Uniform, Unknown};
    let v = match op {
        AluOp::Add => match (a, b) {
            (Const(x), Const(y)) => Const(x.wrapping_add(y)),
            (Affine { stride: s1 }, Affine { stride: s2 }) => Affine {
                stride: s1.wrapping_add(s2),
            },
            (Affine { stride }, u) | (u, Affine { stride }) if u.is_warp_uniform() => {
                Affine { stride }
            }
            (x, y) if x.is_warp_uniform() && y.is_warp_uniform() => Uniform,
            _ => Unknown,
        },
        AluOp::Sub => match (a, b) {
            (Const(x), Const(y)) => Const(x.wrapping_sub(y)),
            (Affine { stride: s1 }, Affine { stride: s2 }) => Affine {
                stride: s1.wrapping_sub(s2),
            },
            (Affine { stride }, u) if u.is_warp_uniform() => Affine { stride },
            (u, Affine { stride }) if u.is_warp_uniform() => Affine {
                stride: stride.wrapping_neg(),
            },
            (x, y) if x.is_warp_uniform() && y.is_warp_uniform() => Uniform,
            _ => Unknown,
        },
        AluOp::Mul => match (a, b) {
            (Const(x), Const(y)) => Const(x.wrapping_mul(y)),
            (Affine { stride }, Const(c)) | (Const(c), Affine { stride }) => Affine {
                stride: stride.wrapping_mul(c),
            },
            (x, y) if x.is_warp_uniform() && y.is_warp_uniform() => Uniform,
            _ => Unknown,
        },
        AluOp::Shl => match (a, b) {
            (Const(x), Const(c)) => Const(x.wrapping_shl(c as u32)),
            (Affine { stride }, Const(c)) if (0..64).contains(&c) => Affine {
                stride: stride.wrapping_shl(c as u32),
            },
            (x, y) if x.is_warp_uniform() && y.is_warp_uniform() => Uniform,
            _ => Unknown,
        },
        // Remaining ops: warp-uniform in, warp-uniform out; no lane-stride
        // tracking through division, masking or float arithmetic.
        _ => {
            if a.is_warp_uniform() && b.is_warp_uniform() {
                Uniform
            } else {
                Unknown
            }
        }
    };
    v.norm()
}

/// Applies one instruction to the abstract environment.
fn transfer(instr: &Instr, env: &mut [AbsVal]) {
    let set = |env: &mut [AbsVal], r: gpu_isa::Reg, v: AbsVal| {
        if let Some(slot) = env.get_mut(r as usize) {
            *slot = v;
        }
    };
    match instr {
        Instr::Mov { dst, src } => {
            let v = operand_val(*src, env);
            set(env, *dst, v);
        }
        Instr::ReadSpecial { dst, special } => {
            let v = match special {
                Special::TidX | Special::LaneId | Special::GlobalTid => {
                    AbsVal::Affine { stride: 1 }
                }
                Special::CtaIdX | Special::NTidX | Special::NCtaIdX => AbsVal::Uniform,
            };
            set(env, *dst, v);
        }
        Instr::LdParam { dst, .. } => set(env, *dst, AbsVal::Uniform),
        Instr::Alu { op, dst, a, b } => {
            let v = eval_alu(*op, operand_val(*a, env), operand_val(*b, env));
            set(env, *dst, v);
        }
        Instr::Ld { dst, .. } | Instr::AtomAdd { dst, .. } => set(env, *dst, AbsVal::Unknown),
        _ => {}
    }
}

/// The lane-variation pattern inferred for one memory access's address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPattern {
    /// Address is not affine in the lane index; no prediction possible.
    Unknown,
    /// Every lane accesses the same address.
    Broadcast,
    /// Lane `i` accesses `base + i * stride` bytes.
    Affine {
        /// Per-lane byte stride.
        stride: i64,
    },
}

/// Static prediction for one memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemPrediction {
    /// Instruction analyzed.
    pub pc: Pc,
    /// Memory space accessed.
    pub space: Space,
    /// `true` for stores and atomics.
    pub is_store: bool,
    /// `true` for atomics.
    pub is_atomic: bool,
    /// Access width.
    pub width: Width,
    /// Inferred per-lane address pattern.
    pub pattern: AccessPattern,
    /// Predicted line-sized transactions per fully-active warp
    /// (global/local accesses with a known pattern only).
    pub lines_per_warp: Option<usize>,
    /// Predicted worst-bank conflict degree (shared accesses with a known
    /// pattern only); `1` means conflict-free.
    pub conflict_ways: Option<u32>,
}

/// Runs the affine address analysis and predicts every reachable memory
/// instruction's per-warp behavior.
pub fn predict(kernel: &Kernel, cfg: &Cfg, config: &AnalysisConfig) -> Vec<MemPrediction> {
    let instrs = kernel.instrs();
    let nregs = kernel.num_regs() as usize;
    let nb = cfg.blocks().len();
    if nb == 0 {
        return Vec::new();
    }

    // Forward fixpoint over block-entry environments.
    let mut envs: Vec<Option<Vec<AbsVal>>> = vec![None; nb];
    envs[0] = Some(vec![AbsVal::Unknown; nregs]);
    let mut worklist = vec![0usize];
    while let Some(bi) = worklist.pop() {
        let Some(entry) = envs[bi].clone() else {
            continue;
        };
        let mut env = entry;
        let b = &cfg.blocks()[bi];
        for instr in &instrs[b.start..b.end] {
            transfer(instr, &mut env);
        }
        for &s in &b.succs {
            let merged = match &envs[s] {
                None => env.clone(),
                Some(prev) => prev
                    .iter()
                    .zip(&env)
                    .map(|(&a, &b)| meet(a, b))
                    .collect::<Vec<_>>(),
            };
            if envs[s].as_ref() != Some(&merged) {
                envs[s] = Some(merged);
                worklist.push(s);
            }
        }
    }

    let mut out = Vec::new();
    for (bi, b) in cfg.blocks().iter().enumerate() {
        let Some(entry) = &envs[bi] else {
            continue; // unreachable
        };
        let mut env = entry.clone();
        for (pc, instr) in instrs.iter().enumerate().take(b.end).skip(b.start) {
            let (space, width, addr, offset, is_store, is_atomic) = match instr {
                Instr::Ld {
                    space,
                    width,
                    addr,
                    offset,
                    ..
                } => (*space, *width, *addr, *offset, false, false),
                Instr::St {
                    space,
                    width,
                    addr,
                    offset,
                    ..
                } => (*space, *width, *addr, *offset, true, false),
                Instr::AtomAdd {
                    width,
                    addr,
                    offset,
                    ..
                } => (Space::Global, *width, *addr, *offset, true, true),
                other => {
                    transfer(other, &mut env);
                    continue;
                }
            };
            let base_val = env.get(addr as usize).copied().unwrap_or(AbsVal::Unknown);
            let pattern = match base_val {
                AbsVal::Const(_) | AbsVal::Uniform => AccessPattern::Broadcast,
                AbsVal::Affine { stride } => AccessPattern::Affine { stride },
                AbsVal::Unknown => AccessPattern::Unknown,
            };
            let lane_addr = |lane: u64| -> Addr {
                let stride = match pattern {
                    AccessPattern::Affine { stride } => stride,
                    _ => 0,
                };
                Addr::new(
                    SYNTH_BASE
                        .wrapping_add_signed(offset)
                        .wrapping_add_signed(stride.wrapping_mul(lane as i64)),
                )
            };
            let (lines_per_warp, conflict_ways) = match (pattern, space) {
                (AccessPattern::Unknown, _) => (None, None),
                (_, Space::Global | Space::Local) => {
                    let accesses: Vec<LaneAccess> = (0..config.warp_size)
                        .map(|lane| LaneAccess {
                            lane,
                            addr: lane_addr(lane as u64),
                            width,
                        })
                        .collect();
                    let lines = gpu_sim::coalesce(&accesses, config.line_size).len();
                    (Some(lines), None)
                }
                (_, Space::Shared) => {
                    // Distinct words per bank; the hardware broadcasts
                    // same-word accesses, so only distinct words conflict.
                    let mut words_per_bank: HashMap<u64, Vec<u64>> = HashMap::new();
                    for lane in 0..config.warp_size {
                        let word = lane_addr(lane as u64).get() / config.bank_bytes;
                        let bank = word % config.shared_banks as u64;
                        let words = words_per_bank.entry(bank).or_default();
                        if !words.contains(&word) {
                            words.push(word);
                        }
                    }
                    let ways = words_per_bank
                        .values()
                        .map(|w| w.len() as u32)
                        .max()
                        .unwrap_or(1);
                    (None, Some(ways))
                }
            };
            out.push(MemPrediction {
                pc,
                space,
                width,
                is_store,
                is_atomic,
                pattern,
                lines_per_warp,
                conflict_ways,
            });
            transfer(instr, &mut env);
        }
    }
    out
}

/// Converts memory predictions into coalescing / bank-conflict diagnostics.
pub fn memory_pass(kernel: &Kernel, cfg: &Cfg, config: &AnalysisConfig, out: &mut Vec<Diagnostic>) {
    for p in predict(kernel, cfg, config) {
        let what = if p.is_atomic {
            "atomic"
        } else if p.is_store {
            "store"
        } else {
            "load"
        };
        match p.space {
            Space::Global | Space::Local => {
                let pass = Pass::Coalescing;
                match (p.pattern, p.lines_per_warp) {
                    (AccessPattern::Unknown, _) => out.push(Diagnostic::at(
                        Severity::Info,
                        pass,
                        p.pc,
                        format!("{} {what}: address is not affine in the lane index; cannot predict coalescing", p.space),
                    )),
                    (AccessPattern::Broadcast, Some(lines)) => out.push(Diagnostic::at(
                        Severity::Info,
                        pass,
                        p.pc,
                        format!("{} {what}: warp-uniform address, {lines} transaction(s) per warp", p.space),
                    )),
                    (AccessPattern::Affine { stride }, Some(lines)) => {
                        // Best case for this footprint: densely packed lanes.
                        let dense = (config.warp_size as u64 * p.width.bytes())
                            .div_ceil(config.line_size)
                            .max(1) as usize;
                        let (sev, verdict) = if lines <= dense {
                            (Severity::Info, "fully coalesced")
                        } else if lines >= config.warp_size as usize {
                            (Severity::Warning, "uncoalesced")
                        } else {
                            (Severity::Info, "partially coalesced")
                        };
                        out.push(Diagnostic::at(
                            sev,
                            pass,
                            p.pc,
                            format!(
                                "{} {what}: {verdict}, stride {stride} B, {lines} transaction(s) per fully-active warp",
                                p.space
                            ),
                        ));
                    }
                    _ => {}
                }
            }
            Space::Shared => match (p.pattern, p.conflict_ways) {
                (AccessPattern::Unknown, _) => out.push(Diagnostic::at(
                    Severity::Info,
                    Pass::BankConflict,
                    p.pc,
                    format!("shared {what}: address is not affine in the lane index; cannot predict bank conflicts"),
                )),
                (_, Some(1)) => out.push(Diagnostic::at(
                    Severity::Info,
                    Pass::BankConflict,
                    p.pc,
                    format!("shared {what}: conflict-free (1 word per bank)"),
                )),
                (_, Some(ways)) => out.push(Diagnostic::at(
                    Severity::Warning,
                    Pass::BankConflict,
                    p.pc,
                    format!("shared {what}: predicted {ways}-way bank conflict"),
                )),
                _ => {}
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::{CmpOp, KernelBuilder};

    fn predictions(kernel: &Kernel) -> Vec<MemPrediction> {
        let cfg = Cfg::build(kernel);
        predict(kernel, &cfg, &AnalysisConfig::default())
    }

    #[test]
    fn dense_w4_load_is_one_line() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        let off = b.shl(t, 2);
        let a = b.add(base, off);
        b.ld_global(Width::W4, a, 0);
        b.exit();
        let k = b.build().unwrap();
        let p = predictions(&k);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].pattern, AccessPattern::Affine { stride: 4 });
        assert_eq!(p[0].lines_per_warp, Some(1));
    }

    #[test]
    fn line_strided_store_fans_to_32() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        let off = b.mul(t, 128i64);
        let a = b.add(base, off);
        b.st_global(Width::W4, a, 0, 7i64);
        b.exit();
        let k = b.build().unwrap();
        let p = predictions(&k);
        assert_eq!(p[0].pattern, AccessPattern::Affine { stride: 128 });
        assert_eq!(p[0].lines_per_warp, Some(32));
        assert!(p[0].is_store);
    }

    #[test]
    fn uniform_address_broadcasts() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        b.ld_global(Width::W4, base, 16);
        b.exit();
        let k = b.build().unwrap();
        let p = predictions(&k);
        assert_eq!(p[0].pattern, AccessPattern::Broadcast);
        assert_eq!(p[0].lines_per_warp, Some(1));
    }

    #[test]
    fn loaded_address_is_unknown() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let idx = b.ld_global(Width::W8, base, 0);
        b.ld_global(Width::W4, idx, 0);
        b.exit();
        let k = b.build().unwrap();
        let p = predictions(&k);
        assert_eq!(p[1].pattern, AccessPattern::Unknown);
        assert_eq!(p[1].lines_per_warp, None);
    }

    #[test]
    fn shared_dense_is_conflict_free_and_row_stride_conflicts() {
        let mut b = KernelBuilder::new("k");
        b.alloc_shared(32 * 128);
        let lane = b.special(Special::LaneId);
        let dense = b.shl(lane, 2); // 4 B stride: one word per bank
        b.ld(Space::Shared, Width::W4, dense, 0);
        let strided = b.mul(lane, 128i64); // 128 B stride: all lanes hit bank 0
        b.ld(Space::Shared, Width::W4, strided, 0);
        b.exit();
        let k = b.build().unwrap();
        let p = predictions(&k);
        assert_eq!(p[0].conflict_ways, Some(1));
        assert_eq!(p[1].conflict_ways, Some(32));
    }

    #[test]
    fn w8_dense_access_spans_two_lines() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        let off = b.shl(t, 3);
        let a = b.add(base, off);
        b.ld_global(Width::W8, a, 0);
        b.exit();
        let k = b.build().unwrap();
        let p = predictions(&k);
        assert_eq!(p[0].pattern, AccessPattern::Affine { stride: 8 });
        // 32 lanes * 8 B = 256 B = two 128 B lines.
        assert_eq!(p[0].lines_per_warp, Some(2));
    }

    #[test]
    fn join_of_divergent_values_degrades_to_unknown() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        let p = b.setp(CmpOp::Lt, t, 8i64);
        let r = b.mov(0i64);
        b.if_then_else(p, |b| b.mov_to(r, 4i64), |b| b.mov_to(r, 8i64));
        let off = b.mul(t, r);
        let a = b.add(base, off);
        b.ld_global(Width::W4, a, 0);
        b.exit();
        let k = b.build().unwrap();
        let preds = predictions(&k);
        assert_eq!(preds[0].pattern, AccessPattern::Unknown);
    }

    #[test]
    fn negative_stride_predicts_like_positive() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::LaneId);
        let neg = b.sub(0i64, t);
        let off = b.mul(neg, 4i64);
        let a = b.add(base, off);
        b.ld_global(Width::W4, a, 0);
        b.exit();
        let k = b.build().unwrap();
        let p = predictions(&k);
        assert_eq!(p[0].pattern, AccessPattern::Affine { stride: -4 });
        // 128 B of densely-packed lanes, possibly split across a boundary.
        assert!(p[0].lines_per_warp.unwrap() <= 2);
    }

    #[test]
    fn alu_domain_rules() {
        use AbsVal::*;
        assert_eq!(eval_alu(AluOp::Add, Const(3), Const(4)), Const(7));
        assert_eq!(
            eval_alu(AluOp::Add, Affine { stride: 4 }, Uniform),
            Affine { stride: 4 }
        );
        assert_eq!(
            eval_alu(AluOp::Sub, Uniform, Affine { stride: 4 }),
            Affine { stride: -4 }
        );
        assert_eq!(
            eval_alu(AluOp::Sub, Affine { stride: 4 }, Affine { stride: 4 }),
            Uniform,
        );
        assert_eq!(
            eval_alu(AluOp::Mul, Affine { stride: 1 }, Const(12)),
            Affine { stride: 12 }
        );
        assert_eq!(
            eval_alu(AluOp::Shl, Affine { stride: 1 }, Const(2)),
            Affine { stride: 4 }
        );
        assert_eq!(eval_alu(AluOp::Mul, Affine { stride: 1 }, Uniform), Unknown);
        assert_eq!(eval_alu(AluOp::Div, Uniform, Const(2)), Uniform);
        assert_eq!(
            eval_alu(AluOp::Xor, Affine { stride: 1 }, Const(1)),
            Unknown
        );
        assert_eq!(
            eval_alu(AluOp::Mul, Affine { stride: 1 }, Const(0)),
            Uniform
        );
    }
}
