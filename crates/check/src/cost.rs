//! Arch-aware static cost model: per-load level assignment, unloaded-latency
//! lower bounds and stall-class forecasts, derived from an [`ArchDesc`].
//!
//! For every global/local load (and atomic) the model combines the symbolic
//! access pattern from [`crate::memlint`] with the machine description:
//!
//! - **Feasible levels** — the hierarchy levels the access can be *served*
//!   at ([`ArchDesc::feasible_levels`]): on a Fermi GF100 a cached global
//!   load can hit in L1, L2, or go to DRAM; on Kepler/Maxwell global loads
//!   skip the L1; on Tesla GT200 every load walks to the DRAM front; atomics
//!   bypass the L1 everywhere.
//! - **Unloaded floor** — the analytic best case
//!   ([`ArchDesc::unloaded_floor`]): a hit at the shallowest feasible level
//!   with empty queues. No dynamic execution of this load can complete
//!   faster, which is exactly the contract the differential harness
//!   (`static_vs_dynamic`) checks against pointer-chase measurements.
//! - **Stall-class forecast** — which limiter the paper's methodology
//!   (Fig. 7) predicts the load hits first under full-warp issue, from the
//!   predicted per-warp transaction count: a fan-out that exceeds the entry
//!   level's MSHR table saturates MSHRs; a large-but-smaller fan-out
//!   pressures the injection path; a coalesced access just waits on its own
//!   result (scoreboard).
//!
//! The forecast is a heuristic ranking, not a simulated fact — the
//! validation harness checks the *floor* and the *level set*, and reports
//! the stall class as evidence only.

use std::fmt::Write as _;

use gpu_arch::{ArchDesc, LevelKind};
use gpu_isa::{Kernel, Pc, Space};
use gpu_mem::PipelineSpace;

use crate::cfg::Cfg;
use crate::memlint::{self, AccessPattern};
use crate::AnalysisConfig;

/// The limiter a load is forecast to hit first under full-warp issue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallClass {
    /// The warp simply waits on its own result: latency-bound via the
    /// scoreboard, throughput unimpeded.
    Scoreboard,
    /// Per-warp fan-out pressures the SM's injection path into the
    /// interconnect before any table fills.
    IcntPressure,
    /// Per-warp fan-out exceeds the entry level's MSHR table: misses
    /// serialize on MSHR allocation.
    MshrPressure,
}

impl StallClass {
    /// Stable lowercase label.
    pub fn name(self) -> &'static str {
        match self {
            StallClass::Scoreboard => "scoreboard",
            StallClass::IcntPressure => "icnt-pressure",
            StallClass::MshrPressure => "mshr-pressure",
        }
    }
}

/// Static cost prediction for one global/local load or atomic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadCost {
    /// Instruction pc.
    pub pc: Pc,
    /// Memory space (global or local).
    pub space: Space,
    /// `true` for atomics (which bypass the L1 on every generation).
    pub is_atomic: bool,
    /// Inferred per-lane address pattern.
    pub pattern: AccessPattern,
    /// Predicted line transactions per fully-active warp, when the pattern
    /// is known.
    pub lines: Option<usize>,
    /// Predicted memory transactions per fully-active warp at the machine's
    /// transaction granule ([`ArchDesc::transaction_granule`]). Equal to
    /// `lines` on unsectored machines; on sectored machines this is the
    /// sector traffic the miss path actually carries (≥ `lines`).
    pub sectors: Option<usize>,
    /// Levels this access can be served at, in pipeline order.
    pub feasible: Vec<LevelKind>,
    /// Shallowest feasible level.
    pub entry: LevelKind,
    /// Analytic unloaded-latency lower bound in core cycles: a hit at the
    /// entry level with empty queues.
    pub floor: u64,
    /// Forecast limiter under full-warp issue.
    pub stall: StallClass,
}

/// Whole-kernel static cost prediction against one machine description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelCost {
    /// Analyzed kernel name.
    pub kernel: String,
    /// Machine description name.
    pub arch: String,
    /// Per-load predictions, in pc order.
    pub loads: Vec<LoadCost>,
}

impl KernelCost {
    /// The tightest whole-kernel memory-latency lower bound: the largest
    /// per-load floor (every load must complete at least once).
    pub fn max_floor(&self) -> Option<u64> {
        self.loads.iter().map(|l| l.floor).max()
    }

    /// Renders the prediction table as human-readable text.
    pub fn to_human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} on {}: {} memory operation(s)",
            self.kernel,
            self.arch,
            self.loads.len()
        );
        for l in &self.loads {
            let levels: Vec<&str> = l.feasible.iter().map(|k| k.label()).collect();
            let lines = l.lines.map_or("?".to_string(), |n| n.to_string());
            let what = if l.is_atomic { "atomic" } else { "load" };
            let sectors = match (l.sectors, l.lines) {
                (Some(s), Some(n)) if s != n => format!(" ({s} sector(s))"),
                _ => String::new(),
            };
            let _ = writeln!(
                out,
                "  pc {:>3}: {} {what}: levels [{}], floor {} cyc @ {}, \
                 {} line(s)/warp{}, stall {}",
                l.pc,
                l.space,
                levels.join(", "),
                l.floor,
                l.entry.label(),
                lines,
                sectors,
                l.stall.name(),
            );
        }
        out
    }
}

/// The pipeline space a global/local instruction travels in.
fn pipeline_space(space: Space) -> Option<PipelineSpace> {
    match space {
        Space::Global => Some(PipelineSpace::Global),
        Space::Local => Some(PipelineSpace::Local),
        Space::Shared => None,
    }
}

/// Forecast the limiter for a load with `lines` predicted transactions.
fn stall_class(desc: &ArchDesc, entry: LevelKind, lines: Option<usize>) -> StallClass {
    let Some(lines) = lines else {
        return StallClass::Scoreboard; // unknown pattern: no fan-out claim
    };
    let mshr_entries = desc.level(entry).map_or(1, |l| l.mshr_config().entries);
    if lines >= mshr_entries.max(2) {
        StallClass::MshrPressure
    } else if lines >= 8 {
        StallClass::IcntPressure
    } else {
        StallClass::Scoreboard
    }
}

/// Predicts per-load costs for `kernel` against the machine `desc`.
pub fn kernel_cost(kernel: &Kernel, desc: &ArchDesc) -> KernelCost {
    let cfg = Cfg::build(kernel);
    let config = AnalysisConfig {
        line_size: desc.line_size,
        warp_size: desc.sm.warp_size,
        ..AnalysisConfig::default()
    };
    // On sectored machines the coalescer emits granule-sized transactions;
    // a second pass at the granule predicts the sector traffic the miss
    // path carries (identical to the line pass when unsectored).
    let granule = desc.transaction_granule();
    let sector_pass: Option<Vec<_>> = (granule != desc.line_size).then(|| {
        let sector_config = AnalysisConfig {
            line_size: granule,
            ..config
        };
        memlint::predict(kernel, &cfg, &sector_config)
    });
    let mut loads = Vec::new();
    for (i, p) in memlint::predict(kernel, &cfg, &config)
        .into_iter()
        .enumerate()
    {
        // Stores never produce a completed-load record and shared accesses
        // never leave the SM: only loads and atomics have a dynamic ground
        // truth to predict.
        if p.is_store && !p.is_atomic {
            continue;
        }
        let Some(space) = pipeline_space(p.space) else {
            continue;
        };
        let sectors = match &sector_pass {
            Some(pass) => {
                debug_assert_eq!(pass[i].pc, p.pc, "passes walk the same accesses");
                pass[i].lines_per_warp
            }
            None => p.lines_per_warp,
        };
        let feasible = desc.feasible_levels(space, p.is_atomic);
        let entry = desc.entry_level(space, p.is_atomic);
        let floor = desc.unloaded_floor(space, p.is_atomic);
        loads.push(LoadCost {
            pc: p.pc,
            space: p.space,
            is_atomic: p.is_atomic,
            pattern: p.pattern,
            lines: p.lines_per_warp,
            sectors,
            // MSHR entries and injection slots are consumed per transaction,
            // which on sectored machines means per sector.
            stall: stall_class(desc, entry, sectors),
            feasible,
            entry,
            floor,
        });
    }
    KernelCost {
        kernel: kernel.name().to_string(),
        arch: desc.name.clone(),
        loads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::{KernelBuilder, Special, Width};

    fn strided_kernel(stride: i64) -> Kernel {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        let off = b.mul(t, stride);
        let a = b.add(base, off);
        b.ld_global(Width::W4, a, 0);
        b.exit();
        b.build().unwrap()
    }

    // A Fermi-class description (L1 serves global loads) without depending
    // on latency-core, which would be a dependency cycle; the full preset
    // matrix is exercised by the differential harness in `gpu-bench`.
    fn desc_with_l1() -> ArchDesc {
        gpu_sim::GpuConfig::fermi_gf100().arch_desc()
    }

    #[test]
    fn coalesced_load_is_scoreboard_bound() {
        let cost = kernel_cost(&strided_kernel(4), &desc_with_l1());
        assert_eq!(cost.loads.len(), 1);
        let l = &cost.loads[0];
        assert_eq!(l.lines, Some(1));
        assert_eq!(l.stall, StallClass::Scoreboard);
        assert_eq!(l.entry, l.feasible[0]);
        assert!(l.floor > 0);
        assert_eq!(
            Some(l.floor),
            desc_with_l1().unloaded_latency(l.entry),
            "floor is the entry-level unloaded latency"
        );
    }

    #[test]
    fn fully_strided_load_saturates_mshrs() {
        let desc = desc_with_l1();
        let cost = kernel_cost(&strided_kernel(128), &desc);
        let l = &cost.loads[0];
        assert_eq!(l.lines, Some(32));
        assert_eq!(l.stall, StallClass::MshrPressure, "32 lines > MSHR table");
    }

    #[test]
    fn atomics_bypass_the_l1() {
        let desc = desc_with_l1();
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        let off = b.shl(t, 2);
        let a = b.add(base, off);
        b.atom_add(Width::W4, a, 0, 1i64);
        b.exit();
        let k = b.build().unwrap();
        let cost = kernel_cost(&k, &desc);
        assert_eq!(cost.loads.len(), 1);
        let l = &cost.loads[0];
        assert!(l.is_atomic);
        assert!(
            !l.feasible.contains(&LevelKind::L1),
            "atomics never hit in L1: {:?}",
            l.feasible
        );
        assert!(l.feasible.contains(&LevelKind::DramFront));
        assert!(
            l.floor > desc.unloaded_floor(PipelineSpace::Global, false),
            "bypassing the L1 raises the floor on a cached-L1 machine"
        );
    }

    #[test]
    fn human_rendering_lists_each_load() {
        let cost = kernel_cost(&strided_kernel(4), &desc_with_l1());
        let text = cost.to_human();
        assert!(text.contains("1 memory operation(s)"), "{text}");
        assert!(text.contains("stall scoreboard"), "{text}");
    }

    /// The same Fermi-class machine with 32-byte sectors on both caches.
    fn sectored_desc() -> ArchDesc {
        let mut desc = desc_with_l1();
        for level in &mut desc.levels {
            if let Some(g) = &mut level.geom {
                g.sector_bytes = Some(32);
            }
        }
        desc.validate().expect("sectored variant stays valid");
        desc
    }

    #[test]
    fn sectors_match_lines_on_unsectored_machines() {
        for stride in [4, 32, 128] {
            let cost = kernel_cost(&strided_kernel(stride), &desc_with_l1());
            let l = &cost.loads[0];
            assert_eq!(l.sectors, l.lines, "stride {stride}");
        }
    }

    #[test]
    fn sectored_machine_forecasts_sector_traffic() {
        // Stride 32 with 4-byte lanes: 32 lanes touch 8 distinct 128-byte
        // lines but 32 distinct 32-byte sectors.
        let cost = kernel_cost(&strided_kernel(32), &sectored_desc());
        let l = &cost.loads[0];
        assert_eq!(l.lines, Some(8));
        assert_eq!(l.sectors, Some(32));
        // A dense coalesced access still spans one line = four sectors.
        let dense = kernel_cost(&strided_kernel(4), &sectored_desc());
        let d = &dense.loads[0];
        assert_eq!(d.lines, Some(1));
        assert_eq!(d.sectors, Some(4));
        // The rendering surfaces the divergence.
        assert!(
            cost.to_human().contains("(32 sector(s))"),
            "{}",
            cost.to_human()
        );
    }

    #[test]
    fn stall_forecast_uses_sector_fanout_on_sectored_machines() {
        // 32 sectors ≥ the 32-entry MSHR table: sector counting flips the
        // forecast to MSHR pressure where line counting (8) would not.
        let sectored = kernel_cost(&strided_kernel(32), &sectored_desc());
        assert_eq!(sectored.loads[0].stall, StallClass::MshrPressure);
        let unsectored = kernel_cost(&strided_kernel(32), &desc_with_l1());
        assert_eq!(unsectored.loads[0].stall, StallClass::IcntPressure);
    }
}
