//! Control-flow-graph construction over kernel instruction sequences.
//!
//! Basic blocks are maximal straight-line runs; edges follow branch targets
//! and fall-through. Guarded branches contribute both the taken and the
//! fall-through edge (divergence means *some* lanes can take each side), so
//! every dataflow pass built on this CFG is conservative with respect to the
//! SIMT execution model in `gpu_isa::exec`.

use gpu_isa::{Instr, Kernel, Pc};

/// One basic block: the half-open instruction range `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction PC.
    pub start: Pc,
    /// One past the last instruction PC.
    pub end: Pc,
    /// Successor block indices.
    pub succs: Vec<usize>,
    /// Predecessor block indices.
    pub preds: Vec<usize>,
}

/// A kernel's control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<Block>,
    block_of: Vec<usize>,
    reachable: Vec<bool>,
}

impl Cfg {
    /// Builds the CFG of `kernel`.
    ///
    /// Works on any non-empty instruction sequence, including ones that fail
    /// [`Kernel::validate`]: out-of-range branch targets simply contribute no
    /// edge (the structure pass reports them separately).
    pub fn build(kernel: &Kernel) -> Self {
        let instrs = kernel.instrs();
        let n = instrs.len();

        // Leaders: entry, every in-range branch target, every instruction
        // after a control-flow instruction.
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (pc, instr) in instrs.iter().enumerate() {
            match instr {
                Instr::Branch { target, .. } => {
                    if *target < n {
                        leader[*target] = true;
                    }
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Instr::Exit if pc + 1 < n => {
                    leader[pc + 1] = true;
                }
                _ => {}
            }
        }

        // Blocks and the pc → block map.
        let mut blocks: Vec<Block> = Vec::new();
        let mut block_of = vec![0usize; n];
        for pc in 0..n {
            if leader[pc] {
                blocks.push(Block {
                    start: pc,
                    end: pc + 1,
                    succs: Vec::new(),
                    preds: Vec::new(),
                });
            } else if let Some(b) = blocks.last_mut() {
                b.end = pc + 1;
            }
            block_of[pc] = blocks.len().saturating_sub(1);
        }

        // Edges.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (bi, block) in blocks.iter().enumerate() {
            let last = block.end - 1;
            match &instrs[last] {
                Instr::Exit => {}
                Instr::Branch { guard, target, .. } => {
                    if *target < n {
                        edges.push((bi, block_of[*target]));
                    }
                    if guard.is_some() && block.end < n {
                        edges.push((bi, block_of[block.end]));
                    }
                }
                _ => {
                    if block.end < n {
                        edges.push((bi, block_of[block.end]));
                    }
                }
            }
        }
        for (from, to) in edges {
            if !blocks[from].succs.contains(&to) {
                blocks[from].succs.push(to);
            }
            if !blocks[to].preds.contains(&from) {
                blocks[to].preds.push(from);
            }
        }

        // Reachability from the entry block.
        let mut reachable = vec![false; blocks.len()];
        if !blocks.is_empty() {
            let mut stack = vec![0usize];
            while let Some(b) = stack.pop() {
                if std::mem::replace(&mut reachable[b], true) {
                    continue;
                }
                stack.extend(blocks[b].succs.iter().copied());
            }
        }

        Cfg {
            blocks,
            block_of,
            reachable,
        }
    }

    /// The blocks, in instruction order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Index of the block containing `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn block_of(&self, pc: Pc) -> usize {
        self.block_of[pc]
    }

    /// Returns `true` if block `b` is reachable from the entry.
    pub fn is_reachable(&self, b: usize) -> bool {
        self.reachable[b]
    }

    /// Indices of blocks unreachable from the entry.
    pub fn unreachable_blocks(&self) -> Vec<usize> {
        (0..self.blocks.len())
            .filter(|&b| !self.reachable[b])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::{CmpOp, KernelBuilder, Operand, Special};

    fn straight_line() -> Kernel {
        let mut b = KernelBuilder::new("s");
        b.mov(Operand::Imm(1));
        b.mov(Operand::Imm(2));
        b.exit();
        b.build().unwrap()
    }

    #[test]
    fn straight_line_is_one_block() {
        let k = straight_line();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.blocks().len(), 1);
        assert_eq!(cfg.blocks()[0].start, 0);
        assert_eq!(cfg.blocks()[0].end, 3);
        assert!(cfg.blocks()[0].succs.is_empty());
        assert!(cfg.unreachable_blocks().is_empty());
    }

    #[test]
    fn if_then_produces_diamond_edges() {
        let mut b = KernelBuilder::new("k");
        let t = b.special(Special::GlobalTid);
        let p = b.setp(CmpOp::Lt, t, Operand::Imm(8));
        b.if_then(p, |b| {
            b.mov(Operand::Imm(1));
        });
        b.exit();
        let k = b.build().unwrap();
        let cfg = Cfg::build(&k);
        // Blocks: [entry..branch], [body], [exit].
        assert_eq!(cfg.blocks().len(), 3);
        let entry = cfg.block_of(0);
        assert_eq!(cfg.blocks()[entry].succs.len(), 2, "taken + fallthrough");
        let exit_b = cfg.block_of(k.len() - 1);
        assert_eq!(cfg.blocks()[exit_b].preds.len(), 2);
        assert!((0..cfg.blocks().len()).all(|b| cfg.is_reachable(b)));
    }

    #[test]
    fn loop_backedge_closes_cycle() {
        let mut b = KernelBuilder::new("k");
        let i = b.mov(Operand::Imm(0));
        b.while_loop(
            |b| b.setp(CmpOp::Lt, i, Operand::Imm(4)),
            |b| {
                b.alu_to(gpu_isa::AluOp::Add, i, i, Operand::Imm(1));
            },
        );
        b.exit();
        let k = b.build().unwrap();
        let cfg = Cfg::build(&k);
        let head = cfg.block_of(1); // setp at pc 1 starts the loop head block
        assert!(
            cfg.blocks()[head].preds.len() >= 2,
            "entry edge and backedge"
        );
        assert!((0..cfg.blocks().len()).all(|b| cfg.is_reachable(b)));
    }

    #[test]
    fn code_after_infinite_loop_is_unreachable() {
        let src = ".kernel k\nloop:\nbra loop\nexit\n";
        let k = gpu_isa::parse_kernel(src).unwrap();
        let cfg = Cfg::build(&k);
        let unreachable = cfg.unreachable_blocks();
        assert_eq!(unreachable.len(), 1);
        assert_eq!(cfg.blocks()[unreachable[0]].start, 1, "the trailing exit");
    }

    #[test]
    fn out_of_range_target_contributes_no_edge() {
        let k = Kernel::from_parts(
            "bad",
            vec![
                Instr::Branch {
                    guard: None,
                    target: 99,
                    reconverge: gpu_isa::RECONV_NONE,
                },
                Instr::Exit,
            ],
            0,
            0,
            0,
        );
        let cfg = Cfg::build(&k);
        assert!(cfg.blocks()[0].succs.is_empty());
        assert_eq!(cfg.unreachable_blocks().len(), 1);
    }
}
