//! Concurrency lints: intra-block shared-memory race detection and
//! barrier-divergence detection.
//!
//! Both passes consume the symbolic analysis from [`crate::symaddr`]:
//!
//! - **Shared races**: two shared-memory accesses (at least one a store)
//!   with no `bar.sync` between them race when their *thread-affine*
//!   address forms `K + s·t` (t = thread id within the CTA) can overlap
//!   for two distinct threads. The pass is a forward dataflow over the CFG
//!   carrying the still-unsynchronized ("live") shared writes and reads;
//!   a barrier kills both sets. Differences that are not provably constant
//!   (symbolic loop counters, relational guards the analyzer cannot see)
//!   stay silent by design: the lint reports only arithmetically certain
//!   overlaps, so a finding is actionable evidence, not a maybe.
//! - **Barrier divergence**: a `bar.sync` inside a divergent region (between
//!   a lane-varying branch and its reconvergence point) may be reached by
//!   only part of the warp — deadlock or undefined synchronization on real
//!   machines.
//!
//! Known limitations, accepted for precision elsewhere: guard predicates
//! are not modeled (two stores both under `if (tid == 0)` to one address
//! are reported even though only one lane executes them), and races between
//! different *iterations* of a loop are not tracked (backedges do not
//! propagate live access sets, because loop-scoped symbolic terms from
//! different iterations would compare as spuriously equal).

use std::collections::BTreeSet;

use gpu_isa::{Instr, Kernel, Pc, Space};

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, Pass, Severity};
use crate::symaddr::{LinExpr, SymAnalysis, SymVal, Term};

/// The per-thread address slope of a thread-affine access: `addr(t) = K + s·t`.
///
/// With the warp decompositions `tid = TidBase + Lane` and
/// `gtid = GtidBase + Lane`, an expression is affine in the CTA-local
/// thread id exactly when its `Lane` coefficient equals the sum of its
/// `TidBase` and `GtidBase` coefficients (the residual lane dependence
/// vanishes); the slope is then that `Lane` coefficient.
fn thread_slope(e: &LinExpr) -> Option<i64> {
    let cl = e.lane_coeff();
    let ct = e.coeff(Term::TidBase);
    let cg = e.coeff(Term::GtidBase);
    (cl == ct.wrapping_add(cg)).then_some(cl)
}

/// Smallest-|d| witness that threads `d` apart overlap: an integer `d != 0`
/// with `-wb < c + s*d < wa`, for accesses `A(t) = KA + s·t` (width `wa`)
/// and `B(u) = KB + s·u` (width `wb`) with `c = KA - KB` and `d = t - u`.
fn overlap_witness(c: i64, s: i64, wa: i64, wb: i64) -> Option<i64> {
    let (c, s, wa, wb) = (c as i128, (s as i128).abs(), wa as i128, wb as i128);
    if s == 0 {
        return (-wb < c && c < wa).then_some(1);
    }
    // -wb + 1 <= c + s*d <= wa - 1
    let lo = -wb + 1 - c;
    let hi = wa - 1 - c;
    let d_min = lo.div_euclid(s) + i128::from(lo.rem_euclid(s) != 0);
    let d_max = hi.div_euclid(s);
    if d_min > d_max {
        return None;
    }
    // Nearest-to-zero nonzero d in [d_min, d_max].
    let best = if d_min > 0 {
        d_min
    } else if d_max < 0 {
        d_max
    } else if d_max >= 1 {
        1
    } else if d_min <= -1 {
        -1
    } else {
        return None; // range is exactly {0}
    };
    i64::try_from(best).ok()
}

/// One shared-memory access in program order, with its solved address.
struct SharedAcc {
    pc: Pc,
    is_store: bool,
    width: i64,
    /// Thread-affine form: the full linear expression plus the slope.
    affine: Option<(LinExpr, i64)>,
}

/// Do accesses `a` and `b` certainly overlap for two *distinct* threads?
fn races(a: &SharedAcc, b: &SharedAcc) -> Option<i64> {
    let (ea, sa) = a.affine.as_ref()?;
    let (eb, sb) = b.affine.as_ref()?;
    if sa != sb {
        return None; // differing slopes: overlap not provable, stay silent
    }
    let c = ea.sub(eb).as_const()?;
    overlap_witness(c, *sa, a.width, b.width)
}

/// Runs both concurrency passes, appending findings to `out`.
pub fn concurrency_pass(kernel: &Kernel, cfg: &Cfg, sym: &SymAnalysis, out: &mut Vec<Diagnostic>) {
    barrier_divergence_pass(kernel, cfg, sym, out);
    shared_race_pass(kernel, cfg, sym, out);
}

fn barrier_divergence_pass(
    kernel: &Kernel,
    cfg: &Cfg,
    sym: &SymAnalysis,
    out: &mut Vec<Diagnostic>,
) {
    for (pc, instr) in kernel.instrs().iter().enumerate() {
        if !matches!(instr, Instr::Bar) {
            continue;
        }
        let b = cfg.block_of(pc);
        if cfg.is_reachable(b) && sym.divergent_region.get(b).copied().unwrap_or(false) {
            out.push(Diagnostic::at(
                Severity::Warning,
                Pass::BarrierDivergence,
                pc,
                "bar.sync inside divergent control flow: a lane-varying branch \
                 dominates this barrier, so a warp can reach it with only part \
                 of its lanes"
                    .to_string(),
            ));
        }
    }
}

fn shared_race_pass(kernel: &Kernel, cfg: &Cfg, sym: &SymAnalysis, out: &mut Vec<Diagnostic>) {
    let instrs = kernel.instrs();
    let nb = cfg.blocks().len();

    // Shared accesses with solved thread-affine forms, indexed densely.
    let accs: Vec<SharedAcc> = sym
        .accesses
        .iter()
        .filter(|a| a.mem.space == Space::Shared)
        .map(|a| SharedAcc {
            pc: a.pc,
            is_store: a.mem.is_store,
            width: a.mem.width.bytes() as i64,
            affine: match &a.addr {
                SymVal::Lin(e) => thread_slope(e).map(|s| (e.clone(), s)),
                SymVal::Varying => None,
            },
        })
        .collect();
    if accs.is_empty() {
        return;
    }
    let acc_at = |pc: Pc| accs.iter().position(|a| a.pc == pc);

    // Forward dataflow: per block-entry, the sets of shared writes/reads
    // not yet separated from this point by a barrier. Backedges do not
    // propagate (see module docs).
    type State = (BTreeSet<usize>, BTreeSet<usize>); // (live writes, live reads)
    let mut entry: Vec<State> = vec![(BTreeSet::new(), BTreeSet::new()); nb];
    let mut findings: BTreeSet<(Pc, Pc, i64)> = BTreeSet::new();

    let mut changed = true;
    while changed {
        changed = false;
        for bi in 0..nb {
            if !cfg.is_reachable(bi) {
                continue;
            }
            let (mut writes, mut reads) = entry[bi].clone();
            let block = &cfg.blocks()[bi];
            for (pc, instr) in instrs.iter().enumerate().take(block.end).skip(block.start) {
                match instr {
                    Instr::Bar => {
                        writes.clear();
                        reads.clear();
                    }
                    _ => {
                        let Some(i) = acc_at(pc) else { continue };
                        let acc = &accs[i];
                        if acc.is_store {
                            for &j in writes.iter().chain(reads.iter()) {
                                if let Some(d) = races(acc, &accs[j]) {
                                    findings.insert((accs[j].pc, acc.pc, d));
                                }
                            }
                            // A store also races with itself across threads
                            // (e.g. every thread writing element tid+1 while
                            // a neighbor writes the overlapping bytes).
                            if let Some(d) = races(acc, acc) {
                                findings.insert((acc.pc, acc.pc, d));
                            }
                            writes.insert(i);
                        } else {
                            for &j in &writes {
                                if let Some(d) = races(acc, &accs[j]) {
                                    findings.insert((accs[j].pc, acc.pc, d));
                                }
                            }
                            reads.insert(i);
                        }
                    }
                }
            }
            for &s in &block.succs {
                if s <= bi {
                    continue; // backedge
                }
                let st = &mut entry[s];
                let before = (st.0.len(), st.1.len());
                st.0.extend(writes.iter().copied());
                st.1.extend(reads.iter().copied());
                if (st.0.len(), st.1.len()) != before {
                    changed = true;
                }
            }
        }
    }

    for (pc_a, pc_b, d) in findings {
        let i = acc_at(pc_a).expect("finding refers to a known access");
        let j = acc_at(pc_b).expect("finding refers to a known access");
        let kind = match (accs[i].is_store, accs[j].is_store) {
            (true, true) => "write/write",
            _ => "read/write",
        };
        let other = if pc_a == pc_b {
            "itself".to_string()
        } else {
            format!("the shared access at pc {pc_a}")
        };
        out.push(Diagnostic::at(
            Severity::Warning,
            Pass::SharedRace,
            pc_b,
            format!(
                "shared-memory {kind} race: this access overlaps {other} for \
                 threads {d} apart, with no barrier between them"
            ),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symaddr;
    use gpu_isa::{CmpOp, KernelBuilder, Operand, Space, Special, Width};

    fn lint(kernel: &Kernel) -> Vec<Diagnostic> {
        let cfg = Cfg::build(kernel);
        let sym = symaddr::analyze(kernel, &cfg);
        let mut out = Vec::new();
        concurrency_pass(kernel, &cfg, &sym, &mut out);
        out
    }

    fn count(diags: &[Diagnostic], pass: Pass) -> usize {
        diags.iter().filter(|d| d.pass == pass).count()
    }

    #[test]
    fn neighbor_stores_race() {
        // Thread t writes s[t] and s[t+1]: W/W overlap at distance 1.
        let mut b = KernelBuilder::new("k");
        b.alloc_shared(256);
        let t = b.special(Special::TidX);
        let a0 = b.shl(t, 2);
        b.st(Space::Shared, Width::W4, a0, 0, 1i64);
        b.st(Space::Shared, Width::W4, a0, 4, 2i64);
        b.exit();
        let k = b.build().unwrap();
        let d = lint(&k);
        assert!(count(&d, Pass::SharedRace) >= 1, "{d:?}");
    }

    #[test]
    fn read_of_neighbor_write_races() {
        let mut b = KernelBuilder::new("k");
        b.alloc_shared(256);
        let t = b.special(Special::TidX);
        let a0 = b.shl(t, 2);
        b.st(Space::Shared, Width::W4, a0, 0, 1i64);
        b.ld(Space::Shared, Width::W4, a0, 4); // neighbor's slot, no barrier
        b.exit();
        let k = b.build().unwrap();
        let d = lint(&k);
        assert_eq!(count(&d, Pass::SharedRace), 1, "{d:?}");
        assert!(d.iter().any(|x| x.message.contains("read/write")));
    }

    #[test]
    fn barrier_separates_the_accesses() {
        let mut b = KernelBuilder::new("k");
        b.alloc_shared(256);
        let t = b.special(Special::TidX);
        let a0 = b.shl(t, 2);
        b.st(Space::Shared, Width::W4, a0, 0, 1i64);
        b.bar();
        b.ld(Space::Shared, Width::W4, a0, 4);
        b.exit();
        let k = b.build().unwrap();
        let d = lint(&k);
        assert_eq!(count(&d, Pass::SharedRace), 0, "{d:?}");
    }

    #[test]
    fn disjoint_slots_do_not_race() {
        let mut b = KernelBuilder::new("k");
        b.alloc_shared(256);
        let t = b.special(Special::TidX);
        let a0 = b.shl(t, 2);
        b.st(Space::Shared, Width::W4, a0, 0, 1i64);
        b.ld(Space::Shared, Width::W4, a0, 0); // own slot only
        b.exit();
        let k = b.build().unwrap();
        let d = lint(&k);
        assert_eq!(count(&d, Pass::SharedRace), 0, "{d:?}");
    }

    #[test]
    fn broadcast_store_races_with_itself() {
        let mut b = KernelBuilder::new("k");
        b.alloc_shared(64);
        let z = b.mov(0i64);
        b.st(Space::Shared, Width::W4, z, 0, 7i64);
        b.exit();
        let k = b.build().unwrap();
        let d = lint(&k);
        assert_eq!(count(&d, Pass::SharedRace), 1, "{d:?}");
        assert!(d[0].message.contains("itself"));
    }

    #[test]
    fn symbolic_difference_stays_silent() {
        // reduce-style peer read: s[4*(tid+stride)] vs own write s[4*tid],
        // with `stride` a kernel parameter. The difference 4·stride is not
        // a provable constant, so the lint must not guess.
        let mut b = KernelBuilder::new("k");
        b.alloc_shared(1024);
        let stride = b.param(0);
        let t = b.special(Special::TidX);
        let own = b.shl(t, 2);
        let peer_idx = b.add(t, stride);
        let peer = b.shl(peer_idx, 2);
        b.st(Space::Shared, Width::W4, own, 0, 1i64);
        b.ld(Space::Shared, Width::W4, peer, 0);
        b.exit();
        let k = b.build().unwrap();
        let d = lint(&k);
        assert_eq!(count(&d, Pass::SharedRace), 0, "{d:?}");
    }

    #[test]
    fn barrier_in_divergent_branch_is_flagged() {
        let mut b = KernelBuilder::new("k");
        let t = b.special(Special::TidX);
        let p = b.setp(CmpOp::Lt, t, 16i64);
        b.if_then(p, |b| b.bar());
        b.exit();
        let k = b.build().unwrap();
        let d = lint(&k);
        assert_eq!(count(&d, Pass::BarrierDivergence), 1, "{d:?}");
    }

    #[test]
    fn barrier_in_data_dependent_loop_is_flagged() {
        // Trip count depends on a loaded value: lanes exit at different
        // iterations, so the barrier in the body is divergent.
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        let off = b.shl(t, 2);
        let a = b.add(base, off);
        let bound = b.ld_global(Width::W4, a, 0);
        let i = b.mov(0i64);
        let lp = b.pred();
        b.while_loop(
            |b| {
                b.setp_to(lp, CmpOp::Lt, i, bound);
                lp
            },
            |b| {
                b.bar();
                b.alu_to(gpu_isa::AluOp::Add, i, i, Operand::Imm(1));
            },
        );
        b.exit();
        let k = b.build().unwrap();
        let d = lint(&k);
        assert_eq!(count(&d, Pass::BarrierDivergence), 1, "{d:?}");
    }

    #[test]
    fn uniform_branch_barrier_is_clean() {
        let mut b = KernelBuilder::new("k");
        let n = b.param(0);
        let p = b.setp(CmpOp::Gt, n, 0i64);
        b.if_then(p, |b| b.bar());
        b.exit();
        let k = b.build().unwrap();
        let d = lint(&k);
        assert_eq!(count(&d, Pass::BarrierDivergence), 0, "{d:?}");
    }

    #[test]
    fn uniform_loop_barrier_is_clean() {
        let mut b = KernelBuilder::new("k");
        b.for_range(Operand::Imm(0), Operand::Imm(4), 1, |b, _i| {
            b.bar();
        });
        b.exit();
        let k = b.build().unwrap();
        let d = lint(&k);
        assert_eq!(count(&d, Pass::BarrierDivergence), 0, "{d:?}");
    }

    #[test]
    fn overlap_witness_math() {
        // Same width-4 slots, stride 4, offset 4 apart: d = -1 aligns them.
        assert_eq!(overlap_witness(4, 4, 4, 4), Some(-1));
        // Stride 4, width 4, same base: no nonzero d overlaps.
        assert_eq!(overlap_witness(0, 4, 4, 4), None);
        // Broadcast (slope 0), same address: any two threads collide.
        assert_eq!(overlap_witness(0, 0, 4, 4), Some(1));
        // Broadcast, disjoint addresses: never.
        assert_eq!(overlap_witness(16, 0, 4, 4), None);
        // Misaligned stride-8 writes of width 8 at offset 4: d = 0 only...
        assert_eq!(overlap_witness(4, 8, 8, 8), Some(-1));
        // Wide store over narrow slots.
        assert_eq!(overlap_witness(0, 4, 8, 4), Some(1));
    }
}
