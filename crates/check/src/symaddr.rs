//! Symbolic per-warp address analysis: the solver behind the memory and
//! concurrency lints.
//!
//! Every register is tracked as a **linear expression** over a small set of
//! symbolic terms — the lane index, the warp-uniform bases of `tid`/`gtid`,
//! kernel parameters, loop iteration counters, and opaque-but-warp-uniform
//! values — so an address like `buf + 4*tid + 4*stride` solves to
//! `Param(0) + 4·TidBase + 4·Lane + 4·LoopPhi(stride)` instead of
//! collapsing to "unknown". From that form the analyzer derives:
//!
//! - the **per-lane stride** (`c1` in `base + c1·lane + c2·iter`), which
//!   feeds the exact transaction/bank-conflict prediction in
//!   [`crate::memlint`];
//! - the **per-iteration stride** (`c2`, the [`Term::Iter`] coefficient),
//!   reported as evidence alongside coalescing verdicts;
//! - **warp-uniformity of predicates**, which drives the divergence
//!   analysis the barrier and race lints in [`crate::concurrency`] rest on.
//!
//! The analysis is a forward dataflow fixpoint over the [`Cfg`] with three
//! non-standard ingredients:
//!
//! 1. **Loop widening**: at a loop head, a value that advances by a
//!    constant `c` per iteration becomes `entry + c·Iter(head)`; a value
//!    that changes non-uniformly but stays warp-uniform becomes an opaque
//!    [`Term::LoopPhi`]; anything else degrades to [`SymVal::Varying`].
//! 2. **Uniform joins preserve lane structure**: when two warp-level values
//!    with the *same* lane stride merge at a join all lanes reach together,
//!    the merge is `Phi(join) + stride·Lane` — still a predictable access
//!    pattern — rather than "unknown".
//! 3. **Iterated divergence**: a join mixes lanes only if it merges paths
//!    of a branch whose guard actually diverges. The divergent-branch set
//!    starts empty and grows monotonically: each round re-runs the fixpoint
//!    under the current set and adds branches whose guards evaluate
//!    lane-varying, until stable.

use gpu_isa::{AluOp, Instr, Kernel, MemRef, Operand, Pc, Reg, Special, MAX_PREDS, RECONV_NONE};

use crate::cfg::Cfg;

/// One symbolic term a register value can be linear in.
///
/// Every term is **warp-uniform** except [`Term::Lane`]; a [`LinExpr`]'s
/// lane behavior is therefore entirely in its `Lane` coefficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// The lane index within the warp (`0..warp_size`).
    Lane,
    /// Warp-uniform part of `%tid.x`: `tid = TidBase + Lane`.
    TidBase,
    /// Warp-uniform part of `%gtid`: `gtid = GtidBase + Lane`.
    GtidBase,
    /// `%ctaid.x` (uniform across the CTA).
    CtaId,
    /// `%ntid.x`.
    NTid,
    /// `%nctaid.x`.
    NCta,
    /// Kernel parameter slot.
    Param(u16),
    /// Iteration counter of the loop headed at block `b`: 0 on entry,
    /// +1 per backedge traversal.
    Iter(u32),
    /// Unknown warp-uniform loop-carried value of register `r` at the head
    /// of the loop at block `b`.
    LoopPhi(u32, Reg),
    /// Unknown warp-uniform join value of register `r` at block `b`
    /// (a join all lanes reach together).
    Phi(u32, Reg),
    /// Warp-uniform result of a non-affine operation at `pc` (division,
    /// masking, shifts by non-constants, ...).
    Opaque(u32),
}

impl Term {
    /// The block that scopes this term, if any: loop-carried and join terms
    /// are only meaningful inside the region that defines them.
    fn def_block(self) -> Option<usize> {
        match self {
            Term::Iter(b) | Term::LoopPhi(b, _) | Term::Phi(b, _) => Some(b as usize),
            _ => None,
        }
    }
}

/// A linear expression `k + Σ coeff·term` with canonical (sorted, non-zero)
/// terms. Arithmetic is wrapping 64-bit, mirroring the executor.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LinExpr {
    /// Constant part.
    pub k: i64,
    /// Sorted `(term, coefficient)` pairs, coefficients non-zero.
    pub terms: Vec<(Term, i64)>,
}

impl LinExpr {
    /// The constant `k`.
    pub fn constant(k: i64) -> Self {
        LinExpr {
            k,
            terms: Vec::new(),
        }
    }

    /// A single term with coefficient 1.
    pub fn term(t: Term) -> Self {
        LinExpr {
            k: 0,
            terms: vec![(t, 1)],
        }
    }

    /// Returns `Some(k)` when the expression is a plain constant.
    pub fn as_const(&self) -> Option<i64> {
        self.terms.is_empty().then_some(self.k)
    }

    /// Coefficient of `t` (zero when absent).
    pub fn coeff(&self, t: Term) -> i64 {
        self.terms
            .iter()
            .find(|(term, _)| *term == t)
            .map_or(0, |(_, c)| *c)
    }

    /// Per-lane byte stride: the coefficient of [`Term::Lane`].
    pub fn lane_coeff(&self) -> i64 {
        self.coeff(Term::Lane)
    }

    /// Per-iteration stride of the innermost loop the expression depends
    /// on, if any: the coefficient of the highest-numbered `Iter` term.
    pub fn iter_coeff(&self) -> Option<i64> {
        self.terms
            .iter()
            .rfind(|(t, _)| matches!(t, Term::Iter(_)))
            .map(|(_, c)| *c)
    }

    fn combine(&self, other: &Self, sign: i64) -> Self {
        let mut terms = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() || j < other.terms.len() {
            let take_left = j >= other.terms.len()
                || (i < self.terms.len() && self.terms[i].0 <= other.terms[j].0);
            let take_right = i >= self.terms.len()
                || (j < other.terms.len() && other.terms[j].0 <= self.terms[i].0);
            if take_left && take_right {
                let c = self.terms[i]
                    .1
                    .wrapping_add(other.terms[j].1.wrapping_mul(sign));
                if c != 0 {
                    terms.push((self.terms[i].0, c));
                }
                i += 1;
                j += 1;
            } else if take_left {
                terms.push(self.terms[i]);
                i += 1;
            } else {
                let (t, c) = other.terms[j];
                terms.push((t, c.wrapping_mul(sign)));
                j += 1;
            }
        }
        LinExpr {
            k: self.k.wrapping_add(other.k.wrapping_mul(sign)),
            terms,
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        self.combine(other, 1)
    }

    /// `self - other`.
    pub fn sub(&self, other: &Self) -> Self {
        self.combine(other, -1)
    }

    /// `self · c`.
    pub fn mul_const(&self, c: i64) -> Self {
        if c == 0 {
            return LinExpr::constant(0);
        }
        LinExpr {
            k: self.k.wrapping_mul(c),
            terms: self
                .terms
                .iter()
                .map(|&(t, coeff)| (t, coeff.wrapping_mul(c)))
                .collect(),
        }
    }

    /// `self + c`.
    pub fn add_const(&self, c: i64) -> Self {
        LinExpr {
            k: self.k.wrapping_add(c),
            terms: self.terms.clone(),
        }
    }

    /// Returns `true` if any term is scoped to a block in `blocks`.
    fn mentions_block(&self, blocks: &[bool]) -> bool {
        self.terms.iter().any(|(t, _)| {
            t.def_block()
                .is_some_and(|b| blocks.get(b).copied().unwrap_or(false))
        })
    }
}

/// How a register varies across the warp.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymVal {
    /// A linear expression over warp-uniform terms plus the lane index.
    Lin(LinExpr),
    /// No linear form: lanes may hold arbitrarily different values.
    Varying,
}

impl SymVal {
    fn constant(k: i64) -> Self {
        SymVal::Lin(LinExpr::constant(k))
    }

    /// The linear form, if any.
    pub fn lin(&self) -> Option<&LinExpr> {
        match self {
            SymVal::Lin(e) => Some(e),
            SymVal::Varying => None,
        }
    }

    /// `true` when the value is identical in every lane.
    pub fn is_warp_uniform(&self) -> bool {
        self.lin().is_some_and(|e| e.lane_coeff() == 0)
    }
}

/// Where a warp-uniform predicate got its value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredSrc {
    /// Defined by the `SetP` at this pc.
    Def(Pc),
    /// Merged from uniform definitions at this join block.
    Join(u32),
}

/// Warp-level behavior of a predicate register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredVal {
    /// Identical in every lane (with a provenance tag so two *different*
    /// uniform definitions don't spuriously compare equal at lane-mixing
    /// joins).
    Uniform(PredSrc),
    /// Lanes may disagree: a branch guarded on it diverges.
    Varying,
}

/// Abstract machine state at a program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Env {
    /// Per-register symbolic values.
    pub regs: Vec<SymVal>,
    /// Per-predicate uniformity.
    pub preds: Vec<PredVal>,
}

impl Env {
    fn top(nregs: usize, npreds: usize) -> Self {
        Env {
            regs: vec![SymVal::Varying; nregs],
            preds: vec![PredVal::Varying; npreds],
        }
    }
}

/// One memory instruction with its solved address expression.
#[derive(Debug, Clone)]
pub struct SymAccess {
    /// Instruction pc.
    pub pc: Pc,
    /// Space/width/store/atomic metadata.
    pub mem: MemRef,
    /// Solved address (the instruction's constant offset already folded
    /// in), or [`SymVal::Varying`] when no linear form exists.
    pub addr: SymVal,
}

/// Result of the whole-kernel symbolic analysis.
#[derive(Debug, Clone)]
pub struct SymAnalysis {
    /// Entry environment per block (`None` for unreachable blocks).
    pub block_entry: Vec<Option<Env>>,
    /// Pcs of branches whose guard is lane-varying.
    pub divergent_branches: Vec<Pc>,
    /// Per block: `true` if the block executes under divergent control flow
    /// (it lies between some divergent branch and its reconvergence point).
    pub divergent_region: Vec<bool>,
    /// Every reachable memory access with its solved address, in pc order.
    pub accesses: Vec<SymAccess>,
}

impl SymAnalysis {
    /// The solved access at `pc`, if that pc is a reachable memory
    /// instruction.
    pub fn access_at(&self, pc: Pc) -> Option<&SymAccess> {
        self.accesses.iter().find(|a| a.pc == pc)
    }

    /// `true` when the instruction at `pc` executes under divergent
    /// control flow (so a warp may reach it with a partial lane mask).
    pub fn pc_in_divergent_region(&self, cfg: &Cfg, pc: Pc) -> bool {
        self.divergent_region
            .get(cfg.block_of(pc))
            .copied()
            .unwrap_or(false)
    }
}

fn operand_val(op: Operand, env: &Env) -> SymVal {
    match op {
        Operand::Imm(v) => SymVal::constant(v),
        Operand::Reg(r) => env.regs.get(r as usize).cloned().unwrap_or(SymVal::Varying),
    }
}

/// Constant folding with the executor's semantics (wrapping two's
/// complement, `div 0 → 0`, `rem 0 → dividend`, shifts mod 64).
fn fold_const(op: AluOp, a: i64, b: i64) -> Option<i64> {
    let (ua, ub) = (a as u64, b as u64);
    let v = match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        AluOp::Rem => {
            if b == 0 {
                a
            } else {
                a.wrapping_rem(b)
            }
        }
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
        AluOp::And => (ua & ub) as i64,
        AluOp::Or => (ua | ub) as i64,
        AluOp::Xor => (ua ^ ub) as i64,
        AluOp::Shl => (ua.wrapping_shl(ub as u32 & 63)) as i64,
        AluOp::Shr => (ua.wrapping_shr(ub as u32 & 63)) as i64,
        AluOp::FAdd | AluOp::FMul | AluOp::FDiv => return None,
    };
    Some(v)
}

/// Abstract ALU transfer: linear ops stay linear, non-affine ops on
/// warp-uniform operands become an [`Term::Opaque`] tagged with the pc, and
/// everything else degrades to [`SymVal::Varying`].
pub(crate) fn eval_alu(op: AluOp, a: &SymVal, b: &SymVal, pc: Pc) -> SymVal {
    let (SymVal::Lin(ea), SymVal::Lin(eb)) = (a, b) else {
        return SymVal::Varying;
    };
    if let (Some(ka), Some(kb)) = (ea.as_const(), eb.as_const()) {
        if let Some(v) = fold_const(op, ka, kb) {
            return SymVal::constant(v);
        }
    }
    match op {
        AluOp::Add => return SymVal::Lin(ea.add(eb)),
        AluOp::Sub => return SymVal::Lin(ea.sub(eb)),
        AluOp::Mul => {
            if let Some(c) = eb.as_const() {
                return SymVal::Lin(ea.mul_const(c));
            }
            if let Some(c) = ea.as_const() {
                return SymVal::Lin(eb.mul_const(c));
            }
        }
        AluOp::Shl => {
            if let Some(c) = eb.as_const() {
                if (0..64).contains(&c) {
                    return SymVal::Lin(ea.mul_const(1i64.wrapping_shl(c as u32)));
                }
            }
        }
        _ => {}
    }
    // Non-affine: warp-uniform in, warp-uniform (opaque) out.
    if ea.lane_coeff() == 0 && eb.lane_coeff() == 0 {
        SymVal::Lin(LinExpr::term(Term::Opaque(pc as u32)))
    } else {
        SymVal::Varying
    }
}

/// Applies one instruction to the environment.
pub(crate) fn transfer(instr: &Instr, pc: Pc, env: &mut Env) {
    let set = |env: &mut Env, r: Reg, v: SymVal| {
        if let Some(slot) = env.regs.get_mut(r as usize) {
            *slot = v;
        }
    };
    match instr {
        Instr::Mov { dst, src } => {
            let v = operand_val(*src, env);
            set(env, *dst, v);
        }
        Instr::ReadSpecial { dst, special } => {
            let v = match special {
                Special::TidX => SymVal::Lin(LinExpr {
                    k: 0,
                    terms: vec![(Term::Lane, 1), (Term::TidBase, 1)],
                }),
                Special::GlobalTid => SymVal::Lin(LinExpr {
                    k: 0,
                    terms: vec![(Term::Lane, 1), (Term::GtidBase, 1)],
                }),
                Special::LaneId => SymVal::Lin(LinExpr::term(Term::Lane)),
                Special::CtaIdX => SymVal::Lin(LinExpr::term(Term::CtaId)),
                Special::NTidX => SymVal::Lin(LinExpr::term(Term::NTid)),
                Special::NCtaIdX => SymVal::Lin(LinExpr::term(Term::NCta)),
            };
            set(env, *dst, v);
        }
        Instr::LdParam { dst, index } => {
            let v = if *index <= u16::MAX as usize {
                SymVal::Lin(LinExpr::term(Term::Param(*index as u16)))
            } else {
                SymVal::Varying
            };
            set(env, *dst, v);
        }
        Instr::Alu { op, dst, a, b } => {
            let va = operand_val(*a, env);
            let vb = operand_val(*b, env);
            set(env, *dst, eval_alu(*op, &va, &vb, pc));
        }
        Instr::SetP { pred, a, b, .. } => {
            let va = operand_val(*a, env);
            let vb = operand_val(*b, env);
            let v = if va.is_warp_uniform() && vb.is_warp_uniform() {
                PredVal::Uniform(PredSrc::Def(pc))
            } else {
                PredVal::Varying
            };
            if let Some(slot) = env.preds.get_mut(*pred as usize) {
                *slot = v;
            }
        }
        Instr::Ld { dst, .. } | Instr::AtomAdd { dst, .. } => set(env, *dst, SymVal::Varying),
        _ => {}
    }
}

/// Canonical `Phi(block)/LoopPhi(block)` form preserving the lane stride.
fn phi_val(t: Term, lane: i64) -> SymVal {
    let mut terms = Vec::with_capacity(2);
    if lane != 0 {
        terms.push((Term::Lane, lane));
    }
    terms.push((t, 1));
    terms.sort_unstable_by_key(|&(t, _)| t);
    SymVal::Lin(LinExpr { k: 0, terms })
}

/// Is `cur` exactly the canonical `phi + s·Lane` for this phi term?
fn is_phi_form(cur: &SymVal, t: Term) -> bool {
    cur.lin().is_some_and(|e| {
        e.k == 0
            && e.coeff(t) == 1
            && e.terms
                .iter()
                .all(|&(term, _)| term == t || term == Term::Lane)
    })
}

/// Merge at a join all lanes reach together. Differing linear values with a
/// common lane stride keep that stride behind an opaque `Phi`.
fn merge_uniform(cur: &SymVal, new: &SymVal, block: usize, r: Reg) -> SymVal {
    if cur == new {
        return cur.clone();
    }
    let phi = Term::Phi(block as u32, r);
    let (Some(ec), Some(en)) = (cur.lin(), new.lin()) else {
        return SymVal::Varying;
    };
    if ec.lane_coeff() != en.lane_coeff() {
        return SymVal::Varying;
    }
    if is_phi_form(cur, phi) {
        return cur.clone();
    }
    phi_val(phi, ec.lane_coeff())
}

/// Merge at a join that may mix lanes from divergent paths: only identical
/// values survive.
fn merge_mixing(cur: &SymVal, new: &SymVal) -> SymVal {
    if cur == new {
        cur.clone()
    } else {
        SymVal::Varying
    }
}

/// Widening at a loop head: constant per-iteration drift becomes an
/// `Iter(head)` term, non-constant warp-uniform drift a `LoopPhi`, and
/// anything else `Varying`.
fn widen(cur: &SymVal, back: &SymVal, head: usize, r: Reg) -> SymVal {
    if cur == back {
        return cur.clone();
    }
    let (Some(ec), Some(eb)) = (cur.lin(), back.lin()) else {
        return SymVal::Varying;
    };
    if ec.lane_coeff() != eb.lane_coeff() {
        return SymVal::Varying;
    }
    let loopphi = Term::LoopPhi(head as u32, r);
    if is_phi_form(cur, loopphi) {
        return cur.clone();
    }
    let iter = Term::Iter(head as u32);
    let diff = eb.sub(ec);
    if let Some(c) = diff.as_const() {
        if ec.coeff(iter) == c {
            // Already widened with exactly this drift: stable.
            return cur.clone();
        }
        if ec.coeff(iter) == 0 && c != 0 {
            return SymVal::Lin(ec.add(&LinExpr::term(iter).mul_const(c)));
        }
    }
    phi_val(loopphi, ec.lane_coeff())
}

/// Merge an *entry* (forward-edge) value into a loop head that may already
/// hold a widened value: an entry value matching the widened value modulo
/// this head's own loop terms is absorbed.
fn merge_into_head(cur: &SymVal, new: &SymVal, head: usize, r: Reg) -> SymVal {
    if cur == new {
        return cur.clone();
    }
    let loopphi = Term::LoopPhi(head as u32, r);
    if is_phi_form(cur, loopphi) {
        if let Some(en) = new.lin() {
            if en.lane_coeff() == cur.lin().expect("phi form is linear").lane_coeff() {
                return cur.clone();
            }
        }
        return SymVal::Varying;
    }
    if let (Some(ec), Some(en)) = (cur.lin(), new.lin()) {
        let diff = ec.sub(en);
        let only_own_terms = diff.k == 0
            && diff.terms.iter().all(
                |(t, _)| matches!(t, Term::Iter(b) | Term::LoopPhi(b, _) if *b as usize == head),
            );
        if only_own_terms {
            return cur.clone();
        }
        if ec.lane_coeff() == en.lane_coeff() {
            return phi_val(loopphi, ec.lane_coeff());
        }
    }
    SymVal::Varying
}

fn merge_pred(cur: PredVal, new: PredVal, mixing: bool, block: usize) -> PredVal {
    if cur == new {
        return cur;
    }
    match (cur, new) {
        (PredVal::Uniform(_), PredVal::Uniform(_)) if !mixing => {
            PredVal::Uniform(PredSrc::Join(block as u32))
        }
        _ => PredVal::Varying,
    }
}

/// Natural-loop membership for the loop headed at `head`: `head` plus every
/// block that reaches a backedge source without passing through `head`.
fn natural_loop(cfg: &Cfg, head: usize, back_srcs: &[usize]) -> Vec<bool> {
    let n = cfg.blocks().len();
    let mut in_loop = vec![false; n];
    in_loop[head] = true;
    let mut stack: Vec<usize> = Vec::new();
    for &s in back_srcs {
        if !in_loop[s] {
            in_loop[s] = true;
            stack.push(s);
        }
    }
    while let Some(b) = stack.pop() {
        for &p in &cfg.blocks()[b].preds {
            if !in_loop[p] {
                in_loop[p] = true;
                stack.push(p);
            }
        }
    }
    in_loop
}

/// Blocks reachable from the successors of divergent branch block `b`
/// without passing through the reconvergence block.
fn divergent_region_of(cfg: &Cfg, b: usize, reconv_block: Option<usize>) -> Vec<usize> {
    let mut seen = vec![false; cfg.blocks().len()];
    let mut stack: Vec<usize> = Vec::new();
    for &s in &cfg.blocks()[b].succs {
        if Some(s) != reconv_block && !seen[s] {
            seen[s] = true;
            stack.push(s);
        }
    }
    let mut out = Vec::new();
    while let Some(x) = stack.pop() {
        out.push(x);
        for &s in &cfg.blocks()[x].succs {
            if Some(s) != reconv_block && !seen[s] {
                seen[s] = true;
                stack.push(s);
            }
        }
    }
    out
}

struct LoopInfo {
    head: usize,
    body: Vec<bool>,
}

/// Runs the whole-kernel symbolic analysis.
pub fn analyze(kernel: &Kernel, cfg: &Cfg) -> SymAnalysis {
    let instrs = kernel.instrs();
    let nb = cfg.blocks().len();
    let nregs = kernel.num_regs() as usize;
    let npreds = MAX_PREDS;
    if nb == 0 {
        return SymAnalysis {
            block_entry: Vec::new(),
            divergent_branches: Vec::new(),
            divergent_region: Vec::new(),
            accesses: Vec::new(),
        };
    }

    // Loop structure from backedges (builder CFGs are reducible with heads
    // at lower block indices; hand-written irreducible flow degrades
    // conservatively because widening still applies at the merge target).
    let mut loops: Vec<LoopInfo> = Vec::new();
    for (u, block) in cfg.blocks().iter().enumerate() {
        for &v in &block.succs {
            if v <= u {
                if let Some(l) = loops.iter_mut().find(|l| l.head == v) {
                    let extra = natural_loop(cfg, v, &[u]);
                    for (slot, add) in l.body.iter_mut().zip(extra) {
                        *slot |= add;
                    }
                } else {
                    loops.push(LoopInfo {
                        head: v,
                        body: natural_loop(cfg, v, &[u]),
                    });
                }
            }
        }
    }
    let is_head = |b: usize| loops.iter().any(|l| l.head == b);

    // Iterated divergence: grow the divergent-branch set until stable.
    let mut divergent: Vec<bool> = vec![false; nb]; // per branch *block*
    let (envs, divergent_branches, region) = loop {
        // Divergent regions and mixing blocks under the current set.
        let mut region = vec![false; nb];
        let mut div_pcs: Vec<Pc> = Vec::new();
        for (b, &div) in divergent.iter().enumerate() {
            if !div {
                continue;
            }
            let last = cfg.blocks()[b].end - 1;
            div_pcs.push(last);
            let reconv = match &instrs[last] {
                Instr::Branch { reconverge, .. } if *reconverge != RECONV_NONE => {
                    (*reconverge < instrs.len()).then(|| cfg.block_of(*reconverge))
                }
                _ => None,
            };
            for x in divergent_region_of(cfg, b, reconv) {
                region[x] = true;
            }
        }
        // Divergent loops: lanes may leave at different trip counts, so
        // values carrying the loop's own terms are meaningless (and
        // lane-varying) outside the loop.
        let mut divergent_loop: Vec<bool> = vec![false; loops.len()];
        for (li, l) in loops.iter().enumerate() {
            for (b, &inside) in l.body.iter().enumerate() {
                if !inside || !divergent[b] {
                    continue;
                }
                // An exit-controlling divergent branch: one successor
                // outside the body.
                if cfg.blocks()[b].succs.iter().any(|&s| !l.body[s]) {
                    divergent_loop[li] = true;
                }
            }
        }

        // A block whose entry merge may mix lanes: some predecessor sits in
        // a divergent region (the merge reunites divergent paths).
        let mixing = |b: usize| cfg.blocks()[b].preds.iter().any(|&p| region[p]);

        // Forward fixpoint with per-edge caching: a block's entry is
        // re-folded from its predecessors' latest edge values, so a stale
        // earlier propagation along the *same* edge never masquerades as a
        // second joining path. Loop heads instead *accumulate* (their
        // previous entry is the widening history).
        //
        // Iteration order matters more than usual: the builder emits blocks
        // in reverse post order, and full in-order sweeps keep sibling
        // edges into a join synchronized to the same sweep. A FIFO worklist
        // can deliver two different *transient* widening stages of one loop
        // value to a lane-mixing join, whose `Varying` verdict would then
        // latch permanently in the head's widening accumulator.
        let initial = Env {
            regs: vec![SymVal::Varying; nregs],
            preds: vec![PredVal::Varying; npreds],
        };
        let mut envs: Vec<Option<Env>> = vec![None; nb];
        envs[0] = Some(initial.clone());
        let mut edge_vals: std::collections::HashMap<(usize, usize), Env> =
            std::collections::HashMap::new();
        // Each widening chain is short (precise → Iter → LoopPhi → stable),
        // so structured CFGs settle in a handful of sweeps per loop-nest
        // level; the cap only guards pathological irreducible flow.
        let max_sweeps = 8 + 4 * nb;
        let mut settled = false;
        for _ in 0..max_sweeps {
            let mut changed = false;
            for bi in 0..nb {
                let Some(entry) = envs[bi].clone() else {
                    continue;
                };
                let mut env = entry;
                let block = &cfg.blocks()[bi];
                for (pc, instr) in instrs.iter().enumerate().take(block.end).skip(block.start) {
                    transfer(instr, pc, &mut env);
                }
                for &s in &block.succs {
                    // Values leaving a divergent loop lose that loop's own terms.
                    let mut out = env.clone();
                    for (li, l) in loops.iter().enumerate() {
                        if divergent_loop[li]
                            && l.body[bi]
                            && !l.body.get(s).copied().unwrap_or(false)
                        {
                            for v in &mut out.regs {
                                if matches!(v, SymVal::Lin(e) if e.mentions_block(&l.body)) {
                                    *v = SymVal::Varying;
                                }
                            }
                        }
                    }
                    if edge_vals.get(&(bi, s)) == Some(&out) {
                        continue;
                    }
                    edge_vals.insert((bi, s), out);

                    // Refold the successor's entry.
                    let mix = mixing(s);
                    let merged = if is_head(s) {
                        // Accumulate: previous entry is the widening history.
                        let mut forward: Vec<&Env> = Vec::new();
                        let mut back: Vec<&Env> = Vec::new();
                        for &p in &cfg.blocks()[s].preds {
                            if let Some(v) = edge_vals.get(&(p, s)) {
                                if s <= p {
                                    back.push(v);
                                } else {
                                    forward.push(v);
                                }
                            }
                        }
                        let cur = envs[s].clone().or_else(|| {
                            if s == 0 {
                                Some(initial.clone())
                            } else {
                                forward.first().map(|e| (*e).clone())
                            }
                        });
                        let Some(mut cur) = cur else { continue };
                        for e in &forward {
                            for r in 0..nregs {
                                cur.regs[r] =
                                    merge_into_head(&cur.regs[r], &e.regs[r], s, r as Reg);
                            }
                            for pi in 0..npreds {
                                cur.preds[pi] = merge_pred(cur.preds[pi], e.preds[pi], mix, s);
                            }
                        }
                        for e in &back {
                            for r in 0..nregs {
                                cur.regs[r] = widen(&cur.regs[r], &e.regs[r], s, r as Reg);
                            }
                            for pi in 0..npreds {
                                cur.preds[pi] = merge_pred(cur.preds[pi], e.preds[pi], mix, s);
                            }
                        }
                        cur
                    } else {
                        // Fresh fold over predecessor edge values (sorted pred
                        // order keeps the fold deterministic and idempotent).
                        let mut ps: Vec<usize> = cfg.blocks()[s].preds.clone();
                        ps.sort_unstable();
                        let mut acc: Option<Env> = None;
                        for p in ps {
                            let Some(e) = edge_vals.get(&(p, s)) else {
                                continue;
                            };
                            acc = Some(match acc {
                                None => e.clone(),
                                Some(mut cur) => {
                                    for r in 0..nregs {
                                        cur.regs[r] = if mix {
                                            merge_mixing(&cur.regs[r], &e.regs[r])
                                        } else {
                                            merge_uniform(&cur.regs[r], &e.regs[r], s, r as Reg)
                                        };
                                    }
                                    for pi in 0..npreds {
                                        cur.preds[pi] =
                                            merge_pred(cur.preds[pi], e.preds[pi], mix, s);
                                    }
                                    cur
                                }
                            });
                        }
                        let Some(acc) = acc else { continue };
                        acc
                    };
                    if envs[s].as_ref() != Some(&merged) {
                        envs[s] = Some(merged);
                        changed = true;
                    }
                }
            }
            if !changed {
                settled = true;
                break;
            }
        }
        if !settled {
            // Pathological irreducible flow: give up soundly.
            for env in envs.iter_mut().flatten() {
                *env = Env::top(nregs, npreds);
            }
        }

        // Re-derive the divergent-branch set under the computed envs.
        let mut grew = false;
        for (bi, block) in cfg.blocks().iter().enumerate() {
            if divergent[bi] {
                continue;
            }
            let Some(entry) = &envs[bi] else { continue };
            let last = block.end - 1;
            let Instr::Branch { guard: Some(g), .. } = &instrs[last] else {
                continue;
            };
            let mut env = entry.clone();
            for (pc, instr) in instrs.iter().enumerate().take(last).skip(block.start) {
                transfer(instr, pc, &mut env);
            }
            let varying = !matches!(env.preds.get(g.pred as usize), Some(PredVal::Uniform(_)));
            if varying {
                divergent[bi] = true;
                grew = true;
            }
        }
        if !grew {
            break (envs, div_pcs, region);
        }
    };

    // Solve every reachable memory access under the final environments.
    let mut accesses = Vec::new();
    for (bi, block) in cfg.blocks().iter().enumerate() {
        let Some(entry) = &envs[bi] else { continue };
        let mut env = entry.clone();
        for (pc, instr) in instrs.iter().enumerate().take(block.end).skip(block.start) {
            if let Some(mem) = instr.mem_ref() {
                let addr = match env.regs.get(mem.addr as usize) {
                    Some(SymVal::Lin(e)) => SymVal::Lin(e.add_const(mem.offset)),
                    _ => SymVal::Varying,
                };
                accesses.push(SymAccess { pc, mem, addr });
            }
            transfer(instr, pc, &mut env);
        }
    }
    accesses.sort_by_key(|a| a.pc);

    SymAnalysis {
        block_entry: envs,
        divergent_branches,
        divergent_region: region,
        accesses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_isa::{CmpOp, KernelBuilder, Space, Special, Width};

    fn solved(kernel: &Kernel) -> SymAnalysis {
        let cfg = Cfg::build(kernel);
        analyze(kernel, &cfg)
    }

    fn lane_stride(a: &SymAccess) -> Option<i64> {
        a.addr.lin().map(LinExpr::lane_coeff)
    }

    #[test]
    fn tid_decomposes_into_base_plus_lane() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::TidX);
        let off = b.shl(t, 2);
        let a = b.add(base, off);
        b.ld_global(Width::W4, a, 8);
        b.exit();
        let k = b.build().unwrap();
        let s = solved(&k);
        let acc = &s.accesses[0];
        let e = acc.addr.lin().unwrap();
        assert_eq!(e.lane_coeff(), 4);
        assert_eq!(e.coeff(Term::TidBase), 4);
        assert_eq!(e.coeff(Term::Param(0)), 1);
        assert_eq!(e.k, 8, "instruction offset folded into the expression");
    }

    #[test]
    fn for_range_counter_becomes_iter_term() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        b.for_range(Operand::Imm(0), Operand::Imm(8), 1, |b, i| {
            let row = b.mul(i, 1024i64);
            let col = b.shl(t, 2);
            let idx = b.add(row, col);
            let a = b.add(base, idx);
            b.ld_global(Width::W4, a, 0);
        });
        b.exit();
        let k = b.build().unwrap();
        let s = solved(&k);
        let e = s.accesses[0].addr.lin().unwrap();
        assert_eq!(e.lane_coeff(), 4);
        assert_eq!(e.iter_coeff(), Some(1024), "per-iteration stride solved");
    }

    #[test]
    fn uniform_join_preserves_lane_stride() {
        // Double-buffer selection: both branches produce `buf + 4*tid`
        // with different warp-uniform bases under a *uniform* predicate.
        let mut b = KernelBuilder::new("k");
        let pa = b.param(0);
        let pb = b.param(1);
        let n = b.param(2);
        let t = b.special(Special::TidX);
        let off = b.shl(t, 2);
        let sel = b.setp(CmpOp::Lt, n, 100i64);
        let src = b.reg();
        b.if_then_else(
            sel,
            |b| {
                let a = b.add(pa, off);
                b.mov_to(src, a);
            },
            |b| {
                let a = b.add(pb, off);
                b.mov_to(src, a);
            },
        );
        b.ld_global(Width::W4, src, 0);
        b.exit();
        let k = b.build().unwrap();
        let s = solved(&k);
        let acc = s.accesses.last().unwrap();
        assert_eq!(lane_stride(acc), Some(4), "phi join kept the stride");
    }

    #[test]
    fn divergent_join_degrades_to_varying() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        let p = b.setp(CmpOp::Lt, t, 8i64); // lane-varying predicate
        let r = b.mov(0i64);
        b.if_then_else(p, |b| b.mov_to(r, 4i64), |b| b.mov_to(r, 8i64));
        let off = b.mul(t, r);
        let a = b.add(base, off);
        b.ld_global(Width::W4, a, 0);
        b.exit();
        let k = b.build().unwrap();
        let s = solved(&k);
        assert!(!s.divergent_branches.is_empty());
        assert_eq!(s.accesses[0].addr, SymVal::Varying);
    }

    #[test]
    fn loop_carried_uniform_value_stays_uniform() {
        // reduce-style: stride halves every round (non-affine update), but
        // remains warp-uniform, so `sdata + 4*(tid+stride)` keeps lane
        // stride 4.
        let mut b = KernelBuilder::new("k");
        b.alloc_shared(1024);
        let t = b.special(Special::TidX);
        let stride = b.mov(128i64);
        let lp = b.pred();
        b.while_loop(
            |b| {
                b.setp_to(lp, CmpOp::Gt, stride, 0i64);
                lp
            },
            |b| {
                let peer = b.add(t, stride);
                let off = b.shl(peer, 2);
                b.ld(Space::Shared, Width::W4, off, 0);
                b.bar();
                b.alu_to(AluOp::Shr, stride, stride, Operand::Imm(1));
            },
        );
        b.exit();
        let k = b.build().unwrap();
        let s = solved(&k);
        let shared_loads: Vec<_> = s
            .accesses
            .iter()
            .filter(|a| a.mem.space == Space::Shared)
            .collect();
        assert_eq!(shared_loads.len(), 1);
        assert_eq!(lane_stride(shared_loads[0]), Some(4));
        // The loop itself is uniform: no divergent branches.
        assert!(s.divergent_branches.is_empty());
    }

    #[test]
    fn divergent_loop_poisons_its_exports() {
        // Trip count depends on a loaded (lane-varying) value: anything
        // carried by the loop is meaningless after it.
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        let off4 = b.shl(t, 2);
        let a0 = b.add(base, off4);
        let bound = b.ld_global(Width::W4, a0, 0);
        let i = b.mov(0i64);
        let lp = b.pred();
        b.while_loop(
            |b| {
                b.setp_to(lp, CmpOp::Lt, i, bound);
                lp
            },
            |b| {
                b.alu_to(AluOp::Add, i, i, Operand::Imm(1));
            },
        );
        let off = b.shl(i, 2);
        let addr = b.add(base, off);
        b.ld_global(Width::W4, addr, 0);
        b.exit();
        let k = b.build().unwrap();
        let s = solved(&k);
        assert!(!s.divergent_branches.is_empty());
        let last = s.accesses.last().unwrap();
        assert_eq!(last.addr, SymVal::Varying, "`i` died at the loop exit");
    }

    #[test]
    fn opaque_ops_preserve_warp_uniformity() {
        let mut b = KernelBuilder::new("k");
        let n = b.param(0);
        let base = b.param(1);
        let q = b.alu(AluOp::Div, n, 7i64); // non-affine, warp-uniform
        let t = b.special(Special::TidX);
        let o = b.shl(t, 2);
        let row = b.mul(q, 0i64); // folds to 0 via mul_const
        let x = b.add(o, row);
        let qb = b.add(base, q);
        let addr = b.add(qb, x);
        b.ld_global(Width::W4, addr, 0);
        b.exit();
        let k = b.build().unwrap();
        let s = solved(&k);
        let e = s.accesses[0].addr.lin().unwrap();
        assert_eq!(e.lane_coeff(), 4, "opaque uniform base keeps the stride");
    }

    #[test]
    fn divergent_region_marks_guarded_block() {
        let mut b = KernelBuilder::new("k");
        let base = b.param(0);
        let t = b.special(Special::GlobalTid);
        let p = b.setp(CmpOp::Lt, t, 8i64);
        b.if_then(p, |b| {
            let off = b.shl(t, 2);
            let a = b.add(base, off);
            b.ld_global(Width::W4, a, 0);
        });
        b.exit();
        let k = b.build().unwrap();
        let cfg = Cfg::build(&k);
        let s = analyze(&k, &cfg);
        let ld_pc = s.accesses[0].pc;
        assert!(s.pc_in_divergent_region(&cfg, ld_pc));
        assert!(
            !s.pc_in_divergent_region(&cfg, k.len() - 1),
            "exit is reconverged"
        );
    }

    #[test]
    fn linexpr_algebra() {
        let a = LinExpr {
            k: 3,
            terms: vec![(Term::Lane, 4), (Term::TidBase, 4)],
        };
        let b = LinExpr {
            k: 1,
            terms: vec![(Term::Lane, 4)],
        };
        let d = a.sub(&b);
        assert_eq!(d.k, 2);
        assert_eq!(d.lane_coeff(), 0);
        assert_eq!(d.coeff(Term::TidBase), 4);
        assert_eq!(a.mul_const(0).as_const(), Some(0));
        assert_eq!(a.add(&b).lane_coeff(), 8);
        assert_eq!(b.add_const(7).k, 8);
    }
}
