//! Golden tests pinning the exact output of the workload generators after
//! their migration to the workspace's hermetic [`gpu_types::rng`].
//!
//! The BFS graphs and CSR matrices feed latency experiments whose figures
//! are compared against the paper, so their content for a given seed is part
//! of the reproducibility contract: a silent change to the generator (or to
//! the PRNG behind it) would shift every downstream measurement. These
//! values were produced by the generators at the time of the migration and
//! must never drift.

use gpu_workloads::graph::Graph;
use gpu_workloads::spmv::CsrMatrix;

/// The paper-seed uniform graph is pinned element-for-element.
#[test]
fn uniform_graph_content_is_pinned() {
    let g = Graph::uniform_random(16, 4, 20150301);
    let offsets: Vec<u32> = (0..=16u32).map(|i| i * 4).collect();
    assert_eq!(g.row_offsets(), offsets.as_slice());
    assert_eq!(
        g.cols(),
        &[
            7, 9, 10, 6, 5, 12, 4, 11, 6, 12, 11, 0, 5, 5, 10, 12, 5, 2, 2, 14, 5, 0, 6, 4, 12, 15,
            7, 5, 8, 2, 4, 3, 8, 15, 14, 15, 2, 9, 2, 3, 12, 3, 2, 1, 4, 5, 1, 5, 15, 10, 12, 5, 6,
            9, 11, 13, 2, 15, 13, 1, 4, 8, 8, 13
        ]
    );
}

/// The skewed (Zipf-ish) generator is pinned too — it additionally exercises
/// the `gen_f64` path of the PRNG.
#[test]
fn skewed_graph_content_is_pinned() {
    let s = Graph::skewed_random(16, 4, 20150301);
    assert_eq!(
        s.cols(),
        &[
            2, 4, 5, 2, 1, 8, 1, 6, 2, 8, 6, 0, 1, 1, 4, 8, 1, 0, 0, 12, 1, 0, 2, 1, 7, 14, 2, 1,
            3, 0, 1, 0, 3, 13, 11, 14, 0, 4, 0, 0, 8, 0, 0, 0, 1, 1, 0, 1, 15, 5, 8, 1, 1, 4, 6, 9,
            0, 13, 10, 0, 1, 3, 3, 10
        ]
    );
}

/// The CSR generator (variable row lengths + bounded values) is pinned.
#[test]
fn csr_matrix_content_is_pinned() {
    let m = CsrMatrix::random(4, 6, 2, 42);
    assert_eq!(m.row_offsets, vec![0, 4, 8, 10, 12]);
    assert_eq!(m.col_idx, vec![1, 4, 3, 3, 3, 4, 2, 1, 2, 5, 4, 2]);
    assert_eq!(m.values, vec![98, 79, 13, 21, 85, 7, 55, 5, 17, 65, 15, 94]);
    assert!(m.values.iter().all(|&v| (1..100).contains(&v)));
    assert!(m.col_idx.iter().all(|&c| c < 6));
}

/// Identical seeds produce identical structures; different seeds differ —
/// each generator is a pure function of its arguments.
#[test]
fn generators_are_pure_functions_of_seed() {
    assert_eq!(
        Graph::uniform_random(128, 6, 99),
        Graph::uniform_random(128, 6, 99)
    );
    assert_ne!(
        Graph::uniform_random(128, 6, 99),
        Graph::uniform_random(128, 6, 100)
    );
    assert_eq!(
        Graph::skewed_random(128, 6, 99),
        Graph::skewed_random(128, 6, 99)
    );
    let a = CsrMatrix::random(64, 64, 4, 7);
    let b = CsrMatrix::random(64, 64, 4, 7);
    assert_eq!(a, b);
}
