//! Kill-and-resume determinism: a BFS traversal killed at an arbitrary
//! cycle and resumed from its newest checkpoint must finish bit-identical
//! to an uninterrupted traversal — same `RunSummary` (including the
//! content hash and sanitizer-violation count), same cost array, same
//! trace-event bookkeeping. Kill cycles are drawn from the workspace's
//! hermetic RNG so the test is randomized yet reproducible.

use std::path::{Path, PathBuf};

use gpu_sim::{CheckpointPolicy, Gpu, GpuConfig, MetricsReport, RunSummary};
use gpu_types::rng::Rng;
use gpu_workloads::bfs::{
    read_costs, resume_bfs_mask, run_bfs_mask_checkpointed, upload_graph_mask, BfsMaskOutcome,
};
use gpu_workloads::Graph;

const CKPT_EVERY: u64 = 512;
const SOURCE: u32 = 0;
const BLOCK_DIM: u32 = 128;

fn small_config() -> GpuConfig {
    let mut cfg = GpuConfig::fermi_gf100();
    cfg.num_sms = 2;
    cfg.num_partitions = 2;
    cfg.trace.enabled = true;
    cfg.trace.sample_interval = 32;
    cfg
}

fn test_graph() -> Graph {
    Graph::uniform_random(600, 6, 20150301)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bfs-resume-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

struct Finished {
    summary: RunSummary,
    costs: Vec<u32>,
    levels_run: u32,
    total_cycles: u64,
}

/// One full traversal under `policy`; panics if the kill switch fires.
fn run_to_completion(graph: &Graph, policy: &CheckpointPolicy) -> Finished {
    let mut gpu = Gpu::new(small_config());
    let dev = upload_graph_mask(&mut gpu, graph);
    match run_bfs_mask_checkpointed(&mut gpu, &dev, SOURCE, BLOCK_DIM, policy)
        .expect("traversal runs")
    {
        BfsMaskOutcome::Completed(run) => Finished {
            summary: gpu.summary(),
            costs: read_costs(&gpu, &dev),
            levels_run: run.levels_run,
            total_cycles: run.total_cycles,
        },
        BfsMaskOutcome::Killed { at } => panic!("unexpected kill at cycle {at}"),
    }
}

/// Starts a traversal with a deterministic kill at `kill_at`, then resumes
/// it from the newest checkpoint and drives it to completion.
fn run_killed_and_resumed(graph: &Graph, dir: &Path, kill_at: u64) -> Finished {
    run_killed_and_resumed_threads(graph, dir, kill_at, 1, 1)
}

/// Same as [`run_killed_and_resumed`], but the killed leg ticks with
/// `kill_threads` and the resumed leg with `resume_threads`. Snapshots never
/// carry executor state, so the resumed GPU comes back serial and the thread
/// count is re-applied explicitly.
fn run_killed_and_resumed_threads(
    graph: &Graph,
    dir: &Path,
    kill_at: u64,
    kill_threads: usize,
    resume_threads: usize,
) -> Finished {
    let mut policy = CheckpointPolicy::new(CKPT_EVERY, dir.to_path_buf());
    policy.kill_at = Some(kill_at);
    let mut gpu = Gpu::new(small_config());
    gpu.set_tick_threads(kill_threads);
    let dev = upload_graph_mask(&mut gpu, graph);
    match run_bfs_mask_checkpointed(&mut gpu, &dev, SOURCE, BLOCK_DIM, &policy)
        .expect("killed traversal runs")
    {
        BfsMaskOutcome::Killed { at } => assert_eq!(at, kill_at, "kill switch fires on cue"),
        BfsMaskOutcome::Completed(_) => panic!("kill at {kill_at} never fired"),
    }
    drop(gpu); // the simulator is gone; only the checkpoint survives

    let mut resumed = Gpu::resume_latest(dir)
        .expect("checkpoint reads back")
        .expect("a checkpoint exists before the kill cycle");
    resumed.set_tick_threads(resume_threads);
    assert!(
        resumed.now().get() <= kill_at,
        "resume point must not be past the kill"
    );
    let resume_policy = CheckpointPolicy::new(CKPT_EVERY, dir.to_path_buf());
    match resume_bfs_mask(&mut resumed, &resume_policy).expect("resumed traversal runs") {
        BfsMaskOutcome::Completed(run) => {
            let dev = gpu_workloads::bfs::peek_mask_tag(resumed.host_tag())
                .expect("checkpoint carries the BFS tag");
            Finished {
                summary: resumed.summary(),
                costs: read_costs(&resumed, &dev),
                levels_run: run.levels_run,
                total_cycles: run.total_cycles,
            }
        }
        BfsMaskOutcome::Killed { at } => panic!("resume must not kill again (cycle {at})"),
    }
}

/// The only field allowed to differ is host wall-clock time.
fn assert_identical(a: &Finished, b: &Finished, what: &str) {
    let normalized = RunSummary {
        metrics: MetricsReport {
            host_nanos: a.summary.metrics.host_nanos,
            ..b.summary.metrics
        },
        ..b.summary
    };
    assert_eq!(a.summary, normalized, "{what}: summaries diverge");
    assert_eq!(a.costs, b.costs, "{what}: BFS cost arrays diverge");
    assert_eq!(a.levels_run, b.levels_run, "{what}: level counts diverge");
    assert_eq!(
        a.total_cycles, b.total_cycles,
        "{what}: cycle counts diverge"
    );
    assert_eq!(
        a.summary.content_hash, b.summary.content_hash,
        "{what}: content hashes diverge"
    );
    assert_eq!(
        a.summary.sanitizer_violations, b.summary.sanitizer_violations,
        "{what}: sanitizer verdicts diverge"
    );
}

#[test]
fn resumed_bfs_is_cycle_identical_at_random_kill_cycles() {
    let graph = test_graph();

    // Uninterrupted baseline under the same checkpoint cadence, so the
    // Checkpoint trace events line up with the killed runs'.
    let base_dir = temp_dir("base");
    let baseline = run_to_completion(&graph, &CheckpointPolicy::new(CKPT_EVERY, base_dir.clone()));
    assert!(
        baseline.summary.cycles > 4 * CKPT_EVERY,
        "run long enough to checkpoint"
    );
    assert_eq!(baseline.summary.sanitizer_violations, 0);
    assert_eq!(
        baseline.costs,
        graph.bfs_levels(SOURCE),
        "BFS answer is correct"
    );
    std::fs::remove_dir_all(&base_dir).ok();

    // Hermetic RNG: same seed, same kill cycles, every run of this test.
    let mut rng = Rng::seed_from_u64(0x5eed_cafe);
    for round in 0..3 {
        // Land strictly after the first checkpoint and before the drain.
        let span = baseline.total_cycles - CKPT_EVERY - 2;
        let kill_at = CKPT_EVERY + 1 + rng.next_u64() % span;
        let dir = temp_dir(&format!("kill{round}"));
        let resumed = run_killed_and_resumed(&graph, &dir, kill_at);
        assert_identical(&baseline, &resumed, &format!("kill at cycle {kill_at}"));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn resume_mid_checkpoint_interval_replays_the_gap() {
    // A kill one cycle after a checkpoint forces the resumed run to replay
    // almost a full interval; a kill one cycle before the next checkpoint
    // replays almost nothing. Both must converge to the same answer.
    let graph = test_graph();
    let base_dir = temp_dir("gap-base");
    let baseline = run_to_completion(&graph, &CheckpointPolicy::new(CKPT_EVERY, base_dir.clone()));
    std::fs::remove_dir_all(&base_dir).ok();

    for (tag, kill_at) in [
        ("just-after", 2 * CKPT_EVERY + 1),
        ("just-before", 3 * CKPT_EVERY - 1),
    ] {
        let dir = temp_dir(tag);
        let resumed = run_killed_and_resumed(&graph, &dir, kill_at);
        assert_identical(&baseline, &resumed, tag);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Kill-and-resume crossed with the parallel tick executor: a run killed
/// while ticking serially or in parallel, resumed serially or in parallel,
/// must land on the same bits in all four combinations. This pins two
/// properties at once — checkpoints carry no executor state, and the
/// parallel schedule is invisible to the snapshot/restore cycle.
#[test]
fn kill_and_resume_are_tick_thread_invariant() {
    let graph = test_graph();
    let base_dir = temp_dir("par-base");
    let baseline = run_to_completion(&graph, &CheckpointPolicy::new(CKPT_EVERY, base_dir.clone()));
    std::fs::remove_dir_all(&base_dir).ok();

    // Land mid-interval so the resumed leg replays a real gap.
    let kill_at = 2 * CKPT_EVERY + 37;
    for (kill_threads, resume_threads) in [(1, 1), (1, 2), (2, 1), (2, 2)] {
        let dir = temp_dir(&format!("par-k{kill_threads}-r{resume_threads}"));
        let resumed =
            run_killed_and_resumed_threads(&graph, &dir, kill_at, kill_threads, resume_threads);
        assert_identical(
            &baseline,
            &resumed,
            &format!("kill-threads={kill_threads} resume-threads={resume_threads}"),
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
