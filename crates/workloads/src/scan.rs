//! Per-CTA inclusive prefix sum (Hillis–Steele in shared memory) — the
//! barrier-densest workload of the set: log2(block) barrier rounds with a
//! shifting shared-memory access pattern.

use gpu_isa::{AluOp, CmpOp, Kernel, KernelBuilder, Launch, Operand, Space, Special, Width};
use gpu_sim::{Gpu, RunSummary, SimError};
use gpu_types::Addr;

/// Device buffers of a scan instance.
#[derive(Debug, Clone, Copy)]
pub struct ScanDevice {
    /// Input vector.
    pub input: Addr,
    /// Output vector (inclusive per-CTA prefix sums).
    pub output: Addr,
    /// Element count.
    pub n: u64,
}

/// Builds the per-CTA inclusive-scan kernel (Hillis–Steele double buffer).
///
/// Parameters: `[0]` input, `[1]` output, `[2]` n.
///
/// # Panics
///
/// Panics unless `block_dim` is a power of two.
pub fn build_scan_kernel(block_dim: u32) -> Kernel {
    assert!(
        block_dim.is_power_of_two(),
        "Hillis-Steele scan needs a power-of-two block"
    );
    let mut b = KernelBuilder::new("scan_cta");
    // Double buffer to avoid intra-round races.
    let buf_a = b.alloc_shared(4 * block_dim as u64);
    let buf_b = b.alloc_shared(4 * block_dim as u64);
    let input = b.param(0);
    let output = b.param(1);
    let n = b.param(2);
    let tid = b.special(Special::TidX);
    let gtid = b.special(Special::GlobalTid);

    // Load input (0 beyond n) into buffer A.
    let val = b.mov(0i64);
    let inb = b.setp(CmpOp::Lt, gtid, n);
    b.if_then(inb, |b| {
        let off = b.shl(gtid, 2);
        let addr = b.add(input, off);
        b.ld_to(gpu_isa::Space::Global, Width::W4, val, addr, 0);
    });
    let t_off = b.shl(tid, 2);
    let a_addr = b.add(t_off, buf_a as i64);
    let b_addr = b.add(t_off, buf_b as i64);
    b.st(Space::Shared, Width::W4, a_addr, 0, val);
    b.bar();

    // src/dst alternate each round; track with a parity register.
    let parity = b.mov(0i64);
    let offset = b.mov(1i64);
    let loop_pred = b.pred();
    b.while_loop(
        |b| {
            b.setp_to(loop_pred, CmpOp::Lt, offset, block_dim as i64);
            loop_pred
        },
        |b| {
            // src = parity == 0 ? A : B ; dst = the other.
            let is_a = b.setp(CmpOp::Eq, parity, 0);
            let src = b.reg();
            let dst = b.reg();
            b.if_then_else(
                is_a,
                |b| {
                    b.mov_to(src, a_addr);
                    b.mov_to(dst, b_addr);
                },
                |b| {
                    b.mov_to(src, b_addr);
                    b.mov_to(dst, a_addr);
                },
            );
            let mine = b.ld(Space::Shared, Width::W4, src, 0);
            let sum = b.mov(mine);
            let has_peer = b.setp(CmpOp::Ge, tid, offset);
            b.if_then(has_peer, |b| {
                let peer_back = b.shl(offset, 2);
                let peer_addr = b.sub(src, peer_back);
                let theirs = b.ld(Space::Shared, Width::W4, peer_addr, 0);
                b.alu_to(AluOp::Add, sum, sum, theirs);
            });
            b.st(Space::Shared, Width::W4, dst, 0, sum);
            b.bar();
            b.alu_to(AluOp::Shl, offset, offset, Operand::Imm(1));
            b.alu_to(AluOp::Xor, parity, parity, Operand::Imm(1));
        },
    );

    // Final values live in A if parity == 0, else B.
    let is_a = b.setp(CmpOp::Eq, parity, 0);
    let final_addr = b.reg();
    b.if_then_else(
        is_a,
        |b| b.mov_to(final_addr, a_addr),
        |b| b.mov_to(final_addr, b_addr),
    );
    let result = b.ld(Space::Shared, Width::W4, final_addr, 0);
    b.if_then(inb, |b| {
        let off = b.shl(gtid, 2);
        let addr = b.add(output, off);
        b.st_global(Width::W4, addr, 0, result);
    });
    b.exit();
    b.build()
        .expect("scan kernel is well-formed by construction")
}

/// Allocates and seeds an instance (`input[i] = i % 17 + 1`).
pub fn setup(gpu: &mut Gpu, n: u64) -> ScanDevice {
    let align = gpu.config().line_size;
    let input = gpu.alloc(4 * n, align);
    let output = gpu.alloc(4 * n, align);
    for i in 0..n {
        gpu.device_mut()
            .write_u32(input + 4 * i, (i % 17 + 1) as u32);
    }
    ScanDevice { input, output, n }
}

/// Launches and runs the kernel to completion.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(gpu: &mut Gpu, dev: &ScanDevice, block_dim: u32) -> Result<RunSummary, SimError> {
    let grid = (dev.n as u32).div_ceil(block_dim);
    gpu.launch(
        build_scan_kernel(block_dim),
        Launch::new(
            grid,
            block_dim,
            vec![dev.input.get(), dev.output.get(), dev.n],
        ),
    )?;
    gpu.run(500_000_000)
}

/// Host reference: per-CTA inclusive prefix sums.
pub fn reference(n: u64, block_dim: u32) -> Vec<u32> {
    let mut out = Vec::with_capacity(n as usize);
    let mut acc = 0u32;
    for i in 0..n {
        if i % block_dim as u64 == 0 {
            acc = 0;
        }
        acc = acc.wrapping_add((i % 17 + 1) as u32);
        out.push(acc);
    }
    out
}

/// Verifies device output against the host reference.
///
/// # Panics
///
/// Panics on the first mismatching element.
pub fn verify(gpu: &Gpu, dev: &ScanDevice, block_dim: u32) {
    let got = gpu.device().read_u32_slice(dev.output, dev.n as usize);
    let want = reference(dev.n, block_dim);
    for i in 0..dev.n as usize {
        assert_eq!(got[i], want[i], "element {i}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn small_gpu() -> Gpu {
        let mut cfg = GpuConfig::fermi_gf100();
        cfg.num_sms = 4;
        Gpu::new(cfg)
    }

    #[test]
    fn scan_matches_reference() {
        let mut gpu = small_gpu();
        let dev = setup(&mut gpu, 1024);
        run(&mut gpu, &dev, 128).unwrap();
        verify(&gpu, &dev, 128);
    }

    #[test]
    fn ragged_tail_is_handled() {
        let mut gpu = small_gpu();
        let dev = setup(&mut gpu, 300);
        run(&mut gpu, &dev, 64).unwrap();
        verify(&gpu, &dev, 64);
    }

    #[test]
    fn multi_warp_blocks_synchronize() {
        // 256 threads = 8 warps per CTA: the scan is only correct if every
        // barrier round synchronizes all of them.
        let mut gpu = small_gpu();
        let dev = setup(&mut gpu, 512);
        run(&mut gpu, &dev, 256).unwrap();
        verify(&gpu, &dev, 256);
    }

    #[test]
    #[should_panic(expected = "power-of-two block")]
    fn non_pow2_block_rejected() {
        let _ = build_scan_kernel(100);
    }
}
