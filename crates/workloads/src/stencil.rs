//! 2-D 5-point Jacobi stencil — a regular, spatially-local workload whose
//! line reuse exercises the L1/L2 much harder than streaming does.
//!
//! One iteration computes `out[y][x] = (c*in[y][x] + in[y±1][x] + in[y][x±1])
//! / 5` (integer average, wrapping) over the interior; boundaries copy
//! through. Host-side iteration count makes it a multi-launch workload.

use gpu_isa::{AluOp, CmpOp, Kernel, KernelBuilder, Launch, Special, Width};
use gpu_sim::{Gpu, RunSummary, SimError};
use gpu_types::Addr;

/// Device buffers of a stencil instance (ping-pong pair).
#[derive(Debug, Clone, Copy)]
pub struct StencilDevice {
    /// Buffer A.
    pub a: Addr,
    /// Buffer B.
    pub b: Addr,
    /// Grid width.
    pub width: u32,
    /// Grid height.
    pub height: u32,
}

/// Builds one Jacobi iteration kernel.
///
/// Parameters: `[0]` input, `[1]` output, `[2]` width, `[3]` height.
pub fn build_stencil_kernel() -> Kernel {
    let mut bld = KernelBuilder::new("jacobi5");
    let input = bld.param(0);
    let output = bld.param(1);
    let width = bld.param(2);
    let height = bld.param(3);
    let gtid = bld.special(Special::GlobalTid);
    let total = bld.mul(width, height);
    let inb = bld.setp(CmpOp::Lt, gtid, total);
    bld.if_then(inb, |bld| {
        let x = bld.alu(AluOp::Rem, gtid, width);
        let y = bld.alu(AluOp::Div, gtid, width);
        let off = bld.shl(gtid, 2);
        let in_addr = bld.add(input, off);
        let out_addr = bld.add(output, off);
        let center = bld.ld_global(Width::W4, in_addr, 0);

        // Interior test: 0 < x < width-1 && 0 < y < height-1.
        let wm1 = bld.sub(width, 1);
        let hm1 = bld.sub(height, 1);
        let x_lo = bld.setp(CmpOp::Gt, x, 0);
        let interior = bld.reg();
        bld.mov_to(interior, 0i64);
        bld.if_then(x_lo, |bld| {
            let x_hi = bld.setp(CmpOp::Lt, x, wm1);
            bld.if_then(x_hi, |bld| {
                let y_lo = bld.setp(CmpOp::Gt, y, 0);
                bld.if_then(y_lo, |bld| {
                    let y_hi = bld.setp(CmpOp::Lt, y, hm1);
                    bld.if_then(y_hi, |bld| {
                        bld.mov_to(interior, 1i64);
                    });
                });
            });
        });
        let is_interior = bld.setp(CmpOp::Ne, interior, 0);
        bld.if_then_else(
            is_interior,
            |bld| {
                let w4 = bld.shl(width, 2);
                let north = bld.sub(in_addr, w4);
                let south = bld.add(in_addr, w4);
                let n = bld.ld_global(Width::W4, north, 0);
                let s = bld.ld_global(Width::W4, south, 0);
                let w = bld.ld_global(Width::W4, in_addr, -4);
                let e = bld.ld_global(Width::W4, in_addr, 4);
                let c3 = bld.mov(center);
                let sum1 = bld.add(n, s);
                let sum2 = bld.add(w, e);
                let sum3 = bld.add(sum1, sum2);
                let sum4 = bld.add(sum3, c3);
                let avg = bld.alu(AluOp::Div, sum4, 5);
                bld.st_global(Width::W4, out_addr, 0, avg);
            },
            |bld| {
                bld.st_global(Width::W4, out_addr, 0, center);
            },
        );
    });
    bld.exit();
    bld.build()
        .expect("stencil kernel is well-formed by construction")
}

/// Allocates and seeds a `width × height` grid (`in[y][x] = (x*7 + y*13) %
/// 101`).
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn setup(gpu: &mut Gpu, width: u32, height: u32) -> StencilDevice {
    assert!(width > 0 && height > 0);
    let words = width as u64 * height as u64;
    let align = gpu.config().line_size;
    let a = gpu.alloc(4 * words, align);
    let b = gpu.alloc(4 * words, align);
    for y in 0..height as u64 {
        for x in 0..width as u64 {
            gpu.device_mut().write_u32(
                a + 4 * (y * width as u64 + x),
                ((x * 7 + y * 13) % 101) as u32,
            );
        }
    }
    StencilDevice {
        a,
        b,
        width,
        height,
    }
}

/// Runs `iterations` ping-pong Jacobi steps; returns the last summary and
/// the buffer holding the final state.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(
    gpu: &mut Gpu,
    dev: &StencilDevice,
    iterations: u32,
    block_dim: u32,
) -> Result<(RunSummary, Addr), SimError> {
    let words = dev.width as u64 * dev.height as u64;
    let grid = (words as u32).div_ceil(block_dim);
    let (mut src, mut dst) = (dev.a, dev.b);
    let mut last = RunSummary::default();
    for _ in 0..iterations {
        gpu.launch(
            build_stencil_kernel(),
            Launch::new(
                grid,
                block_dim,
                vec![src.get(), dst.get(), dev.width as u64, dev.height as u64],
            ),
        )?;
        last = gpu.run(500_000_000)?;
        std::mem::swap(&mut src, &mut dst);
    }
    Ok((last, src))
}

/// Host reference for `iterations` Jacobi steps.
pub fn reference(width: u32, height: u32, iterations: u32) -> Vec<u32> {
    let (w, h) = (width as usize, height as usize);
    let mut cur: Vec<u32> = (0..h)
        .flat_map(|y| (0..w).map(move |x| ((x * 7 + y * 13) % 101) as u32))
        .collect();
    let mut next = cur.clone();
    for _ in 0..iterations {
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                next[i] = if x > 0 && x < w - 1 && y > 0 && y < h - 1 {
                    let sum = cur[i]
                        .wrapping_add(cur[i - 1])
                        .wrapping_add(cur[i + 1])
                        .wrapping_add(cur[i - w])
                        .wrapping_add(cur[i + w]);
                    // Signed division matches the IR's `Div` semantics.
                    ((sum as i64) / 5) as u32
                } else {
                    cur[i]
                };
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    cur
}

/// Verifies the final grid at `result` against the host reference.
///
/// # Panics
///
/// Panics on the first mismatching cell.
pub fn verify(gpu: &Gpu, dev: &StencilDevice, result: Addr, iterations: u32) {
    let words = dev.width as usize * dev.height as usize;
    let got = gpu.device().read_u32_slice(result, words);
    let want = reference(dev.width, dev.height, iterations);
    for i in 0..words {
        assert_eq!(got[i], want[i], "cell {i}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn small_gpu() -> Gpu {
        let mut cfg = GpuConfig::fermi_gf100();
        cfg.num_sms = 4;
        Gpu::new(cfg)
    }

    #[test]
    fn one_iteration_matches_reference() {
        let mut gpu = small_gpu();
        let dev = setup(&mut gpu, 20, 12);
        let (_, result) = run(&mut gpu, &dev, 1, 64).unwrap();
        verify(&gpu, &dev, result, 1);
    }

    #[test]
    fn three_iterations_ping_pong_correctly() {
        let mut gpu = small_gpu();
        let dev = setup(&mut gpu, 16, 16);
        let (_, result) = run(&mut gpu, &dev, 3, 128).unwrap();
        verify(&gpu, &dev, result, 3);
    }

    #[test]
    fn boundaries_copy_through() {
        let mut gpu = small_gpu();
        let dev = setup(&mut gpu, 8, 8);
        let (_, result) = run(&mut gpu, &dev, 2, 32).unwrap();
        // Corner cells never change.
        let got = gpu.device().read_u32_slice(result, 64);
        assert_eq!(got[0], 0);
        assert_eq!(got[7], 7 * 7_u32);
    }

    #[test]
    fn stencil_reuses_lines_in_cache() {
        let mut gpu = small_gpu();
        let dev = setup(&mut gpu, 64, 64);
        let (summary, _) = run(&mut gpu, &dev, 1, 128).unwrap();
        // 5-point stencil re-touches each line ~5x; most of that must hit.
        assert!(
            summary.l1_hits + summary.l2_hits > summary.l1_misses,
            "spatial locality should dominate: {summary:?}"
        );
    }
}
