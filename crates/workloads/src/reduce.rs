//! Parallel reduction (sum) with shared-memory trees and an atomic final
//! combine — a barrier-heavy, progressively-diverging workload.

use gpu_isa::{AluOp, CmpOp, Kernel, KernelBuilder, Launch, Operand, Space, Special, Width};
use gpu_sim::{Gpu, RunSummary, SimError};
use gpu_types::Addr;

/// Device buffers of a reduction instance.
#[derive(Debug, Clone, Copy)]
pub struct ReduceDevice {
    /// Input vector.
    pub input: Addr,
    /// Scalar output (accumulated atomically by each CTA).
    pub output: Addr,
    /// Element count.
    pub n: u64,
}

/// Builds the block-sum kernel: each CTA tree-reduces its slice in shared
/// memory and atomically adds its partial sum to the output.
///
/// Parameters: `[0]` input, `[1]` output, `[2]` n.
pub fn build_reduce_kernel(block_dim: u32) -> Kernel {
    assert!(
        block_dim.is_power_of_two(),
        "tree reduction needs a power-of-two block"
    );
    let mut b = KernelBuilder::new("reduce_sum");
    let sdata = b.alloc_shared(4 * block_dim as u64);
    let input = b.param(0);
    let output = b.param(1);
    let n = b.param(2);
    let tid = b.special(Special::TidX);
    let gtid = b.special(Special::GlobalTid);

    // sdata[tid] = gtid < n ? input[gtid] : 0
    let val = b.mov(0i64);
    let inb = b.setp(CmpOp::Lt, gtid, n);
    b.if_then(inb, |b| {
        let off = b.shl(gtid, 2);
        let addr = b.add(input, off);
        b.ld_to(gpu_isa::Space::Global, Width::W4, val, addr, 0);
    });
    let s_off = b.shl(tid, 2);
    let s_addr = b.add(s_off, sdata as i64);
    b.st(Space::Shared, Width::W4, s_addr, 0, val);
    b.bar();

    // for (s = block/2; s > 0; s >>= 1) { if tid < s: sdata[tid] += sdata[tid+s]; bar }
    let stride = b.mov((block_dim / 2) as i64);
    let loop_pred = b.pred();
    b.while_loop(
        |b| {
            b.setp_to(loop_pred, CmpOp::Gt, stride, 0);
            loop_pred
        },
        |b| {
            let active = b.setp(CmpOp::Lt, tid, stride);
            b.if_then(active, |b| {
                let peer = b.add(tid, stride);
                let p_off = b.shl(peer, 2);
                let p_addr = b.add(p_off, sdata as i64);
                let mine = b.ld(Space::Shared, Width::W4, s_addr, 0);
                let theirs = b.ld(Space::Shared, Width::W4, p_addr, 0);
                let sum = b.add(mine, theirs);
                b.st(Space::Shared, Width::W4, s_addr, 0, sum);
            });
            b.bar();
            b.alu_to(AluOp::Shr, stride, stride, Operand::Imm(1));
        },
    );

    // Thread 0 publishes the block sum.
    let is0 = b.setp(CmpOp::Eq, tid, 0);
    b.if_then(is0, |b| {
        let total = b.ld(Space::Shared, Width::W4, s_addr, 0);
        b.atom_add(Width::W4, output, 0, total);
    });
    b.exit();
    b.build()
        .expect("reduce kernel is well-formed by construction")
}

/// Allocates and initializes a reduction instance (`input[i] = i % 97`).
pub fn setup(gpu: &mut Gpu, n: u64) -> ReduceDevice {
    let align = gpu.config().line_size;
    let input = gpu.alloc(4 * n, align);
    let output = gpu.alloc(4, align);
    for i in 0..n {
        gpu.device_mut().write_u32(input + 4 * i, (i % 97) as u32);
    }
    ReduceDevice { input, output, n }
}

/// Launches and runs the reduction.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(gpu: &mut Gpu, dev: &ReduceDevice, block_dim: u32) -> Result<RunSummary, SimError> {
    gpu.device_mut().write_u32(dev.output, 0);
    let grid = (dev.n as u32).div_ceil(block_dim);
    gpu.launch(
        build_reduce_kernel(block_dim),
        Launch::new(
            grid,
            block_dim,
            vec![dev.input.get(), dev.output.get(), dev.n],
        ),
    )?;
    gpu.run(500_000_000)
}

/// Host reference sum (wrapping).
pub fn reference(n: u64) -> u32 {
    (0..n).fold(0u32, |acc, i| acc.wrapping_add((i % 97) as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn small_gpu() -> Gpu {
        let mut cfg = GpuConfig::fermi_gf100();
        cfg.num_sms = 4;
        Gpu::new(cfg)
    }

    #[test]
    fn reduction_matches_reference() {
        let mut gpu = small_gpu();
        let dev = setup(&mut gpu, 4096);
        run(&mut gpu, &dev, 128).unwrap();
        assert_eq!(gpu.device().read_u32(dev.output), reference(4096));
    }

    #[test]
    fn ragged_tail_is_padded_with_zero() {
        let mut gpu = small_gpu();
        let dev = setup(&mut gpu, 1000);
        run(&mut gpu, &dev, 256).unwrap();
        assert_eq!(gpu.device().read_u32(dev.output), reference(1000));
    }

    #[test]
    #[should_panic(expected = "power-of-two block")]
    fn non_pow2_block_rejected() {
        let _ = build_reduce_kernel(96);
    }
}
