//! Streaming vector addition: the fully-coalesced, bandwidth-bound contrast
//! workload to BFS (used by experiment E4's "other workloads" comparison).

use gpu_isa::{CmpOp, Kernel, KernelBuilder, Launch, Special, Width};
use gpu_sim::{Gpu, RunSummary, SimError};
use gpu_types::Addr;

/// Device buffers of a vector-add instance.
#[derive(Debug, Clone, Copy)]
pub struct VecAddDevice {
    /// First input.
    pub a: Addr,
    /// Second input.
    pub b: Addr,
    /// Output.
    pub c: Addr,
    /// Element count.
    pub n: u64,
}

/// Builds `c[i] = a[i] + b[i]` guarded by `i < n`.
///
/// Parameters: `[0]` a, `[1]` b, `[2]` c, `[3]` n.
pub fn build_vecadd_kernel() -> Kernel {
    let mut bld = KernelBuilder::new("vecadd");
    let a = bld.param(0);
    let b = bld.param(1);
    let c = bld.param(2);
    let n = bld.param(3);
    let gtid = bld.special(Special::GlobalTid);
    let p = bld.setp(CmpOp::Lt, gtid, n);
    bld.if_then(p, |bld| {
        let off = bld.shl(gtid, 2);
        let pa = bld.add(a, off);
        let pb = bld.add(b, off);
        let pc = bld.add(c, off);
        let va = bld.ld_global(Width::W4, pa, 0);
        let vb = bld.ld_global(Width::W4, pb, 0);
        let vc = bld.add(va, vb);
        bld.st_global(Width::W4, pc, 0, vc);
    });
    bld.exit();
    bld.build()
        .expect("vecadd kernel is well-formed by construction")
}

/// Allocates and initializes a vector-add instance with deterministic
/// inputs (`a[i] = i`, `b[i] = 2i + 1`).
pub fn setup(gpu: &mut Gpu, n: u64) -> VecAddDevice {
    let align = gpu.config().line_size;
    let a = gpu.alloc(4 * n, align);
    let b = gpu.alloc(4 * n, align);
    let c = gpu.alloc(4 * n, align);
    for i in 0..n {
        gpu.device_mut().write_u32(a + 4 * i, i as u32);
        gpu.device_mut().write_u32(b + 4 * i, (2 * i + 1) as u32);
    }
    VecAddDevice { a, b, c, n }
}

/// Launches and runs the kernel to completion.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(gpu: &mut Gpu, dev: &VecAddDevice, block_dim: u32) -> Result<RunSummary, SimError> {
    let grid = (dev.n as u32).div_ceil(block_dim);
    gpu.launch(
        build_vecadd_kernel(),
        Launch::new(
            grid,
            block_dim,
            vec![dev.a.get(), dev.b.get(), dev.c.get(), dev.n],
        ),
    )?;
    gpu.run(500_000_000)
}

/// Verifies the output against the host reference.
///
/// # Panics
///
/// Panics on the first mismatching element.
pub fn verify(gpu: &Gpu, dev: &VecAddDevice) {
    for i in 0..dev.n {
        let got = gpu.device().read_u32(dev.c + 4 * i);
        let want = (i + 2 * i + 1) as u32;
        assert_eq!(got, want, "element {i}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    #[test]
    fn vecadd_is_correct_and_coalesced() {
        let mut cfg = GpuConfig::fermi_gf100();
        cfg.num_sms = 4;
        let mut gpu = Gpu::new(cfg);
        let dev = setup(&mut gpu, 2048);
        gpu.set_tracing(true);
        run(&mut gpu, &dev, 256).unwrap();
        verify(&gpu, &dev);
        let (_, loads) = gpu.take_traces();
        // Consecutive 4-byte accesses coalesce to one (at most two) lines.
        assert!(loads.iter().all(|l| l.lines <= 2));
        assert!(!loads.is_empty());
    }

    #[test]
    fn odd_sizes_are_guarded() {
        let mut cfg = GpuConfig::fermi_gf100();
        cfg.num_sms = 2;
        let mut gpu = Gpu::new(cfg);
        let dev = setup(&mut gpu, 333);
        run(&mut gpu, &dev, 128).unwrap();
        verify(&gpu, &dev);
    }
}
