//! Graph representation and generators for the BFS workload.
//!
//! Graphs are stored in CSR (compressed sparse row) form — the layout the
//! Rodinia-style BFS kernel walks on the device, and the source of the
//! data-dependent, poorly-coalesced loads that make BFS the paper's
//! dynamic-latency exemplar.

use gpu_types::rng::Rng;

/// A directed graph in CSR form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    row_offsets: Vec<u32>,
    cols: Vec<u32>,
}

impl Graph {
    /// Builds a graph from an adjacency list.
    ///
    /// # Panics
    ///
    /// Panics if any edge endpoint is out of range.
    pub fn from_adjacency(adj: &[Vec<u32>]) -> Self {
        let n = adj.len() as u32;
        let mut row_offsets = Vec::with_capacity(adj.len() + 1);
        let mut cols = Vec::new();
        row_offsets.push(0);
        for nbrs in adj {
            for &v in nbrs {
                assert!(v < n, "edge endpoint {v} out of range");
                cols.push(v);
            }
            row_offsets.push(cols.len() as u32);
        }
        Graph { row_offsets, cols }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u32 {
        (self.row_offsets.len() - 1) as u32
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> u32 {
        self.cols.len() as u32
    }

    /// CSR row offsets (length `num_nodes + 1`).
    pub fn row_offsets(&self) -> &[u32] {
        &self.row_offsets
    }

    /// CSR column indices.
    pub fn cols(&self) -> &[u32] {
        &self.cols
    }

    /// Neighbors of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: u32) -> &[u32] {
        let s = self.row_offsets[node as usize] as usize;
        let e = self.row_offsets[node as usize + 1] as usize;
        &self.cols[s..e]
    }

    /// Uniform random directed graph: every node gets `avg_degree` edges to
    /// uniformly random targets (self-loops allowed — BFS ignores them), in
    /// the spirit of the graphs the Rodinia BFS inputs use.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn uniform_random(n: u32, avg_degree: u32, seed: u64) -> Self {
        assert!(n > 0, "graph needs at least one node");
        let mut rng = Rng::seed_from_u64(seed);
        let adj: Vec<Vec<u32>> = (0..n)
            .map(|_| (0..avg_degree).map(|_| rng.gen_range_u32(0, n)).collect())
            .collect();
        Graph::from_adjacency(&adj)
    }

    /// Skewed ("power-law-ish") random graph: edge targets are biased toward
    /// low node ids with roughly Zipfian weight, creating the hub structure
    /// of social/web graphs (heavier MSHR merging and row-buffer locality
    /// than the uniform graph).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn skewed_random(n: u32, avg_degree: u32, seed: u64) -> Self {
        assert!(n > 0, "graph needs at least one node");
        let mut rng = Rng::seed_from_u64(seed);
        let adj: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                (0..avg_degree)
                    .map(|_| {
                        // Inverse-CDF sample of p(k) ~ 1/(k+1).
                        let u = rng.gen_f64();
                        let t = ((n as f64 + 1.0).powf(u) - 1.0).max(0.0);
                        (t as u32).min(n - 1)
                    })
                    .collect()
            })
            .collect();
        Graph::from_adjacency(&adj)
    }

    /// 2-D grid graph with 4-neighborhood (deterministic, long BFS
    /// frontiers with regular structure).
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn grid(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0);
        let id = |x: u32, y: u32| y * width + x;
        let adj: Vec<Vec<u32>> = (0..height)
            .flat_map(|y| (0..width).map(move |x| (x, y)))
            .map(|(x, y)| {
                let mut nbrs = Vec::with_capacity(4);
                if x > 0 {
                    nbrs.push(id(x - 1, y));
                }
                if x + 1 < width {
                    nbrs.push(id(x + 1, y));
                }
                if y > 0 {
                    nbrs.push(id(x, y - 1));
                }
                if y + 1 < height {
                    nbrs.push(id(x, y + 1));
                }
                nbrs
            })
            .collect();
        Graph::from_adjacency(&adj)
    }

    /// Host-side reference BFS: level of each node from `source`
    /// (`u32::MAX` for unreachable nodes).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    pub fn bfs_levels(&self, source: u32) -> Vec<u32> {
        assert!(source < self.num_nodes(), "source out of range");
        let mut levels = vec![u32::MAX; self.num_nodes() as usize];
        levels[source as usize] = 0;
        let mut frontier = vec![source];
        let mut level = 0u32;
        while !frontier.is_empty() {
            level += 1;
            let mut next = Vec::new();
            for &u in &frontier {
                for &v in self.neighbors(u) {
                    if levels[v as usize] == u32::MAX {
                        levels[v as usize] = level;
                        next.push(v);
                    }
                }
            }
            frontier = next;
        }
        levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_roundtrip() {
        let g = Graph::from_adjacency(&[vec![1, 2], vec![2], vec![]]);
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[2]);
        assert!(g.neighbors(2).is_empty());
        assert_eq!(g.row_offsets(), &[0, 2, 3, 3]);
        assert_eq!(g.cols(), &[1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_edge_rejected() {
        let _ = Graph::from_adjacency(&[vec![5]]);
    }

    #[test]
    fn uniform_random_has_requested_shape() {
        let g = Graph::uniform_random(100, 8, 42);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 800);
        assert!(g.cols().iter().all(|&v| v < 100));
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(
            Graph::uniform_random(64, 4, 7),
            Graph::uniform_random(64, 4, 7)
        );
        assert_ne!(
            Graph::uniform_random(64, 4, 7),
            Graph::uniform_random(64, 4, 8)
        );
        assert_eq!(
            Graph::skewed_random(64, 4, 7),
            Graph::skewed_random(64, 4, 7)
        );
    }

    #[test]
    fn skewed_graph_prefers_low_ids() {
        let g = Graph::skewed_random(1000, 8, 1);
        let low: usize = g.cols().iter().filter(|&&v| v < 100).count();
        // Zipf-ish: far more than the uniform expectation (10%).
        assert!(
            low > g.num_edges() as usize / 5,
            "only {low} of {} edges hit the low range",
            g.num_edges()
        );
    }

    #[test]
    fn grid_bfs_levels_are_manhattan_distance() {
        let g = Graph::grid(5, 4);
        let levels = g.bfs_levels(0);
        for y in 0..4u32 {
            for x in 0..5u32 {
                assert_eq!(levels[(y * 5 + x) as usize], x + y, "node ({x},{y})");
            }
        }
    }

    #[test]
    fn bfs_marks_unreachable() {
        let g = Graph::from_adjacency(&[vec![1], vec![], vec![0]]);
        let levels = g.bfs_levels(0);
        assert_eq!(levels, vec![0, 1, u32::MAX]);
    }
}
