//! Matrix transpose via shared-memory tiles — the canonical coalescing
//! workload: the naive version writes columns (32 lines per warp store),
//! the tiled version stages through shared memory so both the load and the
//! store are fully coalesced.

use gpu_isa::{AluOp, Kernel, KernelBuilder, Launch, Space, Special, Width};
use gpu_sim::{Gpu, RunSummary, SimError};
use gpu_types::Addr;

/// Tile edge (threads per block = TILE × TILE).
pub const TILE: u32 = 16;

/// Which transpose kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Direct `out[x][y] = in[y][x]`: column-strided stores, one memory
    /// transaction per lane.
    Naive,
    /// Stage a TILE×TILE block in shared memory with a barrier between
    /// coalesced load and coalesced store.
    Tiled,
}

/// Device buffers of a transpose instance (`n × n`, `n` multiple of TILE).
#[derive(Debug, Clone, Copy)]
pub struct TransposeDevice {
    /// Input matrix, row-major.
    pub input: Addr,
    /// Output matrix, row-major.
    pub output: Addr,
    /// Dimension.
    pub n: u32,
}

/// Builds the requested transpose kernel.
///
/// Parameters: `[0]` input, `[1]` output, `[2]` n, `[3]` tiles per row.
pub fn build_transpose_kernel(variant: Variant) -> Kernel {
    let tile = TILE as i64;
    let mut bld = KernelBuilder::new(match variant {
        Variant::Naive => "transpose_naive",
        Variant::Tiled => "transpose_tiled",
    });
    let input = bld.param(0);
    let output = bld.param(1);
    let n = bld.param(2);
    let tiles = bld.param(3);
    let ctaid = bld.special(Special::CtaIdX);
    let tid = bld.special(Special::TidX);
    let tile_row = bld.alu(AluOp::Div, ctaid, tiles);
    let tile_col = bld.alu(AluOp::Rem, ctaid, tiles);
    let ty = bld.alu(AluOp::Div, tid, tile);
    let tx = bld.alu(AluOp::Rem, tid, tile);
    let row_base = bld.mul(tile_row, tile);
    let col_base = bld.mul(tile_col, tile);
    let row = bld.add(row_base, ty);
    let col = bld.add(col_base, tx);
    // Source element in[row][col].
    let in_row_off = bld.mul(row, n);
    let in_idx = bld.add(in_row_off, col);
    let in_off = bld.shl(in_idx, 2);
    let in_addr = bld.add(input, in_off);
    match variant {
        Variant::Naive => {
            // out[col][row] = in[row][col]: the store scatters by rows.
            let v = bld.ld_global(Width::W4, in_addr, 0);
            let out_row_off = bld.mul(col, n);
            let out_idx = bld.add(out_row_off, row);
            let out_off = bld.shl(out_idx, 2);
            let out_addr = bld.add(output, out_off);
            bld.st_global(Width::W4, out_addr, 0, v);
        }
        Variant::Tiled => {
            let smem = bld.alloc_shared(4 * (TILE * TILE) as u64);
            // Stage: smem[ty][tx] = in[row][col] (coalesced load).
            let v = bld.ld_global(Width::W4, in_addr, 0);
            let s_row = bld.mul(ty, tile);
            let s_idx = bld.add(s_row, tx);
            let s_off = bld.shl(s_idx, 2);
            let s_addr = bld.add(s_off, smem as i64);
            bld.st(Space::Shared, Width::W4, s_addr, 0, v);
            bld.bar();
            // Drain transposed: out[col_base+ty][row_base+tx] = smem[tx][ty]
            // (coalesced store: consecutive tx map to consecutive columns).
            let t_row = bld.mul(tx, tile);
            let t_idx = bld.add(t_row, ty);
            let t_off = bld.shl(t_idx, 2);
            let t_addr = bld.add(t_off, smem as i64);
            let tv = bld.ld(Space::Shared, Width::W4, t_addr, 0);
            let out_row = bld.add(col_base, ty);
            let out_col = bld.add(row_base, tx);
            let out_row_off = bld.mul(out_row, n);
            let out_idx = bld.add(out_row_off, out_col);
            let out_off = bld.shl(out_idx, 2);
            let out_addr = bld.add(output, out_off);
            bld.st_global(Width::W4, out_addr, 0, tv);
        }
    }
    bld.exit();
    bld.build()
        .expect("transpose kernel is well-formed by construction")
}

/// Allocates and seeds an `n × n` instance (`in[i] = i`).
///
/// # Panics
///
/// Panics unless `n` is a positive multiple of [`TILE`].
pub fn setup(gpu: &mut Gpu, n: u32) -> TransposeDevice {
    assert!(
        n > 0 && n.is_multiple_of(TILE),
        "n must be a positive multiple of {TILE}"
    );
    let words = n as u64 * n as u64;
    let align = gpu.config().line_size;
    let input = gpu.alloc(4 * words, align);
    let output = gpu.alloc(4 * words, align);
    for i in 0..words {
        gpu.device_mut().write_u32(input + 4 * i, i as u32);
    }
    TransposeDevice { input, output, n }
}

/// Launches and runs the chosen variant.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(gpu: &mut Gpu, dev: &TransposeDevice, variant: Variant) -> Result<RunSummary, SimError> {
    let tiles = dev.n / TILE;
    gpu.launch(
        build_transpose_kernel(variant),
        Launch::new(
            tiles * tiles,
            TILE * TILE,
            vec![
                dev.input.get(),
                dev.output.get(),
                dev.n as u64,
                tiles as u64,
            ],
        ),
    )?;
    gpu.run(500_000_000)
}

/// Verifies `output == input^T`.
///
/// # Panics
///
/// Panics on the first mismatching element.
pub fn verify(gpu: &Gpu, dev: &TransposeDevice) {
    let n = dev.n as u64;
    for y in 0..n {
        for x in 0..n {
            let got = gpu.device().read_u32(dev.output + 4 * (y * n + x));
            assert_eq!(got, (x * n + y) as u32, "element ({y},{x})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn small_gpu() -> Gpu {
        let mut cfg = GpuConfig::fermi_gf100();
        cfg.num_sms = 4;
        Gpu::new(cfg)
    }

    #[test]
    fn naive_transpose_is_correct() {
        let mut gpu = small_gpu();
        let dev = setup(&mut gpu, 32);
        run(&mut gpu, &dev, Variant::Naive).unwrap();
        verify(&gpu, &dev);
    }

    #[test]
    fn tiled_transpose_is_correct() {
        let mut gpu = small_gpu();
        let dev = setup(&mut gpu, 32);
        run(&mut gpu, &dev, Variant::Tiled).unwrap();
        verify(&gpu, &dev);
    }

    #[test]
    fn tiling_reduces_memory_transactions() {
        let txns = |variant| {
            let mut gpu = small_gpu();
            let dev = setup(&mut gpu, 64);
            gpu.set_tracing(true);
            run(&mut gpu, &dev, variant).unwrap();
            let stats = gpu.sm_stats();
            stats.iter().map(|s| s.transactions).sum::<u64>()
        };
        let naive = txns(Variant::Naive);
        let tiled = txns(Variant::Tiled);
        assert!(
            naive > 3 * tiled,
            "naive column stores should fan out: naive {naive} vs tiled {tiled}"
        );
    }

    #[test]
    fn tiling_is_faster() {
        let cycles = |variant| {
            let mut gpu = small_gpu();
            let dev = setup(&mut gpu, 64);
            run(&mut gpu, &dev, variant).unwrap();
            gpu.now().get()
        };
        let naive = cycles(Variant::Naive);
        let tiled = cycles(Variant::Tiled);
        assert!(tiled < naive, "tiled {tiled} should beat naive {naive}");
    }
}
