//! Frontier-based breadth-first search — the paper's dynamic-latency
//! exemplar workload (§III, Figures 1 and 2).
//!
//! One kernel launch per BFS level, Rodinia-style: each thread takes one
//! frontier node, walks its CSR neighbor list, claims unvisited neighbors
//! and appends them to the next frontier with an atomic ticket. The
//! data-dependent `cols[e]` / `levels[nbr]` loads are exactly the
//! poorly-coalesced, hard-to-hide global accesses that make BFS
//! latency-critical.

use gpu_isa::{CmpOp, Kernel, KernelBuilder, Launch, Special, Width};
use gpu_sim::{CheckpointPolicy, Gpu, RunOutcome, SimError};
use gpu_snapshot::{Decoder, Encoder, SnapshotError};
use gpu_types::Addr;

use crate::graph::Graph;

/// Level marker for unvisited nodes.
pub const UNVISITED: u32 = u32::MAX;

/// Device-resident BFS state.
#[derive(Debug, Clone, Copy)]
pub struct BfsDevice {
    /// CSR row offsets (`n + 1` u32s).
    pub row_offsets: Addr,
    /// CSR column indices.
    pub cols: Addr,
    /// Per-node level array.
    pub levels: Addr,
    /// Frontier buffer A.
    pub frontier_a: Addr,
    /// Frontier buffer B.
    pub frontier_b: Addr,
    /// Next-frontier size counter.
    pub count: Addr,
    /// Node count.
    pub num_nodes: u32,
}

/// Uploads a graph and allocates BFS state on the device.
pub fn upload_graph(gpu: &mut Gpu, graph: &Graph) -> BfsDevice {
    let n = graph.num_nodes();
    let align = gpu.config().line_size;
    let row_offsets = gpu.alloc(4 * (n as u64 + 1), align);
    let cols = gpu.alloc(4 * graph.num_edges().max(1) as u64, align);
    let levels = gpu.alloc(4 * n as u64, align);
    let frontier_a = gpu.alloc(4 * n as u64, align);
    let frontier_b = gpu.alloc(4 * n as u64, align);
    let count = gpu.alloc(4, align);
    gpu.device_mut()
        .write_u32_slice(row_offsets, graph.row_offsets());
    gpu.device_mut().write_u32_slice(cols, graph.cols());
    BfsDevice {
        row_offsets,
        cols,
        levels,
        frontier_a,
        frontier_b,
        count,
        num_nodes: n,
    }
}

/// Builds the per-level BFS kernel.
///
/// Parameters: `[0]` row_offsets, `[1]` cols, `[2]` levels,
/// `[3]` frontier_in, `[4]` frontier_out, `[5]` count pointer,
/// `[6]` frontier size, `[7]` level being assigned.
pub fn build_bfs_kernel() -> Kernel {
    let mut b = KernelBuilder::new("bfs_level");
    let row_offsets = b.param(0);
    let cols = b.param(1);
    let levels = b.param(2);
    let frontier_in = b.param(3);
    let frontier_out = b.param(4);
    let count = b.param(5);
    let frontier_size = b.param(6);
    let next_level = b.param(7);

    let gtid = b.special(Special::GlobalTid);
    let active = b.setp(CmpOp::Lt, gtid, frontier_size);
    b.if_then(active, |b| {
        let fin_off = b.shl(gtid, 2);
        let fin_addr = b.add(frontier_in, fin_off);
        let node = b.ld_global(Width::W4, fin_addr, 0);
        let ro_off = b.shl(node, 2);
        let ro_addr = b.add(row_offsets, ro_off);
        let start = b.ld_global(Width::W4, ro_addr, 0);
        let end = b.ld_global(Width::W4, ro_addr, 4);
        let e = b.mov(start);
        let pred = b.pred();
        b.while_loop(
            |b| {
                b.setp_to(pred, CmpOp::Lt, e, end);
                pred
            },
            |b| {
                let col_off = b.shl(e, 2);
                let col_addr = b.add(cols, col_off);
                let nbr = b.ld_global(Width::W4, col_addr, 0);
                let lvl_off = b.shl(nbr, 2);
                let lvl_addr = b.add(levels, lvl_off);
                let lvl = b.ld_global(Width::W4, lvl_addr, 0);
                let unvisited = b.setp(CmpOp::Eq, lvl, UNVISITED as i64);
                b.if_then(unvisited, |b| {
                    b.st_global(Width::W4, lvl_addr, 0, next_level);
                    let ticket = b.atom_add(Width::W4, count, 0, 1);
                    let out_off = b.shl(ticket, 2);
                    let out_addr = b.add(frontier_out, out_off);
                    b.st_global(Width::W4, out_addr, 0, nbr);
                });
                b.alu_to(gpu_isa::AluOp::Add, e, e, 1);
            },
        );
    });
    b.exit();
    b.build()
        .expect("BFS kernel is well-formed by construction")
}

/// Result of a device BFS traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsRun {
    /// BFS levels executed (kernel launches).
    pub levels_run: u32,
    /// Frontier size after each level.
    pub frontier_sizes: Vec<u32>,
    /// Total simulated cycles over all launches.
    pub total_cycles: u64,
    /// Total warp instructions issued.
    pub instructions: u64,
}

/// Runs a full device BFS from `source`, launching one kernel per level.
///
/// # Errors
///
/// Propagates simulator errors (e.g. cycle-limit timeouts).
///
/// # Panics
///
/// Panics if `source` is out of range or `block_dim` is zero.
pub fn run_bfs(
    gpu: &mut Gpu,
    dev: &BfsDevice,
    source: u32,
    block_dim: u32,
) -> Result<BfsRun, SimError> {
    assert!(source < dev.num_nodes, "source out of range");
    assert!(block_dim > 0, "block_dim must be positive");
    // Initialize levels and the first frontier.
    let init: Vec<u32> = (0..dev.num_nodes)
        .map(|i| if i == source { 0 } else { UNVISITED })
        .collect();
    gpu.device_mut().write_u32_slice(dev.levels, &init);
    gpu.device_mut().write_u32(dev.frontier_a, source);

    let kernel = build_bfs_kernel();
    let mut frontier_size = 1u32;
    let mut level = 0u32;
    let mut result = BfsRun {
        levels_run: 0,
        frontier_sizes: Vec::new(),
        total_cycles: 0,
        instructions: 0,
    };
    let (mut fin, mut fout) = (dev.frontier_a, dev.frontier_b);
    while frontier_size > 0 && level < dev.num_nodes {
        gpu.device_mut().write_u32(dev.count, 0);
        let grid = frontier_size.div_ceil(block_dim);
        gpu.launch(
            kernel.clone(),
            Launch::new(
                grid,
                block_dim,
                vec![
                    dev.row_offsets.get(),
                    dev.cols.get(),
                    dev.levels.get(),
                    fin.get(),
                    fout.get(),
                    dev.count.get(),
                    frontier_size as u64,
                    (level + 1) as u64,
                ],
            ),
        )?;
        // `RunSummary` is cumulative across launches (per-SM counters are
        // never reset), so keep the latest values.
        let summary = gpu.run(500_000_000)?;
        result.instructions = summary.instructions;
        frontier_size = gpu.device().read_u32(dev.count);
        result.frontier_sizes.push(frontier_size);
        std::mem::swap(&mut fin, &mut fout);
        level += 1;
        result.levels_run = level;
    }
    result.total_cycles = gpu.now().get();
    Ok(result)
}

/// Reads back the level array.
pub fn read_levels(gpu: &Gpu, dev: &BfsDevice) -> Vec<u32> {
    gpu.device()
        .read_u32_slice(dev.levels, dev.num_nodes as usize)
}

// ---------------------------------------------------------------------------
// Rodinia-style mask BFS (the formulation GPGPU-Sim's standard suite uses,
// i.e. the kernel behind the paper's Figures 1 and 2): no frontier
// compaction, no atomics — per level, kernel 1 expands the nodes whose mask
// is set, kernel 2 commits the "updating" set and raises a stop flag.
// ---------------------------------------------------------------------------

/// Device-resident state of the Rodinia-style mask BFS.
#[derive(Debug, Clone, Copy)]
pub struct BfsMaskDevice {
    /// CSR row offsets.
    pub row_offsets: Addr,
    /// CSR column indices.
    pub cols: Addr,
    /// Per-node BFS level ("cost" in Rodinia).
    pub cost: Addr,
    /// Frontier mask: nodes to expand this level.
    pub mask: Addr,
    /// Nodes discovered this level, to be committed by kernel 2.
    pub updating: Addr,
    /// Visited flags.
    pub visited: Addr,
    /// Continue flag raised by kernel 2 when anything was discovered.
    pub more: Addr,
    /// Node count.
    pub num_nodes: u32,
}

/// Uploads a graph and allocates mask-BFS state.
pub fn upload_graph_mask(gpu: &mut Gpu, graph: &Graph) -> BfsMaskDevice {
    let n = graph.num_nodes();
    let align = gpu.config().line_size;
    let row_offsets = gpu.alloc(4 * (n as u64 + 1), align);
    let cols = gpu.alloc(4 * graph.num_edges().max(1) as u64, align);
    let cost = gpu.alloc(4 * n as u64, align);
    let mask = gpu.alloc(4 * n as u64, align);
    let updating = gpu.alloc(4 * n as u64, align);
    let visited = gpu.alloc(4 * n as u64, align);
    let more = gpu.alloc(4, align);
    gpu.device_mut()
        .write_u32_slice(row_offsets, graph.row_offsets());
    gpu.device_mut().write_u32_slice(cols, graph.cols());
    BfsMaskDevice {
        row_offsets,
        cols,
        cost,
        mask,
        updating,
        visited,
        more,
        num_nodes: n,
    }
}

/// Builds Rodinia BFS kernel 1: expand masked nodes.
///
/// Parameters: `[0]` row_offsets, `[1]` cols, `[2]` cost, `[3]` mask,
/// `[4]` updating, `[5]` visited, `[6]` n.
pub fn build_bfs_mask_kernel1() -> Kernel {
    let mut b = KernelBuilder::new("bfs_mask_expand");
    let row_offsets = b.param(0);
    let cols = b.param(1);
    let cost = b.param(2);
    let mask = b.param(3);
    let updating = b.param(4);
    let visited = b.param(5);
    let n = b.param(6);
    let gtid = b.special(Special::GlobalTid);
    let inb = b.setp(CmpOp::Lt, gtid, n);
    b.if_then(inb, |b| {
        let off = b.shl(gtid, 2);
        let mask_addr = b.add(mask, off);
        let m = b.ld_global(Width::W4, mask_addr, 0);
        let active = b.setp(CmpOp::Ne, m, 0);
        b.if_then(active, |b| {
            b.st_global(Width::W4, mask_addr, 0, 0);
            let cost_addr = b.add(cost, off);
            let my_cost = b.ld_global(Width::W4, cost_addr, 0);
            let next_cost = b.add(my_cost, 1);
            let ro_addr = b.add(row_offsets, off);
            let start = b.ld_global(Width::W4, ro_addr, 0);
            let end = b.ld_global(Width::W4, ro_addr, 4);
            let e = b.mov(start);
            let pred = b.pred();
            b.while_loop(
                |b| {
                    b.setp_to(pred, CmpOp::Lt, e, end);
                    pred
                },
                |b| {
                    let col_off = b.shl(e, 2);
                    let col_addr = b.add(cols, col_off);
                    let nbr = b.ld_global(Width::W4, col_addr, 0);
                    let nbr_off = b.shl(nbr, 2);
                    let vis_addr = b.add(visited, nbr_off);
                    let vis = b.ld_global(Width::W4, vis_addr, 0);
                    let fresh = b.setp(CmpOp::Eq, vis, 0);
                    b.if_then(fresh, |b| {
                        let c_addr = b.add(cost, nbr_off);
                        b.st_global(Width::W4, c_addr, 0, next_cost);
                        let u_addr = b.add(updating, nbr_off);
                        b.st_global(Width::W4, u_addr, 0, 1);
                    });
                    b.alu_to(gpu_isa::AluOp::Add, e, e, 1);
                },
            );
        });
    });
    b.exit();
    b.build()
        .expect("mask kernel 1 is well-formed by construction")
}

/// Builds Rodinia BFS kernel 2: commit updated nodes and raise the flag.
///
/// Parameters: `[0]` mask, `[1]` updating, `[2]` visited, `[3]` more, `[4]` n.
pub fn build_bfs_mask_kernel2() -> Kernel {
    let mut b = KernelBuilder::new("bfs_mask_commit");
    let mask = b.param(0);
    let updating = b.param(1);
    let visited = b.param(2);
    let more = b.param(3);
    let n = b.param(4);
    let gtid = b.special(Special::GlobalTid);
    let inb = b.setp(CmpOp::Lt, gtid, n);
    b.if_then(inb, |b| {
        let off = b.shl(gtid, 2);
        let u_addr = b.add(updating, off);
        let u = b.ld_global(Width::W4, u_addr, 0);
        let fresh = b.setp(CmpOp::Ne, u, 0);
        b.if_then(fresh, |b| {
            let mask_addr = b.add(mask, off);
            b.st_global(Width::W4, mask_addr, 0, 1);
            let vis_addr = b.add(visited, off);
            b.st_global(Width::W4, vis_addr, 0, 1);
            b.st_global(Width::W4, more, 0, 1);
            b.st_global(Width::W4, u_addr, 0, 0);
        });
    });
    b.exit();
    b.build()
        .expect("mask kernel 2 is well-formed by construction")
}

/// Runs the Rodinia-style mask BFS from `source`: two kernel launches per
/// level until no node is discovered.
///
/// # Errors
///
/// Propagates simulator errors.
///
/// # Panics
///
/// Panics if `source` is out of range or `block_dim` is zero.
pub fn run_bfs_mask(
    gpu: &mut Gpu,
    dev: &BfsMaskDevice,
    source: u32,
    block_dim: u32,
) -> Result<BfsRun, SimError> {
    assert!(source < dev.num_nodes, "source out of range");
    assert!(block_dim > 0, "block_dim must be positive");
    let n = dev.num_nodes;
    init_mask_state(gpu, dev, source);

    let k1 = build_bfs_mask_kernel1();
    let k2 = build_bfs_mask_kernel2();
    let grid = n.div_ceil(block_dim);
    let mut result = BfsRun {
        levels_run: 0,
        frontier_sizes: Vec::new(),
        total_cycles: 0,
        instructions: 0,
    };
    loop {
        gpu.device_mut().write_u32(dev.more, 0);
        gpu.launch(
            k1.clone(),
            Launch::new(
                grid,
                block_dim,
                vec![
                    dev.row_offsets.get(),
                    dev.cols.get(),
                    dev.cost.get(),
                    dev.mask.get(),
                    dev.updating.get(),
                    dev.visited.get(),
                    n as u64,
                ],
            ),
        )?;
        gpu.run(500_000_000)?;
        gpu.launch(
            k2.clone(),
            Launch::new(
                grid,
                block_dim,
                vec![
                    dev.mask.get(),
                    dev.updating.get(),
                    dev.visited.get(),
                    dev.more.get(),
                    n as u64,
                ],
            ),
        )?;
        let summary = gpu.run(500_000_000)?;
        result.instructions = summary.instructions;
        result.levels_run += 1;
        if gpu.device().read_u32(dev.more) == 0 || result.levels_run > n {
            break;
        }
    }
    result.total_cycles = gpu.now().get();
    Ok(result)
}

/// Reads back the cost (level) array of a mask-BFS run.
pub fn read_costs(gpu: &Gpu, dev: &BfsMaskDevice) -> Vec<u32> {
    gpu.device()
        .read_u32_slice(dev.cost, dev.num_nodes as usize)
}

/// Seeds the device arrays for a mask BFS from `source`.
fn init_mask_state(gpu: &mut Gpu, dev: &BfsMaskDevice, source: u32) {
    let n = dev.num_nodes;
    let cost_init: Vec<u32> = (0..n)
        .map(|i| if i == source { 0 } else { UNVISITED })
        .collect();
    gpu.device_mut().write_u32_slice(dev.cost, &cost_init);
    let mut zeroes = vec![0u32; n as usize];
    gpu.device_mut().write_u32_slice(dev.updating, &zeroes);
    zeroes[source as usize] = 1;
    gpu.device_mut().write_u32_slice(dev.mask, &zeroes);
    gpu.device_mut().write_u32_slice(dev.visited, &zeroes);
}

// ---------------------------------------------------------------------------
// Checkpointed mask BFS: the host loop state rides inside the GPU checkpoint
// as an opaque tag, so a killed traversal resumes mid-level and completes
// cycle-identically to an uninterrupted one.
// ---------------------------------------------------------------------------

/// Kernel 1 (expand) of the tagged level is in flight.
const PHASE_EXPAND: u8 = 1;
/// Kernel 2 (commit) of the tagged level is in flight.
const PHASE_COMMIT: u8 = 2;

/// Outcome of a checkpointed mask-BFS traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BfsMaskOutcome {
    /// The traversal ran to completion.
    Completed(BfsRun),
    /// The deterministic kill switch fired at this cycle; resume from the
    /// newest checkpoint with [`resume_bfs_mask`].
    Killed {
        /// Cycle at which the run was killed.
        at: u64,
    },
}

fn encode_mask_tag(dev: &BfsMaskDevice, block_dim: u32, levels_run: u32, phase: u8) -> Vec<u8> {
    let mut e = Encoder::new();
    e.u64(dev.row_offsets.get());
    e.u64(dev.cols.get());
    e.u64(dev.cost.get());
    e.u64(dev.mask.get());
    e.u64(dev.updating.get());
    e.u64(dev.visited.get());
    e.u64(dev.more.get());
    e.u32(dev.num_nodes);
    e.u32(block_dim);
    e.u32(levels_run);
    e.u8(phase);
    e.finish()
}

fn decode_mask_tag(bytes: &[u8]) -> Result<(BfsMaskDevice, u32, u32, u8), SnapshotError> {
    let mut d = Decoder::open(bytes)?;
    let dev = BfsMaskDevice {
        row_offsets: Addr::new(d.u64()?),
        cols: Addr::new(d.u64()?),
        cost: Addr::new(d.u64()?),
        mask: Addr::new(d.u64()?),
        updating: Addr::new(d.u64()?),
        visited: Addr::new(d.u64()?),
        more: Addr::new(d.u64()?),
        num_nodes: d.u32()?,
    };
    let block_dim = d.u32()?;
    let levels_run = d.u32()?;
    let phase = d.u8()?;
    if block_dim == 0 || dev.num_nodes == 0 {
        return Err(SnapshotError::InvalidValue("BFS tag has empty geometry"));
    }
    if phase != PHASE_EXPAND && phase != PHASE_COMMIT {
        return Err(SnapshotError::InvalidValue("BFS tag has an unknown phase"));
    }
    d.expect_end()?;
    Ok((dev, block_dim, levels_run, phase))
}

/// Decodes just the device layout from a checkpoint's host tag, so a
/// resuming driver can read results back after the traversal completes.
///
/// # Errors
///
/// Rejects tags not written by [`run_bfs_mask_checkpointed`].
pub fn peek_mask_tag(bytes: &[u8]) -> Result<BfsMaskDevice, SnapshotError> {
    decode_mask_tag(bytes).map(|(dev, ..)| dev)
}

/// Runs the Rodinia-style mask BFS under a checkpoint policy: periodic
/// snapshots land in `policy.dir`, each carrying the host loop's position
/// (level and in-flight kernel) so [`resume_bfs_mask`] can pick the
/// traversal up mid-level. With `policy.kill_at` set, the run stops
/// deterministically at that cycle and reports [`BfsMaskOutcome::Killed`].
///
/// # Errors
///
/// Propagates simulator and checkpoint-write errors.
///
/// # Panics
///
/// Panics if `source` is out of range or `block_dim` is zero.
pub fn run_bfs_mask_checkpointed(
    gpu: &mut Gpu,
    dev: &BfsMaskDevice,
    source: u32,
    block_dim: u32,
    policy: &CheckpointPolicy,
) -> Result<BfsMaskOutcome, SimError> {
    assert!(source < dev.num_nodes, "source out of range");
    assert!(block_dim > 0, "block_dim must be positive");
    init_mask_state(gpu, dev, source);
    gpu.device_mut().write_u32(dev.more, 0);
    launch_mask_expand(gpu, dev, block_dim)?;
    gpu.set_host_tag(encode_mask_tag(dev, block_dim, 0, PHASE_EXPAND));
    drive_mask_loop(gpu, dev, block_dim, 0, PHASE_EXPAND, policy)
}

/// Continues a mask BFS restored from a checkpoint (the in-flight kernel and
/// the host loop position both live in the checkpoint). The `gpu` must come
/// from [`Gpu::restore`] / [`Gpu::resume_latest`] on a checkpoint written by
/// [`run_bfs_mask_checkpointed`].
///
/// # Errors
///
/// Returns [`SimError::Checkpoint`] when the checkpoint carries no valid
/// BFS host tag; otherwise propagates simulator errors.
pub fn resume_bfs_mask(
    gpu: &mut Gpu,
    policy: &CheckpointPolicy,
) -> Result<BfsMaskOutcome, SimError> {
    let (dev, block_dim, levels_run, phase) = decode_mask_tag(gpu.host_tag())
        .map_err(|e| SimError::Checkpoint(format!("checkpoint carries no BFS host tag: {e}")))?;
    drive_mask_loop(gpu, &dev, block_dim, levels_run, phase, policy)
}

fn launch_mask_expand(gpu: &mut Gpu, dev: &BfsMaskDevice, block_dim: u32) -> Result<(), SimError> {
    let grid = dev.num_nodes.div_ceil(block_dim);
    gpu.launch(
        build_bfs_mask_kernel1(),
        Launch::new(
            grid,
            block_dim,
            vec![
                dev.row_offsets.get(),
                dev.cols.get(),
                dev.cost.get(),
                dev.mask.get(),
                dev.updating.get(),
                dev.visited.get(),
                dev.num_nodes as u64,
            ],
        ),
    )
}

fn launch_mask_commit(gpu: &mut Gpu, dev: &BfsMaskDevice, block_dim: u32) -> Result<(), SimError> {
    let grid = dev.num_nodes.div_ceil(block_dim);
    gpu.launch(
        build_bfs_mask_kernel2(),
        Launch::new(
            grid,
            block_dim,
            vec![
                dev.mask.get(),
                dev.updating.get(),
                dev.visited.get(),
                dev.more.get(),
                dev.num_nodes as u64,
            ],
        ),
    )
}

/// The shared level loop: finishes the in-flight kernel for `phase`, then
/// alternates expand/commit launches until the commit kernel discovers
/// nothing. The host tag is refreshed before every run so any checkpoint
/// written during it carries the loop position that produced it.
fn drive_mask_loop(
    gpu: &mut Gpu,
    dev: &BfsMaskDevice,
    block_dim: u32,
    mut levels_run: u32,
    mut phase: u8,
    policy: &CheckpointPolicy,
) -> Result<BfsMaskOutcome, SimError> {
    let n = dev.num_nodes;
    let mut instructions;
    loop {
        match gpu.run_checkpointed(500_000_000, policy)? {
            RunOutcome::Killed { at } => return Ok(BfsMaskOutcome::Killed { at }),
            RunOutcome::Completed(summary) => instructions = summary.instructions,
        }
        if phase == PHASE_EXPAND {
            launch_mask_commit(gpu, dev, block_dim)?;
            phase = PHASE_COMMIT;
        } else {
            levels_run += 1;
            if gpu.device().read_u32(dev.more) == 0 || levels_run > n {
                break;
            }
            gpu.device_mut().write_u32(dev.more, 0);
            launch_mask_expand(gpu, dev, block_dim)?;
            phase = PHASE_EXPAND;
        }
        gpu.set_host_tag(encode_mask_tag(dev, block_dim, levels_run, phase));
    }
    Ok(BfsMaskOutcome::Completed(BfsRun {
        levels_run,
        frontier_sizes: Vec::new(),
        total_cycles: gpu.now().get(),
        instructions,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn small_fermi() -> GpuConfig {
        let mut c = GpuConfig::fermi_gf100();
        c.num_sms = 4; // keep unit tests quick
        c
    }

    #[test]
    fn bfs_kernel_validates() {
        assert!(build_bfs_kernel().validate().is_ok());
    }

    #[test]
    fn grid_graph_levels_match_reference() {
        let graph = Graph::grid(8, 6);
        let mut gpu = Gpu::new(small_fermi());
        let dev = upload_graph(&mut gpu, &graph);
        let run = run_bfs(&mut gpu, &dev, 0, 64).unwrap();
        assert_eq!(read_levels(&gpu, &dev), graph.bfs_levels(0));
        assert!(run.levels_run >= 12, "8x6 grid has eccentricity 12");
        assert!(run.total_cycles > 0);
    }

    #[test]
    fn random_graph_levels_match_reference() {
        let graph = Graph::uniform_random(300, 6, 99);
        let mut gpu = Gpu::new(small_fermi());
        let dev = upload_graph(&mut gpu, &graph);
        run_bfs(&mut gpu, &dev, 5, 128).unwrap();
        assert_eq!(read_levels(&gpu, &dev), graph.bfs_levels(5));
    }

    #[test]
    fn unreachable_nodes_stay_unvisited() {
        let graph = Graph::from_adjacency(&[vec![1], vec![0], vec![0]]);
        let mut gpu = Gpu::new(small_fermi());
        let dev = upload_graph(&mut gpu, &graph);
        run_bfs(&mut gpu, &dev, 0, 32).unwrap();
        assert_eq!(read_levels(&gpu, &dev), vec![0, 1, UNVISITED]);
    }

    #[test]
    fn mask_bfs_matches_reference_on_grid() {
        let graph = Graph::grid(8, 6);
        let mut gpu = Gpu::new(small_fermi());
        let dev = upload_graph_mask(&mut gpu, &graph);
        let run = run_bfs_mask(&mut gpu, &dev, 0, 64).unwrap();
        assert_eq!(read_costs(&gpu, &dev), graph.bfs_levels(0));
        assert!(run.levels_run >= 12);
    }

    #[test]
    fn mask_bfs_matches_reference_on_random_graph() {
        let graph = Graph::uniform_random(300, 6, 99);
        let mut gpu = Gpu::new(small_fermi());
        let dev = upload_graph_mask(&mut gpu, &graph);
        run_bfs_mask(&mut gpu, &dev, 5, 128).unwrap();
        assert_eq!(read_costs(&gpu, &dev), graph.bfs_levels(5));
    }

    #[test]
    fn mask_bfs_handles_unreachable_nodes() {
        let graph = Graph::from_adjacency(&[vec![1], vec![0], vec![0]]);
        let mut gpu = Gpu::new(small_fermi());
        let dev = upload_graph_mask(&mut gpu, &graph);
        run_bfs_mask(&mut gpu, &dev, 0, 32).unwrap();
        assert_eq!(read_costs(&gpu, &dev), vec![0, 1, UNVISITED]);
    }

    #[test]
    fn frontier_sizes_sum_to_reachable_nodes() {
        let graph = Graph::uniform_random(200, 4, 3);
        let mut gpu = Gpu::new(small_fermi());
        let dev = upload_graph(&mut gpu, &graph);
        let run = run_bfs(&mut gpu, &dev, 0, 64).unwrap();
        let reached = graph
            .bfs_levels(0)
            .iter()
            .filter(|&&l| l != UNVISITED)
            .count() as u32;
        // Every reached node (except the source) got exactly one ticket,
        // modulo the benign Rodinia-style duplicate race, which can only
        // over-count.
        let tickets: u32 = run.frontier_sizes.iter().sum();
        assert!(
            tickets >= reached - 1,
            "tickets {tickets} < reached {reached}"
        );
    }
}
