//! Tiled integer matrix multiplication with shared memory and barriers —
//! the compute-bound, shared-memory-heavy workload of the comparison set.
//!
//! Classic CUDA tiling: each 16×16 thread block computes one 16×16 tile of
//! `C = A × B`, staging tiles of `A` and `B` through shared memory with a
//! barrier between load and use. Matrices hold `u32` values with wrapping
//! arithmetic so verification is exact.

use gpu_isa::{AluOp, Kernel, KernelBuilder, Launch, Operand, Space, Special, Width};
use gpu_sim::{Gpu, RunSummary, SimError};
use gpu_types::Addr;

/// Tile edge (threads per block = TILE × TILE).
pub const TILE: u32 = 16;

/// Device buffers of a matmul instance (square `n × n`, `n` a multiple of
/// [`TILE`]).
#[derive(Debug, Clone, Copy)]
pub struct MatmulDevice {
    /// Left operand, row-major.
    pub a: Addr,
    /// Right operand, row-major.
    pub b: Addr,
    /// Output, row-major.
    pub c: Addr,
    /// Matrix dimension.
    pub n: u32,
}

/// Builds the tiled matmul kernel for `n × n` matrices.
///
/// Parameters: `[0]` a, `[1]` b, `[2]` c, `[3]` n, `[4]` tiles per row of
/// the grid (`n / TILE`).
///
/// The 1-D launch is mapped as: CTA id → (tile row, tile col), thread id →
/// (row-in-tile, col-in-tile).
pub fn build_matmul_kernel() -> Kernel {
    let mut bld = KernelBuilder::new("matmul_tiled");
    let tile = TILE as i64;
    let a_base = bld.param(0);
    let b_base = bld.param(1);
    let c_base = bld.param(2);
    let n = bld.param(3);
    let tiles = bld.param(4);

    let sa = bld.alloc_shared(4 * (TILE * TILE) as u64);
    let sb = bld.alloc_shared(4 * (TILE * TILE) as u64);

    let ctaid = bld.special(Special::CtaIdX);
    let tid = bld.special(Special::TidX);
    // 2-D decomposition.
    let tile_row = bld.alu(AluOp::Div, ctaid, tiles);
    let tile_col = bld.alu(AluOp::Rem, ctaid, tiles);
    let ty = bld.alu(AluOp::Div, tid, tile);
    let tx = bld.alu(AluOp::Rem, tid, tile);
    let row_base = bld.mul(tile_row, tile);
    let row = bld.add(row_base, ty);
    let col_base = bld.mul(tile_col, tile);
    let col = bld.add(col_base, tx);

    let acc = bld.mov(0i64);
    // Shared addresses reused each iteration: sa[ty][tx], sb[ty][tx].
    let s_off_row = bld.mul(ty, tile);
    let s_off = bld.add(s_off_row, tx);
    let s_off4 = bld.shl(s_off, 2);
    let sa_addr = bld.add(s_off4, sa as i64);
    let sb_addr = bld.add(s_off4, sb as i64);

    bld.for_range(Operand::Imm(0), tiles, 1, |bld, t| {
        // Load A[row][t*TILE + tx] into sa[ty][tx].
        let a_col_base = bld.mul(t, tile);
        let a_col = bld.add(a_col_base, tx);
        let a_row_off = bld.mul(row, n);
        let a_idx = bld.add(a_row_off, a_col);
        let a_off = bld.shl(a_idx, 2);
        let a_addr = bld.add(a_base, a_off);
        let a_val = bld.ld_global(Width::W4, a_addr, 0);
        bld.st(Space::Shared, Width::W4, sa_addr, 0, a_val);
        // Load B[t*TILE + ty][col] into sb[ty][tx].
        let b_row = bld.add(a_col_base, ty);
        let b_row_off = bld.mul(b_row, n);
        let b_idx = bld.add(b_row_off, col);
        let b_off = bld.shl(b_idx, 2);
        let b_addr = bld.add(b_base, b_off);
        let b_val = bld.ld_global(Width::W4, b_addr, 0);
        bld.st(Space::Shared, Width::W4, sb_addr, 0, b_val);
        bld.bar();
        // acc += sum_k sa[ty][k] * sb[k][tx]
        bld.for_range(Operand::Imm(0), Operand::Imm(tile), 1, |bld, k| {
            let sa_row = bld.mul(ty, tile);
            let sa_idx = bld.add(sa_row, k);
            let sa_o = bld.shl(sa_idx, 2);
            let sa_a = bld.add(sa_o, sa as i64);
            let av = bld.ld(Space::Shared, Width::W4, sa_a, 0);
            let sb_row = bld.mul(k, tile);
            let sb_idx = bld.add(sb_row, tx);
            let sb_o = bld.shl(sb_idx, 2);
            let sb_a = bld.add(sb_o, sb as i64);
            let bv = bld.ld(Space::Shared, Width::W4, sb_a, 0);
            let prod = bld.mul(av, bv);
            bld.alu_to(AluOp::Add, acc, acc, prod);
        });
        bld.bar();
    });
    // C[row][col] = acc (truncated to u32 by the 4-byte store).
    let c_row_off = bld.mul(row, n);
    let c_idx = bld.add(c_row_off, col);
    let c_off = bld.shl(c_idx, 2);
    let c_addr = bld.add(c_base, c_off);
    bld.st_global(Width::W4, c_addr, 0, acc);
    bld.exit();
    bld.build()
        .expect("matmul kernel is well-formed by construction")
}

/// Allocates and initializes an `n × n` instance with deterministic inputs.
///
/// # Panics
///
/// Panics unless `n` is a positive multiple of [`TILE`].
pub fn setup(gpu: &mut Gpu, n: u32) -> MatmulDevice {
    assert!(
        n > 0 && n.is_multiple_of(TILE),
        "n must be a positive multiple of {TILE}"
    );
    let align = gpu.config().line_size;
    let words = (n as u64) * (n as u64);
    let a = gpu.alloc(4 * words, align);
    let b = gpu.alloc(4 * words, align);
    let c = gpu.alloc(4 * words, align);
    for i in 0..words {
        gpu.device_mut().write_u32(a + 4 * i, (i % 7 + 1) as u32);
        gpu.device_mut().write_u32(b + 4 * i, (i % 5 + 1) as u32);
    }
    MatmulDevice { a, b, c, n }
}

/// Launches and runs the kernel to completion.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(gpu: &mut Gpu, dev: &MatmulDevice) -> Result<RunSummary, SimError> {
    let tiles = dev.n / TILE;
    gpu.launch(
        build_matmul_kernel(),
        Launch::new(
            tiles * tiles,
            TILE * TILE,
            vec![
                dev.a.get(),
                dev.b.get(),
                dev.c.get(),
                dev.n as u64,
                tiles as u64,
            ],
        ),
    )?;
    gpu.run(500_000_000)
}

/// Host reference multiply (wrapping u32).
pub fn reference(a: &[u32], b: &[u32], n: u32) -> Vec<u32> {
    let n = n as usize;
    let mut c = vec![0u32; n * n];
    for i in 0..n {
        for k in 0..n {
            let av = a[i * n + k];
            for j in 0..n {
                c[i * n + j] = c[i * n + j].wrapping_add(av.wrapping_mul(b[k * n + j]));
            }
        }
    }
    c
}

/// Verifies device output against the host reference.
///
/// # Panics
///
/// Panics on the first mismatching element.
pub fn verify(gpu: &Gpu, dev: &MatmulDevice) {
    let words = (dev.n as usize) * (dev.n as usize);
    let a = gpu.device().read_u32_slice(dev.a, words);
    let b = gpu.device().read_u32_slice(dev.b, words);
    let got = gpu.device().read_u32_slice(dev.c, words);
    let want = reference(&a, &b, dev.n);
    for i in 0..words {
        assert_eq!(got[i], want[i], "element {i}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    #[test]
    fn tiled_matmul_matches_reference() {
        let mut cfg = GpuConfig::fermi_gf100();
        cfg.num_sms = 4;
        let mut gpu = Gpu::new(cfg);
        let dev = setup(&mut gpu, 32);
        let summary = run(&mut gpu, &dev).unwrap();
        verify(&gpu, &dev);
        assert!(summary.instructions > 0);
    }

    #[test]
    #[should_panic(expected = "multiple of 16")]
    fn non_tile_sizes_rejected() {
        let mut gpu = Gpu::new(GpuConfig::fermi_gf100());
        let _ = setup(&mut gpu, 17);
    }

    #[test]
    fn reference_multiply_small_case() {
        // 1x1 blocks sanity via 16x16 identity-ish structure is overkill;
        // check the plain reference on a tiny case directly.
        let a = vec![1, 2, 3, 4];
        let b = vec![5, 6, 7, 8];
        let c = reference(&a, &b, 2);
        assert_eq!(c, vec![19, 22, 43, 50]);
    }
}
