//! Histogram with global atomics — the atomic-contention stress workload:
//! many threads funnel increments into a small number of bin addresses,
//! serializing at the memory partitions exactly where BFS's ticket counter
//! used to.

use gpu_isa::{AluOp, CmpOp, Kernel, KernelBuilder, Launch, Special, Width};
use gpu_sim::{Gpu, RunSummary, SimError};
use gpu_types::Addr;

/// Device buffers of a histogram instance.
#[derive(Debug, Clone, Copy)]
pub struct HistogramDevice {
    /// Input values.
    pub input: Addr,
    /// Bin counters.
    pub bins: Addr,
    /// Element count.
    pub n: u64,
    /// Bin count (power of two).
    pub num_bins: u32,
}

/// Builds the histogram kernel: `atomicAdd(&bins[input[i] % num_bins], 1)`.
///
/// Parameters: `[0]` input, `[1]` bins, `[2]` n, `[3]` bin mask
/// (`num_bins - 1`).
pub fn build_histogram_kernel() -> Kernel {
    let mut b = KernelBuilder::new("histogram");
    let input = b.param(0);
    let bins = b.param(1);
    let n = b.param(2);
    let mask = b.param(3);
    let gtid = b.special(Special::GlobalTid);
    let inb = b.setp(CmpOp::Lt, gtid, n);
    b.if_then(inb, |b| {
        let off = b.shl(gtid, 2);
        let addr = b.add(input, off);
        let v = b.ld_global(Width::W4, addr, 0);
        let bin = b.alu(AluOp::And, v, mask);
        let bin_off = b.shl(bin, 2);
        let bin_addr = b.add(bins, bin_off);
        b.atom_add(Width::W4, bin_addr, 0, 1);
    });
    b.exit();
    b.build()
        .expect("histogram kernel is well-formed by construction")
}

/// Allocates and seeds an instance (`input[i] = i * 2654435761 mod 2^32`,
/// a Knuth-hash spread).
///
/// # Panics
///
/// Panics unless `num_bins` is a power of two.
pub fn setup(gpu: &mut Gpu, n: u64, num_bins: u32) -> HistogramDevice {
    assert!(num_bins.is_power_of_two(), "bins must be a power of two");
    let align = gpu.config().line_size;
    let input = gpu.alloc(4 * n, align);
    let bins = gpu.alloc(4 * num_bins as u64, align);
    for i in 0..n {
        gpu.device_mut()
            .write_u32(input + 4 * i, (i as u32).wrapping_mul(2654435761));
    }
    HistogramDevice {
        input,
        bins,
        n,
        num_bins,
    }
}

/// Launches and runs the kernel to completion.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(gpu: &mut Gpu, dev: &HistogramDevice, block_dim: u32) -> Result<RunSummary, SimError> {
    for b in 0..dev.num_bins as u64 {
        gpu.device_mut().write_u32(dev.bins + 4 * b, 0);
    }
    let grid = (dev.n as u32).div_ceil(block_dim);
    gpu.launch(
        build_histogram_kernel(),
        Launch::new(
            grid,
            block_dim,
            vec![
                dev.input.get(),
                dev.bins.get(),
                dev.n,
                (dev.num_bins - 1) as u64,
            ],
        ),
    )?;
    gpu.run(500_000_000)
}

/// Host reference histogram.
pub fn reference(n: u64, num_bins: u32) -> Vec<u32> {
    let mut bins = vec![0u32; num_bins as usize];
    for i in 0..n {
        let v = (i as u32).wrapping_mul(2654435761);
        bins[(v & (num_bins - 1)) as usize] += 1;
    }
    bins
}

/// Verifies the bins against the host reference.
///
/// # Panics
///
/// Panics on the first mismatching bin.
pub fn verify(gpu: &Gpu, dev: &HistogramDevice) {
    let got = gpu.device().read_u32_slice(dev.bins, dev.num_bins as usize);
    let want = reference(dev.n, dev.num_bins);
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert_eq!(g, w, "bin {i}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn small_gpu() -> Gpu {
        let mut cfg = GpuConfig::fermi_gf100();
        cfg.num_sms = 4;
        Gpu::new(cfg)
    }

    #[test]
    fn histogram_counts_exactly() {
        let mut gpu = small_gpu();
        let dev = setup(&mut gpu, 4096, 64);
        run(&mut gpu, &dev, 128).unwrap();
        verify(&gpu, &dev);
        // Total mass is conserved.
        let total: u64 = gpu
            .device()
            .read_u32_slice(dev.bins, 64)
            .iter()
            .map(|&v| v as u64)
            .sum();
        assert_eq!(total, 4096);
    }

    #[test]
    fn single_bin_maximizes_contention() {
        // num_bins = 1: every thread atomics the same address.
        let mut gpu = small_gpu();
        let dev = setup(&mut gpu, 1024, 1);
        run(&mut gpu, &dev, 128).unwrap();
        assert_eq!(gpu.device().read_u32(dev.bins), 1024);
    }

    #[test]
    fn contention_slows_the_kernel() {
        // Same work, fewer bins -> more serialization at the partitions.
        let cycles_for = |bins: u32| {
            let mut gpu = small_gpu();
            let dev = setup(&mut gpu, 4096, bins);
            let before = gpu.now().get();
            run(&mut gpu, &dev, 128).unwrap();
            gpu.now().get() - before
        };
        let spread = cycles_for(256);
        let contended = cycles_for(1);
        assert!(
            contended > spread,
            "single-bin histogram should serialize: {contended} vs {spread}"
        );
    }
}
