//! Sparse matrix–vector multiply (CSR, scalar row-per-thread) — irregular
//! like BFS but read-only and statically partitioned.

use gpu_isa::{AluOp, CmpOp, Kernel, KernelBuilder, Launch, Special, Width};
use gpu_sim::{Gpu, RunSummary, SimError};
use gpu_types::rng::Rng;
use gpu_types::Addr;

/// A sparse matrix in CSR form with `u32` values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrMatrix {
    /// Row count.
    pub rows: u32,
    /// Column count.
    pub cols: u32,
    /// Row offsets (length `rows + 1`).
    pub row_offsets: Vec<u32>,
    /// Column index per nonzero.
    pub col_idx: Vec<u32>,
    /// Value per nonzero.
    pub values: Vec<u32>,
}

impl CsrMatrix {
    /// Random sparse matrix with about `nnz_per_row` nonzeros per row.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero.
    pub fn random(rows: u32, cols: u32, nnz_per_row: u32, seed: u64) -> Self {
        assert!(rows > 0 && cols > 0);
        let mut rng = Rng::seed_from_u64(seed);
        let mut row_offsets = vec![0u32];
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        for _ in 0..rows {
            let nnz = rng.gen_range_u32(0, 2 * nnz_per_row + 1);
            for _ in 0..nnz {
                col_idx.push(rng.gen_range_u32(0, cols));
                values.push(rng.gen_range_u32(1, 100));
            }
            row_offsets.push(col_idx.len() as u32);
        }
        CsrMatrix {
            rows,
            cols,
            row_offsets,
            col_idx,
            values,
        }
    }

    /// Host reference `y = A·x` (wrapping u32).
    ///
    /// # Panics
    ///
    /// Panics if `x` is shorter than `cols`.
    pub fn multiply(&self, x: &[u32]) -> Vec<u32> {
        assert!(x.len() >= self.cols as usize);
        (0..self.rows as usize)
            .map(|r| {
                let s = self.row_offsets[r] as usize;
                let e = self.row_offsets[r + 1] as usize;
                (s..e).fold(0u32, |acc, i| {
                    acc.wrapping_add(self.values[i].wrapping_mul(x[self.col_idx[i] as usize]))
                })
            })
            .collect()
    }
}

/// Device buffers of an SpMV instance.
#[derive(Debug, Clone, Copy)]
pub struct SpmvDevice {
    /// CSR row offsets.
    pub row_offsets: Addr,
    /// CSR column indices.
    pub col_idx: Addr,
    /// CSR values.
    pub values: Addr,
    /// Dense input vector.
    pub x: Addr,
    /// Dense output vector.
    pub y: Addr,
    /// Row count.
    pub rows: u32,
}

/// Builds the scalar CSR SpMV kernel (one thread per row).
///
/// Parameters: `[0]` row_offsets, `[1]` col_idx, `[2]` values, `[3]` x,
/// `[4]` y, `[5]` rows.
pub fn build_spmv_kernel() -> Kernel {
    let mut b = KernelBuilder::new("spmv_csr_scalar");
    let row_offsets = b.param(0);
    let col_idx = b.param(1);
    let values = b.param(2);
    let x = b.param(3);
    let y = b.param(4);
    let rows = b.param(5);
    let gtid = b.special(Special::GlobalTid);
    let inb = b.setp(CmpOp::Lt, gtid, rows);
    b.if_then(inb, |b| {
        let ro_off = b.shl(gtid, 2);
        let ro_addr = b.add(row_offsets, ro_off);
        let start = b.ld_global(Width::W4, ro_addr, 0);
        let end = b.ld_global(Width::W4, ro_addr, 4);
        let acc = b.mov(0i64);
        let e = b.mov(start);
        let pred = b.pred();
        b.while_loop(
            |b| {
                b.setp_to(pred, CmpOp::Lt, e, end);
                pred
            },
            |b| {
                let off = b.shl(e, 2);
                let ci_addr = b.add(col_idx, off);
                let col = b.ld_global(Width::W4, ci_addr, 0);
                let v_addr = b.add(values, off);
                let v = b.ld_global(Width::W4, v_addr, 0);
                let x_off = b.shl(col, 2);
                let x_addr = b.add(x, x_off);
                let xv = b.ld_global(Width::W4, x_addr, 0);
                let prod = b.mul(v, xv);
                b.alu_to(AluOp::Add, acc, acc, prod);
                b.alu_to(AluOp::Add, e, e, 1);
            },
        );
        let y_off = b.shl(gtid, 2);
        let y_addr = b.add(y, y_off);
        b.st_global(Width::W4, y_addr, 0, acc);
    });
    b.exit();
    b.build()
        .expect("spmv kernel is well-formed by construction")
}

/// Uploads a matrix and a deterministic `x` vector (`x[j] = j % 13 + 1`).
pub fn setup(gpu: &mut Gpu, m: &CsrMatrix) -> SpmvDevice {
    let align = gpu.config().line_size;
    let row_offsets = gpu.alloc(4 * m.row_offsets.len() as u64, align);
    let col_idx = gpu.alloc(4 * m.col_idx.len().max(1) as u64, align);
    let values = gpu.alloc(4 * m.values.len().max(1) as u64, align);
    let x = gpu.alloc(4 * m.cols as u64, align);
    let y = gpu.alloc(4 * m.rows as u64, align);
    gpu.device_mut()
        .write_u32_slice(row_offsets, &m.row_offsets);
    gpu.device_mut().write_u32_slice(col_idx, &m.col_idx);
    gpu.device_mut().write_u32_slice(values, &m.values);
    let xv: Vec<u32> = (0..m.cols).map(|j| j % 13 + 1).collect();
    gpu.device_mut().write_u32_slice(x, &xv);
    SpmvDevice {
        row_offsets,
        col_idx,
        values,
        x,
        y,
        rows: m.rows,
    }
}

/// Launches and runs the kernel to completion.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn run(gpu: &mut Gpu, dev: &SpmvDevice, block_dim: u32) -> Result<RunSummary, SimError> {
    let grid = dev.rows.div_ceil(block_dim);
    gpu.launch(
        build_spmv_kernel(),
        Launch::new(
            grid,
            block_dim,
            vec![
                dev.row_offsets.get(),
                dev.col_idx.get(),
                dev.values.get(),
                dev.x.get(),
                dev.y.get(),
                dev.rows as u64,
            ],
        ),
    )?;
    gpu.run(500_000_000)
}

/// Verifies device output against the host reference.
///
/// # Panics
///
/// Panics on the first mismatching row.
pub fn verify(gpu: &Gpu, dev: &SpmvDevice, m: &CsrMatrix) {
    let xv: Vec<u32> = (0..m.cols).map(|j| j % 13 + 1).collect();
    let want = m.multiply(&xv);
    let got = gpu.device().read_u32_slice(dev.y, m.rows as usize);
    for r in 0..m.rows as usize {
        assert_eq!(got[r], want[r], "row {r}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    #[test]
    fn spmv_matches_reference() {
        let m = CsrMatrix::random(200, 200, 5, 11);
        let mut cfg = GpuConfig::fermi_gf100();
        cfg.num_sms = 4;
        let mut gpu = Gpu::new(cfg);
        let dev = setup(&mut gpu, &m);
        run(&mut gpu, &dev, 128).unwrap();
        verify(&gpu, &dev, &m);
    }

    #[test]
    fn empty_rows_produce_zero() {
        let m = CsrMatrix {
            rows: 3,
            cols: 3,
            row_offsets: vec![0, 0, 2, 2],
            col_idx: vec![0, 2],
            values: vec![4, 5],
        };
        let mut cfg = GpuConfig::fermi_gf100();
        cfg.num_sms = 1;
        let mut gpu = Gpu::new(cfg);
        let dev = setup(&mut gpu, &m);
        run(&mut gpu, &dev, 32).unwrap();
        verify(&gpu, &dev, &m);
        assert_eq!(gpu.device().read_u32(dev.y), 0);
    }

    #[test]
    fn reference_multiply() {
        let m = CsrMatrix {
            rows: 2,
            cols: 3,
            row_offsets: vec![0, 2, 3],
            col_idx: vec![0, 2, 1],
            values: vec![2, 3, 4],
        };
        let y = m.multiply(&[10, 20, 30]);
        assert_eq!(y, vec![2 * 10 + 3 * 30, 4 * 20]);
    }
}
