//! Workload kernels and generators for the `gpu-latency` simulator.
//!
//! The paper's dynamic-latency analysis (§III) runs breadth-first search;
//! its observation that "other workloads similarly showed queueing and
//! arbitration as the two key latency contributors" motivates the rest of
//! the comparison set:
//!
//! - [`bfs`]: frontier BFS over CSR graphs ([`graph`]) — data-dependent,
//!   poorly-coalesced loads (the paper's exemplar).
//! - [`vecadd`]: fully-coalesced streaming — the bandwidth-bound contrast.
//! - [`matmul`]: tiled shared-memory GEMM — compute-bound with barriers.
//! - [`reduce`]: shared-memory tree reduction with atomic combine.
//! - [`spmv`]: CSR sparse matrix–vector multiply — irregular, read-only.
//! - [`stencil`]: 2-D Jacobi — regular with heavy spatial line reuse.
//! - [`histogram`]: global-atomic contention stress.
//! - [`transpose`]: naive vs shared-memory-tiled coalescing comparison.
//! - [`scan`]: per-CTA Hillis–Steele prefix sum — the barrier-densest kernel.
//!
//! Every workload provides a kernel builder, a device `setup`, a `run`
//! driver, and a host-reference `verify`, so integration tests and the
//! benchmark harness can use them uniformly.

pub mod bfs;
pub mod graph;
pub mod histogram;
pub mod matmul;
pub mod reduce;
pub mod scan;
pub mod spmv;
pub mod stencil;
pub mod transpose;
pub mod vecadd;

pub use graph::Graph;
