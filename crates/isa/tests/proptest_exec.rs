//! Randomized tests of the SIMT executor, driven by the workspace's
//! hermetic [`gpu_types::rng`] (fixed seeds, fully reproducible — the
//! failing seed is printed in every assertion message).
//!
//! The central property is *SIMT transparency*: lock-step execution with a
//! reconvergence stack is an implementation detail, so a warp of N threads
//! must produce exactly the per-thread results of N independent single-lane
//! warps, no matter how the threads diverge.

use std::sync::Arc;

use gpu_isa::{
    AluOp, CmpOp, Kernel, KernelBuilder, LocalMap, MemBackend, Operand, PredReg, Space, Special,
    ThreadCtx, WarpExec, Width,
};
use gpu_types::rng::Rng;
use gpu_types::Addr;

const NUM_REGS: u16 = 8;
const NUM_PREDS: u8 = 4;

/// A tiny structured AST we can both lower to the IR and randomize safely
/// (loops are bounded by construction).
#[derive(Debug, Clone)]
enum Node {
    Alu(AluOp, u16, Operand, Operand),
    SetP(PredReg, CmpOp, Operand, Operand),
    If(PredReg, Vec<Node>),
    IfElse(PredReg, Vec<Node>, Vec<Node>),
    Repeat(u8, Vec<Node>),
}

fn gen_operand(rng: &mut Rng) -> Operand {
    if rng.gen_bool() {
        Operand::Reg(rng.gen_range_u32(0, NUM_REGS as u32) as u16)
    } else {
        Operand::Imm(rng.gen_range_i64(-50, 50))
    }
}

const ALU_OPS: [AluOp; 12] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
    AluOp::Min,
    AluOp::Max,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Shl,
    AluOp::Shr,
];

const CMP_OPS: [CmpOp; 6] = [
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

fn gen_leaf(rng: &mut Rng) -> Node {
    if rng.gen_bool() {
        Node::Alu(
            ALU_OPS[rng.gen_range_usize(0, ALU_OPS.len())],
            rng.gen_range_u32(0, NUM_REGS as u32) as u16,
            gen_operand(rng),
            gen_operand(rng),
        )
    } else {
        Node::SetP(
            rng.gen_range_u32(0, NUM_PREDS as u32) as u8,
            CMP_OPS[rng.gen_range_usize(0, CMP_OPS.len())],
            gen_operand(rng),
            gen_operand(rng),
        )
    }
}

fn gen_body(rng: &mut Rng, depth: u32) -> Vec<Node> {
    let len = rng.gen_range_usize(1, 4);
    (0..len).map(|_| gen_node(rng, depth)).collect()
}

fn gen_node(rng: &mut Rng, depth: u32) -> Node {
    // Weights match the original strategy: 3 leaf : 1 if : 1 if-else :
    // 1 repeat (leaves only at depth 0).
    if depth == 0 {
        return gen_leaf(rng);
    }
    match rng.gen_range_u32(0, 6) {
        0..=2 => gen_leaf(rng),
        3 => Node::If(
            rng.gen_range_u32(0, NUM_PREDS as u32) as u8,
            gen_body(rng, depth - 1),
        ),
        4 => Node::IfElse(
            rng.gen_range_u32(0, NUM_PREDS as u32) as u8,
            gen_body(rng, depth - 1),
            gen_body(rng, depth - 1),
        ),
        _ => Node::Repeat(rng.gen_range_u32(1, 4) as u8, gen_body(rng, depth - 1)),
    }
}

fn gen_program(rng: &mut Rng) -> Vec<Node> {
    let len = rng.gen_range_usize(1, 8);
    (0..len).map(|_| gen_node(rng, 2)).collect()
}

fn lower(nodes: &[Node], b: &mut KernelBuilder, loop_depth: u16) {
    for n in nodes {
        match n {
            Node::Alu(op, d, a, x) => b.alu_to(*op, *d, *a, *x),
            Node::SetP(p, c, a, x) => b.setp_to(*p, *c, *a, *x),
            Node::If(p, body) => b.if_then(*p, |b| lower(body, b, loop_depth)),
            Node::IfElse(p, t, e) => {
                b.if_then_else(*p, |b| lower(t, b, loop_depth), |b| lower(e, b, loop_depth));
            }
            Node::Repeat(n, body) => {
                // Dedicated counter register and predicate per nesting level
                // (outside the AST's reach, so nested loops never clobber
                // each other).
                let i = NUM_REGS + 1 + loop_depth;
                b.mov_to(i, 0i64);
                let pred = NUM_PREDS + loop_depth as u8;
                b.while_loop(
                    |b| {
                        b.setp_to(pred, CmpOp::Lt, i, *n as i64);
                        pred
                    },
                    |b| {
                        lower(body, b, loop_depth + 1);
                        b.alu_to(AluOp::Add, i, i, 1i64);
                    },
                );
            }
        }
    }
}

fn build(nodes: &[Node]) -> Kernel {
    let mut b = KernelBuilder::new("prop");
    // Register budget: NUM_REGS AST registers plus per-depth loop counters.
    for _ in 0..NUM_REGS + 5 {
        b.reg();
    }
    for _ in 0..=NUM_PREDS {
        b.pred();
    }
    // Seed r0 with the thread id so lanes diverge.
    b.push(gpu_isa::Instr::ReadSpecial {
        dst: 0,
        special: Special::TidX,
    });
    // Mix the tid into a second register for more varied predicates.
    b.alu_to(AluOp::Mul, 1, Operand::Reg(0), Operand::Imm(7));
    lower(nodes, &mut b, 0);
    b.exit();
    b.build().expect("generated program is structurally valid")
}

/// Memoryless backend (generated programs have no memory ops).
struct NoMem;
impl MemBackend for NoMem {
    fn load(&mut self, _: Space, _: Addr, _: Width) -> u64 {
        0
    }
    fn store(&mut self, _: Space, _: Addr, _: Width, _: u64) {}
    fn atomic_add(&mut self, _: Addr, _: Width, _: u64) -> u64 {
        0
    }
}

fn run_warp(kernel: &Arc<Kernel>, ctxs: Vec<ThreadCtx>) -> Vec<Vec<u64>> {
    let mut w = WarpExec::new(
        Arc::clone(kernel),
        Arc::from([]),
        ctxs.clone(),
        LocalMap::default(),
    );
    let mut mem = NoMem;
    let mut steps = 0u64;
    while !w.is_finished() {
        if w.at_barrier() {
            w.release_barrier();
        }
        w.step(&mut mem);
        steps += 1;
        assert!(steps < 200_000, "runaway generated program");
    }
    (0..ctxs.len())
        .map(|lane| (0..NUM_REGS).map(|r| w.reg(lane, r)).collect())
        .collect()
}

fn ctx(tid: u32, lane: u32, ntid: u32) -> ThreadCtx {
    ThreadCtx {
        tid,
        ctaid: 0,
        ntid,
        nctaid: 1,
        lane,
    }
}

const CASES: u64 = 64;

/// SIMT transparency: a warp of N divergent threads computes exactly
/// what N single-lane warps compute.
#[test]
fn warp_matches_single_lane_execution() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x51A7_0000 + case);
        let prog = gen_program(&mut rng);
        let lanes = rng.gen_range_usize(2, 9);
        let kernel = Arc::new(build(&prog));
        let warp_ctxs: Vec<ThreadCtx> =
            (0..lanes as u32).map(|i| ctx(i, i, lanes as u32)).collect();
        let together = run_warp(&kernel, warp_ctxs);
        for tid in 0..lanes as u32 {
            let alone = run_warp(&kernel, vec![ctx(tid, 0, lanes as u32)]);
            assert_eq!(
                together[tid as usize], alone[0],
                "case {case}: thread {tid} diverges from its solo run\n{prog:?}"
            );
        }
    }
}

/// Generated programs always pass static validation.
#[test]
fn generated_programs_validate() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x5A11_0000 + case);
        let kernel = build(&gen_program(&mut rng));
        assert!(kernel.validate().is_ok(), "case {case}");
    }
}

/// Determinism: running the same warp twice gives identical results.
#[test]
fn execution_is_deterministic() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xDE7E_0000 + case);
        let kernel = Arc::new(build(&gen_program(&mut rng)));
        let ctxs: Vec<ThreadCtx> = (0..4u32).map(|i| ctx(i, i, 4)).collect();
        let a = run_warp(&kernel, ctxs.clone());
        let b = run_warp(&kernel, ctxs);
        assert_eq!(a, b, "case {case}");
    }
}

/// Disassemble → reassemble is the identity on every generated program.
#[test]
fn disassembly_round_trips() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0xA53_0000 + case);
        let kernel = build(&gen_program(&mut rng));
        let text = kernel.to_string();
        let reparsed = gpu_isa::parse_kernel(&text)
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e}\n{text}"));
        assert_eq!(kernel.instrs(), reparsed.instrs(), "case {case}");
        assert_eq!(kernel.num_regs(), reparsed.num_regs(), "case {case}");
    }
}

/// And the reassembled kernel executes identically.
#[test]
fn reassembled_kernel_executes_identically() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x2EA5_0000 + case);
        let prog = gen_program(&mut rng);
        let lanes = rng.gen_range_usize(1, 5);
        let kernel = Arc::new(build(&prog));
        let reparsed = Arc::new(gpu_isa::parse_kernel(&kernel.to_string()).unwrap());
        let ctxs: Vec<ThreadCtx> = (0..lanes as u32).map(|i| ctx(i, i, lanes as u32)).collect();
        assert_eq!(
            run_warp(&kernel, ctxs.clone()),
            run_warp(&reparsed, ctxs),
            "case {case}"
        );
    }
}
