//! Property-based tests of the SIMT executor.
//!
//! The central property is *SIMT transparency*: lock-step execution with a
//! reconvergence stack is an implementation detail, so a warp of N threads
//! must produce exactly the per-thread results of N independent single-lane
//! warps, no matter how the threads diverge.

use std::sync::Arc;

use gpu_isa::{
    AluOp, CmpOp, Kernel, KernelBuilder, LocalMap, MemBackend, Operand, PredReg, Space, Special,
    ThreadCtx, WarpExec, Width,
};
use gpu_types::Addr;
use proptest::prelude::*;

const NUM_REGS: u16 = 8;
const NUM_PREDS: u8 = 4;

/// A tiny structured AST we can both lower to the IR and randomize safely
/// (loops are bounded by construction).
#[derive(Debug, Clone)]
enum Node {
    Alu(AluOp, u16, Operand, Operand),
    SetP(PredReg, CmpOp, Operand, Operand),
    If(PredReg, Vec<Node>),
    IfElse(PredReg, Vec<Node>, Vec<Node>),
    Repeat(u8, Vec<Node>),
}

fn operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0u16..NUM_REGS).prop_map(Operand::Reg),
        (-50i64..50).prop_map(Operand::Imm),
    ]
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::Min),
        Just(AluOp::Max),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn node(depth: u32) -> BoxedStrategy<Node> {
    let leaf = prop_oneof![
        (alu_op(), 0u16..NUM_REGS, operand(), operand())
            .prop_map(|(op, d, a, b)| Node::Alu(op, d, a, b)),
        (0u8..NUM_PREDS, cmp_op(), operand(), operand())
            .prop_map(|(p, c, a, b)| Node::SetP(p, c, a, b)),
    ];
    if depth == 0 {
        leaf.boxed()
    } else {
        let inner = proptest::collection::vec(node(depth - 1), 1..4);
        prop_oneof![
            3 => leaf,
            1 => (0u8..NUM_PREDS, inner.clone()).prop_map(|(p, b)| Node::If(p, b)),
            1 => (0u8..NUM_PREDS, inner.clone(), inner.clone())
                .prop_map(|(p, t, e)| Node::IfElse(p, t, e)),
            1 => (1u8..4, inner).prop_map(|(n, b)| Node::Repeat(n, b)),
        ]
        .boxed()
    }
}

fn program() -> impl Strategy<Value = Vec<Node>> {
    proptest::collection::vec(node(2), 1..8)
}

fn lower(nodes: &[Node], b: &mut KernelBuilder, loop_depth: u16) {
    for n in nodes {
        match n {
            Node::Alu(op, d, a, x) => b.alu_to(*op, *d, *a, *x),
            Node::SetP(p, c, a, x) => b.setp_to(*p, *c, *a, *x),
            Node::If(p, body) => b.if_then(*p, |b| lower(body, b, loop_depth)),
            Node::IfElse(p, t, e) => {
                b.if_then_else(*p, |b| lower(t, b, loop_depth), |b| lower(e, b, loop_depth));
            }
            Node::Repeat(n, body) => {
                // Dedicated counter register and predicate per nesting level
                // (outside the AST's reach, so nested loops never clobber
                // each other).
                let i = NUM_REGS + 1 + loop_depth;
                b.mov_to(i, 0i64);
                let pred = NUM_PREDS + loop_depth as u8;
                b.while_loop(
                    |b| {
                        b.setp_to(pred, CmpOp::Lt, i, *n as i64);
                        pred
                    },
                    |b| {
                        lower(body, b, loop_depth + 1);
                        b.alu_to(AluOp::Add, i, i, 1i64);
                    },
                );
            }
        }
    }
}

fn build(nodes: &[Node]) -> Kernel {
    let mut b = KernelBuilder::new("prop");
    // Register budget: NUM_REGS AST registers plus per-depth loop counters.
    for _ in 0..NUM_REGS + 5 {
        b.reg();
    }
    for _ in 0..=NUM_PREDS {
        b.pred();
    }
    // Seed r0 with the thread id so lanes diverge.
    b.push(gpu_isa::Instr::ReadSpecial {
        dst: 0,
        special: Special::TidX,
    });
    // Mix the tid into a second register for more varied predicates.
    b.alu_to(AluOp::Mul, 1, Operand::Reg(0), Operand::Imm(7));
    lower(nodes, &mut b, 0);
    b.exit();
    b.build().expect("generated program is structurally valid")
}

/// Memoryless backend (generated programs have no memory ops).
struct NoMem;
impl MemBackend for NoMem {
    fn load(&mut self, _: Space, _: Addr, _: Width) -> u64 {
        0
    }
    fn store(&mut self, _: Space, _: Addr, _: Width, _: u64) {}
    fn atomic_add(&mut self, _: Addr, _: Width, _: u64) -> u64 {
        0
    }
}

fn run_warp(kernel: &Arc<Kernel>, ctxs: Vec<ThreadCtx>) -> Vec<Vec<u64>> {
    let mut w = WarpExec::new(Arc::clone(kernel), Arc::from([]), ctxs.clone(), LocalMap::default());
    let mut mem = NoMem;
    let mut steps = 0u64;
    while !w.is_finished() {
        if w.at_barrier() {
            w.release_barrier();
        }
        w.step(&mut mem);
        steps += 1;
        assert!(steps < 200_000, "runaway generated program");
    }
    (0..ctxs.len())
        .map(|lane| (0..NUM_REGS).map(|r| w.reg(lane, r)).collect())
        .collect()
}

fn ctx(tid: u32, lane: u32, ntid: u32) -> ThreadCtx {
    ThreadCtx {
        tid,
        ctaid: 0,
        ntid,
        nctaid: 1,
        lane,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// SIMT transparency: a warp of N divergent threads computes exactly
    /// what N single-lane warps compute.
    #[test]
    fn warp_matches_single_lane_execution(prog in program(), lanes in 2usize..9) {
        let kernel = Arc::new(build(&prog));
        let warp_ctxs: Vec<ThreadCtx> =
            (0..lanes as u32).map(|i| ctx(i, i, lanes as u32)).collect();
        let together = run_warp(&kernel, warp_ctxs);
        for tid in 0..lanes as u32 {
            let alone = run_warp(&kernel, vec![ctx(tid, 0, lanes as u32)]);
            prop_assert_eq!(
                &together[tid as usize],
                &alone[0],
                "thread {} diverges from its solo run",
                tid
            );
        }
    }

    /// Generated programs always pass static validation.
    #[test]
    fn generated_programs_validate(prog in program()) {
        let kernel = build(&prog);
        prop_assert!(kernel.validate().is_ok());
    }

    /// Determinism: running the same warp twice gives identical results.
    #[test]
    fn execution_is_deterministic(prog in program()) {
        let kernel = Arc::new(build(&prog));
        let ctxs: Vec<ThreadCtx> = (0..4u32).map(|i| ctx(i, i, 4)).collect();
        let a = run_warp(&kernel, ctxs.clone());
        let b = run_warp(&kernel, ctxs);
        prop_assert_eq!(a, b);
    }

    /// Disassemble → reassemble is the identity on every generated program.
    #[test]
    fn disassembly_round_trips(prog in program()) {
        let kernel = build(&prog);
        let text = kernel.to_string();
        let reparsed = gpu_isa::parse_kernel(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        prop_assert_eq!(kernel.instrs(), reparsed.instrs());
        prop_assert_eq!(kernel.num_regs(), reparsed.num_regs());
    }

    /// And the reassembled kernel executes identically.
    #[test]
    fn reassembled_kernel_executes_identically(prog in program(), lanes in 1usize..5) {
        let kernel = Arc::new(build(&prog));
        let reparsed = Arc::new(gpu_isa::parse_kernel(&kernel.to_string()).unwrap());
        let ctxs: Vec<ThreadCtx> =
            (0..lanes as u32).map(|i| ctx(i, i, lanes as u32)).collect();
        prop_assert_eq!(run_warp(&kernel, ctxs.clone()), run_warp(&reparsed, ctxs));
    }
}
