//! Kernel container, launch geometry and static validation.

use std::fmt;

use crate::instr::{Instr, Pc, Reg, RECONV_NONE};

/// A compiled kernel: an instruction sequence plus the resources each thread
/// and CTA needs.
///
/// Build kernels with [`crate::KernelBuilder`]; hand-assembled kernels should
/// be checked with [`Kernel::validate`] before launch.
#[derive(Debug, Clone)]
pub struct Kernel {
    name: String,
    instrs: Vec<Instr>,
    num_regs: Reg,
    shared_bytes: u64,
    local_bytes_per_thread: u64,
}

impl Kernel {
    /// Assembles a kernel from raw parts.
    ///
    /// Prefer [`crate::KernelBuilder`], which computes `num_regs` and emits
    /// well-formed control flow. This constructor does not validate; call
    /// [`Kernel::validate`].
    pub fn from_parts(
        name: impl Into<String>,
        instrs: Vec<Instr>,
        num_regs: Reg,
        shared_bytes: u64,
        local_bytes_per_thread: u64,
    ) -> Self {
        Kernel {
            name: name.into(),
            instrs,
            num_regs,
            shared_bytes,
            local_bytes_per_thread,
        }
    }

    /// The kernel's name (used in reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction sequence.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    pub fn instr(&self, pc: Pc) -> &Instr {
        &self.instrs[pc]
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` for an empty (invalid) kernel.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// General-purpose registers each thread needs.
    pub fn num_regs(&self) -> Reg {
        self.num_regs
    }

    /// Shared-memory bytes each CTA needs.
    pub fn shared_bytes(&self) -> u64 {
        self.shared_bytes
    }

    /// Local-memory bytes each thread needs.
    pub fn local_bytes_per_thread(&self) -> u64 {
        self.local_bytes_per_thread
    }

    /// Statically checks the kernel for well-formedness.
    ///
    /// # Errors
    ///
    /// Returns a [`ValidateError`] if the kernel is empty, does not end every
    /// path in `exit` (conservatively: last instruction must be `exit` or an
    /// unconditional branch), references a register `>= num_regs`, or
    /// contains a branch whose target/reconvergence PC is out of range.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.instrs.is_empty() {
            return Err(ValidateError::Empty);
        }
        match self.instrs.last() {
            Some(Instr::Exit) => {}
            Some(Instr::Branch { guard: None, .. }) => {}
            _ => return Err(ValidateError::MissingExit),
        }
        for (pc, instr) in self.instrs.iter().enumerate() {
            if let Some(d) = instr.def_reg() {
                if d >= self.num_regs {
                    return Err(ValidateError::RegOutOfRange { pc, reg: d });
                }
            }
            for u in instr.use_regs() {
                if u >= self.num_regs {
                    return Err(ValidateError::RegOutOfRange { pc, reg: u });
                }
            }
            if let Instr::Branch {
                target, reconverge, ..
            } = instr
            {
                if *target >= self.instrs.len() {
                    return Err(ValidateError::BadBranch {
                        pc,
                        target: *target,
                    });
                }
                if *reconverge != RECONV_NONE && *reconverge > self.instrs.len() {
                    return Err(ValidateError::BadBranch {
                        pc,
                        target: *reconverge,
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Kernel {
    /// Disassembly listing in the directive form accepted by
    /// [`crate::asm::parse_kernel`] (round-trippable).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, ".kernel {}", self.name)?;
        writeln!(f, ".regs {}", self.num_regs)?;
        writeln!(f, ".shared {}", self.shared_bytes)?;
        writeln!(f, ".local {}", self.local_bytes_per_thread)?;
        for (pc, instr) in self.instrs.iter().enumerate() {
            writeln!(f, "{pc:>4}: {instr}")?;
        }
        Ok(())
    }
}

/// Error returned by [`Kernel::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidateError {
    /// The kernel has no instructions.
    Empty,
    /// Execution can fall off the end of the instruction sequence.
    MissingExit,
    /// An instruction references a register outside `0..num_regs`.
    RegOutOfRange {
        /// Offending instruction PC.
        pc: Pc,
        /// Offending register index.
        reg: Reg,
    },
    /// A branch target or reconvergence PC is out of range.
    BadBranch {
        /// Offending instruction PC.
        pc: Pc,
        /// Offending target PC.
        target: Pc,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::Empty => f.write_str("kernel has no instructions"),
            ValidateError::MissingExit => {
                f.write_str("kernel does not end in exit or an unconditional branch")
            }
            ValidateError::RegOutOfRange { pc, reg } => {
                write!(
                    f,
                    "instruction {pc} references register r{reg} out of range"
                )
            }
            ValidateError::BadBranch { pc, target } => {
                write!(f, "branch at {pc} targets out-of-range pc {target}")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

/// Launch geometry: a 1-D grid of 1-D CTAs.
///
/// The model keeps launch geometry one-dimensional; multi-dimensional grids
/// linearize the same way real GPUs do, so nothing in the latency analysis
/// depends on higher dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct Launch {
    /// CTAs in the grid.
    pub grid_dim: u32,
    /// Threads per CTA (must be a multiple of nothing; partial warps are
    /// padded with inactive lanes).
    pub block_dim: u32,
    /// Kernel parameters, each a 64-bit value (pointers or scalars).
    pub params: Vec<u64>,
}

impl Launch {
    /// Creates a launch with the given geometry and parameters.
    ///
    /// # Panics
    ///
    /// Panics if `grid_dim` or `block_dim` is zero.
    pub fn new(grid_dim: u32, block_dim: u32, params: Vec<u64>) -> Self {
        assert!(grid_dim > 0, "grid_dim must be positive");
        assert!(block_dim > 0, "block_dim must be positive");
        Launch {
            grid_dim,
            block_dim,
            params,
        }
    }

    /// Total threads in the launch.
    pub fn total_threads(&self) -> u64 {
        self.grid_dim as u64 * self.block_dim as u64
    }

    /// Warps per CTA for the given warp size.
    pub fn warps_per_cta(&self, warp_size: u32) -> u32 {
        self.block_dim.div_ceil(warp_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{AluOp, Operand};

    fn add_exit_kernel() -> Kernel {
        Kernel::from_parts(
            "k",
            vec![
                Instr::Alu {
                    op: AluOp::Add,
                    dst: 0,
                    a: Operand::Imm(1),
                    b: Operand::Imm(2),
                },
                Instr::Exit,
            ],
            1,
            0,
            0,
        )
    }

    #[test]
    fn valid_kernel_passes() {
        assert_eq!(add_exit_kernel().validate(), Ok(()));
    }

    #[test]
    fn empty_kernel_rejected() {
        let k = Kernel::from_parts("k", vec![], 0, 0, 0);
        assert_eq!(k.validate(), Err(ValidateError::Empty));
        assert!(k.is_empty());
    }

    #[test]
    fn missing_exit_rejected() {
        let k = Kernel::from_parts(
            "k",
            vec![Instr::Mov {
                dst: 0,
                src: Operand::Imm(0),
            }],
            1,
            0,
            0,
        );
        assert_eq!(k.validate(), Err(ValidateError::MissingExit));
    }

    #[test]
    fn reg_out_of_range_rejected() {
        let k = Kernel::from_parts(
            "k",
            vec![
                Instr::Mov {
                    dst: 5,
                    src: Operand::Imm(0),
                },
                Instr::Exit,
            ],
            1,
            0,
            0,
        );
        assert_eq!(
            k.validate(),
            Err(ValidateError::RegOutOfRange { pc: 0, reg: 5 })
        );
    }

    #[test]
    fn bad_branch_rejected() {
        let k = Kernel::from_parts(
            "k",
            vec![
                Instr::Branch {
                    guard: None,
                    target: 99,
                    reconverge: RECONV_NONE,
                },
                Instr::Exit,
            ],
            0,
            0,
            0,
        );
        assert_eq!(
            k.validate(),
            Err(ValidateError::BadBranch { pc: 0, target: 99 })
        );
    }

    #[test]
    fn launch_geometry() {
        let l = Launch::new(4, 96, vec![1, 2]);
        assert_eq!(l.total_threads(), 384);
        assert_eq!(l.warps_per_cta(32), 3);
        let l2 = Launch::new(1, 33, vec![]);
        assert_eq!(l2.warps_per_cta(32), 2);
    }

    #[test]
    #[should_panic(expected = "block_dim must be positive")]
    fn zero_block_dim_panics() {
        let _ = Launch::new(1, 0, vec![]);
    }

    #[test]
    fn disassembly_lists_instructions() {
        let k = add_exit_kernel();
        let text = k.to_string();
        assert!(text.contains(".kernel k"));
        assert!(text.contains(".regs 1"));
        assert!(text.contains("0: add r0, 1, 2"));
        assert!(text.contains("1: exit"));
        assert_eq!(k.len(), 2);
        assert_eq!(k.num_regs(), 1);
    }

    #[test]
    fn validate_errors_display() {
        assert!(ValidateError::Empty.to_string().contains("no instructions"));
        assert!(ValidateError::MissingExit.to_string().contains("exit"));
    }
}
