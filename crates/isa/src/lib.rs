//! A small PTX-flavoured kernel IR with a functional SIMT executor.
//!
//! This crate is the instruction-set substrate of the `gpu-latency`
//! workspace (a reproduction of *Andersch et al., "On Latency in GPU
//! Throughput Microarchitectures", ISPASS 2015*). It provides:
//!
//! - [`Instr`] / [`Kernel`]: a register-machine IR with global/local/shared
//!   memory, atomics, barriers, and branches carrying explicit reconvergence
//!   PCs.
//! - [`KernelBuilder`]: structured construction (`if`, `if/else`, `while`)
//!   that lowers to correctly-reconverging branches.
//! - [`WarpExec`]: a functional warp executor with a GPGPU-Sim-style SIMT
//!   reconvergence stack. It updates architectural state at issue time and
//!   reports per-lane memory accesses so the timing model (`gpu-sim`) can
//!   replay them through the memory pipeline.
//!
//! # Examples
//!
//! Build and functionally run a kernel that doubles 64 numbers:
//!
//! ```
//! use gpu_isa::{KernelBuilder, Special, Width, Launch};
//!
//! let mut b = KernelBuilder::new("double");
//! let buf = b.param(0);
//! let gtid = b.special(Special::GlobalTid);
//! let off = b.shl(gtid, 2);
//! let addr = b.add(buf, off);
//! let v = b.ld_global(Width::W4, addr, 0);
//! let v2 = b.add(v, v);
//! b.st_global(Width::W4, addr, 0, v2);
//! b.exit();
//! let kernel = b.build()?;
//! let launch = Launch::new(2, 32, vec![0x1000]);
//! assert_eq!(launch.total_threads(), 64);
//! # Ok::<(), gpu_isa::ValidateError>(())
//! ```

pub mod asm;
mod builder;
mod exec;
mod instr;
mod kernel;

pub use asm::{parse_kernel, AsmError, AsmErrorKind};
pub use builder::{KernelBuilder, MAX_PREDS};
pub use exec::{
    LaneAccess, LocalMap, MemBackend, MemOp, StepOutcome, ThreadCtx, WarpExec, MAX_WARP_SIZE,
};
pub use instr::{
    AluOp, CmpOp, Guard, Instr, InstrClass, MemRef, Operand, Pc, PredReg, Reg, Space, Special,
    Width, RECONV_NONE,
};
pub use kernel::{Kernel, Launch, ValidateError};
