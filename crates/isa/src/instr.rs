//! Instruction definitions for the simulator's kernel IR.
//!
//! The IR is a small, PTX-flavoured register machine: each thread owns a file
//! of 64-bit general-purpose registers and a handful of 1-bit predicate
//! registers. Control flow is expressed with (optionally predicated) branches
//! that carry an explicit reconvergence PC, which the SIMT stack in
//! [`crate::exec`] uses to handle divergence the way GPGPU-Sim's
//! immediate-post-dominator stack does.

use std::fmt;

/// Index of a general-purpose (64-bit) register within a thread.
pub type Reg = u16;

/// Index of a predicate (1-bit) register within a thread.
pub type PredReg = u8;

/// Program counter: an index into [`crate::Kernel::instrs`].
pub type Pc = usize;

/// Sentinel reconvergence PC meaning "never reconverges" (used for the warp's
/// root SIMT stack entry, not for branches emitted by the builder).
pub const RECONV_NONE: Pc = usize::MAX;

/// Memory spaces visible to kernel code.
///
/// `Local` is thread-private memory; as on real GPUs it is interleaved into
/// the global address space and flows through the same cache pipeline, which
/// is what makes the Kepler "L1 caches local but not global accesses"
/// distinction (paper §II) expressible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Device memory, shared by all threads, cached per-architecture policy.
    Global,
    /// Thread-private spill/stack space, mapped into device memory.
    Local,
    /// On-chip per-CTA scratchpad; fixed low latency, never leaves the SM.
    Shared,
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Space::Global => "global",
            Space::Local => "local",
            Space::Shared => "shared",
        };
        f.write_str(s)
    }
}

/// Access width of a load or store, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 32-bit access.
    W4,
    /// 64-bit access (e.g. pointers).
    W8,
}

impl Width {
    /// Width in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            Width::W4 => 4,
            Width::W8 => 8,
        }
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.bytes() * 8)
    }
}

/// Integer and floating-point ALU operations.
///
/// Integer ops use wrapping 64-bit two's-complement semantics; float ops
/// interpret the low 32 bits of their operands as an IEEE-754 `f32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping integer add.
    Add,
    /// Wrapping integer subtract.
    Sub,
    /// Wrapping integer multiply.
    Mul,
    /// Integer divide (signed); divide-by-zero yields 0 like PTX `div`.
    Div,
    /// Integer remainder (signed); rem-by-zero yields the dividend.
    Rem,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by `b mod 64`).
    Shl,
    /// Logical shift right (by `b mod 64`).
    Shr,
    /// `f32` add on the low 32 bits.
    FAdd,
    /// `f32` multiply on the low 32 bits.
    FMul,
    /// `f32` divide on the low 32 bits (executes on the SFU pipeline).
    FDiv,
}

impl AluOp {
    /// Returns `true` for transcendental/iterative ops that execute on the
    /// special-function unit rather than the main ALU pipeline.
    pub fn is_sfu(self) -> bool {
        matches!(self, AluOp::Div | AluOp::Rem | AluOp::FDiv)
    }

    /// Returns `true` for single-precision floating point ops.
    pub fn is_float(self) -> bool {
        matches!(self, AluOp::FAdd | AluOp::FMul | AluOp::FDiv)
    }
}

/// Comparison operators for [`Instr::SetP`] (signed 64-bit semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpOp {
    /// Evaluates the comparison on signed 64-bit values.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

/// Special (read-only) per-thread registers, PTX-style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Special {
    /// Thread index within its CTA (`%tid.x`).
    TidX,
    /// CTA index within the grid (`%ctaid.x`).
    CtaIdX,
    /// Threads per CTA (`%ntid.x`).
    NTidX,
    /// CTAs in the grid (`%nctaid.x`).
    NCtaIdX,
    /// Lane index within the warp (`%laneid`).
    LaneId,
    /// Convenience: globally linearized thread id (`ctaid * ntid + tid`).
    GlobalTid,
}

/// An instruction operand: either a register or a sign-extended immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read a general-purpose register.
    Reg(Reg),
    /// A 64-bit immediate (stored signed, used as raw bits).
    Imm(i64),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::Imm(v as i64)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::Imm(v as i64)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "r{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
        }
    }
}

/// A predicate guard: the branch is taken by threads whose predicate register
/// equals `expect`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Guard {
    /// Predicate register tested.
    pub pred: PredReg,
    /// Value the predicate must have for the guard to pass.
    pub expect: bool,
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}p{}", if self.expect { "" } else { "!" }, self.pred)
    }
}

/// One IR instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `dst = a op b`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = src`.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// `dst = special register`.
    ReadSpecial {
        /// Destination register.
        dst: Reg,
        /// Which special register to read.
        special: Special,
    },
    /// `dst = kernel parameter[index]` (const-cache access, fixed latency).
    LdParam {
        /// Destination register.
        dst: Reg,
        /// Parameter slot index.
        index: usize,
    },
    /// `pred = a cmp b` (signed comparison).
    SetP {
        /// Destination predicate register.
        pred: PredReg,
        /// Comparison operator.
        op: CmpOp,
        /// Left operand.
        a: Operand,
        /// Right operand.
        b: Operand,
    },
    /// `dst = mem[space][addr_reg + offset]`.
    Ld {
        /// Memory space accessed.
        space: Space,
        /// Access width.
        width: Width,
        /// Destination register.
        dst: Reg,
        /// Register holding the base byte address.
        addr: Reg,
        /// Constant byte offset added to the base.
        offset: i64,
    },
    /// `mem[space][addr_reg + offset] = src`.
    St {
        /// Memory space accessed.
        space: Space,
        /// Access width.
        width: Width,
        /// Value stored.
        src: Operand,
        /// Register holding the base byte address.
        addr: Reg,
        /// Constant byte offset added to the base.
        offset: i64,
    },
    /// `dst = atomicAdd(&global[addr + offset], val)` returning the old value.
    AtomAdd {
        /// Access width.
        width: Width,
        /// Destination register receiving the pre-add value.
        dst: Reg,
        /// Register holding the base byte address (global space).
        addr: Reg,
        /// Constant byte offset added to the base.
        offset: i64,
        /// Addend.
        val: Operand,
    },
    /// (Optionally predicated) branch to `target`, reconverging at
    /// `reconverge` (the branch's immediate post-dominator).
    Branch {
        /// Branch is taken by threads passing this guard (all threads if
        /// `None`).
        guard: Option<Guard>,
        /// Branch target PC.
        target: Pc,
        /// Reconvergence PC for divergent execution.
        reconverge: Pc,
    },
    /// CTA-wide barrier (`bar.sync`).
    Bar,
    /// Pipeline-visible fence separating dependent memory operations; no
    /// functional effect in this model (functional execution is in issue
    /// order already), but occupies an issue slot.
    MemBar,
    /// Terminates the executing threads.
    Exit,
}

/// Coarse functional-unit class of an instruction, used by the SM issue logic
/// to pick a pipeline and latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Integer/logic ALU pipeline.
    IntAlu,
    /// Single-precision floating point pipeline.
    FpAlu,
    /// Special-function unit (div/rem/transcendental).
    Sfu,
    /// Load/store unit: memory in `space`, `is_store` for writes, atomics
    /// count as stores for issue purposes but also write a register.
    Mem {
        /// Memory space accessed.
        space: Space,
        /// `true` for stores and atomics.
        is_store: bool,
    },
    /// Control flow (branch handling in the front end).
    Control,
    /// CTA barrier.
    Barrier,
    /// Thread exit.
    Exit,
}

/// A uniform view of one memory reference: the per-instruction metadata
/// every address solver needs, extracted from the three memory instruction
/// shapes ([`Instr::Ld`], [`Instr::St`], [`Instr::AtomAdd`]) so analyzers
/// don't each re-match the variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemRef {
    /// Memory space accessed.
    pub space: Space,
    /// Access width.
    pub width: Width,
    /// Register holding the base byte address.
    pub addr: Reg,
    /// Constant byte offset added to the base.
    pub offset: i64,
    /// `true` for stores and atomics (they write memory).
    pub is_store: bool,
    /// `true` for atomics (read-modify-write; bypasses the L1 like the
    /// simulator's atomic path).
    pub is_atomic: bool,
}

impl Special {
    /// Per-lane stride of this special register across one warp: lane `i`
    /// reads `base + i * lane_stride()` for some warp-uniform base. The
    /// warp-uniform specials stride by zero.
    pub const fn lane_stride(self) -> i64 {
        match self {
            Special::TidX | Special::LaneId | Special::GlobalTid => 1,
            Special::CtaIdX | Special::NTidX | Special::NCtaIdX => 0,
        }
    }
}

impl Instr {
    /// The memory reference this instruction performs, if it is a load,
    /// store, or atomic.
    pub fn mem_ref(&self) -> Option<MemRef> {
        match self {
            Instr::Ld {
                space,
                width,
                addr,
                offset,
                ..
            } => Some(MemRef {
                space: *space,
                width: *width,
                addr: *addr,
                offset: *offset,
                is_store: false,
                is_atomic: false,
            }),
            Instr::St {
                space,
                width,
                addr,
                offset,
                ..
            } => Some(MemRef {
                space: *space,
                width: *width,
                addr: *addr,
                offset: *offset,
                is_store: true,
                is_atomic: false,
            }),
            Instr::AtomAdd {
                width,
                addr,
                offset,
                ..
            } => Some(MemRef {
                space: Space::Global,
                width: *width,
                addr: *addr,
                offset: *offset,
                is_store: true,
                is_atomic: true,
            }),
            _ => None,
        }
    }

    /// Returns the coarse functional-unit class.
    pub fn class(&self) -> InstrClass {
        match self {
            Instr::Alu { op, .. } if op.is_sfu() => InstrClass::Sfu,
            Instr::Alu { op, .. } if op.is_float() => InstrClass::FpAlu,
            Instr::Alu { .. }
            | Instr::Mov { .. }
            | Instr::ReadSpecial { .. }
            | Instr::LdParam { .. }
            | Instr::SetP { .. } => InstrClass::IntAlu,
            Instr::Ld { space, .. } => InstrClass::Mem {
                space: *space,
                is_store: false,
            },
            Instr::St { space, .. } => InstrClass::Mem {
                space: *space,
                is_store: true,
            },
            Instr::AtomAdd { .. } => InstrClass::Mem {
                space: Space::Global,
                is_store: true,
            },
            Instr::Branch { .. } => InstrClass::Control,
            Instr::Bar => InstrClass::Barrier,
            Instr::MemBar => InstrClass::Control,
            Instr::Exit => InstrClass::Exit,
        }
    }

    /// The general-purpose register written by this instruction, if any.
    pub fn def_reg(&self) -> Option<Reg> {
        match self {
            Instr::Alu { dst, .. }
            | Instr::Mov { dst, .. }
            | Instr::ReadSpecial { dst, .. }
            | Instr::LdParam { dst, .. }
            | Instr::Ld { dst, .. }
            | Instr::AtomAdd { dst, .. } => Some(*dst),
            _ => None,
        }
    }

    /// The general-purpose registers read by this instruction.
    pub fn use_regs(&self) -> Vec<Reg> {
        let mut out = Vec::with_capacity(3);
        let mut push_op = |o: &Operand| {
            if let Operand::Reg(r) = o {
                out.push(*r);
            }
        };
        match self {
            Instr::Alu { a, b, .. } | Instr::SetP { a, b, .. } => {
                push_op(a);
                push_op(b);
            }
            Instr::Mov { src, .. } => push_op(src),
            Instr::Ld { addr, .. } => out.push(*addr),
            Instr::St { src, addr, .. } => {
                push_op(src);
                out.push(*addr);
            }
            Instr::AtomAdd { addr, val, .. } => {
                push_op(val);
                out.push(*addr);
            }
            Instr::ReadSpecial { .. }
            | Instr::LdParam { .. }
            | Instr::Branch { .. }
            | Instr::Bar
            | Instr::MemBar
            | Instr::Exit => {}
        }
        out
    }

    /// Returns `true` if this is a global or local memory access (the kind
    /// the paper's latency analysis traces).
    pub fn touches_memory_pipeline(&self) -> bool {
        matches!(
            self.class(),
            InstrClass::Mem {
                space: Space::Global | Space::Local,
                ..
            }
        )
    }
}

impl AluOp {
    /// Assembly mnemonic (see [`crate::asm`]).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::Min => "min",
            AluOp::Max => "max",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::FAdd => "fadd",
            AluOp::FMul => "fmul",
            AluOp::FDiv => "fdiv",
        }
    }
}

impl CmpOp {
    /// Assembly mnemonic suffix (see [`crate::asm`]).
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }
}

impl Special {
    /// Assembly register name (see [`crate::asm`]).
    pub fn name(self) -> &'static str {
        match self {
            Special::TidX => "%tid.x",
            Special::CtaIdX => "%ctaid.x",
            Special::NTidX => "%ntid.x",
            Special::NCtaIdX => "%nctaid.x",
            Special::LaneId => "%laneid",
            Special::GlobalTid => "%gtid",
        }
    }
}

/// Formats a `[rN+off]` / `[rN-off]` address operand.
fn fmt_addr(f: &mut fmt::Formatter<'_>, addr: Reg, offset: i64) -> fmt::Result {
    if offset < 0 {
        write!(f, "[r{addr}{offset}]")
    } else {
        write!(f, "[r{addr}+{offset}]")
    }
}

impl fmt::Display for Instr {
    /// Canonical assembly form, re-parsable by [`crate::asm::parse_kernel`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instr::Alu { op, dst, a, b } => {
                write!(f, "{} r{dst}, {a}, {b}", op.mnemonic())
            }
            Instr::Mov { dst, src } => write!(f, "mov r{dst}, {src}"),
            Instr::ReadSpecial { dst, special } => {
                write!(f, "mov r{dst}, {}", special.name())
            }
            Instr::LdParam { dst, index } => write!(f, "ld.param r{dst}, [{index}]"),
            Instr::SetP { pred, op, a, b } => {
                write!(f, "setp.{} p{pred}, {a}, {b}", op.mnemonic())
            }
            Instr::Ld {
                space,
                width,
                dst,
                addr,
                offset,
            } => {
                write!(f, "ld.{space}.u{width} r{dst}, ")?;
                fmt_addr(f, *addr, *offset)
            }
            Instr::St {
                space,
                width,
                src,
                addr,
                offset,
            } => {
                write!(f, "st.{space}.u{width} ")?;
                fmt_addr(f, *addr, *offset)?;
                write!(f, ", {src}")
            }
            Instr::AtomAdd {
                width,
                dst,
                addr,
                offset,
                val,
            } => {
                write!(f, "atom.add.u{width} r{dst}, ")?;
                fmt_addr(f, *addr, *offset)?;
                write!(f, ", {val}")
            }
            Instr::Branch {
                guard,
                target,
                reconverge,
            } => {
                if let Some(g) = guard {
                    write!(f, "{g} ")?;
                }
                if *reconverge == RECONV_NONE {
                    write!(f, "bra {target} (reconv none)")
                } else {
                    write!(f, "bra {target} (reconv {reconverge})")
                }
            }
            Instr::Bar => f.write_str("bar.sync"),
            Instr::MemBar => f.write_str("membar"),
            Instr::Exit => f.write_str("exit"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_dispatch() {
        let add = Instr::Alu {
            op: AluOp::Add,
            dst: 0,
            a: Operand::Imm(1),
            b: Operand::Imm(2),
        };
        assert_eq!(add.class(), InstrClass::IntAlu);

        let fdiv = Instr::Alu {
            op: AluOp::FDiv,
            dst: 0,
            a: Operand::Reg(1),
            b: Operand::Reg(2),
        };
        assert_eq!(fdiv.class(), InstrClass::Sfu);

        let fmul = Instr::Alu {
            op: AluOp::FMul,
            dst: 0,
            a: Operand::Reg(1),
            b: Operand::Reg(2),
        };
        assert_eq!(fmul.class(), InstrClass::FpAlu);

        let ld = Instr::Ld {
            space: Space::Global,
            width: Width::W4,
            dst: 3,
            addr: 4,
            offset: 0,
        };
        assert_eq!(
            ld.class(),
            InstrClass::Mem {
                space: Space::Global,
                is_store: false
            }
        );
        assert!(ld.touches_memory_pipeline());

        let sh = Instr::St {
            space: Space::Shared,
            width: Width::W4,
            src: Operand::Reg(1),
            addr: 2,
            offset: 0,
        };
        assert!(!sh.touches_memory_pipeline());
    }

    #[test]
    fn def_use_sets() {
        let i = Instr::Alu {
            op: AluOp::Add,
            dst: 7,
            a: Operand::Reg(1),
            b: Operand::Imm(5),
        };
        assert_eq!(i.def_reg(), Some(7));
        assert_eq!(i.use_regs(), vec![1]);

        let st = Instr::St {
            space: Space::Global,
            width: Width::W8,
            src: Operand::Reg(2),
            addr: 3,
            offset: 8,
        };
        assert_eq!(st.def_reg(), None);
        assert_eq!(st.use_regs(), vec![2, 3]);

        let atom = Instr::AtomAdd {
            width: Width::W4,
            dst: 1,
            addr: 2,
            offset: 0,
            val: Operand::Reg(4),
        };
        assert_eq!(atom.def_reg(), Some(1));
        assert_eq!(atom.use_regs(), vec![4, 2]);

        assert_eq!(Instr::Exit.def_reg(), None);
        assert!(Instr::Exit.use_regs().is_empty());
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpOp::Lt.eval(-1, 0));
        assert!(!CmpOp::Lt.eval(0, 0));
        assert!(CmpOp::Ge.eval(0, 0));
        assert!(CmpOp::Ne.eval(1, 2));
        assert!(CmpOp::Eq.eval(5, 5));
        assert!(CmpOp::Le.eval(i64::MIN, i64::MAX));
        assert!(CmpOp::Gt.eval(3, 2));
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::W4.bytes(), 4);
        assert_eq!(Width::W8.bytes(), 8);
    }

    #[test]
    fn display_forms() {
        let g = Guard {
            pred: 1,
            expect: false,
        };
        assert_eq!(g.to_string(), "@!p1");
        let b = Instr::Branch {
            guard: Some(g),
            target: 10,
            reconverge: 12,
        };
        assert_eq!(b.to_string(), "@!p1 bra 10 (reconv 12)");
        assert_eq!(AluOp::FDiv.mnemonic(), "fdiv");
        assert_eq!(CmpOp::Ge.mnemonic(), "ge");
        assert_eq!(Special::GlobalTid.name(), "%gtid");
        assert_eq!(Space::Local.to_string(), "local");
        assert_eq!(Operand::Reg(3).to_string(), "r3");
        assert_eq!(Operand::Imm(-4).to_string(), "-4");
    }

    #[test]
    fn operand_conversions() {
        assert_eq!(Operand::from(3u16), Operand::Reg(3));
        assert_eq!(Operand::from(-9i64), Operand::Imm(-9));
    }
}
