//! Structured kernel construction.
//!
//! [`KernelBuilder`] allocates registers, emits instructions, and lowers
//! structured control flow (`if`, `if/else`, `while`) to predicated branches
//! carrying correct reconvergence PCs (each branch's immediate
//! post-dominator), which is what the SIMT stack in [`crate::exec`] needs to
//! handle divergence.

use crate::instr::{AluOp, CmpOp, Guard, Instr, Operand, Pc, PredReg, Reg, Space, Special, Width};
use crate::kernel::{Kernel, ValidateError};

/// Maximum predicate registers per thread.
pub const MAX_PREDS: usize = 8;

/// Incrementally builds a [`Kernel`].
///
/// # Examples
///
/// A guarded vector-add body (`if (gtid < n) c[gtid] = a[gtid] + b[gtid]`):
///
/// ```
/// use gpu_isa::{CmpOp, KernelBuilder, Special, Width};
///
/// let mut b = KernelBuilder::new("vecadd");
/// let a = b.param(0);
/// let n = b.param(3);
/// let gtid = b.special(Special::GlobalTid);
/// let p = b.setp(CmpOp::Lt, gtid, n);
/// b.if_then(p, |b| {
///     let off = b.shl(gtid, 2); // gtid * 4 bytes
///     let pa = b.add(a, off);
///     let _va = b.ld_global(Width::W4, pa, 0);
///     // ... compute and store ...
/// });
/// b.exit();
/// let kernel = b.build()?;
/// assert!(kernel.len() > 0);
/// # Ok::<(), gpu_isa::ValidateError>(())
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instr>,
    next_reg: Reg,
    next_pred: PredReg,
    shared_bytes: u64,
    local_bytes_per_thread: u64,
}

impl KernelBuilder {
    /// Starts building a kernel with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            instrs: Vec::new(),
            next_reg: 0,
            next_pred: 0,
            shared_bytes: 0,
            local_bytes_per_thread: 0,
        }
    }

    /// Allocates a fresh general-purpose register.
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` registers are allocated.
    pub fn reg(&mut self) -> Reg {
        let r = self.next_reg;
        self.next_reg = self.next_reg.checked_add(1).expect("out of registers");
        r
    }

    /// Allocates a fresh predicate register.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_PREDS`] predicates are allocated.
    pub fn pred(&mut self) -> PredReg {
        let p = self.next_pred;
        assert!((p as usize) < MAX_PREDS, "out of predicate registers");
        self.next_pred += 1;
        p
    }

    /// Declares `bytes` of per-CTA shared memory; returns the byte offset of
    /// the newly reserved region.
    pub fn alloc_shared(&mut self, bytes: u64) -> u64 {
        let off = self.shared_bytes;
        self.shared_bytes += bytes;
        off
    }

    /// Declares `bytes` of per-thread local memory; returns the byte offset
    /// of the newly reserved region within the thread's local window.
    pub fn alloc_local(&mut self, bytes: u64) -> u64 {
        let off = self.local_bytes_per_thread;
        self.local_bytes_per_thread += bytes;
        off
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    /// Current PC (index of the next instruction to be emitted).
    pub fn here(&self) -> Pc {
        self.instrs.len()
    }

    // ---- straight-line emission helpers -------------------------------

    /// Emits `dst = src` into a fresh register.
    pub fn mov(&mut self, src: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.push(Instr::Mov {
            dst,
            src: src.into(),
        });
        dst
    }

    /// Emits `dst = src` into an existing register.
    pub fn mov_to(&mut self, dst: Reg, src: impl Into<Operand>) {
        self.push(Instr::Mov {
            dst,
            src: src.into(),
        });
    }

    /// Emits an ALU op into a fresh register.
    pub fn alu(&mut self, op: AluOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.reg();
        self.alu_to(op, dst, a, b);
        dst
    }

    /// Emits an ALU op into an existing register.
    pub fn alu_to(&mut self, op: AluOp, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) {
        self.push(Instr::Alu {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
    }

    /// `fresh = a + b`.
    pub fn add(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Add, a, b)
    }

    /// `fresh = a - b`.
    pub fn sub(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Sub, a, b)
    }

    /// `fresh = a * b`.
    pub fn mul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Mul, a, b)
    }

    /// `fresh = a << b`.
    pub fn shl(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::Shl, a, b)
    }

    /// `fresh = a & b`.
    pub fn and(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.alu(AluOp::And, a, b)
    }

    /// Reads a special register into a fresh register.
    pub fn special(&mut self, special: Special) -> Reg {
        let dst = self.reg();
        self.push(Instr::ReadSpecial { dst, special });
        dst
    }

    /// Loads kernel parameter `index` into a fresh register.
    pub fn param(&mut self, index: usize) -> Reg {
        let dst = self.reg();
        self.push(Instr::LdParam { dst, index });
        dst
    }

    /// Emits `fresh_pred = a cmp b`.
    pub fn setp(&mut self, op: CmpOp, a: impl Into<Operand>, b: impl Into<Operand>) -> PredReg {
        let pred = self.pred();
        self.setp_to(pred, op, a, b);
        pred
    }

    /// Emits `pred = a cmp b` into an existing predicate register.
    pub fn setp_to(
        &mut self,
        pred: PredReg,
        op: CmpOp,
        a: impl Into<Operand>,
        b: impl Into<Operand>,
    ) {
        self.push(Instr::SetP {
            pred,
            op,
            a: a.into(),
            b: b.into(),
        });
    }

    /// Emits a load into a fresh register.
    pub fn ld(&mut self, space: Space, width: Width, addr: Reg, offset: i64) -> Reg {
        let dst = self.reg();
        self.ld_to(space, width, dst, addr, offset);
        dst
    }

    /// Emits a load into an existing register.
    pub fn ld_to(&mut self, space: Space, width: Width, dst: Reg, addr: Reg, offset: i64) {
        self.push(Instr::Ld {
            space,
            width,
            dst,
            addr,
            offset,
        });
    }

    /// Emits a global-memory load into a fresh register.
    pub fn ld_global(&mut self, width: Width, addr: Reg, offset: i64) -> Reg {
        self.ld(Space::Global, width, addr, offset)
    }

    /// Emits a store.
    pub fn st(
        &mut self,
        space: Space,
        width: Width,
        addr: Reg,
        offset: i64,
        src: impl Into<Operand>,
    ) {
        self.push(Instr::St {
            space,
            width,
            src: src.into(),
            addr,
            offset,
        });
    }

    /// Emits a global-memory store.
    pub fn st_global(&mut self, width: Width, addr: Reg, offset: i64, src: impl Into<Operand>) {
        self.st(Space::Global, width, addr, offset, src);
    }

    /// Emits `fresh = atomicAdd(&global[addr+offset], val)`.
    pub fn atom_add(
        &mut self,
        width: Width,
        addr: Reg,
        offset: i64,
        val: impl Into<Operand>,
    ) -> Reg {
        let dst = self.reg();
        self.push(Instr::AtomAdd {
            width,
            dst,
            addr,
            offset,
            val: val.into(),
        });
        dst
    }

    /// Emits a CTA barrier.
    pub fn bar(&mut self) {
        self.push(Instr::Bar);
    }

    /// Emits a memory fence.
    pub fn membar(&mut self) {
        self.push(Instr::MemBar);
    }

    /// Emits `exit`.
    pub fn exit(&mut self) {
        self.push(Instr::Exit);
    }

    // ---- structured control flow ---------------------------------------

    /// Emits `if (pred) { body }`.
    ///
    /// Lowered as a branch over the body, taken by threads where the
    /// predicate is `false`, reconverging right after the body.
    pub fn if_then(&mut self, pred: PredReg, body: impl FnOnce(&mut Self)) {
        self.if_pred_then(pred, true, body);
    }

    /// Emits `if (pred == expect) { body }`.
    pub fn if_pred_then(&mut self, pred: PredReg, expect: bool, body: impl FnOnce(&mut Self)) {
        let branch_pc = self.here();
        self.push(Instr::Branch {
            guard: Some(Guard {
                pred,
                expect: !expect,
            }),
            target: 0, // patched below
            reconverge: 0,
        });
        body(self);
        let end = self.here();
        self.patch_branch(branch_pc, end, end);
    }

    /// Emits `if (pred) { then } else { otherwise }`.
    pub fn if_then_else(
        &mut self,
        pred: PredReg,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) {
        let cond_pc = self.here();
        self.push(Instr::Branch {
            guard: Some(Guard {
                pred,
                expect: false,
            }),
            target: 0, // patched to else_pc
            reconverge: 0,
        });
        then_body(self);
        let jump_end_pc = self.here();
        self.push(Instr::Branch {
            guard: None,
            target: 0, // patched to end
            reconverge: 0,
        });
        let else_pc = self.here();
        else_body(self);
        let end = self.here();
        self.patch_branch(cond_pc, else_pc, end);
        self.patch_branch(jump_end_pc, end, end);
    }

    /// Emits `while (cond) { body }`.
    ///
    /// `cond` emits code evaluating the loop condition and returns the
    /// predicate register holding it; threads where the predicate is `false`
    /// leave the loop.
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut Self) -> PredReg,
        body: impl FnOnce(&mut Self),
    ) {
        let head = self.here();
        let pred = cond(self);
        let exit_branch_pc = self.here();
        self.push(Instr::Branch {
            guard: Some(Guard {
                pred,
                expect: false,
            }),
            target: 0, // patched to end
            reconverge: 0,
        });
        body(self);
        self.push(Instr::Branch {
            guard: None,
            target: head,
            reconverge: head,
        });
        let end = self.here();
        self.patch_branch(exit_branch_pc, end, end);
    }

    /// Emits `for (i = start; i < bound; i += step) { body(i) }` using a
    /// dedicated counter register, which is passed to `body`.
    pub fn for_range(
        &mut self,
        start: impl Into<Operand>,
        bound: impl Into<Operand>,
        step: i64,
        body: impl FnOnce(&mut Self, Reg),
    ) {
        let i = self.mov(start);
        let bound = bound.into();
        let pred = self.pred();
        self.while_loop(
            |b| {
                b.setp_to(pred, CmpOp::Lt, i, bound);
                pred
            },
            |b| {
                body(b, i);
                b.alu_to(AluOp::Add, i, i, Operand::Imm(step));
            },
        );
    }

    fn patch_branch(&mut self, pc: Pc, target: Pc, reconverge: Pc) {
        match &mut self.instrs[pc] {
            Instr::Branch {
                target: t,
                reconverge: r,
                ..
            } => {
                *t = target;
                *r = reconverge;
            }
            other => unreachable!("patch_branch at non-branch {other}"),
        }
    }

    /// Finalizes and validates the kernel.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found; see [`Kernel::validate`].
    pub fn build(self) -> Result<Kernel, ValidateError> {
        let kernel = Kernel::from_parts(
            self.name,
            self.instrs,
            self.next_reg,
            self.shared_bytes,
            self.local_bytes_per_thread,
        );
        kernel.validate()?;
        Ok(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn if_then_patches_targets() {
        let mut b = KernelBuilder::new("k");
        let p = b.pred();
        b.if_then(p, |b| {
            b.mov(Operand::Imm(1));
        });
        b.exit();
        let k = b.build().unwrap();
        // instr 0: branch over body to pc 2, reconverging at 2.
        match k.instr(0) {
            Instr::Branch {
                guard: Some(g),
                target,
                reconverge,
            } => {
                assert_eq!(*target, 2);
                assert_eq!(*reconverge, 2);
                assert!(!g.expect, "skip branch taken when pred is false");
            }
            other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn if_then_else_shape() {
        let mut b = KernelBuilder::new("k");
        let p = b.pred();
        b.if_then_else(
            p,
            |b| {
                b.mov(Operand::Imm(1));
            },
            |b| {
                b.mov(Operand::Imm(2));
            },
        );
        b.exit();
        let k = b.build().unwrap();
        // 0: bra !p else(3) reconv 4 ; 1: then ; 2: bra end(4) ; 3: else ; 4: exit
        match k.instr(0) {
            Instr::Branch {
                target, reconverge, ..
            } => {
                assert_eq!(*target, 3);
                assert_eq!(*reconverge, 4);
            }
            other => panic!("expected branch, got {other}"),
        }
        match k.instr(2) {
            Instr::Branch { guard, target, .. } => {
                assert!(guard.is_none());
                assert_eq!(*target, 4);
            }
            other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn while_loop_shape() {
        let mut b = KernelBuilder::new("k");
        let i = b.mov(Operand::Imm(0));
        b.while_loop(
            |b| b.setp(CmpOp::Lt, i, Operand::Imm(10)),
            |b| {
                b.alu_to(AluOp::Add, i, i, Operand::Imm(1));
            },
        );
        b.exit();
        let k = b.build().unwrap();
        // 0: mov; 1: setp (head); 2: bra !p end(4? no: body at 3, backedge at 4 => end 5)...
        match k.instr(2) {
            Instr::Branch {
                target, reconverge, ..
            } => {
                assert_eq!(*target, 5);
                assert_eq!(*reconverge, 5);
            }
            other => panic!("expected exit branch, got {other}"),
        }
        match k.instr(4) {
            Instr::Branch { guard, target, .. } => {
                assert!(guard.is_none());
                assert_eq!(*target, 1, "backedge to loop head");
            }
            other => panic!("expected backedge, got {other}"),
        }
    }

    #[test]
    fn resource_accounting() {
        let mut b = KernelBuilder::new("k");
        let s0 = b.alloc_shared(256);
        let s1 = b.alloc_shared(128);
        assert_eq!((s0, s1), (0, 256));
        let l0 = b.alloc_local(64);
        assert_eq!(l0, 0);
        let r0 = b.reg();
        let r1 = b.reg();
        assert_eq!((r0, r1), (0, 1));
        b.mov_to(r0, Operand::Imm(0));
        b.exit();
        let k = b.build().unwrap();
        assert_eq!(k.shared_bytes(), 384);
        assert_eq!(k.local_bytes_per_thread(), 64);
        assert_eq!(k.num_regs(), 2);
    }

    #[test]
    #[should_panic(expected = "out of predicate registers")]
    fn pred_exhaustion_panics() {
        let mut b = KernelBuilder::new("k");
        for _ in 0..=MAX_PREDS {
            b.pred();
        }
    }

    #[test]
    fn build_validates() {
        let b = KernelBuilder::new("empty");
        assert!(b.build().is_err());
    }

    #[test]
    fn for_range_emits_loop() {
        let mut b = KernelBuilder::new("k");
        b.for_range(Operand::Imm(0), Operand::Imm(4), 1, |b, i| {
            b.add(i, Operand::Imm(100));
        });
        b.exit();
        let k = b.build().unwrap();
        assert!(k.validate().is_ok());
        assert!(k.instrs().iter().any(|i| matches!(i, Instr::Branch { .. })));
    }
}
