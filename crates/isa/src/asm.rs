//! A textual assembler for the kernel IR.
//!
//! [`parse_kernel`] accepts the exact format [`Kernel`]'s `Display` emits
//! (disassembly is re-assemblable), plus conveniences for hand-written
//! programs: named labels, comments, and optional directives.
//!
//! ```text
//! .kernel saxpy          // name (required, first non-comment line)
//! .regs 8                // optional; default = highest register used + 1
//! .shared 1024           // optional per-CTA shared bytes (default 0)
//! .local 0               // optional per-thread local bytes (default 0)
//!
//!     mov r0, %gtid
//!     setp.lt p0, r0, 100
//!     @!p0 bra done (reconv done)
//!     shl r1, r0, 2
//!     ld.global.u32 r2, [r1+0]
//!     add r2, r2, 1
//!     st.global.u32 [r1+0], r2
//! done:
//!     exit
//! ```
//!
//! Branch targets may be labels or absolute PCs; the optional leading
//! `NN:` produced by the disassembler is accepted and ignored (it also
//! works as a numeric label).

use std::collections::HashMap;
use std::fmt;

use crate::instr::{
    AluOp, CmpOp, Guard, Instr, Operand, Pc, PredReg, Reg, Space, Special, Width, RECONV_NONE,
};
use crate::kernel::{Kernel, ValidateError};

/// Error produced by [`parse_kernel`], with a 1-based source line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line the error was found on (0 for file-level errors).
    pub line: usize,
    /// What went wrong.
    pub kind: AsmErrorKind,
}

/// The specific failure behind an [`AsmError`].
///
/// Variants carry the offending token so callers can report or test
/// against it without string-matching the rendered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmErrorKind {
    /// `.kernel` directive with no name argument.
    MissingKernelName,
    /// No `.kernel` directive anywhere in the input.
    MissingKernelDirective,
    /// A directive other than `.kernel`/`.regs`/`.shared`/`.local`.
    UnknownDirective(String),
    /// A label with characters outside `[A-Za-z0-9_]`.
    BadLabel(String),
    /// The same label defined twice.
    DuplicateLabel(String),
    /// A branch target label never defined.
    UnknownLabel(String),
    /// A directive argument that is not a number; `what` names the directive.
    BadNumber {
        /// Which directive expected the number (e.g. `.regs`).
        what: &'static str,
        /// The token found instead.
        got: String,
    },
    /// A token where a register (`rN`) was expected.
    ExpectedRegister(String),
    /// A token where a predicate (`pN`) was expected.
    ExpectedPredicate(String),
    /// A token where a register or immediate was expected.
    ExpectedOperand(String),
    /// An unrecognized `%special` register name.
    UnknownSpecial(String),
    /// A memory operand not of the form `[reg+offset]`.
    BadAddress(String),
    /// A memory operand whose offset is not a number.
    BadOffset(String),
    /// An unrecognized address-space suffix.
    UnknownSpace(String),
    /// An unrecognized width suffix.
    UnknownWidth(String),
    /// An unrecognized `setp` comparison suffix.
    UnknownComparison(String),
    /// A branch tail that is not `(reconv TARGET)`.
    BadReconverge(String),
    /// `ld.param` without a literal `[index]` operand.
    BadParamIndex,
    /// A `@p` guard on an instruction other than `bra`.
    GuardOnNonBranch,
    /// Wrong number of comma-separated operands for a mnemonic.
    WrongOperandCount {
        /// The mnemonic as written.
        mnemonic: String,
        /// How many operands it takes.
        expected: usize,
    },
    /// A mnemonic no instruction matches.
    UnknownMnemonic(String),
    /// The assembled kernel failed [`Kernel::validate`].
    Validation(ValidateError),
}

impl AsmError {
    fn new(line: usize, kind: AsmErrorKind) -> Self {
        AsmError { line, kind }
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.kind)
    }
}

impl fmt::Display for AsmErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use AsmErrorKind::*;
        match self {
            MissingKernelName => write!(f, ".kernel needs a name"),
            MissingKernelDirective => write!(f, "missing .kernel directive"),
            UnknownDirective(d) => write!(f, "unknown directive .{d}"),
            BadLabel(l) => write!(f, "bad label '{l}'"),
            DuplicateLabel(l) => write!(f, "duplicate label '{l}'"),
            UnknownLabel(l) => write!(f, "unknown label '{l}'"),
            BadNumber { what, got } => write!(f, "{what}: expected a number, got '{got}'"),
            ExpectedRegister(s) => write!(f, "expected a register, got '{s}'"),
            ExpectedPredicate(s) => write!(f, "expected a predicate, got '{s}'"),
            ExpectedOperand(s) => write!(f, "expected an operand, got '{s}'"),
            UnknownSpecial(s) => write!(f, "unknown special register '{s}'"),
            BadAddress(s) => write!(f, "expected [reg+offset], got '{s}'"),
            BadOffset(s) => write!(f, "bad offset in '{s}'"),
            UnknownSpace(s) => write!(f, "unknown space '{s}'"),
            UnknownWidth(s) => write!(f, "unknown width '{s}'"),
            UnknownComparison(s) => write!(f, "unknown comparison '{s}'"),
            BadReconverge(s) => write!(f, "expected (reconv TARGET), got '{s}'"),
            BadParamIndex => write!(f, "ld.param needs [index]"),
            GuardOnNonBranch => write!(f, "only branches may carry a predicate guard"),
            WrongOperandCount { mnemonic, expected } => {
                write!(f, "{mnemonic} needs {expected} operands")
            }
            UnknownMnemonic(m) => write!(f, "unknown mnemonic '{m}'"),
            Validation(e) => write!(f, "validation failed: {e}"),
        }
    }
}

impl std::error::Error for AsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            AsmErrorKind::Validation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidateError> for AsmError {
    fn from(e: ValidateError) -> Self {
        AsmError::new(0, AsmErrorKind::Validation(e))
    }
}

/// A branch target that may still be symbolic.
#[derive(Debug, Clone)]
enum Target {
    Pc(Pc),
    Label(String),
    None, // "(reconv none)"
}

struct PendingBranch {
    guard: Option<Guard>,
    target: Target,
    reconverge: Target,
}

enum Parsed {
    Instr(Instr),
    Branch(PendingBranch),
}

/// Parses assembly text into a validated [`Kernel`].
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line for syntax errors, unknown
/// mnemonics/labels, or post-assembly validation failures.
pub fn parse_kernel(text: &str) -> Result<Kernel, AsmError> {
    let mut name: Option<String> = None;
    let mut regs: Option<Reg> = None;
    let mut shared = 0u64;
    let mut local = 0u64;
    let mut labels: HashMap<String, Pc> = HashMap::new();
    let mut items: Vec<(usize, Parsed)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let mut line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        // Directives.
        if let Some(rest) = line.strip_prefix('.') {
            let (dir, arg) = split_word(rest);
            let arg = arg.trim();
            match dir {
                "kernel" => {
                    if arg.is_empty() {
                        return Err(AsmError::new(lineno, AsmErrorKind::MissingKernelName));
                    }
                    name = Some(arg.to_string());
                }
                "regs" => {
                    regs = Some(parse_num(arg, lineno, ".regs")? as Reg);
                }
                "shared" => shared = parse_num(arg, lineno, ".shared")?,
                "local" => local = parse_num(arg, lineno, ".local")?,
                other => {
                    return Err(AsmError::new(
                        lineno,
                        AsmErrorKind::UnknownDirective(other.to_string()),
                    ));
                }
            }
            continue;
        }
        // Leading labels (also covers the disassembler's "NN:" prefixes).
        while let Some(colon) = find_label_colon(line) {
            let label = line[..colon].trim();
            if !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
                return Err(AsmError::new(
                    lineno,
                    AsmErrorKind::BadLabel(label.to_string()),
                ));
            }
            // Numeric "labels" from disassembly are positional and ignored.
            if label.parse::<usize>().is_err()
                && labels.insert(label.to_string(), items.len()).is_some()
            {
                return Err(AsmError::new(
                    lineno,
                    AsmErrorKind::DuplicateLabel(label.to_string()),
                ));
            }
            line = line[colon + 1..].trim();
            if line.is_empty() {
                break;
            }
        }
        if line.is_empty() {
            continue;
        }
        items.push((lineno, parse_instr(line, lineno)?));
    }

    let name = name.ok_or_else(|| AsmError::new(0, AsmErrorKind::MissingKernelDirective))?;

    // Resolve labels.
    let resolve = |t: &Target, lineno: usize| -> Result<Pc, AsmError> {
        match t {
            Target::Pc(pc) => Ok(*pc),
            Target::None => Ok(RECONV_NONE),
            Target::Label(l) => labels
                .get(l)
                .copied()
                .ok_or_else(|| AsmError::new(lineno, AsmErrorKind::UnknownLabel(l.clone()))),
        }
    };
    let mut instrs = Vec::with_capacity(items.len());
    for (lineno, item) in items {
        instrs.push(match item {
            Parsed::Instr(i) => i,
            Parsed::Branch(b) => Instr::Branch {
                guard: b.guard,
                target: resolve(&b.target, lineno)?,
                reconverge: resolve(&b.reconverge, lineno)?,
            },
        });
    }

    // Infer the register count when not declared.
    let num_regs = regs.unwrap_or_else(|| {
        instrs
            .iter()
            .flat_map(|i| {
                i.def_reg()
                    .into_iter()
                    .chain(i.use_regs())
                    .collect::<Vec<_>>()
            })
            .max()
            .map_or(0, |r| r + 1)
    });

    let kernel = Kernel::from_parts(name, instrs, num_regs, shared, local);
    kernel.validate()?;
    Ok(kernel)
}

/// Shorthand for the operand-count error.
fn wrong_operands(lineno: usize, mnemonic: &str, expected: usize) -> AsmError {
    AsmError::new(
        lineno,
        AsmErrorKind::WrongOperandCount {
            mnemonic: mnemonic.to_string(),
            expected,
        },
    )
}

fn strip_comment(line: &str) -> &str {
    let cut = line
        .find("//")
        .into_iter()
        .chain(line.find('#'))
        .min()
        .unwrap_or(line.len());
    &line[..cut]
}

fn split_word(s: &str) -> (&str, &str) {
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, ""),
    }
}

/// Finds the colon of a leading `label:` prefix, if any (a colon before any
/// whitespace or operand punctuation).
fn find_label_colon(line: &str) -> Option<usize> {
    let colon = line.find(':')?;
    let head = &line[..colon];
    if head.is_empty() || head.contains(char::is_whitespace) || head.contains(',') {
        None
    } else {
        Some(colon)
    }
}

fn parse_num(s: &str, lineno: usize, what: &'static str) -> Result<u64, AsmError> {
    s.parse::<u64>().map_err(|_| {
        AsmError::new(
            lineno,
            AsmErrorKind::BadNumber {
                what,
                got: s.to_string(),
            },
        )
    })
}

fn parse_reg(s: &str, lineno: usize) -> Result<Reg, AsmError> {
    s.strip_prefix('r')
        .and_then(|n| n.parse::<Reg>().ok())
        .ok_or_else(|| AsmError::new(lineno, AsmErrorKind::ExpectedRegister(s.to_string())))
}

fn parse_pred(s: &str, lineno: usize) -> Result<PredReg, AsmError> {
    s.strip_prefix('p')
        .and_then(|n| n.parse::<PredReg>().ok())
        .ok_or_else(|| AsmError::new(lineno, AsmErrorKind::ExpectedPredicate(s.to_string())))
}

fn parse_operand(s: &str, lineno: usize) -> Result<Operand, AsmError> {
    if let Some(n) = s.strip_prefix('r') {
        if let Ok(r) = n.parse::<Reg>() {
            return Ok(Operand::Reg(r));
        }
    }
    s.parse::<i64>()
        .map(Operand::Imm)
        .map_err(|_| AsmError::new(lineno, AsmErrorKind::ExpectedOperand(s.to_string())))
}

fn parse_special(s: &str, lineno: usize) -> Result<Special, AsmError> {
    Ok(match s {
        "%tid.x" => Special::TidX,
        "%ctaid.x" => Special::CtaIdX,
        "%ntid.x" => Special::NTidX,
        "%nctaid.x" => Special::NCtaIdX,
        "%laneid" => Special::LaneId,
        "%gtid" => Special::GlobalTid,
        other => {
            return Err(AsmError::new(
                lineno,
                AsmErrorKind::UnknownSpecial(other.to_string()),
            ))
        }
    })
}

/// Parses `[rN+off]`, `[rN-off]`, or `[rN]`.
fn parse_addr(s: &str, lineno: usize) -> Result<(Reg, i64), AsmError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| AsmError::new(lineno, AsmErrorKind::BadAddress(s.to_string())))?;
    if let Some(plus) = inner.find('+') {
        let reg = parse_reg(inner[..plus].trim(), lineno)?;
        let off = inner[plus + 1..]
            .trim()
            .parse::<i64>()
            .map_err(|_| AsmError::new(lineno, AsmErrorKind::BadOffset(s.to_string())))?;
        Ok((reg, off))
    } else if let Some(minus) = inner[1..].find('-') {
        let reg = parse_reg(inner[..minus + 1].trim(), lineno)?;
        let off = inner[minus + 1..]
            .trim()
            .parse::<i64>()
            .map_err(|_| AsmError::new(lineno, AsmErrorKind::BadOffset(s.to_string())))?;
        Ok((reg, off))
    } else {
        Ok((parse_reg(inner.trim(), lineno)?, 0))
    }
}

fn parse_space(s: &str, lineno: usize) -> Result<Space, AsmError> {
    Ok(match s {
        "global" => Space::Global,
        "local" => Space::Local,
        "shared" => Space::Shared,
        other => {
            return Err(AsmError::new(
                lineno,
                AsmErrorKind::UnknownSpace(other.to_string()),
            ))
        }
    })
}

fn parse_width(s: &str, lineno: usize) -> Result<Width, AsmError> {
    Ok(match s {
        "u32" => Width::W4,
        "u64" => Width::W8,
        other => {
            return Err(AsmError::new(
                lineno,
                AsmErrorKind::UnknownWidth(other.to_string()),
            ))
        }
    })
}

fn parse_target(s: &str) -> Target {
    if s == "none" {
        Target::None
    } else if let Ok(pc) = s.parse::<usize>() {
        Target::Pc(pc)
    } else {
        Target::Label(s.to_string())
    }
}

fn alu_op(mnemonic: &str) -> Option<AluOp> {
    Some(match mnemonic {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "min" => AluOp::Min,
        "max" => AluOp::Max,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "shl" => AluOp::Shl,
        "shr" => AluOp::Shr,
        "fadd" => AluOp::FAdd,
        "fmul" => AluOp::FMul,
        "fdiv" => AluOp::FDiv,
        _ => return None,
    })
}

fn cmp_op(mnemonic: &str, lineno: usize) -> Result<CmpOp, AsmError> {
    Ok(match mnemonic {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        other => {
            return Err(AsmError::new(
                lineno,
                AsmErrorKind::UnknownComparison(other.to_string()),
            ))
        }
    })
}

fn operands(rest: &str) -> Vec<&str> {
    rest.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect()
}

fn parse_instr(line: &str, lineno: usize) -> Result<Parsed, AsmError> {
    // Optional predicate guard.
    let (guard, line) = if let Some(rest) = line.strip_prefix('@') {
        let (g, rest2) = split_word(rest);
        let (expect, pname) = match g.strip_prefix('!') {
            Some(p) => (false, p),
            None => (true, g),
        };
        (
            Some(Guard {
                pred: parse_pred(pname, lineno)?,
                expect,
            }),
            rest2.trim(),
        )
    } else {
        (None, line)
    };

    let (mnemonic, rest) = split_word(line);
    let rest = rest.trim();

    if mnemonic == "bra" {
        // "bra TARGET" or "bra TARGET (reconv R)".
        let (target_s, tail) = split_word(rest);
        let target = parse_target(target_s);
        let tail = tail.trim();
        let reconverge = if tail.is_empty() {
            match &target {
                _ if guard.is_none() => Target::None,
                Target::Pc(pc) => Target::Pc(*pc),
                Target::Label(l) => Target::Label(l.clone()),
                Target::None => Target::None,
            }
        } else {
            let inner = tail
                .strip_prefix("(reconv")
                .and_then(|x| x.strip_suffix(')'))
                .map(str::trim)
                .ok_or_else(|| {
                    AsmError::new(lineno, AsmErrorKind::BadReconverge(tail.to_string()))
                })?;
            parse_target(inner)
        };
        return Ok(Parsed::Branch(PendingBranch {
            guard,
            target,
            reconverge,
        }));
    }

    if guard.is_some() {
        return Err(AsmError::new(lineno, AsmErrorKind::GuardOnNonBranch));
    }

    let parsed = match mnemonic {
        "exit" => Instr::Exit,
        "membar" => Instr::MemBar,
        "bar.sync" | "bar" => Instr::Bar,
        "mov" => {
            let ops = operands(rest);
            if ops.len() != 2 {
                return Err(wrong_operands(lineno, "mov", 2));
            }
            let dst = parse_reg(ops[0], lineno)?;
            if ops[1].starts_with('%') {
                Instr::ReadSpecial {
                    dst,
                    special: parse_special(ops[1], lineno)?,
                }
            } else {
                Instr::Mov {
                    dst,
                    src: parse_operand(ops[1], lineno)?,
                }
            }
        }
        "ld.param" => {
            let ops = operands(rest);
            if ops.len() != 2 {
                return Err(wrong_operands(lineno, "ld.param", 2));
            }
            let dst = parse_reg(ops[0], lineno)?;
            let idx = ops[1]
                .strip_prefix('[')
                .and_then(|x| x.strip_suffix(']'))
                .and_then(|x| x.trim().parse::<usize>().ok())
                .ok_or_else(|| AsmError::new(lineno, AsmErrorKind::BadParamIndex))?;
            Instr::LdParam { dst, index: idx }
        }
        m if m.starts_with("setp.") => {
            let op = cmp_op(&m[5..], lineno)?;
            let ops = operands(rest);
            if ops.len() != 3 {
                return Err(wrong_operands(lineno, "setp", 3));
            }
            Instr::SetP {
                pred: parse_pred(ops[0], lineno)?,
                op,
                a: parse_operand(ops[1], lineno)?,
                b: parse_operand(ops[2], lineno)?,
            }
        }
        m if m.starts_with("ld.") => {
            let mut parts = m.splitn(3, '.');
            let _ = parts.next();
            let space = parse_space(parts.next().unwrap_or(""), lineno)?;
            let width = parse_width(parts.next().unwrap_or(""), lineno)?;
            let ops = operands(rest);
            if ops.len() != 2 {
                return Err(wrong_operands(lineno, "ld", 2));
            }
            let dst = parse_reg(ops[0], lineno)?;
            let (addr, offset) = parse_addr(ops[1], lineno)?;
            Instr::Ld {
                space,
                width,
                dst,
                addr,
                offset,
            }
        }
        m if m.starts_with("st.") => {
            let mut parts = m.splitn(3, '.');
            let _ = parts.next();
            let space = parse_space(parts.next().unwrap_or(""), lineno)?;
            let width = parse_width(parts.next().unwrap_or(""), lineno)?;
            let ops = operands(rest);
            if ops.len() != 2 {
                return Err(wrong_operands(lineno, "st", 2));
            }
            let (addr, offset) = parse_addr(ops[0], lineno)?;
            Instr::St {
                space,
                width,
                src: parse_operand(ops[1], lineno)?,
                addr,
                offset,
            }
        }
        m if m.starts_with("atom.add.") => {
            let width = parse_width(&m[9..], lineno)?;
            let ops = operands(rest);
            if ops.len() != 3 {
                return Err(wrong_operands(lineno, "atom.add", 3));
            }
            let dst = parse_reg(ops[0], lineno)?;
            let (addr, offset) = parse_addr(ops[1], lineno)?;
            Instr::AtomAdd {
                width,
                dst,
                addr,
                offset,
                val: parse_operand(ops[2], lineno)?,
            }
        }
        m => {
            if let Some(op) = alu_op(m) {
                let ops = operands(rest);
                if ops.len() != 3 {
                    return Err(wrong_operands(lineno, m, 3));
                }
                Instr::Alu {
                    op,
                    dst: parse_reg(ops[0], lineno)?,
                    a: parse_operand(ops[1], lineno)?,
                    b: parse_operand(ops[2], lineno)?,
                }
            } else {
                return Err(AsmError::new(
                    lineno,
                    AsmErrorKind::UnknownMnemonic(m.to_string()),
                ));
            }
        }
    };
    Ok(Parsed::Instr(parsed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;

    #[test]
    fn parse_minimal_kernel() {
        let k = parse_kernel(".kernel k\nexit\n").unwrap();
        assert_eq!(k.name(), "k");
        assert_eq!(k.len(), 1);
        assert_eq!(k.num_regs(), 0);
    }

    #[test]
    fn parse_saxpy_with_labels() {
        let src = r"
            .kernel saxpy
            .shared 0
                mov r0, %gtid
                ld.param r1, [1]
                setp.lt p0, r0, r1
                @!p0 bra done (reconv done)
                shl r2, r0, 2
                ld.param r3, [0]
                add r3, r3, r2
                ld.global.u32 r4, [r3+0]
                mul r4, r4, 3
                st.global.u32 [r3+0], r4
            done:
                exit
        ";
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.name(), "saxpy");
        assert_eq!(k.num_regs(), 5, "inferred register count");
        match k.instr(3) {
            Instr::Branch {
                guard: Some(g),
                target,
                reconverge,
            } => {
                assert!(!g.expect);
                assert_eq!(*target, 10);
                assert_eq!(*reconverge, 10);
            }
            other => panic!("expected branch, got {other}"),
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let src = ".kernel k // name\n# full-line comment\n\nmov r0, 5 // trailing\nexit\n";
        let k = parse_kernel(src).unwrap();
        assert_eq!(k.len(), 2);
        assert_eq!(
            k.instr(0),
            &Instr::Mov {
                dst: 0,
                src: Operand::Imm(5)
            }
        );
    }

    #[test]
    fn negative_offsets_and_immediates() {
        let src = ".kernel k\nld.global.u64 r1, [r0-8]\nmov r2, -42\nexit\n";
        let k = parse_kernel(src).unwrap();
        assert_eq!(
            k.instr(0),
            &Instr::Ld {
                space: Space::Global,
                width: Width::W8,
                dst: 1,
                addr: 0,
                offset: -8
            }
        );
        assert_eq!(
            k.instr(1),
            &Instr::Mov {
                dst: 2,
                src: Operand::Imm(-42)
            }
        );
    }

    #[test]
    fn uncond_branch_defaults_reconverge_to_none() {
        let src = ".kernel k\nloop:\nbra loop\nexit\n";
        let k = parse_kernel(src).unwrap();
        match k.instr(0) {
            Instr::Branch {
                guard: None,
                target: 0,
                reconverge,
            } => assert_eq!(*reconverge, RECONV_NONE),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers_and_kinds() {
        let err = parse_kernel(".kernel k\nbogus r0, r1\nexit\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, AsmErrorKind::UnknownMnemonic("bogus".into()));
        assert!(err.to_string().contains("bogus"));

        let err = parse_kernel(".kernel k\nbra nowhere\nexit\n").unwrap_err();
        assert_eq!(err.kind, AsmErrorKind::UnknownLabel("nowhere".into()));

        let err = parse_kernel("exit\n").unwrap_err();
        assert_eq!(err.line, 0, "file-level error");
        assert_eq!(err.kind, AsmErrorKind::MissingKernelDirective);

        let err = parse_kernel(".kernel k\n@p0 add r0, r1, r2\nexit\n").unwrap_err();
        assert_eq!(err.kind, AsmErrorKind::GuardOnNonBranch);
        assert!(err.to_string().contains("guard"));

        let err = parse_kernel(".kernel k\nfoo:\nfoo:\nexit\n").unwrap_err();
        assert_eq!(err.line, 3);
        assert_eq!(err.kind, AsmErrorKind::DuplicateLabel("foo".into()));
    }

    #[test]
    fn syntax_error_kinds_name_the_offending_token() {
        for (src, kind) in [
            (
                ".kernel k\nmov r0\nexit\n",
                AsmErrorKind::WrongOperandCount {
                    mnemonic: "mov".into(),
                    expected: 2,
                },
            ),
            (
                ".kernel k\nmov q7, 1\nexit\n",
                AsmErrorKind::ExpectedRegister("q7".into()),
            ),
            (
                ".kernel k\nmov r0, %bad\nexit\n",
                AsmErrorKind::UnknownSpecial("%bad".into()),
            ),
            (
                ".kernel k\nld.global.u16 r0, [r1+0]\nexit\n",
                AsmErrorKind::UnknownWidth("u16".into()),
            ),
            (
                ".kernel k\nld.weird.u32 r0, [r1+0]\nexit\n",
                AsmErrorKind::UnknownSpace("weird".into()),
            ),
            (
                ".kernel k\nsetp.xx p0, r0, r1\nexit\n",
                AsmErrorKind::UnknownComparison("xx".into()),
            ),
            (
                ".kernel k\nld.global.u32 r0, r1\nexit\n",
                AsmErrorKind::BadAddress("r1".into()),
            ),
            (
                ".kernel k\nld.param r0, 3\nexit\n",
                AsmErrorKind::BadParamIndex,
            ),
            (
                ".kernel k\n.regs lots\nexit\n",
                AsmErrorKind::BadNumber {
                    what: ".regs",
                    got: "lots".into(),
                },
            ),
            (
                ".kernel k\n.frobnicate 3\nexit\n",
                AsmErrorKind::UnknownDirective("frobnicate".into()),
            ),
        ] {
            let err = parse_kernel(src).unwrap_err();
            assert_eq!(err.kind, kind, "for source {src:?}");
            assert_eq!(err.line, 2, "for source {src:?}");
        }
    }

    #[test]
    fn validation_errors_surface() {
        // Branch to a PC beyond the end.
        let err = parse_kernel(".kernel k\nbra 99\nexit\n").unwrap_err();
        assert!(matches!(err.kind, AsmErrorKind::Validation(_)), "{err:?}");
        assert!(err.to_string().contains("validation"), "{err}");
        // The validation failure is chained as the error source.
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn disassembly_round_trips_builder_kernels() {
        // Build a kernel with every instruction class via the builder,
        // disassemble, re-assemble, compare instruction-for-instruction.
        let mut b = KernelBuilder::new("roundtrip");
        let base = b.param(0);
        let n = b.param(1);
        let t = b.special(crate::Special::GlobalTid);
        let p = b.setp(crate::CmpOp::Lt, t, n);
        b.if_then_else(
            p,
            |b| {
                let off = b.shl(t, 2);
                let addr = b.add(base, off);
                let v = b.ld_global(Width::W4, addr, 0);
                let w = b.alu(crate::AluOp::FMul, v, v);
                b.st_global(Width::W4, addr, -4, w);
                b.atom_add(Width::W4, addr, 8, 1);
            },
            |b| {
                let l = b.mov(16i64);
                b.st(Space::Local, Width::W8, l, 0, 7i64);
                let s = b.mov(0i64);
                b.st(Space::Shared, Width::W4, s, 0, 9i64);
                b.bar();
                b.membar();
            },
        );
        b.exit();
        let original = b.build().unwrap();
        let text = original.to_string();
        let reparsed =
            parse_kernel(&text).unwrap_or_else(|e| panic!("reassembly failed: {e}\n{text}"));
        assert_eq!(original.instrs(), reparsed.instrs(), "\n{text}");
        assert_eq!(original.name(), reparsed.name());
        assert_eq!(original.num_regs(), reparsed.num_regs());
        assert_eq!(original.shared_bytes(), reparsed.shared_bytes());
        assert_eq!(
            original.local_bytes_per_thread(),
            reparsed.local_bytes_per_thread()
        );
    }
}
